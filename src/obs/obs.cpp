#include "obs/obs.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>

namespace smart::obs {

namespace {

thread_local uint64_t t_trace_id = 0;

/// JSON string escaping for metric/span names (they are identifiers in
/// practice, but the exporter must never emit malformed JSON).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Finite numbers only: NaN/Inf are not valid JSON literals.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Fixed-point microseconds for trace timestamps. The trace clock is
/// CLOCK_MONOTONIC-absolute (machine uptime), so ts can be ~1e11 µs —
/// %.10g would round away sub-10µs structure there; %.3f keeps ns
/// resolution at any uptime.
std::string json_us(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const size_t idx = static_cast<size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

HistogramSummary summarize(const std::vector<double>& samples) {
  HistogramSummary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  for (double v : sorted) s.sum += v;
  s.mean = s.sum / static_cast<double>(s.count);
  s.p50 = percentile(sorted, 50.0);
  s.p90 = percentile(sorted, 90.0);
  s.p99 = percentile(sorted, 99.0);
  // Equal-width buckets over [min, max]. A degenerate range (all samples
  // equal) collapses to one bucket holding everything.
  if (s.max > s.min) {
    const size_t nb = HistogramSummary::kHistogramBuckets;
    const double width = (s.max - s.min) / static_cast<double>(nb);
    s.bucket_bounds.resize(nb + 1);
    for (size_t b = 0; b <= nb; ++b)
      s.bucket_bounds[b] = s.min + width * static_cast<double>(b);
    s.bucket_bounds.back() = s.max;  // exact upper edge, no fp drift
    s.bucket_counts.assign(nb, 0);
    for (double v : sorted) {
      size_t b = static_cast<size_t>((v - s.min) / width);
      if (b >= nb) b = nb - 1;  // v == max lands in the last bucket
      ++s.bucket_counts[b];
    }
  } else {
    s.bucket_bounds = {s.min, s.max};
    s.bucket_counts = {s.count};
  }
  return s;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (n != content.size()) std::fclose(f);
  return ok;
}

}  // namespace

HistogramSummary summarize_samples(const std::vector<double>& samples) {
  return summarize(samples);
}

uint64_t current_trace_id() { return t_trace_id; }

namespace {
std::atomic<const SpanHooks*> g_span_hooks{nullptr};
}  // namespace

void install_span_hooks(const SpanHooks* hooks) {
  const SpanHooks* expected = nullptr;
  g_span_hooks.compare_exchange_strong(expected, hooks,
                                       std::memory_order_acq_rel);
}

const SpanHooks* span_hooks() {
  return g_span_hooks.load(std::memory_order_acquire);
}

ScopedTraceId::ScopedTraceId(uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = prev_; }

BoundedHistogram::BoundedHistogram(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void BoundedHistogram::record(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[next_] = sample;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

HistogramSummary BoundedHistogram::summary() const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples = ring_;
  }
  return summarize(samples);
}

uint64_t BoundedHistogram::total_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

// The trace epoch is the steady clock's zero (on Linux: machine boot),
// shared by every process on the machine — so a client trace and a daemon
// trace concatenate into one coherent cross-process timeline with no
// offset negotiation.
Telemetry::Telemetry()
    : epoch_(), pid_(static_cast<uint32_t>(::getpid())) {}

Telemetry& Telemetry::instance() {
  static Telemetry telemetry;
  return telemetry;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

double Telemetry::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t Telemetry::tid_of(std::thread::id id) {
  // Caller holds mu_.
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const uint32_t tid = static_cast<uint32_t>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

void Telemetry::counter_add(std::string_view name, double delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void Telemetry::gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    gauges_.emplace(std::string(name), value);
  else
    it->second = value;
}

void Telemetry::hist_record(std::string_view name, double sample) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end())
    hists_.emplace(std::string(name), std::vector<double>{sample});
  else
    it->second.push_back(sample);
}

double Telemetry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double Telemetry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSummary Telemetry::hist_summary(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(name);
  return it == hists_.end() ? HistogramSummary{} : summarize(it->second);
}

size_t Telemetry::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<SpanEvent> Telemetry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Telemetry::set_process_label(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  process_label_ = std::move(label);
}

void Telemetry::record_span(SpanEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ev.tid = tid_of(std::this_thread::get_id());
  events_.push_back(std::move(ev));
}

std::string Telemetry::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pid = json_num(pid_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  if (!process_label_.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
           ",\"tid\":0,\"args\":{\"name\":\"" + json_escape(process_label_) +
           "\"}}";
    first = false;
  }
  for (const auto& ev : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
           json_escape(ev.cat) + "\",\"ph\":\"X\",\"ts\":" +
           json_us(ev.ts_us) + ",\"dur\":" + json_us(ev.dur_us) +
           ",\"pid\":" + pid + ",\"tid\":" + json_num(ev.tid);
    const bool has_args = !ev.args.empty() || ev.trace_id != 0;
    if (has_args) {
      out += ",\"args\":{";
      bool afirst = true;
      if (ev.trace_id != 0) {
        char idbuf[32];
        std::snprintf(idbuf, sizeof(idbuf), "%llu",
                      static_cast<unsigned long long>(ev.trace_id));
        out += std::string("\"trace_id\":") + idbuf;
        afirst = false;
      }
      for (const auto& [k, v] : ev.args) {
        if (!afirst) out += ",";
        afirst = false;
        out += "\"" + json_escape(k) + "\":" + json_num(v);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Telemetry::metrics_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": " + json_num(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": " + json_num(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, samples] : hists_) {
    const HistogramSummary s = summarize(samples);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(k) + "\": {\"count\": " +
           json_num(static_cast<double>(s.count)) +
           ", \"min\": " + json_num(s.min) + ", \"max\": " + json_num(s.max) +
           ", \"mean\": " + json_num(s.mean) + ", \"sum\": " + json_num(s.sum) +
           ", \"p50\": " + json_num(s.p50) + ", \"p90\": " + json_num(s.p90) +
           ", \"p99\": " + json_num(s.p99);
    out += ", \"buckets\": {\"bounds\": [";
    for (size_t b = 0; b < s.bucket_bounds.size(); ++b)
      out += (b ? ", " : "") + json_num(s.bucket_bounds[b]);
    out += "], \"counts\": [";
    for (size_t b = 0; b < s.bucket_counts.size(); ++b)
      out += (b ? ", " : "") +
             json_num(static_cast<double>(s.bucket_counts[b]));
    out += "]}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool Telemetry::write_chrome_trace(const std::string& path) const {
  return write_file(path, chrome_trace_json());
}

bool Telemetry::write_metrics(const std::string& path) const {
  return write_file(path, metrics_json());
}

Span::Span(const char* name, const char* cat) {
  // The profiler's span-path context works even when telemetry is off, so
  // the hook check precedes the enabled check (both are one relaxed/acquire
  // atomic load when inactive).
  if (const SpanHooks* h = g_span_hooks.load(std::memory_order_acquire)) {
    h->enter(name);
    hooked_ = true;
  }
  auto& tel = Telemetry::instance();
  if (!tel.enabled()) return;
  live_ = true;
  ev_.name = name;
  ev_.cat = cat;
  ev_.trace_id = t_trace_id;
  start_us_ = tel.now_us();
}

Span::Span(std::string name, const char* cat) {
  if (const SpanHooks* h = g_span_hooks.load(std::memory_order_acquire)) {
    h->enter(name.c_str());
    hooked_ = true;
  }
  auto& tel = Telemetry::instance();
  if (!tel.enabled()) return;
  live_ = true;
  ev_.name = std::move(name);
  ev_.cat = cat;
  ev_.trace_id = t_trace_id;
  start_us_ = tel.now_us();
}

Span::~Span() {
  if (hooked_) {
    // Hooks are install-once, so a hooked span always finds them again.
    g_span_hooks.load(std::memory_order_acquire)->exit();
  }
  if (!live_) return;
  auto& tel = Telemetry::instance();
  ev_.ts_us = start_us_;
  ev_.dur_us = tel.now_us() - start_us_;
  tel.record_span(std::move(ev_));
}

void Span::arg(const char* key, double value) {
  if (!live_) return;
  ev_.args.emplace_back(key, value);
}

double Span::elapsed_ms() const {
  if (!live_) return 0.0;
  return (Telemetry::instance().now_us() - start_us_) / 1000.0;
}

}  // namespace smart::obs

#pragma once

/// \file obs.h
/// Observability for the sizing pipeline: an RAII span tracer plus a
/// metrics registry (counters, gauges, histograms), with exporters for
/// Chrome `trace_event` JSON (load in chrome://tracing or Perfetto) and a
/// flat metrics JSON.
///
/// The instrumentation stays compiled into release builds, same discipline
/// as util::FaultInjector: while telemetry is disabled (the default) every
/// hook costs one relaxed atomic load — no clock read, no allocation, no
/// lock. Recording is thread-safe throughout; advisor sweeps emit spans
/// and metrics concurrently from std::async workers.
///
/// Naming scheme (see DESIGN.md §7): dot-separated `<stage>.<what>` names,
/// e.g. `gp.solve.newton_iters`, `timing.prune.reduction`,
/// `sizer.respec.mismatch`, `advisor.candidate.ms`.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace smart::obs {

/// One completed span in Chrome trace_event "X" (complete-event) form.
/// Timestamps are microseconds since the process-wide trace epoch.
struct SpanEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  /// Numeric annotations, rendered into the event's "args" object.
  std::vector<std::pair<std::string, double>> args;
};

/// Summary statistics of one histogram, computed at query/export time.
/// Percentiles use the nearest-rank method on the sorted samples.
/// Buckets are equal-width over [min, max] (kHistogramBuckets of them;
/// a single catch-all bucket when min == max): bucket_bounds holds the
/// bucket edges (size = #buckets + 1) and bucket_counts the per-bucket
/// sample counts, so the distribution shape — not just the percentile
/// triple — round-trips through the JSON metrics export.
struct HistogramSummary {
  static constexpr size_t kHistogramBuckets = 12;

  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bucket_bounds;  ///< edges, size = bucket_counts.size()+1
  std::vector<size_t> bucket_counts;
};

/// Summary (incl. buckets) of an ad-hoc sample set, using the same math as
/// the Telemetry histogram exporter — report layers can build histograms
/// that round-trip through the metrics JSON identically.
HistogramSummary summarize_samples(const std::vector<double>& samples);

/// Process-wide telemetry collector. All recording methods are no-ops
/// (one relaxed atomic load) while disabled.
class Telemetry {
 public:
  static Telemetry& instance();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans and metrics; keeps the enabled flag.
  void reset();

  // ---- metrics ----
  void counter_add(std::string_view name, double delta = 1.0);
  void gauge_set(std::string_view name, double value);
  void hist_record(std::string_view name, double sample);

  /// Current value of a counter/gauge (0 when never recorded).
  double counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  /// Summary of a histogram (zeroed when never recorded).
  HistogramSummary hist_summary(std::string_view name) const;

  // ---- spans ----
  /// Number of completed spans in the buffer.
  size_t span_count() const;
  /// Copy of the span buffer, in completion (end-time) order.
  std::vector<SpanEvent> spans() const;

  // ---- exporters ----
  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string chrome_trace_json() const;
  /// Flat metrics JSON: {"counters":{},"gauges":{},"histograms":{}}.
  std::string metrics_json() const;
  /// Write either export to a file; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;
  bool write_metrics(const std::string& path) const;

  // ---- used by Span; not part of the public recording API ----
  void record_span(SpanEvent ev);
  double now_us() const;

 private:
  Telemetry();

  /// Small stable integer id for the calling thread (Chrome "tid").
  uint32_t tid_of(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> hists_;
  std::map<std::thread::id, uint32_t> tids_;
};

/// RAII trace span: records one SpanEvent from construction to destruction.
/// Nesting falls out of scoping — Chrome reconstructs the stack from
/// per-thread timestamp containment. While telemetry is disabled the
/// constructor is one relaxed atomic load and nothing else runs.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "smart");
  /// Dynamic-name overload for cold paths (e.g. per-candidate spans).
  explicit Span(std::string name, const char* cat = "smart");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric annotation to the event (ignored while disabled).
  void arg(const char* key, double value);
  /// Milliseconds since construction; 0 while disabled.
  double elapsed_ms() const;

 private:
  bool live_ = false;
  double start_us_ = 0.0;
  SpanEvent ev_;
};

/// Always-on wall-clock stopwatch, for results that must carry timing even
/// when tracing is off (e.g. per-candidate wall time in an Advice report).
class StopWatch {
 public:
  StopWatch() : t0_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace smart::obs

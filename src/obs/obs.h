#pragma once

/// \file obs.h
/// Observability for the sizing pipeline: an RAII span tracer plus a
/// metrics registry (counters, gauges, histograms), with exporters for
/// Chrome `trace_event` JSON (load in chrome://tracing or Perfetto) and a
/// flat metrics JSON.
///
/// The instrumentation stays compiled into release builds, same discipline
/// as util::FaultInjector: while telemetry is disabled (the default) every
/// hook costs one relaxed atomic load — no clock read, no allocation, no
/// lock. Recording is thread-safe throughout; advisor sweeps emit spans
/// and metrics concurrently from std::async workers.
///
/// Naming scheme (see DESIGN.md §7): dot-separated `<stage>.<what>` names,
/// e.g. `gp.solve.newton_iters`, `timing.prune.reduction`,
/// `sizer.respec.mismatch`, `advisor.candidate.ms`.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace smart::obs {

/// One completed span in Chrome trace_event "X" (complete-event) form.
/// Timestamps are microseconds on the shared trace clock (see
/// Telemetry::now_us): CLOCK_MONOTONIC's zero, not process start, so
/// traces exported by different processes on the same machine merge into
/// one consistent timeline.
struct SpanEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  /// Distributed trace this span belongs to (0 = none). Exported as an
  /// args entry so Perfetto/chrome://tracing can filter one request's
  /// spans across processes. Kept within 48 bits so the id survives the
  /// double-typed JSON number round trip exactly.
  uint64_t trace_id = 0;
  /// Numeric annotations, rendered into the event's "args" object.
  std::vector<std::pair<std::string, double>> args;
};

/// Trace id of the calling thread's current request context (0 = none).
/// Spans constructed while a context is set inherit it automatically.
uint64_t current_trace_id();

/// Observer hooks fired at span construction/destruction, independent of
/// the telemetry enable flag. The SMART-Prof sampling profiler installs
/// these to maintain a per-thread span-path context that its SIGPROF
/// samples are tagged with (see src/prof). Hooks run in normal (non-signal)
/// context on the span's thread; `enter` receives the span name, which is
/// only guaranteed valid for the duration of the call (copy it if kept).
///
/// While no hooks are installed every span pays exactly one extra relaxed
/// atomic load (the same discipline as the telemetry enable flag). Hooks
/// are install-once: they stay for the process lifetime so enter/exit
/// pairing can never be torn by a mid-span uninstall.
struct SpanHooks {
  void (*enter)(const char* name) = nullptr;
  void (*exit)() = nullptr;
};

/// Installs process-lifetime span hooks. Idempotent for the same pointer;
/// a second install with a different pointer is ignored (first wins).
void install_span_hooks(const SpanHooks* hooks);
/// Currently installed hooks (nullptr = none).
const SpanHooks* span_hooks();

/// RAII trace context: sets the calling thread's trace id for the scope,
/// restoring the previous one on destruction (contexts nest). Always
/// active regardless of the telemetry enable flag — it is one thread-local
/// store, and downstream consumers (access logs) need ids even when span
/// collection is off.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id);
  ~ScopedTraceId();

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t prev_;
};

/// Summary statistics of one histogram, computed at query/export time.
/// Percentiles use the nearest-rank method on the sorted samples.
/// Buckets are equal-width over [min, max] (kHistogramBuckets of them;
/// a single catch-all bucket when min == max): bucket_bounds holds the
/// bucket edges (size = #buckets + 1) and bucket_counts the per-bucket
/// sample counts, so the distribution shape — not just the percentile
/// triple — round-trips through the JSON metrics export.
struct HistogramSummary {
  static constexpr size_t kHistogramBuckets = 12;

  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bucket_bounds;  ///< edges, size = bucket_counts.size()+1
  std::vector<size_t> bucket_counts;
};

/// Summary (incl. buckets) of an ad-hoc sample set, using the same math as
/// the Telemetry histogram exporter — report layers can build histograms
/// that round-trip through the metrics JSON identically.
HistogramSummary summarize_samples(const std::vector<double>& samples);

/// Thread-safe bounded-memory histogram: a fixed-capacity ring of the most
/// recent samples plus an all-time count. Unlike Telemetry::hist_record
/// (which accumulates every sample until export — fine for batch runs,
/// unbounded for a daemon), this is safe to leave recording forever, and it
/// works regardless of the telemetry enable flag. summary() snapshots the
/// retained window under the lock without clearing it.
class BoundedHistogram {
 public:
  explicit BoundedHistogram(size_t capacity = 1024);

  void record(double sample);
  /// Summary over the retained window (most recent `capacity` samples).
  HistogramSummary summary() const;
  /// All-time sample count (>= summary().count once the ring wraps).
  uint64_t total_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

/// Process-wide telemetry collector. All recording methods are no-ops
/// (one relaxed atomic load) while disabled.
class Telemetry {
 public:
  static Telemetry& instance();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans and metrics; keeps the enabled flag.
  void reset();

  // ---- metrics ----
  void counter_add(std::string_view name, double delta = 1.0);
  void gauge_set(std::string_view name, double value);
  void hist_record(std::string_view name, double sample);

  /// Current value of a counter/gauge (0 when never recorded).
  double counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  /// Summary of a histogram (zeroed when never recorded).
  HistogramSummary hist_summary(std::string_view name) const;

  // ---- spans ----
  /// Number of completed spans in the buffer.
  size_t span_count() const;
  /// Copy of the span buffer, in completion (end-time) order.
  std::vector<SpanEvent> spans() const;

  /// Human label for this process in the Chrome trace ("smartd",
  /// "smart_cli", ...). Emitted as a process_name metadata event so merged
  /// multi-process traces read sensibly. Empty (the default) emits none.
  void set_process_label(std::string label);

  // ---- exporters ----
  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string chrome_trace_json() const;
  /// Flat metrics JSON: {"counters":{},"gauges":{},"histograms":{}}.
  std::string metrics_json() const;
  /// Write either export to a file; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;
  bool write_metrics(const std::string& path) const;

  // ---- used by Span; not part of the public recording API ----
  void record_span(SpanEvent ev);
  double now_us() const;

 private:
  Telemetry();

  /// Small stable integer id for the calling thread (Chrome "tid").
  uint32_t tid_of(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  uint32_t pid_ = 0;
  std::string process_label_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> hists_;
  std::map<std::thread::id, uint32_t> tids_;
};

/// RAII trace span: records one SpanEvent from construction to destruction.
/// Nesting falls out of scoping — Chrome reconstructs the stack from
/// per-thread timestamp containment. While telemetry is disabled the
/// constructor is one relaxed atomic load and nothing else runs.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "smart");
  /// Dynamic-name overload for cold paths (e.g. per-candidate spans).
  explicit Span(std::string name, const char* cat = "smart");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric annotation to the event (ignored while disabled).
  void arg(const char* key, double value);
  /// Milliseconds since construction; 0 while disabled.
  double elapsed_ms() const;

 private:
  bool live_ = false;
  bool hooked_ = false;
  double start_us_ = 0.0;
  SpanEvent ev_;
};

/// Always-on wall-clock stopwatch, for results that must carry timing even
/// when tracing is off (e.g. per-candidate wall time in an Advice report).
class StopWatch {
 public:
  StopWatch() : t0_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace smart::obs

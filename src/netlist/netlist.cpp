#include "netlist/netlist.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::netlist {

namespace {

/// Devices of a stack adjacent to the output node: for a series chain only
/// the first (output-side) device touches the node, for parallel branches
/// each branch's top devices do. Series children are ordered output-first.
void collect_top_devices(const Stack& s,
                         std::vector<std::pair<NetId, LabelId>>& out) {
  switch (s.op()) {
    case Stack::Op::kLeaf:
      out.emplace_back(s.input(), s.label());
      return;
    case Stack::Op::kSeries:
      collect_top_devices(s.children().front(), out);
      return;
    case Stack::Op::kParallel:
      for (const auto& c : s.children()) collect_top_devices(c, out);
      return;
  }
}

std::vector<NetId> distinct_inputs(const Stack& s) {
  std::vector<std::pair<NetId, LabelId>> leaves;
  s.collect_leaves(leaves);
  std::vector<NetId> nets;
  for (const auto& [n, l] : leaves) nets.push_back(n);
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

}  // namespace

void arc_edge_maps(ArcKind kind, Phase phase, bool domino_footed,
                   std::vector<EdgeMap>& out) {
  out.clear();
  if (phase == Phase::kEvaluate) {
    switch (kind) {
      case ArcKind::kStaticData:
      case ArcKind::kTristateData:
        out = {{true, false}, {false, true}};
        return;
      case ArcKind::kPassData:
        out = {{true, true}, {false, false}};
        return;
      case ArcKind::kPassControl:
      case ArcKind::kTristateEnable:
        // Turn-on event (control rising) enables both output transitions —
        // two paths, four constraints in the paper's terms (§5.3).
        out = {{true, true}, {true, false}};
        return;
      case ArcKind::kDominoEval:
      case ArcKind::kDominoClkEval:
        out = {{true, false}};  // data/clk rise -> dynamic node falls
        return;
      case ArcKind::kDominoPrecharge:
        return;  // not active while evaluating
    }
    return;
  }
  // Precharge phase: the clock falls, dynamic nodes rise, and the reset
  // ripples through static stages. Unfooted (D2) stages additionally wait
  // for their inputs to fall before the precharge can complete.
  switch (kind) {
    case ArcKind::kStaticData:
    case ArcKind::kTristateData:
      out = {{true, false}, {false, true}};
      return;
    case ArcKind::kPassData:
      out = {{true, true}, {false, false}};
      return;
    case ArcKind::kDominoPrecharge:
      out = {{false, true}};  // clk falls -> dynamic node precharges high
      return;
    case ArcKind::kDominoEval:
      if (!domino_footed) out = {{false, true}};  // input reset gates D2
      return;
    case ArcKind::kPassControl:
    case ArcKind::kTristateEnable:
    case ArcKind::kDominoClkEval:
      return;  // selects stable, foot off during precharge
  }
}

NetId Netlist::add_net(const std::string& name, NetKind kind) {
  SMART_CHECK(!finalized_, "cannot modify a finalized netlist");
  nets_.push_back(Net{name, kind});
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::find_net(const std::string& name) const {
  for (size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].name == name) return static_cast<NetId>(i);
  return -1;
}

LabelId Netlist::add_label(const std::string& name, double w_min,
                           double w_max) {
  SMART_CHECK(!finalized_, "cannot modify a finalized netlist");
  SMART_CHECK(w_min > 0.0 && w_max >= w_min, "invalid label bounds: " + name);
  labels_.push_back(SizeLabel{name, w_min, w_max, false, 0.0});
  return static_cast<LabelId>(labels_.size() - 1);
}

void Netlist::fix_label(LabelId id, double width) {
  auto& l = labels_.at(static_cast<size_t>(id));
  SMART_CHECK(width > 0.0, "fixed width must be positive: " + l.name);
  l.fixed = true;
  l.fixed_width = width;
}

CompId Netlist::add_component(
    std::string name, NetId out,
    std::variant<StaticGate, TransGate, Tristate, DominoGate> impl) {
  SMART_CHECK(!finalized_, "cannot modify a finalized netlist");
  SMART_CHECK(out >= 0 && static_cast<size_t>(out) < nets_.size(),
              "component output net out of range: " + name);
  comps_.push_back(Component{std::move(name), out, std::move(impl)});
  return static_cast<CompId>(comps_.size() - 1);
}

CompId Netlist::add_inverter(const std::string& name, NetId in, NetId out,
                             LabelId nmos, LabelId pmos) {
  return add_component(name, out,
                       StaticGate{Stack::leaf(in, nmos), pmos});
}

void Netlist::add_input(NetId net, double arrival_ps, double slope_ps) {
  SMART_CHECK(net >= 0 && static_cast<size_t>(net) < nets_.size(),
              "input port net out of range");
  inputs_.push_back(InputPort{net, arrival_ps, slope_ps});
}

void Netlist::add_output(NetId net, double load_ff) {
  SMART_CHECK(net >= 0 && static_cast<size_t>(net) < nets_.size(),
              "output port net out of range");
  outputs_.push_back(OutputPort{net, load_ff});
}

void Netlist::finalize() {
  SMART_CHECK(!finalized_, "finalize called twice");
  drivers_.assign(nets_.size(), {});
  for (size_t c = 0; c < comps_.size(); ++c)
    drivers_[static_cast<size_t>(comps_[c].out)].push_back(
        static_cast<CompId>(c));
  build_arcs();
  validate();
  finalized_ = true;
}

const std::vector<CompId>& Netlist::drivers_of(NetId net) const {
  SMART_CHECK(finalized_, "netlist not finalized");
  return drivers_.at(static_cast<size_t>(net));
}

const std::vector<Arc>& Netlist::arcs() const {
  SMART_CHECK(finalized_, "netlist not finalized");
  return arcs_;
}

const std::vector<Arc>& Netlist::arcs_into(NetId net) const {
  SMART_CHECK(finalized_, "netlist not finalized");
  return arcs_into_.at(static_cast<size_t>(net));
}

const std::vector<Arc>& Netlist::arcs_from(NetId net) const {
  SMART_CHECK(finalized_, "netlist not finalized");
  return arcs_from_.at(static_cast<size_t>(net));
}

void Netlist::build_arcs() {
  arcs_.clear();
  for (size_t ci = 0; ci < comps_.size(); ++ci) {
    const auto c = static_cast<CompId>(ci);
    const Component& comp = comps_[ci];
    if (const auto* g = comp.as_static()) {
      for (NetId in : distinct_inputs(g->pulldown))
        arcs_.push_back(Arc{in, comp.out, c, ArcKind::kStaticData});
    } else if (const auto* t = comp.as_transgate()) {
      arcs_.push_back(Arc{t->data, comp.out, c, ArcKind::kPassData});
      arcs_.push_back(Arc{t->sel, comp.out, c, ArcKind::kPassControl});
    } else if (const auto* t3 = comp.as_tristate()) {
      arcs_.push_back(Arc{t3->data, comp.out, c, ArcKind::kTristateData});
      arcs_.push_back(Arc{t3->en, comp.out, c, ArcKind::kTristateEnable});
    } else if (const auto* d = comp.as_domino()) {
      for (NetId in : distinct_inputs(d->pulldown))
        arcs_.push_back(Arc{in, comp.out, c, ArcKind::kDominoEval});
      if (d->evaluate_label >= 0)
        arcs_.push_back(Arc{d->clk, comp.out, c, ArcKind::kDominoClkEval});
      arcs_.push_back(Arc{d->clk, comp.out, c, ArcKind::kDominoPrecharge});
    }
  }
  arcs_into_.assign(nets_.size(), {});
  arcs_from_.assign(nets_.size(), {});
  for (const Arc& a : arcs_) {
    arcs_into_[static_cast<size_t>(a.to)].push_back(a);
    arcs_from_[static_cast<size_t>(a.from)].push_back(a);
  }
}

void Netlist::validate() const {
  for (const auto& p : inputs_) {
    SMART_CHECK(drivers_[static_cast<size_t>(p.net)].empty(),
                "input port net is driven internally: " + net(p.net).name);
  }
  for (const auto& p : outputs_) {
    SMART_CHECK(!drivers_[static_cast<size_t>(p.net)].empty(),
                "output port net has no driver: " + net(p.net).name);
  }
  // Shared nets (several drivers) are legal only for pass-gate / tri-state
  // structures (e.g. the common node of a pass-gate mux).
  for (size_t n = 0; n < nets_.size(); ++n) {
    const auto& ds = drivers_[n];
    if (ds.size() <= 1) continue;
    for (CompId c : ds) {
      const Component& comp = comps_[static_cast<size_t>(c)];
      SMART_CHECK(comp.as_transgate() != nullptr ||
                      comp.as_tristate() != nullptr,
                  "net '" + nets_[n].name +
                      "' has multiple drivers that are not pass/tri-state");
    }
  }
  // Clock nets may only feed domino clock pins.
  for (const Arc& a : arcs_) {
    if (nets_[static_cast<size_t>(a.from)].kind == NetKind::kClock) {
      SMART_CHECK(a.kind == ArcKind::kDominoClkEval ||
                      a.kind == ArcKind::kDominoPrecharge,
                  "clock net drives a non-clock pin: " +
                      nets_[static_cast<size_t>(a.from)].name);
    }
    SMART_CHECK(nets_[static_cast<size_t>(a.to)].kind != NetKind::kClock,
                "component drives a clock net");
  }
  // Acyclicity over data arcs (domino keepers are not modeled as arcs).
  std::vector<int> state(nets_.size(), 0);  // 0 new, 1 visiting, 2 done
  std::vector<NetId> stack;
  for (size_t start = 0; start < nets_.size(); ++start) {
    if (state[start] != 0) continue;
    stack.push_back(static_cast<NetId>(start));
    std::vector<size_t> edge_pos(nets_.size(), 0);
    state[start] = 1;
    while (!stack.empty()) {
      const NetId n = stack.back();
      const auto& outs = arcs_from_[static_cast<size_t>(n)];
      if (edge_pos[static_cast<size_t>(n)] >= outs.size()) {
        state[static_cast<size_t>(n)] = 2;
        stack.pop_back();
        continue;
      }
      const Arc& a = outs[edge_pos[static_cast<size_t>(n)]++];
      const auto to = static_cast<size_t>(a.to);
      SMART_CHECK(state[to] != 1, "combinational cycle through net '" +
                                      nets_[to].name + "'");
      if (state[to] == 0) {
        state[to] = 1;
        stack.push_back(a.to);
      }
    }
  }
}

std::vector<WidthRef> Netlist::gate_width_on_net(CompId c, NetId n) const {
  std::vector<WidthRef> refs;
  const Component& comp = comps_.at(static_cast<size_t>(c));
  if (const auto* g = comp.as_static()) {
    std::vector<std::pair<NetId, LabelId>> leaves;
    g->pulldown.collect_leaves(leaves);
    for (const auto& [in, label] : leaves) {
      if (in != n) continue;
      refs.push_back(WidthRef{label, 1.0, false});
      refs.push_back(WidthRef{g->pmos_label, 1.0, true});  // dual PMOS
    }
  } else if (const auto* t = comp.as_transgate()) {
    if (t->sel == n) {
      refs.push_back(WidthRef{t->label, 1.0, false});  // NMOS pass gate
      // Local select inverter input (N + P at the fixed ratio).
      refs.push_back(WidthRef{t->label, TransGate::kLocalInvRatio, false});
      refs.push_back(WidthRef{t->label, TransGate::kLocalInvRatio, true});
    }
    // data is a channel terminal: no gate capacitance.
  } else if (const auto* t3 = comp.as_tristate()) {
    if (t3->data == n) {
      refs.push_back(WidthRef{t3->nmos_label, 1.0, false});
      refs.push_back(WidthRef{t3->pmos_label, 1.0, true});
    }
    if (t3->en == n) {
      refs.push_back(WidthRef{t3->nmos_label, 1.0, false});  // outer NMOS
      refs.push_back(WidthRef{t3->nmos_label, Tristate::kLocalInvRatio, false});
      refs.push_back(WidthRef{t3->pmos_label, Tristate::kLocalInvRatio, true});
    }
  } else if (const auto* d = comp.as_domino()) {
    std::vector<std::pair<NetId, LabelId>> leaves;
    d->pulldown.collect_leaves(leaves);
    for (const auto& [in, label] : leaves)
      if (in == n) refs.push_back(WidthRef{label, 1.0, false});
    if (d->clk == n) {
      refs.push_back(WidthRef{d->precharge_label, 1.0, true});
      if (d->evaluate_label >= 0)
        refs.push_back(WidthRef{d->evaluate_label, 1.0, false});
    }
  }
  return refs;
}

std::vector<WidthRef> Netlist::diffusion_width_on_net(CompId c,
                                                      NetId n) const {
  std::vector<WidthRef> refs;
  const Component& comp = comps_.at(static_cast<size_t>(c));
  if (const auto* g = comp.as_static()) {
    if (comp.out == n) {
      std::vector<std::pair<NetId, LabelId>> tops;
      collect_top_devices(g->pulldown, tops);
      for (const auto& [in, label] : tops)
        refs.push_back(WidthRef{label, 1.0, false});
      std::vector<std::pair<NetId, LabelId>> dual_tops;
      collect_top_devices(g->pulldown.dual(), dual_tops);
      for (size_t k = 0; k < dual_tops.size(); ++k)
        refs.push_back(WidthRef{g->pmos_label, 1.0, true});
    }
  } else if (const auto* t = comp.as_transgate()) {
    if (comp.out == n || t->data == n) {
      refs.push_back(WidthRef{t->label, 1.0, false});
      refs.push_back(WidthRef{t->label, 1.0, true});
    }
  } else if (const auto* t3 = comp.as_tristate()) {
    if (comp.out == n) {
      refs.push_back(WidthRef{t3->nmos_label, 1.0, false});
      refs.push_back(WidthRef{t3->pmos_label, 1.0, true});
    }
  } else if (const auto* d = comp.as_domino()) {
    if (comp.out == n) {
      refs.push_back(
          WidthRef{d->precharge_label, 1.0 + d->keeper_ratio, true});
      std::vector<std::pair<NetId, LabelId>> tops;
      collect_top_devices(d->pulldown, tops);
      for (const auto& [in, label] : tops)
        refs.push_back(WidthRef{label, 1.0, false});
    }
  }
  return refs;
}

std::vector<WidthRef> Netlist::all_device_widths(CompId c) const {
  std::vector<WidthRef> refs;
  const Component& comp = comps_.at(static_cast<size_t>(c));
  if (const auto* g = comp.as_static()) {
    std::vector<std::pair<NetId, LabelId>> leaves;
    g->pulldown.collect_leaves(leaves);
    for (const auto& [in, label] : leaves) {
      refs.push_back(WidthRef{label, 1.0, false});
      refs.push_back(WidthRef{g->pmos_label, 1.0, true});
    }
  } else if (const auto* t = comp.as_transgate()) {
    refs.push_back(WidthRef{t->label, 1.0, false});
    refs.push_back(WidthRef{t->label, 1.0, true});
    refs.push_back(WidthRef{t->label, TransGate::kLocalInvRatio, false});
    refs.push_back(WidthRef{t->label, TransGate::kLocalInvRatio, true});
  } else if (const auto* t3 = comp.as_tristate()) {
    refs.push_back(WidthRef{t3->nmos_label, 1.0, false});
    refs.push_back(WidthRef{t3->nmos_label, 1.0, false});
    refs.push_back(WidthRef{t3->pmos_label, 1.0, true});
    refs.push_back(WidthRef{t3->pmos_label, 1.0, true});
    refs.push_back(WidthRef{t3->nmos_label, Tristate::kLocalInvRatio, false});
    refs.push_back(WidthRef{t3->pmos_label, Tristate::kLocalInvRatio, true});
  } else if (const auto* d = comp.as_domino()) {
    std::vector<std::pair<NetId, LabelId>> leaves;
    d->pulldown.collect_leaves(leaves);
    for (const auto& [in, label] : leaves)
      refs.push_back(WidthRef{label, 1.0, false});
    refs.push_back(WidthRef{d->precharge_label, 1.0, true});
    refs.push_back(WidthRef{d->precharge_label, d->keeper_ratio, true});
    if (d->evaluate_label >= 0)
      refs.push_back(WidthRef{d->evaluate_label, 1.0, false});
  }
  return refs;
}

std::vector<NetId> Netlist::touched_nets(CompId c) const {
  const Component& comp = comps_.at(static_cast<size_t>(c));
  std::vector<NetId> nets;
  nets.push_back(comp.out);
  if (const auto* g = comp.as_static()) {
    for (NetId n : distinct_inputs(g->pulldown)) nets.push_back(n);
  } else if (const auto* t = comp.as_transgate()) {
    nets.push_back(t->data);
    nets.push_back(t->sel);
  } else if (const auto* t3 = comp.as_tristate()) {
    nets.push_back(t3->data);
    nets.push_back(t3->en);
  } else if (const auto* d = comp.as_domino()) {
    for (NetId n : distinct_inputs(d->pulldown)) nets.push_back(n);
    nets.push_back(d->clk);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

double Netlist::label_width(LabelId id, const Sizing& sizing) const {
  const auto& l = labels_.at(static_cast<size_t>(id));
  if (l.fixed) return l.fixed_width;
  return sizing.at(static_cast<size_t>(id));
}

double Netlist::resolve_width(const std::vector<WidthRef>& refs,
                              const Sizing& sizing) const {
  double w = 0.0;
  for (const auto& r : refs) w += r.scale * label_width(r.label, sizing);
  return w;
}

DeviceStats Netlist::device_stats(const Sizing& sizing) const {
  DeviceStats stats;
  for (size_t c = 0; c < comps_.size(); ++c) {
    const auto refs = all_device_widths(static_cast<CompId>(c));
    stats.device_count += static_cast<int>(refs.size());
    stats.total_width += resolve_width(refs, sizing);
  }
  for (size_t n = 0; n < nets_.size(); ++n) {
    if (nets_[n].kind != NetKind::kClock) continue;
    for (size_t c = 0; c < comps_.size(); ++c) {
      const auto refs =
          gate_width_on_net(static_cast<CompId>(c), static_cast<NetId>(n));
      stats.clock_gate_width += resolve_width(refs, sizing);
    }
  }
  return stats;
}

Sizing Netlist::min_sizing() const {
  Sizing s(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) s[i] = labels_[i].w_min;
  return s;
}

}  // namespace smart::netlist

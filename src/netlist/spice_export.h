#pragma once

/// \file spice_export.h
/// SPICE subcircuit export of a sized macro — the hand-off format between
/// a macro generator and the rest of a custom design flow (schematic
/// import, extraction, simulation). Devices come from the flattener; the
/// technology supplies the drawn channel length.

#include <string>

#include "netlist/flatten.h"

namespace smart::netlist {

struct SpiceOptions {
  double length_um = 0.18;      ///< drawn channel length
  std::string nmos_model = "nch";
  std::string pmos_model = "pch";
  /// Include a comment header with device/width statistics.
  bool header = true;
};

/// Renders a sized macro as a .subckt (ports = macro inputs, outputs and
/// clock, plus vdd!/gnd!).
std::string to_spice(const Netlist& nl, const Sizing& sizing,
                     const SpiceOptions& options = {});

}  // namespace smart::netlist

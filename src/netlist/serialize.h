#pragma once

/// \file serialize.h
/// Text serialization of macro schematics (the ".snl" format). The paper's
/// design database persists designer-authored topologies between projects;
/// this format is how a SMART database lives on disk and how schematics
/// are reviewed in code review. Round-trips everything: nets (with kinds),
/// size labels (bounds / fixed widths), all four component kinds with full
/// stack expressions, and ports.
///
/// Example:
///
///   netlist mux2
///   net a signal
///   net clk clock
///   label N1 0.3 200
///   label P1 fixed 3.0
///   static g1 out (s (l a N1) (p (l b N1) (l c N1))) P1
///   trans t1 out2 a sel N1
///   domino d1 dyn (l a N1) P1 N2 clk 0.1
///   input a 0 30
///   output out 15
///   end

#include <string>

#include "netlist/netlist.h"

namespace smart::netlist {

/// Serializes a netlist (finalized or not) to the .snl text form.
std::string to_text(const Netlist& nl);

/// Parses the .snl text form; the returned netlist is finalized.
/// Throws util::Error with a line number on malformed input.
Netlist from_text(const std::string& text);

}  // namespace smart::netlist

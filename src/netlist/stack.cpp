#include "netlist/stack.h"

#include <algorithm>

namespace smart::netlist {

Stack Stack::combine(Op op, std::vector<Stack> children) {
  SMART_CHECK(!children.empty(), "series/parallel needs children");
  if (children.size() == 1) return std::move(children.front());
  Stack s;
  s.op_ = op;
  // Flatten nested same-op nodes so depth reflects devices, not tree shape.
  for (auto& c : children) {
    if (c.op_ == op) {
      for (auto& gc : c.children_) s.children_.push_back(std::move(gc));
    } else {
      s.children_.push_back(std::move(c));
    }
  }
  return s;
}

int Stack::device_count() const {
  if (is_leaf()) return 1;
  int n = 0;
  for (const auto& c : children_) n += c.device_count();
  return n;
}

int Stack::max_depth() const {
  switch (op_) {
    case Op::kLeaf:
      return 1;
    case Op::kSeries: {
      int d = 0;
      for (const auto& c : children_) d += c.max_depth();
      return d;
    }
    case Op::kParallel: {
      int d = 0;
      for (const auto& c : children_) d = std::max(d, c.max_depth());
      return d;
    }
  }
  return 0;
}

void Stack::collect_leaves(
    std::vector<std::pair<NetId, LabelId>>& out) const {
  if (is_leaf()) {
    out.emplace_back(input_, label_);
    return;
  }
  for (const auto& c : children_) c.collect_leaves(out);
}

bool Stack::worst_path_through(
    NetId through_input, std::vector<std::pair<NetId, LabelId>>& path) const {
  switch (op_) {
    case Op::kLeaf:
      if (input_ == through_input) {
        path.emplace_back(input_, label_);
        return true;
      }
      return false;
    case Op::kSeries: {
      // The target must be found in exactly one child; the others contribute
      // their own worst (deepest) sub-path since all are in series. The
      // containment pre-test lets every segment append straight into `path`
      // (in child order) without speculative sub-path vectors.
      size_t found_at = children_.size();
      for (size_t i = 0; i < children_.size(); ++i) {
        if (children_[i].contains_input(through_input)) {
          found_at = i;
          break;
        }
      }
      if (found_at == children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i == found_at) {
          children_[i].worst_path_through(through_input, path);
        } else {
          children_[i].append_worst_path(path);
        }
      }
      return true;
    }
    case Op::kParallel: {
      for (const auto& c : children_) {
        if (c.worst_path_through(through_input, path)) return true;
      }
      return false;
    }
  }
  return false;
}

void Stack::append_worst_path(
    std::vector<std::pair<NetId, LabelId>>& out) const {
  switch (op_) {
    case Op::kLeaf:
      out.emplace_back(input_, label_);
      return;
    case Op::kSeries:
      for (const auto& c : children_) c.append_worst_path(out);
      return;
    case Op::kParallel: {
      const Stack* deepest = &children_.front();
      for (const auto& c : children_)
        if (c.max_depth() > deepest->max_depth()) deepest = &c;
      deepest->append_worst_path(out);
      return;
    }
  }
}

bool Stack::contains_input(NetId through_input) const {
  if (op_ == Op::kLeaf) return input_ == through_input;
  for (const auto& c : children_)
    if (c.contains_input(through_input)) return true;
  return false;
}

int Stack::dual_max_depth() const {
  switch (op_) {
    case Op::kLeaf:
      return 1;
    case Op::kSeries: {
      // Dual is parallel: depth is the deepest dual child.
      int d = 0;
      for (const auto& c : children_) d = std::max(d, c.dual_max_depth());
      return d;
    }
    case Op::kParallel: {
      // Dual is series: depths add.
      int d = 0;
      for (const auto& c : children_) d += c.dual_max_depth();
      return d;
    }
  }
  return 0;
}

int Stack::dual_worst_len_through(NetId through_input) const {
  switch (op_) {
    case Op::kLeaf:
      return input_ == through_input ? 1 : -1;
    case Op::kSeries: {
      // Dual is parallel: worst_path_through takes the first child that
      // contains the input (dual() preserves child order).
      for (const auto& c : children_) {
        const int r = c.dual_worst_len_through(through_input);
        if (r >= 0) return r;
      }
      return -1;
    }
    case Op::kParallel: {
      // Dual is series: the first child containing the input contributes
      // its through-path, every other child its own worst (deepest) path.
      int through = -1;
      int rest = 0;
      for (const auto& c : children_) {
        if (through < 0) {
          const int r = c.dual_worst_len_through(through_input);
          if (r >= 0) {
            through = r;
            continue;
          }
        }
        rest += c.dual_max_depth();
      }
      return through < 0 ? -1 : through + rest;
    }
  }
  return -1;
}

Stack Stack::dual() const {
  if (is_leaf()) return *this;
  std::vector<Stack> duals;
  duals.reserve(children_.size());
  for (const auto& c : children_) duals.push_back(c.dual());
  return op_ == Op::kSeries ? parallel(std::move(duals))
                            : series(std::move(duals));
}

}  // namespace smart::netlist

#pragma once

/// \file stack.h
/// Series/parallel transistor network trees ("stacks"). A pull-down network
/// of a static or domino gate is described as a tree whose leaves are
/// (input net, size label) devices. The pull-up of a static CMOS gate is the
/// structural dual of its pull-down tree.

#include <vector>

#include "util/check.h"

namespace smart::netlist {

/// Index of a net inside a Netlist.
using NetId = int;
/// Index of a transistor size label (shared width variable) in a Netlist.
using LabelId = int;

/// Series/parallel network of transistors; leaves carry an input net and the
/// size label of the device gated by that net.
class Stack {
 public:
  enum class Op { kLeaf, kSeries, kParallel };

  static Stack leaf(NetId input, LabelId label) {
    SMART_CHECK(input >= 0, "stack leaf needs a valid input net");
    SMART_CHECK(label >= 0, "stack leaf needs a valid size label");
    Stack s;
    s.op_ = Op::kLeaf;
    s.input_ = input;
    s.label_ = label;
    return s;
  }

  static Stack series(std::vector<Stack> children) {
    return combine(Op::kSeries, std::move(children));
  }

  static Stack parallel(std::vector<Stack> children) {
    return combine(Op::kParallel, std::move(children));
  }

  Op op() const { return op_; }
  bool is_leaf() const { return op_ == Op::kLeaf; }
  NetId input() const {
    SMART_CHECK(is_leaf(), "input() on non-leaf stack node");
    return input_;
  }
  LabelId label() const {
    SMART_CHECK(is_leaf(), "label() on non-leaf stack node");
    return label_;
  }
  const std::vector<Stack>& children() const { return children_; }

  /// Number of transistors in the network.
  int device_count() const;

  /// Longest series chain of devices from top to bottom (stack depth) —
  /// determines the worst-case pull resistance multiplier.
  int max_depth() const;

  /// Collects (input net, label) of every leaf in DFS order.
  void collect_leaves(std::vector<std::pair<NetId, LabelId>>& out) const;

  /// Leaves on the worst (deepest-series) conducting path that includes the
  /// leaf for `through_input`; used for per-pin Elmore resistance. Returns
  /// false if `through_input` does not appear in this network.
  bool worst_path_through(NetId through_input,
                          std::vector<std::pair<NetId, LabelId>>& path) const;

  /// Returns the structural dual (series <-> parallel) with the same leaves.
  Stack dual() const;

  /// True when some leaf of this network is gated by `through_input`.
  bool contains_input(NetId through_input) const;

  /// max_depth() of dual(), computed on this tree without building the dual.
  int dual_max_depth() const;

  /// Length of the path dual().worst_path_through(through_input) would
  /// return, without materializing the dual tree or the path; -1 when
  /// `through_input` does not appear in this network. The pull-up RC model
  /// only needs the device count of that path (every pull-up device shares
  /// one resistance and size label), and the dual() deep copy per arc
  /// evaluation dominated constraint-generation profiles.
  int dual_worst_len_through(NetId through_input) const;

  /// Leaves on the deepest series path (worst-case resistance path).
  std::vector<std::pair<NetId, LabelId>> worst_path() const {
    std::vector<std::pair<NetId, LabelId>> out;
    append_worst_path(out);
    return out;
  }

 private:
  static Stack combine(Op op, std::vector<Stack> children);

  /// Appends this subtree's deepest series path (worst resistance) to out.
  void append_worst_path(std::vector<std::pair<NetId, LabelId>>& out) const;

  Op op_ = Op::kLeaf;
  NetId input_ = -1;
  LabelId label_ = -1;
  std::vector<Stack> children_;
};

}  // namespace smart::netlist

#pragma once

/// \file netlist.h
/// Transistor-level macro schematic as stored in the SMART design database
/// (paper §4): components built from series/parallel device networks whose
/// widths are *size labels* — shared optimization variables expressing the
/// layout regularity a designer plans into the schematic. Supports the
/// circuit families the paper's macros use: static CMOS, pass-gate,
/// tri-state, and domino (footed D1 / unfooted D2).

#include <string>
#include <variant>
#include <vector>

#include "netlist/stack.h"

namespace smart::netlist {

using CompId = int;

enum class NetKind { kSignal, kClock };

struct Net {
  std::string name;
  NetKind kind = NetKind::kSignal;
  /// Extra route capacitance on this net beyond the default local-wire
  /// estimate (fF) — how an instantiation site models a long interconnect
  /// (paper Fig 2(d): tri-states win "when the input signals travel over
  /// long inter-connects").
  double extra_wire_ff = 0.0;
};

/// A shared transistor width variable. Several devices labeled identically
/// are forced to the same width (regularity, paper §4/§5.2). A designer can
/// lock a label to a fixed width (paper §2: manual control for noise).
struct SizeLabel {
  std::string name;
  double w_min = 0.3;
  double w_max = 200.0;
  bool fixed = false;
  double fixed_width = 0.0;
};

/// Width assignment, indexed by LabelId (um).
using Sizing = std::vector<double>;

// ---------- component kinds ----------

/// Static CMOS gate: NMOS pull-down network (leaf labels are per-leaf NMOS
/// labels), pull-up is the structural dual with all PMOS sharing pmos_label.
struct StaticGate {
  Stack pulldown;
  LabelId pmos_label = -1;
};

/// CMOS transmission gate with a local select inverter (paper Fig 2(a)-(c)):
/// NMOS and PMOS pass devices share one label ("both devices of the same
/// size"); the select inverter is a fixed relation of that label.
struct TransGate {
  NetId data = -1;
  NetId sel = -1;
  LabelId label = -1;
  /// Width of the internal select inverter relative to the pass label.
  static constexpr double kLocalInvRatio = 0.5;
};

/// Tri-state inverter (paper Fig 2(d)): data drives the inner pair, enable
/// gates the outer pair; the enable complement comes from an internal
/// inverter at a fixed relation of the device labels.
struct Tristate {
  NetId data = -1;
  NetId en = -1;
  LabelId nmos_label = -1;  ///< N1: both NMOS devices
  LabelId pmos_label = -1;  ///< P1: both PMOS devices
  static constexpr double kLocalInvRatio = 0.5;
};

/// Domino dynamic node (paper Fig 2(e)-(f)): precharge PMOS (P1), NMOS
/// data/select network, optional clocked evaluate foot (N2; absent => D2
/// unfooted stage), plus a weak keeper. The high-skew output inverter is a
/// separate StaticGate reading the dynamic node.
struct DominoGate {
  Stack pulldown;
  LabelId precharge_label = -1;
  LabelId evaluate_label = -1;  ///< -1 => unfooted (D2)
  NetId clk = -1;
  double keeper_ratio = 0.1;  ///< keeper PMOS width / precharge width
};

/// One schematic element driving a single output net.
struct Component {
  std::string name;
  NetId out = -1;
  std::variant<StaticGate, TransGate, Tristate, DominoGate> impl;

  const StaticGate* as_static() const { return std::get_if<StaticGate>(&impl); }
  const TransGate* as_transgate() const { return std::get_if<TransGate>(&impl); }
  const Tristate* as_tristate() const { return std::get_if<Tristate>(&impl); }
  const DominoGate* as_domino() const { return std::get_if<DominoGate>(&impl); }
};

// ---------- ports ----------

struct InputPort {
  NetId net = -1;
  double arrival_ps = 0.0;  ///< signal arrival at the macro boundary
  double slope_ps = -1.0;   ///< input slope; < 0 => technology default
};

struct OutputPort {
  NetId net = -1;
  double load_ff = 10.0;  ///< external load the macro must drive
};

// ---------- timing arcs ----------

/// Classification of a pin-to-output arc; drives how many and which timing
/// constraints are generated (paper §5.3).
enum class ArcKind {
  kStaticData,      ///< static gate input -> inverted output
  kPassData,        ///< pass gate data -> output (non-inverting)
  kPassControl,     ///< pass gate select -> output (4 constraints)
  kTristateData,    ///< tri-state data -> inverted output
  kTristateEnable,  ///< tri-state enable -> output
  kDominoEval,      ///< domino data -> dynamic node (evaluate, falls)
  kDominoClkEval,   ///< clock -> dynamic node via evaluate foot
  kDominoPrecharge  ///< clock -> dynamic node (precharge, rises)
};

struct Arc {
  NetId from = -1;
  NetId to = -1;
  CompId comp = -1;
  ArcKind kind = ArcKind::kStaticData;
};

/// Operating phase of the circuit: normal evaluation vs domino precharge.
enum class Phase { kEvaluate, kPrecharge };

/// One active transition pair on an arc: input edge -> output edge.
struct EdgeMap {
  bool in_rise;
  bool out_rise;
};

/// Active transitions for an arc kind in a phase (paper §5.3): static arcs
/// invert, pass data arcs do not, control turn-on enables both output
/// transitions (two paths, four constraints), domino evaluates fall and, in
/// the precharge phase, unfooted (D2) stages wait for their inputs to reset.
void arc_edge_maps(ArcKind kind, Phase phase, bool domino_footed,
                   std::vector<EdgeMap>& out);

/// Scaled reference to a size label: width = scale * sizing[label].
struct WidthRef {
  LabelId label = -1;
  double scale = 1.0;
  bool is_pmos = false;
};

// ---------- the netlist ----------

/// Aggregate device statistics at a given sizing.
struct DeviceStats {
  int device_count = 0;
  double total_width = 0.0;       ///< sum of all device widths (um)
  double clock_gate_width = 0.0;  ///< width gated by clock nets (um)
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- nets ---
  NetId add_net(const std::string& name, NetKind kind = NetKind::kSignal);
  size_t net_count() const { return nets_.size(); }
  const Net& net(NetId id) const { return nets_.at(static_cast<size_t>(id)); }
  /// Finds a net by name; -1 if absent.
  NetId find_net(const std::string& name) const;
  /// Renames a net (e.g. to give a macro's output port a stable name).
  void rename_net(NetId id, const std::string& name) {
    nets_.at(static_cast<size_t>(id)).name = name;
  }
  /// Adds route capacitance to a net (long interconnect at this site).
  void set_extra_wire(NetId id, double extra_ff) {
    nets_.at(static_cast<size_t>(id)).extra_wire_ff = extra_ff;
  }

  // --- size labels ---
  LabelId add_label(const std::string& name, double w_min = 0.3,
                    double w_max = 200.0);
  void fix_label(LabelId id, double width);
  size_t label_count() const { return labels_.size(); }
  const SizeLabel& label(LabelId id) const {
    return labels_.at(static_cast<size_t>(id));
  }
  const std::vector<SizeLabel>& labels() const { return labels_; }

  // --- components ---
  CompId add_component(std::string name, NetId out,
                       std::variant<StaticGate, TransGate, Tristate,
                                    DominoGate> impl);
  /// Convenience: inverter (single-leaf static gate).
  CompId add_inverter(const std::string& name, NetId in, NetId out,
                      LabelId nmos, LabelId pmos);
  size_t comp_count() const { return comps_.size(); }
  const Component& comp(CompId id) const {
    return comps_.at(static_cast<size_t>(id));
  }
  const std::vector<Component>& comps() const { return comps_; }

  // --- ports ---
  void add_input(NetId net, double arrival_ps = 0.0, double slope_ps = -1.0);
  void add_output(NetId net, double load_ff = 10.0);
  const std::vector<InputPort>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }
  std::vector<InputPort>& mutable_inputs() { return inputs_; }
  std::vector<OutputPort>& mutable_outputs() { return outputs_; }

  // --- structure queries (valid after finalize()) ---
  /// Checks structural rules, builds net indexes and the arc list.
  /// Must be called after construction and before the queries below.
  void finalize();
  bool finalized() const { return finalized_; }
  const std::vector<CompId>& drivers_of(NetId net) const;
  const std::vector<Arc>& arcs() const;
  /// Arcs grouped by destination net.
  const std::vector<Arc>& arcs_into(NetId net) const;
  /// Arcs grouped by source net.
  const std::vector<Arc>& arcs_from(NetId net) const;

  // --- accounting ---
  /// Gate-capacitance width contributions of component `c` on net `n`
  /// (which devices' gates hang on n, as label references).
  std::vector<WidthRef> gate_width_on_net(CompId c, NetId n) const;
  /// Diffusion (channel) width contributions of component `c` on net `n`.
  std::vector<WidthRef> diffusion_width_on_net(CompId c, NetId n) const;
  /// All devices of component `c` as width references (for area/power).
  std::vector<WidthRef> all_device_widths(CompId c) const;

  /// The distinct nets a component touches (inputs, output, clock) — the
  /// only nets on which its gate/diffusion accounting can be nonzero.
  std::vector<NetId> touched_nets(CompId c) const;

  DeviceStats device_stats(const Sizing& sizing) const;

  /// Resolves a width reference list to a numeric width (um).
  double resolve_width(const std::vector<WidthRef>& refs,
                       const Sizing& sizing) const;
  /// Width of one label under a sizing, honoring fixed labels.
  double label_width(LabelId id, const Sizing& sizing) const;

  /// A sizing with every label at its minimum width.
  Sizing min_sizing() const;

 private:
  void build_arcs();
  void validate() const;

  std::string name_;
  std::vector<Net> nets_;
  std::vector<SizeLabel> labels_;
  std::vector<Component> comps_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;

  bool finalized_ = false;
  std::vector<std::vector<CompId>> drivers_;   // by net
  std::vector<Arc> arcs_;
  std::vector<std::vector<Arc>> arcs_into_;    // by net
  std::vector<std::vector<Arc>> arcs_from_;    // by net
};

}  // namespace smart::netlist

#include "netlist/serialize.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::netlist {

namespace {

using util::strfmt;

// ---------- writer ----------

void write_stack(const Netlist& nl, const Stack& s, std::ostream& out) {
  switch (s.op()) {
    case Stack::Op::kLeaf:
      out << "(l " << nl.net(s.input()).name << " "
          << nl.label(s.label()).name << ")";
      return;
    case Stack::Op::kSeries:
    case Stack::Op::kParallel:
      out << (s.op() == Stack::Op::kSeries ? "(s" : "(p");
      for (const auto& c : s.children()) {
        out << " ";
        write_stack(nl, c, out);
      }
      out << ")";
      return;
  }
}

// ---------- tokenizer / parser ----------

struct Parser {
  std::istringstream in;
  int line_no = 0;
  std::string line;

  explicit Parser(const std::string& text) : in(text) {}

  bool next_line() {
    while (std::getline(in, line)) {
      ++line_no;
      // strip comments and whitespace-only lines
      const auto hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    SMART_FAIL(strfmt("snl line %d: %s", line_no, msg.c_str()));
  }

  std::vector<std::string> tokens() const {
    std::vector<std::string> out;
    std::string tok;
    for (char ch : line) {
      if (ch == '(' || ch == ')') {
        if (!tok.empty()) {
          out.push_back(tok);
          tok.clear();
        }
        out.push_back(std::string(1, ch));
      } else if (ch == ' ' || ch == '\t' || ch == '\r') {
        if (!tok.empty()) {
          out.push_back(tok);
          tok.clear();
        }
      } else {
        tok += ch;
      }
    }
    if (!tok.empty()) out.push_back(tok);
    return out;
  }
};

/// Recursive-descent stack parser over the token stream.
struct StackParser {
  const std::vector<std::string>& toks;
  size_t pos;
  Parser& parser;
  const std::map<std::string, NetId>& nets;
  const std::map<std::string, LabelId>& labels;

  Stack parse() {
    expect("(");
    const std::string op = take();
    if (op == "l") {
      const std::string net = take();
      const std::string label = take();
      expect(")");
      auto nit = nets.find(net);
      if (nit == nets.end()) parser.fail("unknown net '" + net + "'");
      auto lit = labels.find(label);
      if (lit == labels.end()) parser.fail("unknown label '" + label + "'");
      return Stack::leaf(nit->second, lit->second);
    }
    if (op != "s" && op != "p") parser.fail("expected l/s/p, got '" + op + "'");
    std::vector<Stack> children;
    while (peek() == "(") children.push_back(parse());
    expect(")");
    if (children.empty()) parser.fail("empty series/parallel group");
    return op == "s" ? Stack::series(std::move(children))
                     : Stack::parallel(std::move(children));
  }

  const std::string& peek() {
    if (pos >= toks.size()) parser.fail("unexpected end of line in stack");
    return toks[pos];
  }
  std::string take() {
    const std::string t = peek();
    ++pos;
    return t;
  }
  void expect(const std::string& want) {
    const std::string got = take();
    if (got != want)
      parser.fail("expected '" + want + "', got '" + got + "'");
  }
};

}  // namespace

std::string to_text(const Netlist& nl) {
  std::ostringstream out;
  out << "netlist " << nl.name() << "\n";
  for (size_t n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(static_cast<NetId>(n));
    out << "net " << net.name << " "
        << (net.kind == NetKind::kClock ? "clock" : "signal");
    if (net.extra_wire_ff > 0.0) out << strfmt(" wire %g", net.extra_wire_ff);
    out << "\n";
  }
  for (size_t l = 0; l < nl.label_count(); ++l) {
    const auto& label = nl.label(static_cast<LabelId>(l));
    if (label.fixed) {
      out << strfmt("label %s fixed %g\n", label.name.c_str(),
                    label.fixed_width);
    } else {
      out << strfmt("label %s %g %g\n", label.name.c_str(), label.w_min,
                    label.w_max);
    }
  }
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto& comp = nl.comp(static_cast<CompId>(c));
    if (const auto* g = comp.as_static()) {
      out << "static " << comp.name << " " << nl.net(comp.out).name << " ";
      write_stack(nl, g->pulldown, out);
      out << " " << nl.label(g->pmos_label).name << "\n";
    } else if (const auto* t = comp.as_transgate()) {
      out << "trans " << comp.name << " " << nl.net(comp.out).name << " "
          << nl.net(t->data).name << " " << nl.net(t->sel).name << " "
          << nl.label(t->label).name << "\n";
    } else if (const auto* t3 = comp.as_tristate()) {
      out << "tristate " << comp.name << " " << nl.net(comp.out).name << " "
          << nl.net(t3->data).name << " " << nl.net(t3->en).name << " "
          << nl.label(t3->nmos_label).name << " "
          << nl.label(t3->pmos_label).name << "\n";
    } else if (const auto* d = comp.as_domino()) {
      out << "domino " << comp.name << " " << nl.net(comp.out).name << " ";
      write_stack(nl, d->pulldown, out);
      out << " " << nl.label(d->precharge_label).name << " "
          << (d->evaluate_label >= 0 ? nl.label(d->evaluate_label).name
                                     : std::string("-"))
          << " " << nl.net(d->clk).name << " " << strfmt("%g", d->keeper_ratio)
          << "\n";
    }
  }
  for (const auto& p : nl.inputs()) {
    out << strfmt("input %s %g %g\n", nl.net(p.net).name.c_str(),
                  p.arrival_ps, p.slope_ps);
  }
  for (const auto& p : nl.outputs()) {
    out << strfmt("output %s %g\n", nl.net(p.net).name.c_str(), p.load_ff);
  }
  out << "end\n";
  return out.str();
}

Netlist from_text(const std::string& text) {
  Parser parser(text);
  SMART_CHECK(parser.next_line(), "empty snl input");
  auto head = parser.tokens();
  if (head.size() != 2 || head[0] != "netlist")
    parser.fail("expected 'netlist <name>'");

  Netlist nl(head[1]);
  std::map<std::string, NetId> nets;
  std::map<std::string, LabelId> labels;
  bool ended = false;

  auto net_of = [&](const std::string& name) {
    auto it = nets.find(name);
    if (it == nets.end()) parser.fail("unknown net '" + name + "'");
    return it->second;
  };
  auto label_of = [&](const std::string& name) {
    auto it = labels.find(name);
    if (it == labels.end()) parser.fail("unknown label '" + name + "'");
    return it->second;
  };

  while (parser.next_line()) {
    const auto toks = parser.tokens();
    const std::string& kind = toks[0];
    if (kind == "end") {
      ended = true;
      break;
    }
    if (kind == "net") {
      if (toks.size() != 3 && !(toks.size() == 5 && toks[3] == "wire"))
        parser.fail("net <name> <signal|clock> [wire <fF>]");
      if (nets.count(toks[1])) parser.fail("duplicate net '" + toks[1] + "'");
      const NetId id = nl.add_net(
          toks[1], toks[2] == "clock" ? NetKind::kClock : NetKind::kSignal);
      if (toks.size() == 5) nl.set_extra_wire(id, std::atof(toks[4].c_str()));
      nets[toks[1]] = id;
    } else if (kind == "label") {
      if (toks.size() != 4) parser.fail("label <name> <min max | fixed w>");
      if (labels.count(toks[1]))
        parser.fail("duplicate label '" + toks[1] + "'");
      if (toks[2] == "fixed") {
        const LabelId id = nl.add_label(toks[1]);
        nl.fix_label(id, std::atof(toks[3].c_str()));
        labels[toks[1]] = id;
      } else {
        labels[toks[1]] = nl.add_label(toks[1], std::atof(toks[2].c_str()),
                                       std::atof(toks[3].c_str()));
      }
    } else if (kind == "static") {
      if (toks.size() < 5) parser.fail("static <name> <out> <stack> <pmos>");
      StackParser sp{toks, 3, parser, nets, labels};
      Stack pd = sp.parse();
      if (sp.pos + 1 != toks.size()) parser.fail("trailing tokens");
      nl.add_component(toks[1], net_of(toks[2]),
                       StaticGate{std::move(pd), label_of(toks[sp.pos])});
    } else if (kind == "trans") {
      if (toks.size() != 6)
        parser.fail("trans <name> <out> <data> <sel> <label>");
      nl.add_component(toks[1], net_of(toks[2]),
                       TransGate{net_of(toks[3]), net_of(toks[4]),
                                 label_of(toks[5])});
    } else if (kind == "tristate") {
      if (toks.size() != 7)
        parser.fail("tristate <name> <out> <data> <en> <nmos> <pmos>");
      nl.add_component(toks[1], net_of(toks[2]),
                       Tristate{net_of(toks[3]), net_of(toks[4]),
                                label_of(toks[5]), label_of(toks[6])});
    } else if (kind == "domino") {
      if (toks.size() < 8)
        parser.fail(
            "domino <name> <out> <stack> <pre> <foot|-> <clk> <keeper>");
      StackParser sp{toks, 3, parser, nets, labels};
      Stack pd = sp.parse();
      if (sp.pos + 4 != toks.size()) parser.fail("trailing tokens");
      const LabelId pre = label_of(toks[sp.pos]);
      const LabelId foot =
          toks[sp.pos + 1] == "-" ? -1 : label_of(toks[sp.pos + 1]);
      const NetId clk = net_of(toks[sp.pos + 2]);
      const double keeper = std::atof(toks[sp.pos + 3].c_str());
      nl.add_component(toks[1], net_of(toks[2]),
                       DominoGate{std::move(pd), pre, foot, clk, keeper});
    } else if (kind == "input") {
      if (toks.size() != 4) parser.fail("input <net> <arrival> <slope>");
      nl.add_input(net_of(toks[1]), std::atof(toks[2].c_str()),
                   std::atof(toks[3].c_str()));
    } else if (kind == "output") {
      if (toks.size() != 3) parser.fail("output <net> <load>");
      nl.add_output(net_of(toks[1]), std::atof(toks[2].c_str()));
    } else {
      parser.fail("unknown statement '" + kind + "'");
    }
  }
  SMART_CHECK(ended, "snl input missing 'end'");
  nl.finalize();
  return nl;
}

}  // namespace smart::netlist

#include "netlist/flatten.h"

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::netlist {

namespace {

using util::strfmt;

class Flattener {
 public:
  Flattener(const Netlist& nl, const Sizing& sizing)
      : nl_(nl), sizing_(sizing) {
    for (size_t n = 0; n < nl.net_count(); ++n)
      out_.node_names.push_back(nl.net(static_cast<NetId>(n)).name);
    out_.vdd = add_node("vdd!");
    out_.gnd = add_node("gnd!");
  }

  FlatNetlist run() {
    for (size_t c = 0; c < nl_.comp_count(); ++c)
      expand(static_cast<CompId>(c));
    return std::move(out_);
  }

 private:
  int add_node(const std::string& name) {
    out_.node_names.push_back(name);
    return static_cast<int>(out_.node_names.size() - 1);
  }

  double width(LabelId label) const { return nl_.label_width(label, sizing_); }

  void device(const std::string& name, bool pmos, int gate, int drain,
              int source, double w) {
    SMART_CHECK(w > 0.0, "flattened device must have positive width: " + name);
    out_.devices.push_back(FlatDevice{name, pmos, gate, drain, source, w});
  }

  /// Expands a series/parallel tree between `top` (output side) and
  /// `bottom` (supply side). `pmos` selects the device type; `fixed_w` < 0
  /// means per-leaf label widths, otherwise every device gets fixed_w.
  void expand_stack(const Stack& s, int top, int bottom, bool pmos,
                    double fixed_w, const std::string& prefix, int& seq) {
    switch (s.op()) {
      case Stack::Op::kLeaf: {
        const double w = fixed_w > 0.0 ? fixed_w : width(s.label());
        device(strfmt("%s_m%d", prefix.c_str(), seq++), pmos,
               static_cast<int>(s.input()), top, bottom, w);
        return;
      }
      case Stack::Op::kSeries: {
        int upper = top;
        for (size_t i = 0; i < s.children().size(); ++i) {
          const bool last = i + 1 == s.children().size();
          const int lower =
              last ? bottom
                   : add_node(strfmt("%s_n%d", prefix.c_str(), seq++));
          expand_stack(s.children()[i], upper, lower, pmos, fixed_w, prefix,
                       seq);
          upper = lower;
        }
        return;
      }
      case Stack::Op::kParallel:
        for (const auto& c : s.children())
          expand_stack(c, top, bottom, pmos, fixed_w, prefix, seq);
        return;
    }
  }

  void expand(CompId c) {
    const Component& comp = nl_.comp(c);
    const int out = static_cast<int>(comp.out);
    int seq = 0;
    if (const auto* g = comp.as_static()) {
      expand_stack(g->pulldown, out, out_.gnd, false, -1.0,
                   comp.name + "_pd", seq);
      expand_stack(g->pulldown.dual(), out, out_.vdd, true,
                   width(g->pmos_label), comp.name + "_pu", seq);
    } else if (const auto* t = comp.as_transgate()) {
      const double w = width(t->label);
      const double wi = TransGate::kLocalInvRatio * w;
      const int sel_b = add_node(comp.name + "_selb");
      device(comp.name + "_mn", false, static_cast<int>(t->sel), out,
             static_cast<int>(t->data), w);
      device(comp.name + "_mp", true, sel_b, out, static_cast<int>(t->data),
             w);
      device(comp.name + "_invn", false, static_cast<int>(t->sel), sel_b,
             out_.gnd, wi);
      device(comp.name + "_invp", true, static_cast<int>(t->sel), sel_b,
             out_.vdd, wi);
    } else if (const auto* t3 = comp.as_tristate()) {
      const double wn = width(t3->nmos_label);
      const double wp = width(t3->pmos_label);
      const double wi = Tristate::kLocalInvRatio * wn;
      const int en_b = add_node(comp.name + "_enb");
      const int mid_n = add_node(comp.name + "_mn");
      const int mid_p = add_node(comp.name + "_mp");
      device(comp.name + "_men", false, static_cast<int>(t3->en), out, mid_n,
             wn);
      device(comp.name + "_mdn", false, static_cast<int>(t3->data), mid_n,
             out_.gnd, wn);
      device(comp.name + "_mep", true, en_b, out, mid_p, wp);
      device(comp.name + "_mdp", true, static_cast<int>(t3->data), mid_p,
             out_.vdd, wp);
      device(comp.name + "_invn", false, static_cast<int>(t3->en), en_b,
             out_.gnd, wi);
      device(comp.name + "_invp", true, static_cast<int>(t3->en), en_b,
             out_.vdd, Tristate::kLocalInvRatio * wp);
    } else if (const auto* d = comp.as_domino()) {
      const double wpre = width(d->precharge_label);
      device(comp.name + "_pre", true, static_cast<int>(d->clk), out,
             out_.vdd, wpre);
      // The keeper holds the dynamic node high; its gate would come from
      // the output inverter's feedback — modeled as always-on (gnd gate).
      // keeper_ratio <= 0 means the stage has no keeper at all (the ERC
      // flags it); there is no device to emit.
      if (d->keeper_ratio > 0.0) {
        device(comp.name + "_keep", true, out_.gnd, out, out_.vdd,
               d->keeper_ratio * wpre);
      }
      if (d->evaluate_label >= 0) {
        const int foot = add_node(comp.name + "_foot");
        expand_stack(d->pulldown, out, foot, false, -1.0, comp.name + "_pd",
                     seq);
        device(comp.name + "_eval", false, static_cast<int>(d->clk), foot,
               out_.gnd, width(d->evaluate_label));
      } else {
        expand_stack(d->pulldown, out, out_.gnd, false, -1.0,
                     comp.name + "_pd", seq);
      }
    }
  }

  const Netlist& nl_;
  const Sizing& sizing_;
  FlatNetlist out_;
};

}  // namespace

FlatNetlist flatten(const Netlist& nl, const Sizing& sizing) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  SMART_CHECK(sizing.size() == nl.label_count(),
              strfmt("sizing arity mismatch: %zu widths for %zu labels",
                     sizing.size(), nl.label_count()));
  return Flattener(nl, sizing).run();
}

util::Status try_flatten(const Netlist& nl, const Sizing& sizing,
                         FlatNetlist* out) {
  try {
    FlatNetlist flat = flatten(nl, sizing);
    if (out) *out = std::move(flat);
    return util::Status::Ok();
  } catch (const util::Error& e) {
    return util::Status::Fail(util::FailureReason::kInvalidInput, e.what());
  }
}

}  // namespace smart::netlist

#pragma once

/// \file flatten.h
/// Device-level expansion of a component netlist: every component becomes
/// explicit MOS devices with internal stack nodes materialized. Used by the
/// SPICE exporter and as a cross-check of the width/cap accounting (the
/// flattened device list must agree with Netlist::device_stats).

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/status.h"

namespace smart::netlist {

/// One flattened MOS device. Node indices refer to FlatNetlist::node_names
/// (original nets first, then synthesized internal nodes, then vdd/gnd).
struct FlatDevice {
  std::string name;
  bool is_pmos = false;
  int gate = -1;
  int drain = -1;   ///< output-side terminal
  int source = -1;  ///< supply-side terminal
  double width_um = 0.0;
};

struct FlatNetlist {
  std::vector<std::string> node_names;
  int vdd = -1;
  int gnd = -1;
  std::vector<FlatDevice> devices;

  double total_width() const {
    double w = 0.0;
    for (const auto& d : devices) w += d.width_um;
    return w;
  }
};

/// Flattens a finalized netlist at a concrete sizing. Throws util::Error
/// when the netlist is not finalized, the sizing does not cover every
/// label, or a device resolves to a non-positive width.
FlatNetlist flatten(const Netlist& nl, const Sizing& sizing);

/// Non-throwing variant: reports precondition violations as a structured
/// kInvalidInput status instead of an exception. On success `*out` holds
/// the flattened netlist.
util::Status try_flatten(const Netlist& nl, const Sizing& sizing,
                         FlatNetlist* out);

}  // namespace smart::netlist

#pragma once

/// \file compose.h
/// Hierarchical composition: instantiate one schematic inside another.
/// The paper's macros are used *in context* — "a few structural changes to
/// the schematic (e.g., merging in of a few gates of condition logic) may
/// have to be performed to match RTL" — so the database entries must be
/// composable: a mux feeding an incrementor sizes as one unit, condition
/// logic can be merged around a macro, and multi-macro datapaths time
/// across the boundaries.

#include <map>
#include <string>

#include "netlist/netlist.h"
#include "util/status.h"

namespace smart::netlist {

/// Result of one instantiation: how the child's nets and labels map into
/// the parent.
struct InstanceMap {
  std::map<NetId, NetId> nets;        ///< child net -> parent net
  std::map<LabelId, LabelId> labels;  ///< child label -> parent label
};

/// Copies every net, size label and component of `child` into `parent`.
///
/// * Net and label names are prefixed with "<prefix>/".
/// * `bindings` maps child net *names* to existing parent nets — bound
///   child nets are not copied, references to them rewire to the parent
///   net (this is how a child's input port is driven by parent logic and
///   how its output drives parent logic).
/// * The child's ports are NOT copied: the parent decides which nets to
///   re-expose via its own add_input/add_output.
/// * Child clock nets left unbound are copied as clock nets; binding them
///   to one parent clock net merges the clock domains.
///
/// The child may be finalized or not; the parent must not be finalized.
/// Throws util::Error on a dangling binding name, an out-of-range binding
/// target, or a finalized parent.
InstanceMap instantiate(Netlist& parent, const Netlist& child,
                        const std::string& prefix,
                        const std::map<std::string, NetId>& bindings = {});

/// Non-throwing variant: reports precondition violations as a structured
/// kInvalidInput status instead of an exception. On success `*out` (if
/// non-null) receives the instance map. The parent is untouched when the
/// preconditions fail (they are all checked before mutation begins).
util::Status try_instantiate(Netlist& parent, const Netlist& child,
                             const std::string& prefix,
                             const std::map<std::string, NetId>& bindings,
                             InstanceMap* out);

}  // namespace smart::netlist

#include "netlist/compose.h"

#include "util/check.h"

namespace smart::netlist {

namespace {

Stack rewrite_stack(const Stack& s, const InstanceMap& map) {
  if (s.is_leaf()) {
    return Stack::leaf(map.nets.at(s.input()), map.labels.at(s.label()));
  }
  std::vector<Stack> children;
  children.reserve(s.children().size());
  for (const auto& c : s.children()) children.push_back(rewrite_stack(c, map));
  return s.op() == Stack::Op::kSeries ? Stack::series(std::move(children))
                                      : Stack::parallel(std::move(children));
}

}  // namespace

InstanceMap instantiate(Netlist& parent, const Netlist& child,
                        const std::string& prefix,
                        const std::map<std::string, NetId>& bindings) {
  SMART_CHECK(!parent.finalized(), "cannot instantiate into a finalized netlist");
  for (const auto& [name, net] : bindings) {
    SMART_CHECK(child.find_net(name) >= 0,
                "binding references unknown child net '" + name + "'");
    SMART_CHECK(net >= 0 && static_cast<size_t>(net) < parent.net_count(),
                "binding target out of range for '" + name + "'");
  }

  InstanceMap map;
  for (size_t n = 0; n < child.net_count(); ++n) {
    const auto id = static_cast<NetId>(n);
    const auto& net = child.net(id);
    auto bound = bindings.find(net.name);
    if (bound != bindings.end()) {
      map.nets[id] = bound->second;
      continue;
    }
    const NetId copy = parent.add_net(prefix + "/" + net.name, net.kind);
    parent.set_extra_wire(copy, net.extra_wire_ff);
    map.nets[id] = copy;
  }
  for (size_t l = 0; l < child.label_count(); ++l) {
    const auto id = static_cast<LabelId>(l);
    const auto& label = child.label(id);
    const LabelId copy =
        parent.add_label(prefix + "/" + label.name, label.w_min, label.w_max);
    if (label.fixed) parent.fix_label(copy, label.fixed_width);
    map.labels[id] = copy;
  }

  for (size_t c = 0; c < child.comp_count(); ++c) {
    const auto& comp = child.comp(static_cast<CompId>(c));
    const std::string name = prefix + "/" + comp.name;
    const NetId out = map.nets.at(comp.out);
    if (const auto* g = comp.as_static()) {
      parent.add_component(name, out,
                           StaticGate{rewrite_stack(g->pulldown, map),
                                      map.labels.at(g->pmos_label)});
    } else if (const auto* t = comp.as_transgate()) {
      parent.add_component(name, out,
                           TransGate{map.nets.at(t->data),
                                     map.nets.at(t->sel),
                                     map.labels.at(t->label)});
    } else if (const auto* t3 = comp.as_tristate()) {
      parent.add_component(name, out,
                           Tristate{map.nets.at(t3->data),
                                    map.nets.at(t3->en),
                                    map.labels.at(t3->nmos_label),
                                    map.labels.at(t3->pmos_label)});
    } else if (const auto* d = comp.as_domino()) {
      parent.add_component(
          name, out,
          DominoGate{rewrite_stack(d->pulldown, map),
                     map.labels.at(d->precharge_label),
                     d->evaluate_label >= 0
                         ? map.labels.at(d->evaluate_label)
                         : -1,
                     map.nets.at(d->clk), d->keeper_ratio});
    }
  }
  return map;
}

util::Status try_instantiate(Netlist& parent, const Netlist& child,
                             const std::string& prefix,
                             const std::map<std::string, NetId>& bindings,
                             InstanceMap* out) {
  try {
    InstanceMap map = instantiate(parent, child, prefix, bindings);
    if (out) *out = std::move(map);
    return util::Status::Ok();
  } catch (const util::Error& e) {
    return util::Status::Fail(util::FailureReason::kInvalidInput, e.what());
  }
}

}  // namespace smart::netlist

#pragma once

/// \file problem.h
/// Geometric program IR: minimize a posynomial objective subject to
/// posynomial <= 1 constraints plus variable box bounds. This is exactly the
/// form SMART's constraint generator emits (paper §5: "These constraints are
/// posynomial... This makes the optimization problem a Geometric Program").

#include <string>
#include <vector>

#include "posy/posynomial.h"
#include "posy/variable.h"

namespace smart::gp {

/// One normalized constraint lhs(x) <= 1, with a human-readable tag for
/// diagnosing which timing/slope/noise requirement is binding.
struct Constraint {
  posy::Posynomial lhs;
  std::string tag;
};

/// A geometric program over the variables of a VarTable.
class GpProblem {
 public:
  /// The table must outlive the problem; its box bounds become constraints
  /// handled natively by the solver.
  explicit GpProblem(const posy::VarTable& vars) : vars_(&vars) {}

  const posy::VarTable& vars() const { return *vars_; }

  /// Sets the objective (must be a nonzero posynomial).
  void set_objective(posy::Posynomial objective);
  const posy::Posynomial& objective() const { return objective_; }

  /// Adds lhs <= 1. Constant constraints are checked immediately: trivially
  /// true ones are dropped, violated ones throw (infeasible by construction).
  void add_constraint(posy::Posynomial lhs, std::string tag);

  /// Adds lhs <= rhs where rhs is a monomial: normalized to lhs/rhs <= 1.
  void add_le(const posy::Posynomial& lhs, const posy::Monomial& rhs,
              std::string tag);

  const std::vector<Constraint>& constraints() const { return constraints_; }

 private:
  const posy::VarTable* vars_;
  posy::Posynomial objective_;
  std::vector<Constraint> constraints_;
};

}  // namespace smart::gp

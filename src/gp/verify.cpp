#include "gp/verify.h"

#include <cmath>
#include <vector>

#include "obs/obs.h"
#include "util/strfmt.h"

namespace smart::gp {

namespace {

using lint::Report;
using lint::Severity;
using util::strfmt;

/// Sign/usage summary of one variable across the whole exponent matrix.
struct VarUse {
  bool used = false;          ///< appears anywhere
  bool in_objective = false;  ///< appears in the objective
  bool obj_all_negative = true;   ///< every objective exponent < 0
  bool positive_anywhere = false; ///< any exponent > 0, obj or constraint
};

/// GPV101 over one posynomial; also accumulates variable usage. Returns
/// false when the posynomial contains non-finite data (so interval
/// analysis on it would be garbage).
bool check_terms(const posy::Posynomial& p, const std::string& where,
                 bool is_objective, const std::string& name,
                 std::vector<VarUse>& use, Report& rep) {
  bool finite = true;
  for (const auto& t : p.terms()) {
    if (!std::isfinite(t.coeff())) {
      rep.add("GPV101", Severity::kError, name, where,
              strfmt("non-finite coefficient %g", t.coeff()));
      finite = false;
    } else if (!(t.coeff() > 0.0)) {
      rep.add("GPV101", Severity::kError, name, where,
              strfmt("non-positive coefficient %g", t.coeff()));
    }
    for (const auto& fac : t.factors()) {
      if (!std::isfinite(fac.exp)) {
        rep.add("GPV101", Severity::kError, name, where,
                "non-finite exponent");
        finite = false;
        continue;
      }
      if (fac.var < 0 || static_cast<size_t>(fac.var) >= use.size()) continue;
      auto& u = use[static_cast<size_t>(fac.var)];
      u.used = true;
      if (fac.exp > 0.0) u.positive_anywhere = true;
      if (is_objective) {
        u.in_objective = true;
        if (fac.exp >= 0.0) u.obj_all_negative = false;
      }
    }
  }
  return finite;
}

/// Smallest value the posynomial can take inside the variable box, by
/// interval analysis in the log domain (each monomial is monotone in every
/// variable, so its minimum is at a box corner). Requires finite data and
/// valid boxes.
double interval_min(const posy::Posynomial& p, const posy::VarTable& vars) {
  double total = 0.0;
  for (const auto& t : p.terms()) {
    double log_min = std::log(t.coeff());
    for (const auto& fac : t.factors()) {
      const auto& info = vars.info(fac.var);
      const double bound = fac.exp > 0.0 ? info.lower : info.upper;
      log_min += fac.exp * std::log(bound);
    }
    // Past exp-overflow territory the sum is infeasible regardless.
    if (log_min > 690.0) return HUGE_VAL;
    total += std::exp(log_min);
  }
  return total;
}

}  // namespace

lint::Report verify_problem(const GpProblem& problem,
                            const lint::Options& options,
                            const std::string& name) {
  Report rep(options);
  const posy::VarTable& vars = problem.vars();

  if (vars.size() == 0)
    rep.add("GPV100", Severity::kError, name, "problem",
            "problem has no variables");
  if (problem.objective().is_zero())
    rep.add("GPV100", Severity::kError, name, "objective",
            "objective not set");

  // GPV105: the solver works in log(x); an empty or non-positive box has
  // no log image.
  bool boxes_ok = true;
  for (size_t i = 0; i < vars.size(); ++i) {
    const auto& info = vars.info(static_cast<posy::VarId>(i));
    if (info.lower > 0.0 && std::isfinite(info.lower) &&
        std::isfinite(info.upper) && info.upper >= info.lower * (1 - 1e-12))
      continue;
    rep.add("GPV105", Severity::kError, name, info.name,
            strfmt("variable box [%g, %g] is empty or non-positive",
                   info.lower, info.upper));
    boxes_ok = false;
  }

  std::vector<VarUse> use(vars.size());
  bool obj_finite = check_terms(problem.objective(), "objective", true, name,
                                use, rep);
  (void)obj_finite;
  std::vector<char> con_finite(problem.constraints().size(), 1);
  for (size_t c = 0; c < problem.constraints().size(); ++c) {
    const auto& con = problem.constraints()[c];
    con_finite[c] = check_terms(con.lhs, "constraint " + con.tag, false,
                                name, use, rep)
                        ? 1
                        : 0;
  }

  for (size_t i = 0; i < vars.size(); ++i) {
    const auto& u = use[i];
    const auto& info = vars.info(static_cast<posy::VarId>(i));
    // GPV102: the objective strictly decreases as this variable grows and
    // nothing in the constraint matrix grows with it — a certificate that
    // the GP is unbounded below (the box upper bound is the only thing the
    // solver can rail against).
    if (u.in_objective && u.obj_all_negative && !u.positive_anywhere) {
      rep.add("GPV102", Severity::kError, name, info.name,
              "objective decreases without bound in this variable; no "
              "constraint bounds it from above");
    }
    // GPV103: a registered variable no term mentions — usually a label
    // mapping bug upstream.
    if (!u.used) {
      rep.add("GPV103", Severity::kWarn, name, info.name,
              "variable appears in no objective or constraint term");
    }
  }

  // GPV104: a constraint whose smallest achievable lhs already exceeds 1
  // is a certificate of infeasibility — phase I would grind to the same
  // answer the hard way.
  if (boxes_ok) {
    for (size_t c = 0; c < problem.constraints().size(); ++c) {
      if (!con_finite[c]) continue;
      const auto& con = problem.constraints()[c];
      const double lo = interval_min(con.lhs, vars);
      if (lo > 1.0 + 1e-9) {
        rep.add("GPV104", Severity::kError, name, "constraint " + con.tag,
                strfmt("lhs >= %.4g everywhere in the variable box", lo));
      }
    }
  }

  auto& tel = obs::Telemetry::instance();
  if (tel.enabled()) {
    if (rep.errors() > 0)
      tel.counter_add("lint.findings.error",
                      static_cast<double>(rep.errors()));
    if (rep.warnings() > 0)
      tel.counter_add("lint.findings.warn",
                      static_cast<double>(rep.warnings()));
  }
  return rep;
}

util::Status verify_status(const lint::Report& report) {
  using util::FailureReason;
  if (report.errors() == 0) return util::Status::Ok();
  bool non_finite = false;
  bool infeasible = false;
  for (const auto& f : report.findings()) {
    if (f.severity != lint::Severity::kError) continue;
    if (f.rule == "GPV101" && f.message.rfind("non-finite", 0) == 0)
      non_finite = true;
    if (f.rule == "GPV104") infeasible = true;
  }
  const auto* first = report.first(lint::Severity::kError);
  const std::string detail =
      first->rule + " " + first->location + ": " + first->message;
  if (non_finite)
    return util::Status::Fail(FailureReason::kNumericalError, detail);
  if (infeasible)
    return util::Status::Fail(FailureReason::kInfeasible, detail);
  return util::Status::Fail(FailureReason::kInvalidInput, detail);
}

}  // namespace smart::gp

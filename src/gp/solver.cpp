#include "gp/solver.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/check.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::gp {
namespace {

using util::Matrix;
using util::Vec;

/// A compiled convex function in the log domain:
///   F(y) = log sum_k exp(logc_k + a_k . y)  +  linear . y + linear_const
/// The optional linear part supports the phase-I auxiliary variable
/// (F_j(y) - s) without special-casing the Newton machinery.
///
/// Evaluation is support-local: gradients and Hessians are produced on the
/// function's own variable support and scattered by the caller, so the
/// per-constraint cost is O(|support|^2), not O(n^2).
struct Func {
  struct Term {
    double logc = 0.0;
    // (support-local index, exponent) pairs
    std::vector<std::pair<int, double>> factors;
  };
  std::vector<Term> terms;
  std::vector<int> support;        ///< global var ids touched by LSE part
  std::vector<int> linear_vars;    ///< global var ids of linear part
  std::vector<double> linear_coef;
  double linear_const = 0.0;
  /// union of support and linear_vars; gradient lives on these entries.
  std::vector<int> full_support;

  void finish() {
    full_support = support;
    for (int v : linear_vars)
      if (std::find(full_support.begin(), full_support.end(), v) ==
          full_support.end())
        full_support.push_back(v);
  }

  /// Value only.
  double value_at(const Vec& y) const {
    double value = linear_const;
    for (size_t i = 0; i < linear_vars.size(); ++i)
      value += linear_coef[i] * y[static_cast<size_t>(linear_vars[i])];
    if (terms.empty()) return value;
    double zmax = -std::numeric_limits<double>::infinity();
    std::vector<double> z(terms.size());
    for (size_t k = 0; k < terms.size(); ++k) {
      double zk = terms[k].logc;
      for (const auto& [li, e] : terms[k].factors)
        zk += e * y[static_cast<size_t>(support[static_cast<size_t>(li)])];
      z[k] = zk;
      zmax = std::max(zmax, zk);
    }
    double denom = 0.0;
    for (double zk : z) denom += std::exp(zk - zmax);
    return value + zmax + std::log(denom);
  }

  /// Value plus local derivatives. g_local is indexed by full_support
  /// (gradient), h_local row-major |support| x |support| (LSE Hessian; the
  /// linear part has none). Buffers are resized here; callers reuse them.
  double eval_local(const Vec& y, std::vector<double>& g_local,
                    std::vector<double>& h_local,
                    std::vector<double>& scratch_z) const {
    g_local.assign(full_support.size(), 0.0);
    double value = linear_const;
    for (size_t i = 0; i < linear_vars.size(); ++i) {
      value += linear_coef[i] * y[static_cast<size_t>(linear_vars[i])];
      // linear vars are appended after support in full_support order; find
      // their slot (few entries, linear scan is fine).
      for (size_t fi = 0; fi < full_support.size(); ++fi)
        if (full_support[fi] == linear_vars[i]) {
          g_local[fi] += linear_coef[i];
          break;
        }
    }
    const size_t sz = support.size();
    h_local.assign(sz * sz, 0.0);
    if (terms.empty()) return value;

    scratch_z.resize(terms.size());
    double zmax = -std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < terms.size(); ++k) {
      double zk = terms[k].logc;
      for (const auto& [li, e] : terms[k].factors)
        zk += e * y[static_cast<size_t>(support[static_cast<size_t>(li)])];
      scratch_z[k] = zk;
      zmax = std::max(zmax, zk);
    }
    double denom = 0.0;
    for (double& zk : scratch_z) {
      zk = std::exp(zk - zmax);
      denom += zk;
    }
    value += zmax + std::log(denom);

    // softmax weights p_k; gradient over support slots [0, sz).
    std::vector<double> g_lse(sz, 0.0);
    for (size_t k = 0; k < terms.size(); ++k) {
      const double pk = scratch_z[k] / denom;
      for (const auto& [li, e] : terms[k].factors) {
        g_lse[static_cast<size_t>(li)] += pk * e;
        for (const auto& [lj, ej] : terms[k].factors)
          h_local[static_cast<size_t>(li) * sz + static_cast<size_t>(lj)] +=
              pk * e * ej;
      }
    }
    for (size_t i = 0; i < sz; ++i) {
      g_local[i] += g_lse[i];
      for (size_t j = 0; j < sz; ++j)
        h_local[i * sz + j] -= g_lse[i] * g_lse[j];
    }
    return value;
  }
};

/// Compiles a posynomial into a Func over n_total log-variables.
Func compile(const posy::Posynomial& p) {
  Func f;
  std::vector<int> support;
  for (const auto& t : p.terms())
    for (const auto& fac : t.factors()) support.push_back(fac.var);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  f.support = support;
  auto local = [&](int var) {
    return static_cast<int>(
        std::lower_bound(support.begin(), support.end(), var) -
        support.begin());
  };
  for (const auto& t : p.terms()) {
    SMART_CHECK(t.coeff() > 0.0, "GP terms must have positive coefficients");
    Func::Term ct;
    ct.logc = std::log(t.coeff());
    for (const auto& fac : t.factors())
      ct.factors.emplace_back(local(fac.var), fac.exp);
    f.terms.push_back(std::move(ct));
  }
  f.finish();
  return f;
}

/// Barrier-method state shared by both phases.
struct BarrierProblem {
  std::vector<Func> constraints;  ///< F_j(y) <= 0
  Func objective;                 ///< minimized (times barrier weight t)
  Vec ylo, yhi;                   ///< strict box bounds in log domain
};

/// Scratch buffers reused across barrier evaluations.
struct BarrierScratch {
  std::vector<double> g_local;
  std::vector<double> h_local;
  std::vector<double> z;
};

/// Evaluates the barrier objective
///   phi(y) = t * f0(y) - sum_j log(-F_j(y)) - sum_i log box slacks
/// Returns +inf when outside the domain. grad/hess optional; local
/// derivatives are scattered per function, so cost scales with the total
/// constraint support, not with constraints x n^2.
double barrier_eval(const BarrierProblem& bp, double t, const Vec& y,
                    Vec* grad, Matrix* hess, BarrierScratch& scratch) {
  const size_t n = y.size();
  if (grad) std::fill(grad->begin(), grad->end(), 0.0);
  double phi = 0.0;

  auto scatter = [&](const Func& f, double g_scale, double h_scale,
                     double outer_scale) {
    // grad += g_scale * g_local ; hess += h_scale * h_lse
    //                            + outer_scale * g_local g_local^T
    const auto& fs = f.full_support;
    if (grad) {
      for (size_t i = 0; i < fs.size(); ++i)
        (*grad)[static_cast<size_t>(fs[i])] +=
            g_scale * scratch.g_local[i];
    }
    if (hess) {
      const size_t sz = f.support.size();
      for (size_t i = 0; i < sz; ++i) {
        const auto gi = static_cast<size_t>(f.support[i]);
        for (size_t j = 0; j < sz; ++j)
          (*hess)(gi, static_cast<size_t>(f.support[j])) +=
              h_scale * scratch.h_local[i * sz + j];
      }
      if (outer_scale != 0.0) {
        for (size_t i = 0; i < fs.size(); ++i) {
          const double gi = scratch.g_local[i];
          if (gi == 0.0) continue;
          for (size_t j = 0; j < fs.size(); ++j)
            (*hess)(static_cast<size_t>(fs[i]),
                    static_cast<size_t>(fs[j])) +=
                outer_scale * gi * scratch.g_local[j];
        }
      }
    }
  };

  const bool derivs = grad != nullptr || hess != nullptr;
  {
    const double f0 =
        derivs ? bp.objective.eval_local(y, scratch.g_local, scratch.h_local,
                                         scratch.z)
               : bp.objective.value_at(y);
    phi += t * f0;
    if (derivs) scatter(bp.objective, t, t, 0.0);
  }

  for (const auto& fj : bp.constraints) {
    const double v =
        derivs ? fj.eval_local(y, scratch.g_local, scratch.h_local, scratch.z)
               : fj.value_at(y);
    const double u = -v;  // slack, must stay positive
    if (u <= 0.0 || !std::isfinite(u))
      return std::numeric_limits<double>::infinity();
    phi += -std::log(u);
    // d(-log(-F)) = F'/u ; d2 = F''/u + F' F'^T / u^2.
    if (derivs) scatter(fj, 1.0 / u, 1.0 / u, 1.0 / (u * u));
  }

  for (size_t i = 0; i < n; ++i) {
    const double a = y[i] - bp.ylo[i];
    const double b = bp.yhi[i] - y[i];
    if (a <= 0.0 || b <= 0.0) return std::numeric_limits<double>::infinity();
    phi += -std::log(a) - std::log(b);
    if (grad) (*grad)[i] += -1.0 / a + 1.0 / b;
    if (hess) (*hess)(i, i) += 1.0 / (a * a) + 1.0 / (b * b);
  }
  return phi;
}

struct NewtonOutcome {
  int iterations = 0;
  bool converged = false;
};

/// Damped Newton minimization of the barrier objective for fixed t.
/// early_exit, when set, is checked after every accepted step and stops the
/// minimization as soon as it returns true (used by phase I).
NewtonOutcome newton_minimize(const BarrierProblem& bp, double t, Vec& y,
                              const SolverOptions& opt,
                              const std::function<bool(const Vec&)>&
                                  early_exit = {}) {
  const size_t n = y.size();
  NewtonOutcome out;
  Vec grad(n, 0.0);
  BarrierScratch scratch;
  for (int it = 0; it < opt.max_newton_iters; ++it) {
    Matrix hess(n, n, 0.0);
    const double phi = barrier_eval(bp, t, y, &grad, &hess, scratch);
    SMART_CHECK(std::isfinite(phi), "barrier evaluated outside domain");
    // Levenberg-style floor keeps the system solvable when the Hessian is
    // nearly singular (e.g. slack variables far from activity).
    for (size_t i = 0; i < n; ++i) hess(i, i) += 1e-12;
    Vec step = util::cholesky_solve(hess, util::scaled(grad, -1.0));
    const double decrement2 = -util::dot(grad, step);
    out.iterations = it + 1;
    if (decrement2 / 2.0 < opt.tolerance * 1e-2) {
      out.converged = true;
      return out;
    }
    // Backtracking line search (Armijo on phi, domain-respecting).
    double alpha = 1.0;
    bool accepted = false;
    for (int ls = 0; ls < 70; ++ls) {
      Vec trial = y;
      util::axpy(alpha, step, trial);
      const double phi_trial =
          barrier_eval(bp, t, trial, nullptr, nullptr, scratch);
      if (std::isfinite(phi_trial) &&
          phi_trial <= phi - 1e-4 * alpha * decrement2) {
        y = std::move(trial);
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      out.converged = true;  // cannot make progress; treat as stationary
      return out;
    }
    if (early_exit && early_exit(y)) {
      out.converged = true;
      return out;
    }
  }
  return out;
}

}  // namespace

GpResult GpSolver::solve(const GpProblem& problem) const {
  return run(problem, nullptr);
}

GpResult GpSolver::solve_from(const GpProblem& problem,
                              const util::Vec& x0) const {
  SMART_CHECK(x0.size() == problem.vars().size(),
              "warm start size mismatch");
  return run(problem, &x0);
}

GpResult GpSolver::run(const GpProblem& problem, const util::Vec* x0) const {
  const auto& vars = problem.vars();
  const size_t n = vars.size();
  GpResult result;
  SMART_CHECK(n > 0, "GP has no variables");
  SMART_CHECK(!problem.objective().is_zero(), "GP objective not set");

  // Log-domain box bounds.
  Vec ylo(n), yhi(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& info = vars.info(static_cast<posy::VarId>(i));
    ylo[i] = std::log(info.lower);
    yhi[i] = std::log(info.upper);
    SMART_CHECK(yhi[i] > ylo[i] - 1e-15, "empty variable box");
  }

  std::vector<Func> constraints;
  constraints.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints()) constraints.push_back(compile(c.lhs));
  Func objective = compile(problem.objective());

  // Start at the warm-start point (clipped strictly inside the box) or
  // at the box midpoint (geometric mean of the bounds).
  Vec y(n);
  for (size_t i = 0; i < n; ++i) {
    if (x0 != nullptr) {
      const double margin = 1e-3 * std::max(1.0, yhi[i] - ylo[i]);
      y[i] = std::clamp(std::log(std::max((*x0)[i], 1e-300)),
                        ylo[i] + margin, yhi[i] - margin);
    } else {
      y[i] = 0.5 * (ylo[i] + yhi[i]);
    }
    if (yhi[i] - ylo[i] < 1e-12) y[i] = ylo[i];  // effectively fixed var
  }

  auto max_constraint = [&](const Vec& yy) {
    double m = -std::numeric_limits<double>::infinity();
    for (const auto& f : constraints)
      m = std::max(m, f.value_at(yy));
    return m;
  };

  int total_newton = 0;

  // ---- Phase I: find a strictly feasible point ----
  if (!constraints.empty() && max_constraint(y) >= -options_.feas_margin) {
    // Augment with auxiliary s: minimize s subject to F_j(y) - s <= 0.
    BarrierProblem p1;
    p1.ylo = ylo;
    p1.yhi = yhi;
    const double s0 = max_constraint(y) + 1.0;
    // Generous box for s keeps the barrier well-behaved.
    p1.ylo.push_back(std::min(-10.0, s0 - 100.0));
    p1.yhi.push_back(s0 + 100.0);
    for (const auto& f : constraints) {
      Func fa = f;
      fa.linear_vars.push_back(static_cast<int>(n));
      fa.linear_coef.push_back(-1.0);
      fa.finish();
      p1.constraints.push_back(std::move(fa));
    }
    Func obj_s;  // objective = s (pure linear)
    obj_s.linear_vars.push_back(static_cast<int>(n));
    obj_s.linear_coef.push_back(1.0);
    obj_s.finish();
    p1.objective = std::move(obj_s);

    Vec ys = y;
    ys.push_back(s0);
    const double want = -2.0 * options_.feas_margin;
    auto feasible_now = [&](const Vec& yy) {
      Vec ycore(yy.begin(), yy.begin() + static_cast<long>(n));
      return max_constraint(ycore) < want;
    };
    double t = 1.0;
    for (int stage = 0; stage < options_.max_barrier_stages; ++stage) {
      auto outcome = newton_minimize(p1, t, ys, options_, feasible_now);
      total_newton += outcome.iterations;
      if (feasible_now(ys)) break;
      if (static_cast<double>(p1.constraints.size()) / t <
          options_.tolerance)
        break;
      t *= options_.barrier_mu;
    }
    y.assign(ys.begin(), ys.begin() + static_cast<long>(n));
    if (max_constraint(y) >= 0.0) {
      result.status = SolveStatus::kInfeasible;
      result.x.assign(n, 0.0);
      for (size_t i = 0; i < n; ++i) result.x[i] = std::exp(y[i]);
      result.objective = problem.objective().eval(result.x);
      result.max_violation = std::exp(max_constraint(y)) - 1.0;
      result.newton_iterations = total_newton;
      result.message = util::strfmt(
          "phase I failed: max constraint value %.4g (want < 1)",
          std::exp(max_constraint(y)));
      return result;
    }
  }

  // ---- Phase II: barrier path following ----
  BarrierProblem p2;
  p2.constraints = std::move(constraints);
  p2.objective = std::move(objective);
  p2.ylo = std::move(ylo);
  p2.yhi = std::move(yhi);

  const double m_total =
      static_cast<double>(p2.constraints.size()) + 2.0 * static_cast<double>(n);
  double t = options_.t_initial;
  // A warm start that is already strictly feasible sits near the previous
  // optimum — close to its active constraints. Low-t centering would drag
  // the iterate back toward the analytic center only to return; skip ahead
  // on the barrier schedule instead.
  if (x0 != nullptr && max_constraint(y) < -options_.feas_margin)
    t *= options_.barrier_mu * options_.barrier_mu;
  bool hit_limit = true;
  for (int stage = 0; stage < options_.max_barrier_stages; ++stage) {
    auto outcome = newton_minimize(p2, t, y, options_);
    total_newton += outcome.iterations;
    if (options_.verbose) {
      util::log_info(util::strfmt("gp: stage %d t=%.3g newton=%d", stage, t,
                                  outcome.iterations));
    }
    if (m_total / t < options_.tolerance) {
      hit_limit = false;
      break;
    }
    t *= options_.barrier_mu;
  }

  result.x.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) result.x[i] = std::exp(y[i]);
  result.objective = problem.objective().eval(result.x);
  double viol = 0.0;
  for (const auto& c : problem.constraints()) {
    const double v = c.lhs.eval(result.x);
    viol = std::max(viol, v - 1.0);
    if (v >= 1.0 - options_.binding_tol) result.binding.push_back(c.tag);
  }
  result.max_violation = viol;
  result.newton_iterations = total_newton;
  result.status = hit_limit ? SolveStatus::kMaxIter : SolveStatus::kOptimal;
  result.message = hit_limit ? "barrier stage limit reached" : "optimal";
  return result;
}

}  // namespace smart::gp

#include "gp/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>

#include "obs/obs.h"
#include "prof/resource.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strfmt.h"
#include "util/vecmath.h"

namespace smart::gp {
namespace {

using util::FailureReason;
using util::Matrix;
using util::Status;
using util::Vec;

/// A compiled convex function in the log domain:
///   F(y) = log sum_k exp(logc_k + a_k . y)  +  linear . y + linear_const
/// The optional linear part supports the phase-I auxiliary variable
/// (F_j(y) - s) without special-casing the Newton machinery.
///
/// Evaluation is support-local: gradients and Hessians are produced on the
/// function's own variable support and scattered by the caller, so the
/// per-constraint cost is O(|support|^2), not O(n^2).
struct Func {
  struct Term {
    double logc = 0.0;
    // (support-local index, exponent) pairs
    std::vector<std::pair<int, double>> factors;
  };
  std::vector<Term> terms;
  std::vector<int> support;        ///< global var ids touched by LSE part
  std::vector<int> linear_vars;    ///< global var ids of linear part
  std::vector<double> linear_coef;
  double linear_const = 0.0;
  /// union of support and linear_vars; gradient lives on these entries.
  std::vector<int> full_support;

  void finish() {
    full_support = support;
    for (int v : linear_vars)
      if (std::find(full_support.begin(), full_support.end(), v) ==
          full_support.end())
        full_support.push_back(v);
  }

  /// Value only; `scratch_z` is a caller-owned buffer reused across calls
  /// (the per-call vector churn dominated small-problem solve profiles).
  double value_at(const Vec& y, std::vector<double>& scratch_z) const {
    double value = linear_const;
    for (size_t i = 0; i < linear_vars.size(); ++i)
      value += linear_coef[i] * y[static_cast<size_t>(linear_vars[i])];
    if (terms.empty()) return value;
    double zmax = -std::numeric_limits<double>::infinity();
    scratch_z.resize(terms.size());
    for (size_t k = 0; k < terms.size(); ++k) {
      double zk = terms[k].logc;
      for (const auto& [li, e] : terms[k].factors)
        zk += e * y[static_cast<size_t>(support[static_cast<size_t>(li)])];
      scratch_z[k] = zk;
      zmax = std::max(zmax, zk);
    }
    const double denom =
        util::sum_exp_shifted(scratch_z.data(), zmax, terms.size());
    return value + zmax + std::log(denom);
  }

  /// Value only (allocating convenience overload for cold paths).
  double value_at(const Vec& y) const {
    std::vector<double> z;
    return value_at(y, z);
  }

  /// Value plus local derivatives. g_local is indexed by full_support
  /// (gradient), h_local row-major |support| x |support| (LSE Hessian; the
  /// linear part has none). Buffers are resized here; callers reuse them.
  double eval_local(const Vec& y, std::vector<double>& g_local,
                    std::vector<double>& h_local,
                    std::vector<double>& scratch_z,
                    std::vector<double>& scratch_g) const {
    g_local.assign(full_support.size(), 0.0);
    double value = linear_const;
    for (size_t i = 0; i < linear_vars.size(); ++i) {
      value += linear_coef[i] * y[static_cast<size_t>(linear_vars[i])];
      // linear vars are appended after support in full_support order; find
      // their slot (few entries, linear scan is fine).
      for (size_t fi = 0; fi < full_support.size(); ++fi)
        if (full_support[fi] == linear_vars[i]) {
          g_local[fi] += linear_coef[i];
          break;
        }
    }
    const size_t sz = support.size();
    h_local.assign(sz * sz, 0.0);
    if (terms.empty()) return value;

    scratch_z.resize(terms.size());
    double zmax = -std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < terms.size(); ++k) {
      double zk = terms[k].logc;
      for (const auto& [li, e] : terms[k].factors)
        zk += e * y[static_cast<size_t>(support[static_cast<size_t>(li)])];
      scratch_z[k] = zk;
      zmax = std::max(zmax, zk);
    }
    const double denom = util::exp_shifted(scratch_z.data(), zmax,
                                           scratch_z.data(), terms.size());
    value += zmax + std::log(denom);

    // softmax weights p_k; gradient over support slots [0, sz).
    scratch_g.assign(sz, 0.0);
    std::vector<double>& g_lse = scratch_g;
    for (size_t k = 0; k < terms.size(); ++k) {
      const double pk = scratch_z[k] / denom;
      for (const auto& [li, e] : terms[k].factors) {
        g_lse[static_cast<size_t>(li)] += pk * e;
        for (const auto& [lj, ej] : terms[k].factors)
          h_local[static_cast<size_t>(li) * sz + static_cast<size_t>(lj)] +=
              pk * e * ej;
      }
    }
    for (size_t i = 0; i < sz; ++i) {
      g_local[i] += g_lse[i];
      for (size_t j = 0; j < sz; ++j)
        h_local[i * sz + j] -= g_lse[i] * g_lse[j];
    }
    return value;
  }
};

/// Compiles a posynomial into a Func over n_total log-variables.
Func compile(const posy::Posynomial& p) {
  Func f;
  std::vector<int> support;
  for (const auto& t : p.terms())
    for (const auto& fac : t.factors()) support.push_back(fac.var);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  f.support = support;
  auto local = [&](int var) {
    return static_cast<int>(
        std::lower_bound(support.begin(), support.end(), var) -
        support.begin());
  };
  for (const auto& t : p.terms()) {
    SMART_CHECK(t.coeff() > 0.0, "GP terms must have positive coefficients");
    Func::Term ct;
    ct.logc = std::log(t.coeff());
    for (const auto& fac : t.factors())
      ct.factors.emplace_back(local(fac.var), fac.exp);
    f.terms.push_back(std::move(ct));
  }
  f.finish();
  return f;
}

/// Validates problem data before any numerics touch it: every coefficient
/// must be finite and positive, every exponent finite, the box non-empty.
/// Returns the structured reason a solve cannot proceed, or Ok.
Status validate_problem(const GpProblem& problem) {
  if (problem.vars().size() == 0)
    return Status::Fail(FailureReason::kInvalidInput, "GP has no variables");
  if (problem.objective().is_zero())
    return Status::Fail(FailureReason::kInvalidInput, "GP objective not set");
  for (size_t i = 0; i < problem.vars().size(); ++i) {
    const auto& info = problem.vars().info(static_cast<posy::VarId>(i));
    if (!(info.lower > 0.0) || !std::isfinite(info.lower) ||
        !std::isfinite(info.upper) || info.upper < info.lower * (1 - 1e-12))
      return Status::Fail(
          FailureReason::kInvalidInput,
          util::strfmt("variable %s has empty or non-positive box",
                       info.name.c_str()));
  }
  auto check_posy = [](const posy::Posynomial& p,
                       const std::string& where) -> Status {
    for (const auto& t : p.terms()) {
      if (!std::isfinite(t.coeff()))
        return Status::Fail(FailureReason::kNumericalError,
                            "non-finite coefficient in " + where);
      if (!(t.coeff() > 0.0))
        return Status::Fail(FailureReason::kInvalidInput,
                            "non-positive coefficient in " + where);
      for (const auto& fac : t.factors())
        if (!std::isfinite(fac.exp))
          return Status::Fail(FailureReason::kNumericalError,
                              "non-finite exponent in " + where);
    }
    return Status::Ok();
  };
  if (auto s = check_posy(problem.objective(), "objective"); !s.ok())
    return s;
  for (const auto& c : problem.constraints())
    if (auto s = check_posy(c.lhs, "constraint " + c.tag); !s.ok()) return s;
  return Status::Ok();
}

/// Barrier-method state shared by both phases. Non-owning: the compiled
/// functions and bounds live in the caller so multi-start restarts don't
/// re-copy them per attempt.
struct BarrierProblem {
  const std::vector<Func>* constraints = nullptr;  ///< F_j(y) <= 0
  const Func* objective = nullptr;  ///< minimized (times barrier weight t)
  const Vec* ylo = nullptr;         ///< strict box bounds in log domain
  const Vec* yhi = nullptr;
};

/// Scratch buffers reused across barrier evaluations.
struct BarrierScratch {
  std::vector<double> g_local;
  std::vector<double> h_local;
  std::vector<double> z;
  std::vector<double> g_lse;
};

/// Wall-clock budget for one solve() call (shared across restarts).
using Deadline = util::Deadline;

/// Hessian assembly target: a dense matrix or a skyline profile. At most
/// one pointer is set; both unset means "no second derivatives wanted".
/// The skyline sink drops strict upper-triangle adds (the scatter loops
/// write both halves of the symmetric matrix; the factorization only ever
/// reads the lower one, for dense and skyline alike).
struct HessSink {
  util::Matrix* dense = nullptr;
  util::SkylineMatrix* sky = nullptr;
  explicit operator bool() const { return dense != nullptr || sky != nullptr; }
  void add(size_t i, size_t j, double v) const {
    if (dense)
      (*dense)(i, j) += v;
    else
      sky->add(i, j, v);
  }
};

/// Evaluates the barrier objective
///   phi(y) = t * f0(y) - sum_j log(-F_j(y)) - sum_i log box slacks
/// Returns +inf when outside the domain. grad/hess optional; local
/// derivatives are scattered per function, so cost scales with the total
/// constraint support, not with constraints x n^2.
double barrier_eval(const BarrierProblem& bp, double t, const Vec& y,
                    Vec* grad, HessSink hess, BarrierScratch& scratch) {
  const size_t n = y.size();
  if (grad) std::fill(grad->begin(), grad->end(), 0.0);
  double phi = 0.0;

  auto scatter = [&](const Func& f, double g_scale, double h_scale,
                     double outer_scale) {
    // grad += g_scale * g_local ; hess += h_scale * h_lse
    //                            + outer_scale * g_local g_local^T
    const auto& fs = f.full_support;
    if (grad) {
      for (size_t i = 0; i < fs.size(); ++i)
        (*grad)[static_cast<size_t>(fs[i])] +=
            g_scale * scratch.g_local[i];
    }
    if (hess) {
      const size_t sz = f.support.size();
      for (size_t i = 0; i < sz; ++i) {
        const auto gi = static_cast<size_t>(f.support[i]);
        for (size_t j = 0; j < sz; ++j)
          hess.add(gi, static_cast<size_t>(f.support[j]),
                   h_scale * scratch.h_local[i * sz + j]);
      }
      if (outer_scale != 0.0) {
        for (size_t i = 0; i < fs.size(); ++i) {
          const double gi = scratch.g_local[i];
          if (gi == 0.0) continue;
          for (size_t j = 0; j < fs.size(); ++j)
            hess.add(static_cast<size_t>(fs[i]), static_cast<size_t>(fs[j]),
                     outer_scale * gi * scratch.g_local[j]);
        }
      }
    }
  };

  const bool derivs = grad != nullptr || static_cast<bool>(hess);
  {
    const double f0 =
        derivs ? bp.objective->eval_local(y, scratch.g_local,
                                          scratch.h_local, scratch.z,
                                          scratch.g_lse)
               : bp.objective->value_at(y, scratch.z);
    phi += t * f0;
    if (derivs) scatter(*bp.objective, t, t, 0.0);
  }

  for (const auto& fj : *bp.constraints) {
    const double v =
        derivs ? fj.eval_local(y, scratch.g_local, scratch.h_local,
                               scratch.z, scratch.g_lse)
               : fj.value_at(y, scratch.z);
    const double u = -v;  // slack, must stay positive
    if (u <= 0.0 || !std::isfinite(u))
      return std::numeric_limits<double>::infinity();
    phi += -std::log(u);
    // d(-log(-F)) = F'/u ; d2 = F''/u + F' F'^T / u^2.
    if (derivs) scatter(fj, 1.0 / u, 1.0 / u, 1.0 / (u * u));
  }

  for (size_t i = 0; i < n; ++i) {
    const double a = y[i] - (*bp.ylo)[i];
    const double b = (*bp.yhi)[i] - y[i];
    if (a <= 0.0 || b <= 0.0) return std::numeric_limits<double>::infinity();
    phi += -std::log(a) - std::log(b);
    if (grad) (*grad)[i] += -1.0 / a + 1.0 / b;
    if (hess) hess.add(i, i, 1.0 / (a * a) + 1.0 / (b * b));
  }
  return phi;
}

/// How a Newton minimization ended. kNonFinite covers both NaN/Inf in the
/// barrier value or step and an unsolvable (indefinite) Newton system.
enum class NewtonFailure { kNone, kNonFinite, kTimeout };

struct NewtonOutcome {
  int iterations = 0;
  bool converged = false;
  NewtonFailure failure = NewtonFailure::kNone;
};

/// Damped Newton minimization of the barrier objective for fixed t.
/// early_exit, when set, is checked after every accepted step and stops the
/// minimization as soon as it returns true (used by phase I). `y` only ever
/// moves to finite accepted points: a failed iteration leaves it at the
/// last good iterate, so callers can always report a usable point.
NewtonOutcome newton_minimize(const BarrierProblem& bp, double t, Vec& y,
                              const SolverOptions& opt,
                              const Deadline& deadline,
                              const std::function<bool(const Vec&)>&
                                  early_exit = {}) {
  const size_t n = y.size();
  NewtonOutcome out;
  if (util::fault_fires(util::FaultClass::kSolverExhaustIters, "gp.newton")) {
    out.iterations = opt.max_newton_iters;
    return out;
  }
  Vec grad(n, 0.0);
  BarrierScratch scratch;

  // KKT backend selection, once per minimization: the Hessian's sparsity
  // profile is the union of per-function support cliques (each function
  // couples only its own variables) plus the box diagonal, so row i of the
  // lower triangle can start no earlier than the smallest variable that
  // shares a function with i. When that envelope is sparse enough, assemble
  // and factorize in skyline form; otherwise fall back to the dense path.
  std::vector<size_t> first(n);
  for (size_t i = 0; i < n; ++i) first[i] = i;
  auto widen = [&](const Func& f) {
    if (f.full_support.empty()) return;
    int mn = f.full_support[0];
    for (const int v : f.full_support) mn = std::min(mn, v);
    for (const int v : f.full_support)
      first[static_cast<size_t>(v)] =
          std::min(first[static_cast<size_t>(v)], static_cast<size_t>(mn));
  };
  widen(*bp.objective);
  for (const auto& f : *bp.constraints) widen(f);
  size_t profile = 0;
  for (size_t i = 0; i < n; ++i) profile += i - first[i] + 1;
  const size_t dense_lower = n * (n + 1) / 2;
  const bool use_skyline =
      !opt.force_dense_kkt &&
      n >= static_cast<size_t>(opt.sparse_min_vars) &&
      static_cast<double>(profile) <=
          opt.sparse_max_fill * static_cast<double>(dense_lower);

  // Assembly buffers live across iterations; only the values are cleared.
  util::SkylineMatrix sky;
  Matrix hess;
  if (use_skyline)
    sky = util::SkylineMatrix(std::move(first));
  else
    hess = Matrix(n, n, 0.0);

  for (int it = 0; it < opt.max_newton_iters; ++it) {
    if (deadline.expired()) {
      out.failure = NewtonFailure::kTimeout;
      return out;
    }
    HessSink sink;
    if (use_skyline) {
      sky.clear_values();
      sink.sky = &sky;
    } else {
      hess.fill(0.0);
      sink.dense = &hess;
    }
    double phi = barrier_eval(bp, t, y, &grad, sink, scratch);
    phi = util::fault_corrupt(util::FaultClass::kSolverNonFinite,
                              "gp.newton.phi", phi);
    if (!std::isfinite(phi)) {
      out.failure = NewtonFailure::kNonFinite;
      return out;
    }
    // Levenberg-style floor keeps the system solvable when the Hessian is
    // nearly singular (e.g. slack variables far from activity).
    for (size_t i = 0; i < n; ++i) sink.add(i, i, 1e-12);
    Vec step;
    try {
      step = use_skyline
                 ? util::skyline_cholesky_solve(sky, util::scaled(grad, -1.0))
                 : util::cholesky_solve(hess, util::scaled(grad, -1.0));
    } catch (const util::Error&) {
      out.failure = NewtonFailure::kNonFinite;
      return out;
    }
    const double decrement2 = -util::dot(grad, step);
    if (!std::isfinite(decrement2)) {
      out.failure = NewtonFailure::kNonFinite;
      return out;
    }
    out.iterations = it + 1;
    if (decrement2 / 2.0 < opt.tolerance * 1e-2) {
      out.converged = true;
      return out;
    }
    // Backtracking line search (Armijo on phi, domain-respecting).
    double alpha = 1.0;
    bool accepted = false;
    for (int ls = 0; ls < 70; ++ls) {
      Vec trial = y;
      util::axpy(alpha, step, trial);
      const double phi_trial =
          barrier_eval(bp, t, trial, nullptr, HessSink{}, scratch);
      if (std::isfinite(phi_trial) &&
          phi_trial <= phi - 1e-4 * alpha * decrement2) {
        y = std::move(trial);
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      out.converged = true;  // cannot make progress; treat as stationary
      return out;
    }
    if (early_exit && early_exit(y)) {
      out.converged = true;
      return out;
    }
  }
  return out;
}

/// Status/diagnostic pairing shared by run-attempt exits.
FailureReason reason_of(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return FailureReason::kNone;
    case SolveStatus::kInfeasible:
      return FailureReason::kInfeasible;
    case SolveStatus::kMaxIter:
      return FailureReason::kMaxIter;
    case SolveStatus::kTimeout:
      return FailureReason::kTimeout;
    case SolveStatus::kNumericalError:
      return FailureReason::kNumericalError;
    case SolveStatus::kInvalidInput:
      return FailureReason::kInvalidInput;
  }
  return FailureReason::kInternal;
}

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kMaxIter:
      return "max_iterations";
    case SolveStatus::kTimeout:
      return "timeout";
    case SolveStatus::kNumericalError:
      return "numerical_error";
    case SolveStatus::kInvalidInput:
      return "invalid_input";
  }
  return "unknown";
}

namespace {

/// Finite best-effort point for solves that fail before producing one.
GpResult failed_result(const GpProblem& problem, SolveStatus status,
                       std::string detail) {
  GpResult result;
  result.status = status;
  result.message = detail;
  result.diagnostics = Status::Fail(reason_of(status), std::move(detail));
  const size_t n = problem.vars().size();
  result.x.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& info = problem.vars().info(static_cast<posy::VarId>(i));
    if (info.lower > 0.0 && std::isfinite(info.lower) &&
        std::isfinite(info.upper) && info.upper >= info.lower)
      result.x[i] = std::sqrt(info.lower * info.upper);
  }
  return result;
}

/// Per-solve telemetry: status/iteration counters, restart count, barrier
/// stage count and the final duality-gap estimate (< 0 = never reached
/// phase II). One relaxed atomic load when telemetry is disabled.
void record_solve(obs::Span& span, const GpResult& result, int barrier_stages,
                  double duality_gap) {
  auto& tel = obs::Telemetry::instance();
  if (!tel.enabled()) return;
  tel.counter_add("gp.solve.calls");
  tel.counter_add(std::string("gp.solve.status.") + to_string(result.status));
  tel.hist_record("gp.solve.newton_iters", result.newton_iterations);
  tel.hist_record("gp.solve.restarts", result.attempts - 1);
  tel.hist_record("gp.solve.barrier_stages", barrier_stages);
  if (duality_gap >= 0.0) tel.hist_record("gp.solve.duality_gap", duality_gap);
  span.arg("newton_iters", result.newton_iterations);
  span.arg("attempts", result.attempts);
  span.arg("barrier_stages", barrier_stages);
  if (duality_gap >= 0.0) span.arg("duality_gap", duality_gap);
}

}  // namespace

GpResult GpSolver::solve(const GpProblem& problem) const {
  try {
    return run(problem, nullptr);
  } catch (const std::exception& e) {
    return failed_result(problem, SolveStatus::kNumericalError, e.what());
  }
}

GpResult GpSolver::solve_from(const GpProblem& problem,
                              const util::Vec& x0) const {
  if (x0.size() != problem.vars().size()) {
    return failed_result(problem, SolveStatus::kInvalidInput,
                         "warm start size mismatch");
  }
  try {
    return run(problem, &x0);
  } catch (const std::exception& e) {
    return failed_result(problem, SolveStatus::kNumericalError, e.what());
  }
}

GpResult GpSolver::run(const GpProblem& problem, const util::Vec* x0) const {
  obs::Span solve_span("gp.solve");
  prof::ResourceScope solve_rusage("gp.solve");
  const auto& vars = problem.vars();
  const size_t n = vars.size();
  GpResult result;

  // Reject malformed data up front; the fallback point is finite by
  // construction so downstream consumers never see NaN widths.
  if (Status v = validate_problem(problem); !v.ok()) {
    GpResult rejected =
        failed_result(problem,
                      v.reason == FailureReason::kNumericalError
                          ? SolveStatus::kNumericalError
                          : SolveStatus::kInvalidInput,
                      v.detail);
    record_solve(solve_span, rejected, 0, -1.0);
    return rejected;
  }

  // Log-domain box bounds.
  Vec ylo(n), yhi(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& info = vars.info(static_cast<posy::VarId>(i));
    ylo[i] = std::log(info.lower);
    yhi[i] = std::log(std::max(info.upper, info.lower));
  }

  std::vector<Func> constraints;
  constraints.reserve(problem.constraints().size());
  for (const auto& c : problem.constraints())
    constraints.push_back(compile(c.lhs));
  Func objective = compile(problem.objective());
  // Conditioning guardrail: shift the objective's log-coefficients so its
  // largest term has logc 0 (equivalent to scaling the objective by a
  // positive constant, which moves no argmin). Keeps t * f0 tame when cost
  // coefficients are huge (e.g. power objectives in fF*V^2 units).
  if (!objective.terms.empty()) {
    double logc_max = -std::numeric_limits<double>::infinity();
    for (const auto& t : objective.terms)
      logc_max = std::max(logc_max, t.logc);
    if (std::fabs(logc_max) > 30.0)
      for (auto& t : objective.terms) t.logc -= logc_max;
  }

  const Deadline deadline = Deadline::from_ms(options_.deadline_ms);

  auto max_constraint = [&](const Vec& yy) {
    double m = -std::numeric_limits<double>::infinity();
    for (const auto& f : constraints) m = std::max(m, f.value_at(yy));
    return m;
  };

  // Telemetry accumulators across attempts: barrier stages consumed and
  // the most recent duality-gap estimate (m_total / t; < 0 until phase II).
  int total_stages = 0;
  double last_gap = -1.0;

  // One barrier solve from a given starting point. Writes into `out`.
  auto attempt = [&](const Vec& y_init, GpResult& out, int* newton_used) {
    Vec y = y_init;
    int total_newton = 0;
    // Introspection state accumulated as the attempt runs: the barrier-stage
    // trace and the final phase-II barrier weight (0 until phase II runs).
    // All of it is derived from values the solve computes anyway, so the
    // iterate trajectory is untouched.
    const double m_total = static_cast<double>(constraints.size()) +
                           2.0 * static_cast<double>(n);
    std::vector<StageTrace> trace;
    double t_final = 0.0;
    auto finish = [&](SolveStatus status, const std::string& msg) {
      out.x.assign(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        double xi = std::exp(y[i]);
        if (!std::isfinite(xi))
          xi = std::exp(0.5 * (ylo[i] + yhi[i]));
        out.x[i] = xi;
      }
      out.objective = problem.objective().eval(out.x);
      double viol = 0.0;
      out.binding.clear();
      out.diag = SolveDiagnostics{};
      out.diag.trace = std::move(trace);
      out.diag.final_t = t_final;
      out.diag.duality_gap = t_final > 0.0 ? m_total / t_final : -1.0;
      out.diag.constraints.reserve(problem.constraints().size());
      for (const auto& c : problem.constraints()) {
        const double v = c.lhs.eval(out.x);
        viol = std::max(viol, v - 1.0);
        ConstraintDiagnostics cd;
        cd.tag = c.tag;
        cd.lhs = v;
        cd.slack = 1.0 - v;
        cd.log_slack = v > 0.0 ? -std::log(v)
                               : std::numeric_limits<double>::infinity();
        if (status == SolveStatus::kOptimal && t_final > 0.0 &&
            cd.log_slack > 0.0 && std::isfinite(cd.log_slack))
          cd.dual = 1.0 / (t_final * cd.log_slack);
        if (status == SolveStatus::kOptimal &&
            v >= 1.0 - options_.binding_tol) {
          cd.binding = true;
          out.diag.binding_set.push_back(out.diag.constraints.size());
          out.binding.push_back(c.tag);
        }
        out.diag.constraints.push_back(std::move(cd));
      }
      out.max_violation = viol;
      out.newton_iterations = total_newton;
      out.status = status;
      out.message = msg;
      out.diagnostics = status == SolveStatus::kOptimal
                            ? Status::Ok()
                            : Status::Fail(reason_of(status), msg);
      *newton_used = total_newton;
    };

    // ---- Phase I: find a strictly feasible point ----
    if (!constraints.empty() && max_constraint(y) >= -options_.feas_margin) {
      obs::Span phase1_span("gp.phase1");
      // Augment with auxiliary s: minimize s subject to F_j(y) - s <= 0.
      Vec ylo1 = ylo, yhi1 = yhi;
      const double s0 = max_constraint(y) + 1.0;
      if (!std::isfinite(s0)) {
        finish(SolveStatus::kNumericalError,
               "non-finite constraint value at the starting point");
        return;
      }
      // Generous box for s keeps the barrier well-behaved.
      ylo1.push_back(std::min(-10.0, s0 - 100.0));
      yhi1.push_back(s0 + 100.0);
      std::vector<Func> aug;
      aug.reserve(constraints.size());
      for (const auto& f : constraints) {
        Func fa = f;
        fa.linear_vars.push_back(static_cast<int>(n));
        fa.linear_coef.push_back(-1.0);
        fa.finish();
        aug.push_back(std::move(fa));
      }
      Func obj_s;  // objective = s (pure linear)
      obj_s.linear_vars.push_back(static_cast<int>(n));
      obj_s.linear_coef.push_back(1.0);
      obj_s.finish();
      BarrierProblem p1{&aug, &obj_s, &ylo1, &yhi1};

      Vec ys = y;
      ys.push_back(s0);
      const double want = -2.0 * options_.feas_margin;
      auto feasible_now = [&](const Vec& yy) {
        Vec ycore(yy.begin(), yy.begin() + static_cast<long>(n));
        return max_constraint(ycore) < want;
      };
      double t = 1.0;
      NewtonFailure p1_failure = NewtonFailure::kNone;
      for (int stage = 0; stage < options_.max_barrier_stages; ++stage) {
        ++total_stages;
        auto outcome =
            newton_minimize(p1, t, ys, options_, deadline, feasible_now);
        total_newton += outcome.iterations;
        trace.push_back({static_cast<int>(trace.size()), true, t,
                         outcome.iterations, outcome.converged, -1.0});
        if (outcome.failure != NewtonFailure::kNone) {
          p1_failure = outcome.failure;
          break;
        }
        if (feasible_now(ys)) break;
        if (static_cast<double>(aug.size()) / t < options_.tolerance) break;
        t *= options_.barrier_mu;
      }
      y.assign(ys.begin(), ys.begin() + static_cast<long>(n));
      if (p1_failure == NewtonFailure::kTimeout) {
        finish(SolveStatus::kTimeout, "deadline exceeded in phase I");
        return;
      }
      if (p1_failure == NewtonFailure::kNonFinite) {
        finish(SolveStatus::kNumericalError,
               "non-finite value in a phase I Newton step");
        return;
      }
      if (max_constraint(y) >= 0.0) {
        finish(SolveStatus::kInfeasible,
               util::strfmt(
                   "phase I failed: max constraint value %.4g (want < 1)",
                   std::exp(max_constraint(y))));
        return;
      }
    }

    // ---- Phase II: barrier path following ----
    obs::Span phase2_span("gp.phase2");
    const BarrierProblem p2{&constraints, &objective, &ylo, &yhi};

    double t = options_.t_initial;
    // A warm start that is strictly feasible sits near the previous
    // optimum — close to its active constraints. Low-t centering would
    // drag the iterate back toward the analytic center only to return, so
    // skip two stages of the barrier schedule. Jumping further (e.g.
    // straight to the terminal weight) backfires: far from the central
    // path at high t, Newton exhausts its per-stage budget and the solve
    // settles on an uncentered point. Phase I above restores strict
    // feasibility when the raw warm point sat on its binding set.
    if (x0 != nullptr && max_constraint(y) < -options_.feas_margin)
      t *= options_.barrier_mu * options_.barrier_mu;
    bool hit_limit = true;
    bool stage_exhausted = false;
    for (int stage = 0; stage < options_.max_barrier_stages; ++stage) {
      ++total_stages;
      auto outcome = newton_minimize(p2, t, y, options_, deadline);
      total_newton += outcome.iterations;
      t_final = t;
      trace.push_back({static_cast<int>(trace.size()), false, t,
                       outcome.iterations, outcome.converged, m_total / t});
      if (outcome.failure == NewtonFailure::kTimeout) {
        finish(SolveStatus::kTimeout, "deadline exceeded in phase II");
        return;
      }
      if (outcome.failure == NewtonFailure::kNonFinite) {
        finish(SolveStatus::kNumericalError,
               "non-finite value in a phase II Newton step");
        return;
      }
      stage_exhausted = !outcome.converged &&
                        outcome.iterations >= options_.max_newton_iters;
      if (options_.verbose) {
        util::log_debug(util::strfmt("gp: stage %d t=%.3g newton=%d", stage,
                                     t, outcome.iterations));
      }
      last_gap = m_total / t;
      if (m_total / t < options_.tolerance) {
        hit_limit = false;
        break;
      }
      t *= options_.barrier_mu;
    }

    if (hit_limit || stage_exhausted)
      finish(SolveStatus::kMaxIter, "iteration budget exhausted");
    else
      finish(SolveStatus::kOptimal, "optimal");
  };

  // Initial point: warm start (clipped strictly inside the box) or the box
  // midpoint (geometric mean of the bounds).
  Vec y0(n);
  for (size_t i = 0; i < n; ++i) {
    if (x0 != nullptr) {
      const double margin = 1e-3 * std::max(1.0, yhi[i] - ylo[i]);
      y0[i] = std::clamp(std::log(std::max((*x0)[i], 1e-300)),
                         ylo[i] + margin, yhi[i] - margin);
      if (!std::isfinite(y0[i])) y0[i] = 0.5 * (ylo[i] + yhi[i]);
    } else {
      y0[i] = 0.5 * (ylo[i] + yhi[i]);
    }
    if (yhi[i] - ylo[i] < 1e-12) y0[i] = ylo[i];  // effectively fixed var
  }

  // Multi-start: retry failed solves from deterministically perturbed
  // initial points. Genuine infeasibility is not retried unless marginal
  // (small violation) — restarts cannot manufacture feasibility, but they
  // do rescue phase I runs wedged by a bad starting corner.
  int cumulative_newton = 0;
  for (int a = 0; a <= std::max(0, options_.restarts); ++a) {
    Vec y_start = y0;
    if (a > 0) {
      util::Rng rng(options_.restart_seed + static_cast<uint64_t>(a));
      for (size_t i = 0; i < n; ++i) {
        if (yhi[i] - ylo[i] < 1e-12) continue;
        const double span = yhi[i] - ylo[i];
        const double jitter = rng.uniform(-0.2, 0.2) * std::min(span, 4.0);
        y_start[i] =
            std::clamp(y0[i] + jitter, ylo[i] + 1e-3 * span,
                       yhi[i] - 1e-3 * span);
      }
    }
    GpResult r;
    int used = 0;
    attempt(y_start, r, &used);
    cumulative_newton += used;
    const bool better =
        a == 0 || (r.status == SolveStatus::kOptimal && !result.ok()) ||
        (!result.ok() && r.max_violation < result.max_violation);
    if (better) result = std::move(r);
    result.newton_iterations = cumulative_newton;
    result.attempts = a + 1;
    if (result.ok()) break;
    if (deadline.expired()) break;
    const bool retryable =
        result.status == SolveStatus::kMaxIter ||
        result.status == SolveStatus::kNumericalError ||
        (result.status == SolveStatus::kInfeasible &&
         result.max_violation < 0.25);
    if (!retryable) break;
  }
  record_solve(solve_span, result, total_stages, last_gap);
  return result;
}

}  // namespace smart::gp

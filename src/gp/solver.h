#pragma once

/// \file solver.h
/// Interior-point solver for geometric programs. The GP is transformed to a
/// convex program via y = log x (posynomials become log-sum-exp functions,
/// paper refs [3][6][7]) and solved with a two-phase barrier Newton method:
///   phase I  — minimize a smoothed max of constraint functions until a
///              strictly feasible point is found;
///   phase II — standard log-barrier path following with damped Newton.
///
/// Guardrails: the solver never throws and never returns non-finite
/// variable values. Malformed problems, NaN/Inf surfacing mid-solve,
/// iteration exhaustion and wall-clock overrun all come back as a
/// SolveStatus plus a structured util::Status diagnostic, and failed
/// attempts are retried from deterministically perturbed starting points
/// (multi-start) before giving up.

#include <cstddef>
#include <string>
#include <vector>

#include "gp/problem.h"
#include "util/linalg.h"
#include "util/status.h"

namespace smart::gp {

/// Solver knobs; defaults are tuned for SMART sizing problems (tens to a few
/// hundred variables, hundreds of constraints).
struct SolverOptions {
  double tolerance = 3e-5;       ///< duality-gap-style stopping criterion
  double binding_tol = 0.02;     ///< |lhs - 1| threshold to report binding
  double barrier_mu = 18.0;      ///< barrier parameter growth factor
  double t_initial = 1.0;        ///< initial barrier weight
  int max_newton_iters = 400;    ///< per barrier stage
  int max_barrier_stages = 60;
  double feas_margin = 1e-7;     ///< required slack to call a point feasible
  bool verbose = false;

  /// Wall-clock budget for one solve() call including restarts (ms);
  /// < 0 disables the deadline. Checked once per Newton iteration.
  double deadline_ms = -1.0;
  /// Extra solve attempts from perturbed initial points after a failed
  /// first attempt (kMaxIter, kNumericalError, or marginal kInfeasible).
  int restarts = 1;
  /// Seed of the deterministic restart perturbations.
  uint64_t restart_seed = 0x5eed5eedULL;

  /// Newton KKT backend. The Hessian of the barrier is a union of
  /// per-function support cliques plus the box diagonal; when its skyline
  /// profile is at most `sparse_max_fill` of the dense lower triangle and
  /// the problem has at least `sparse_min_vars` variables, the Newton
  /// systems assemble and factorize in skyline form (util::SkylineMatrix).
  /// `force_dense_kkt` pins the dense path regardless.
  int sparse_min_vars = 48;
  double sparse_max_fill = 0.5;
  bool force_dense_kkt = false;
};

enum class SolveStatus {
  kOptimal,         ///< converged to tolerance
  kInfeasible,      ///< phase I could not find a strictly feasible point
  kMaxIter,         ///< iteration limit hit; best point returned
  kTimeout,         ///< deadline_ms exceeded; best point returned
  kNumericalError,  ///< NaN/Inf in the problem data or a Newton step
  kInvalidInput,    ///< malformed problem (no vars, empty box, zero objective)
};

const char* to_string(SolveStatus status);

/// Post-solve view of one constraint, evaluated at the returned point.
/// `dual` is the log-barrier dual estimate lambda_j = 1 / (t_final * u_j)
/// with u_j = -log lhs_j(x) the log-domain slack; by barrier
/// complementarity lambda_j * u_j = 1/t_final, so at convergence the dual
/// is large exactly on the constraints that bind. Duals are only populated
/// for kOptimal solves (phase II finished); elsewhere they stay 0.
struct ConstraintDiagnostics {
  std::string tag;        ///< constraint tag from the GpProblem
  double lhs = 0.0;       ///< lhs(x), feasible iff <= 1
  double slack = 0.0;     ///< 1 - lhs(x)
  double log_slack = 0.0; ///< u_j = -log lhs(x)
  double dual = 0.0;      ///< barrier dual estimate (kOptimal only)
  bool binding = false;   ///< lhs within binding_tol of 1 at an optimum
};

/// One barrier stage of the convergence trace. Phase I stages minimize the
/// feasibility auxiliary (gap stays < 0); phase II stages report the
/// duality-gap estimate m_total / t after the stage's Newton solve.
struct StageTrace {
  int stage = 0;          ///< 0-based across both phases of the attempt
  bool phase1 = false;
  double t = 0.0;         ///< barrier weight for the stage
  int newton_iters = 0;
  bool converged = false; ///< Newton decrement criterion met
  double gap = -1.0;      ///< duality-gap estimate; < 0 in phase I
};

/// Introspection record exported by every solve without perturbing it: all
/// quantities are derived from values the solver already computes (the
/// final point, the per-constraint evaluations, the barrier schedule).
struct SolveDiagnostics {
  /// Per-constraint view in GpProblem constraint order.
  std::vector<ConstraintDiagnostics> constraints;
  /// Indices into `constraints` of the binding set (kOptimal solves).
  std::vector<size_t> binding_set;
  /// Barrier-stage convergence trace of the accepted attempt.
  std::vector<StageTrace> trace;
  double final_t = 0.0;     ///< barrier weight at exit; 0 if no phase II
  double duality_gap = -1.0;///< m_total / final_t at exit; < 0 if no phase II
};

/// Result of a GP solve. x is in the original (positive) domain and always
/// finite, even on failure (failed solves return a clamped best-effort
/// point so downstream reporting never sees NaN widths).
struct GpResult {
  SolveStatus status = SolveStatus::kMaxIter;
  util::Vec x;               ///< variable values (size = vars in table)
  double objective = 0.0;    ///< objective value at x
  double max_violation = 0;  ///< max over constraints of (lhs(x) - 1)
  int newton_iterations = 0;
  int attempts = 1;          ///< solve attempts including restarts
  std::string message;
  /// Structured failure reason mirroring `status` (ok() iff kOptimal).
  util::Status diagnostics;
  /// Tags of constraints active at the solution (lhs within binding_tol of
  /// 1) — the designer's answer to "what is limiting this design".
  std::vector<std::string> binding;
  /// Full introspection record (slacks, duals, convergence trace).
  SolveDiagnostics diag;

  bool ok() const { return status == SolveStatus::kOptimal; }
};

/// Solves a geometric program. Thread-compatible (no shared state).
class GpSolver {
 public:
  explicit GpSolver(SolverOptions options = {}) : options_(options) {}

  /// Solves from the box midpoint. Never throws.
  GpResult solve(const GpProblem& problem) const;

  /// Solves warm-started from `x0` (clipped into the variable box). When
  /// x0 is already strictly feasible — the common case in the sizer's
  /// re-specification loop, where consecutive problems differ only in
  /// their constraint scaling — phase I is skipped entirely. Never throws.
  GpResult solve_from(const GpProblem& problem, const util::Vec& x0) const;

 private:
  GpResult run(const GpProblem& problem, const util::Vec* x0) const;

  SolverOptions options_;
};

}  // namespace smart::gp

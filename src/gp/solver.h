#pragma once

/// \file solver.h
/// Interior-point solver for geometric programs. The GP is transformed to a
/// convex program via y = log x (posynomials become log-sum-exp functions,
/// paper refs [3][6][7]) and solved with a two-phase barrier Newton method:
///   phase I  — minimize a smoothed max of constraint functions until a
///              strictly feasible point is found;
///   phase II — standard log-barrier path following with damped Newton.
///
/// Guardrails: the solver never throws and never returns non-finite
/// variable values. Malformed problems, NaN/Inf surfacing mid-solve,
/// iteration exhaustion and wall-clock overrun all come back as a
/// SolveStatus plus a structured util::Status diagnostic, and failed
/// attempts are retried from deterministically perturbed starting points
/// (multi-start) before giving up.

#include <string>

#include "gp/problem.h"
#include "util/linalg.h"
#include "util/status.h"

namespace smart::gp {

/// Solver knobs; defaults are tuned for SMART sizing problems (tens to a few
/// hundred variables, hundreds of constraints).
struct SolverOptions {
  double tolerance = 3e-5;       ///< duality-gap-style stopping criterion
  double binding_tol = 0.02;     ///< |lhs - 1| threshold to report binding
  double barrier_mu = 18.0;      ///< barrier parameter growth factor
  double t_initial = 1.0;        ///< initial barrier weight
  int max_newton_iters = 400;    ///< per barrier stage
  int max_barrier_stages = 60;
  double feas_margin = 1e-7;     ///< required slack to call a point feasible
  bool verbose = false;

  /// Wall-clock budget for one solve() call including restarts (ms);
  /// < 0 disables the deadline. Checked once per Newton iteration.
  double deadline_ms = -1.0;
  /// Extra solve attempts from perturbed initial points after a failed
  /// first attempt (kMaxIter, kNumericalError, or marginal kInfeasible).
  int restarts = 1;
  /// Seed of the deterministic restart perturbations.
  uint64_t restart_seed = 0x5eed5eedULL;
};

enum class SolveStatus {
  kOptimal,         ///< converged to tolerance
  kInfeasible,      ///< phase I could not find a strictly feasible point
  kMaxIter,         ///< iteration limit hit; best point returned
  kTimeout,         ///< deadline_ms exceeded; best point returned
  kNumericalError,  ///< NaN/Inf in the problem data or a Newton step
  kInvalidInput,    ///< malformed problem (no vars, empty box, zero objective)
};

const char* to_string(SolveStatus status);

/// Result of a GP solve. x is in the original (positive) domain and always
/// finite, even on failure (failed solves return a clamped best-effort
/// point so downstream reporting never sees NaN widths).
struct GpResult {
  SolveStatus status = SolveStatus::kMaxIter;
  util::Vec x;               ///< variable values (size = vars in table)
  double objective = 0.0;    ///< objective value at x
  double max_violation = 0;  ///< max over constraints of (lhs(x) - 1)
  int newton_iterations = 0;
  int attempts = 1;          ///< solve attempts including restarts
  std::string message;
  /// Structured failure reason mirroring `status` (ok() iff kOptimal).
  util::Status diagnostics;
  /// Tags of constraints active at the solution (lhs within binding_tol of
  /// 1) — the designer's answer to "what is limiting this design".
  std::vector<std::string> binding;

  bool ok() const { return status == SolveStatus::kOptimal; }
};

/// Solves a geometric program. Thread-compatible (no shared state).
class GpSolver {
 public:
  explicit GpSolver(SolverOptions options = {}) : options_(options) {}

  /// Solves from the box midpoint. Never throws.
  GpResult solve(const GpProblem& problem) const;

  /// Solves warm-started from `x0` (clipped into the variable box). When
  /// x0 is already strictly feasible — the common case in the sizer's
  /// re-specification loop, where consecutive problems differ only in
  /// their constraint scaling — phase I is skipped entirely. Never throws.
  GpResult solve_from(const GpProblem& problem, const util::Vec& x0) const;

 private:
  GpResult run(const GpProblem& problem, const util::Vec* x0) const;

  SolverOptions options_;
};

}  // namespace smart::gp

#include "gp/problem.h"

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::gp {

void GpProblem::set_objective(posy::Posynomial objective) {
  SMART_CHECK(!objective.is_zero(), "GP objective must be nonzero");
  objective_ = std::move(objective);
}

void GpProblem::add_constraint(posy::Posynomial lhs, std::string tag) {
  if (lhs.is_zero()) return;  // 0 <= 1 always holds
  if (lhs.is_constant()) {
    const double c = lhs.constant_value();
    SMART_CHECK(c <= 1.0 + 1e-12,
                util::strfmt("constraint '%s' is constant %.4g > 1: "
                             "infeasible by construction",
                             tag.c_str(), c));
    return;
  }
  constraints_.push_back(Constraint{std::move(lhs), std::move(tag)});
}

void GpProblem::add_le(const posy::Posynomial& lhs, const posy::Monomial& rhs,
                       std::string tag) {
  SMART_CHECK(rhs.coeff() > 0.0, "rhs monomial must be positive");
  add_constraint(lhs * rhs.inverse(), std::move(tag));
}

}  // namespace smart::gp

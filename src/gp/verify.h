#pragma once

/// \file verify.h
/// GP well-formedness verifier: static analysis of a geometric program
/// before any numerics run. Catches what would otherwise burn solver
/// restarts or time out in phase I:
///
///   * GPV100 — malformed shell (no variables, objective not set)
///   * GPV101 — degenerate monomials (non-finite / non-positive
///              coefficients, non-finite exponents)
///   * GPV102 — certificate of unboundedness: a variable the objective
///              decreases in monotonically that no constraint bounds from
///              above (every exponent of the variable in the
///              objective+constraint exponent matrix is negative)
///   * GPV103 — unused variables
///   * GPV104 — constraints infeasible everywhere in the variable box
///              (interval lower bound of the lhs exceeds 1; subsumes
///              trivially infeasible constant constraints)
///   * GPV105 — empty or non-positive variable boxes
///
/// Used by the sizer as a cheap pre-solve gate; also reachable through
/// `smart_cli lint`.

#include "gp/problem.h"
#include "lint/diagnostics.h"
#include "util/status.h"

namespace smart::gp {

/// Runs every GPV rule; findings are counted into the `lint.findings.*`
/// telemetry counters when telemetry is enabled. Never throws. `name` is
/// the report's macro field (e.g. the netlist the problem was built from).
lint::Report verify_problem(const GpProblem& problem,
                            const lint::Options& options = {},
                            const std::string& name = "gp");

/// Collapses a verification report into the pipeline failure taxonomy:
/// Ok when the report has no errors; otherwise kNumericalError for
/// non-finite data, kInfeasible for box-infeasible constraints, and
/// kInvalidInput for the rest, with the first error's message as detail.
util::Status verify_status(const lint::Report& report);

}  // namespace smart::gp

#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace smart::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SMART_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SMART_CHECK(cells.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&]() {
    for (size_t c = 0; c < width.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    out << "-|\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

}  // namespace smart::util

#include "util/vecmath.h"

#include <cmath>

// On GNU/x86-64 this translation unit is compiled with
// -ffast-math -fopenmp-simd (scoped to this file only — see
// src/util/CMakeLists.txt) so the exp calls below vectorize against
// libmvec. SMART_VECMATH_CLONES additionally emits an AVX2 clone next to
// the baseline SSE one, dispatched once at load time via ifunc.

#if defined(SMART_VECMATH_CLONES)
#define SMART_VECMATH_TARGETS __attribute__((target_clones("avx2", "default")))
#else
#define SMART_VECMATH_TARGETS
#endif

namespace smart::util {

SMART_VECMATH_TARGETS
double exp_shifted(const double* z, double shift, double* out, size_t n) {
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double e = std::exp(z[k] - shift);
    out[k] = e;
    acc += e;
  }
  return acc;
}

SMART_VECMATH_TARGETS
double sum_exp_shifted(const double* z, double shift, size_t n) {
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) acc += std::exp(z[k] - shift);
  return acc;
}

}  // namespace smart::util

#pragma once

/// \file logging.h
/// Minimal leveled logging to stderr. Quiet by default so benches and tests
/// print only their own tables; raise the level to debug solver internals.

#include <cstdio>
#include <string>

namespace smart::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel& log_level();

void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace smart::util

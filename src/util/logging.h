#pragma once

/// \file logging.h
/// Minimal leveled logging. Quiet by default so benches and tests print
/// only their own tables; raise the level to debug solver internals.
///
/// Thread-safe: the level is an atomic and every line goes through one
/// mutex-guarded sink, so advisor sweeps logging from std::async workers
/// never interleave bytes or race the threshold.

#include <cstdio>
#include <string>

namespace smart::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Thread-safe.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Returns false and leaves `out` untouched on an unknown name.
bool parse_log_level(const std::string& name, LogLevel* out);

/// Redirects the log sink (nullptr restores stderr). The caller keeps
/// ownership of the FILE; used by tests to keep hammering threads off the
/// terminal. Thread-safe.
void set_log_sink(std::FILE* sink);

void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::kError, msg); }

}  // namespace smart::util

#pragma once

/// \file status.h
/// Structured failure taxonomy for the sizing pipeline. Every stage of the
/// solve path (constraint generation, GP solve, sizing, advising) reports
/// *why* it failed through a FailureReason instead of a free-form string or
/// an uncaught exception, so a caller sweeping many candidates can decide
/// mechanically whether to retry, relax, degrade, or skip — the paper's
/// promise that a failed topology "is reported, not fatal", made machine
/// readable.

#include <string>

namespace smart::util {

/// Why a pipeline stage failed. Ordered roughly from "caller's fault" to
/// "numerics' fault"; kNone means success.
enum class FailureReason {
  kNone = 0,        ///< success
  kInvalidInput,    ///< malformed request (empty problem, non-positive spec)
  kInfeasible,      ///< constraints admit no feasible point
  kMaxIter,         ///< iteration budget exhausted before convergence
  kTimeout,         ///< wall-clock deadline exceeded
  kNumericalError,  ///< NaN/Inf surfaced in models, constraints, or solver
  kFaultInjected,   ///< a FaultInjector hook fired (test/chaos runs)
  kInternal,        ///< invariant violation escaping a lower layer
};

/// Stable lowercase identifier for logs and machine-readable reports.
const char* to_string(FailureReason reason);

/// A failure reason plus human-readable context. Cheap to copy, compare on
/// `reason`, print with to_string().
struct Status {
  FailureReason reason = FailureReason::kNone;
  std::string detail;

  bool ok() const { return reason == FailureReason::kNone; }

  /// "ok" or "<reason>: <detail>".
  std::string to_string() const;

  static Status Ok() { return {}; }
  static Status Fail(FailureReason reason, std::string detail = {}) {
    return {reason, std::move(detail)};
  }
};

}  // namespace smart::util

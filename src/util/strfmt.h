#pragma once

/// \file strfmt.h
/// printf-style std::string formatting (GCC 12 lacks <format>).

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace smart::util {

/// Returns the printf-formatted string. Safe for arbitrary lengths.
[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt,
                                                        ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace smart::util

#include "util/logging.h"

#include <atomic>
#include <mutex>

namespace smart::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

/// Guards the sink pointer and serializes writes so concurrent log lines
/// never interleave.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

std::FILE* g_sink = nullptr;  // nullptr = stderr; guarded by sink_mutex()

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else if (name == "off") *out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_sink(std::FILE* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  g_sink = sink;
}

void log(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[smart:%s] %s\n", tag, msg.c_str());
}

}  // namespace smart::util

#include "util/logging.h"

namespace smart::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void log(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[smart:%s] %s\n", tag, msg.c_str());
}

}  // namespace smart::util

#include "util/status.h"

namespace smart::util {

const char* to_string(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone:
      return "ok";
    case FailureReason::kInvalidInput:
      return "invalid_input";
    case FailureReason::kInfeasible:
      return "infeasible";
    case FailureReason::kMaxIter:
      return "max_iterations";
    case FailureReason::kTimeout:
      return "timeout";
    case FailureReason::kNumericalError:
      return "numerical_error";
    case FailureReason::kFaultInjected:
      return "fault_injected";
    case FailureReason::kInternal:
      return "internal_error";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string s = smart::util::to_string(reason);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace smart::util

#pragma once

/// \file linalg.h
/// Small dense linear algebra: vectors as std::vector<double>, a row-major
/// Matrix, Cholesky solves (with adaptive diagonal regularization for the
/// GP solver's Newton systems), and a non-negative least squares routine
/// used by the posynomial model fitter.

#include <cstddef>
#include <vector>

namespace smart::util {

using Vec = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// A += alpha * x * x^T (symmetric rank-1 update; requires square A).
  void add_outer(const Vec& x, double alpha);

  /// Returns A * x.
  Vec mul(const Vec& x) const;

  /// Returns A^T * x.
  Vec mul_transpose(const Vec& x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector helpers ----

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
double norm_inf(const Vec& a);
/// y += alpha * x
void axpy(double alpha, const Vec& x, Vec& y);
Vec scaled(const Vec& x, double alpha);

/// Solves the symmetric positive (semi)definite system A x = b in place via
/// Cholesky. If factorization fails, retries with growing diagonal
/// regularization (A + lambda I). Returns the solution; throws util::Error if
/// the system cannot be solved even with heavy regularization.
Vec cholesky_solve(Matrix a, Vec b);

/// Non-negative least squares: minimizes |A x - b|^2 subject to x >= 0,
/// via Lawson-Hanson active-set iteration. Suitable for the small systems
/// (< 16 unknowns) of the model fitter.
Vec nnls(const Matrix& a, const Vec& b, int max_iter = 200);

}  // namespace smart::util

#pragma once

/// \file linalg.h
/// Small dense linear algebra: vectors as std::vector<double>, a row-major
/// Matrix, Cholesky solves (with adaptive diagonal regularization for the
/// GP solver's Newton systems), and a non-negative least squares routine
/// used by the posynomial model fitter.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace smart::util {

using Vec = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Sets every entry to v (buffer-reuse helper for iterative assemblies).
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// A += alpha * x * x^T (symmetric rank-1 update; requires square A).
  void add_outer(const Vec& x, double alpha);

  /// Returns A * x.
  Vec mul(const Vec& x) const;

  /// Returns A^T * x.
  Vec mul_transpose(const Vec& x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector helpers ----

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
double norm_inf(const Vec& a);
/// y += alpha * x
void axpy(double alpha, const Vec& x, Vec& y);
Vec scaled(const Vec& x, double alpha);

/// Solves the symmetric positive (semi)definite system A x = b in place via
/// Cholesky. If factorization fails, retries with growing diagonal
/// regularization (A + lambda I). Returns the solution; throws util::Error if
/// the system cannot be solved even with heavy regularization.
Vec cholesky_solve(Matrix a, Vec b);

/// Symmetric matrix in skyline (envelope/profile) storage: row i stores the
/// lower-triangle columns [first(i), i] contiguously. Cholesky factors of
/// such matrices fill in only inside the envelope, so for Newton KKT
/// systems whose Hessian is a union of small support cliques (as in the GP
/// solver) both memory and factorization flops drop from O(n^2)/O(n^3) to
/// O(profile)/O(sum of row-length^2).
class SkylineMatrix {
 public:
  SkylineMatrix() = default;
  /// `first[i]` = first potentially nonzero column of row i (<= i). The
  /// profile is fixed at construction; values start at zero.
  explicit SkylineMatrix(std::vector<size_t> first);

  size_t rows() const { return first_.size(); }
  size_t first(size_t i) const { return first_[i]; }
  /// Stored entry count, sum over rows of (i - first(i) + 1).
  size_t profile() const { return vals_.size(); }

  /// Zeroes all stored values, keeping the profile.
  void clear_values();

  /// Lower-triangle access; requires first(i) <= j <= i.
  double& at(size_t i, size_t j) { return vals_[start_[i] + j - first_[i]]; }
  double at(size_t i, size_t j) const {
    return vals_[start_[i] + j - first_[i]];
  }
  /// Adds v at (i, j) when (i, j) lies in the stored lower triangle and
  /// silently drops strict upper-triangle coordinates, so symmetric
  /// scatter loops can feed dense and skyline sinks identically.
  void add(size_t i, size_t j, double v) {
    if (j <= i) at(i, j) += v;
  }

 private:
  std::vector<size_t> first_;
  std::vector<size_t> start_;  ///< offset of row i's first stored column
  std::vector<double> vals_;
};

/// Solves A x = b for a skyline-stored SPD matrix with the same adaptive
/// diagonal-regularization retry policy as cholesky_solve. Throws
/// util::Error when the system stays indefinite under heavy regularization.
Vec skyline_cholesky_solve(SkylineMatrix a, Vec b);

/// Non-negative least squares: minimizes |A x - b|^2 subject to x >= 0,
/// via Lawson-Hanson active-set iteration. Suitable for the small systems
/// (< 16 unknowns) of the model fitter.
Vec nnls(const Matrix& a, const Vec& b, int max_iter = 200);

}  // namespace smart::util

#pragma once

/// \file deadline.h
/// Wall-clock deadline shared across pipeline stages. One Deadline is
/// created at the top of a request (a solver call, a sizing, a served
/// request) and passed down by pointer; every expensive stage — the
/// parallel extraction wavefronts, constraint emission chunks, each Newton
/// iteration — polls `expired()` and aborts with a structured kTimeout
/// instead of running to completion. `remaining_ms()` lets a stage hand the
/// rest of the budget to a child stage (the serving layer's "client
/// deadline minus elapsed queue time" math).

#include <chrono>
#include <cstdint>

#include "util/check.h"

namespace smart::util {

/// Thrown by pipeline stages that cannot return a partial result in band
/// (e.g. mid-extraction); callers map it to FailureReason::kTimeout.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

struct Deadline {
  std::chrono::steady_clock::time_point at;
  bool enabled = false;

  /// A deadline `ms` milliseconds from now; ms < 0 disables (never expires).
  static Deadline from_ms(double ms) {
    Deadline d;
    if (ms >= 0.0) {
      d.enabled = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0));
    }
    return d;
  }

  bool expired() const {
    return enabled && std::chrono::steady_clock::now() >= at;
  }

  /// Budget left in milliseconds: never negative when enabled, -1 when
  /// disabled (the pipeline's "no deadline" convention).
  double remaining_ms() const {
    if (!enabled) return -1.0;
    const auto left = std::chrono::duration<double, std::milli>(
        at - std::chrono::steady_clock::now());
    return left.count() > 0.0 ? left.count() : 0.0;
  }
};

/// Nullable-deadline poll: a nullptr deadline never expires.
inline bool deadline_expired(const Deadline* d) {
  return d != nullptr && d->expired();
}

}  // namespace smart::util

#pragma once

/// \file vecmath.h
/// Batched elementwise math for hot numeric loops. The GP solver's
/// log-sum-exp evaluations spend most of their cycles in std::exp; these
/// helpers expose that work as flat loops the compiler can vectorize
/// against libmvec (glibc's SIMD libm) where available, with a plain
/// scalar build everywhere else. Vectorized exp may differ from scalar
/// std::exp by a few ulp — far below the solver's convergence tolerance —
/// and a given binary always evaluates deterministically.

#include <cstddef>

namespace smart::util {

/// out[k] = exp(z[k] - shift) for k in [0, n); returns sum_k out[k].
/// In-place use (out == z) is allowed.
double exp_shifted(const double* z, double shift, double* out, size_t n);

/// Returns sum_k exp(z[k] - shift) without materializing the terms.
double sum_exp_shifted(const double* z, double shift, size_t n);

}  // namespace smart::util

#pragma once

/// \file check.h
/// Error type and invariant-checking macros used throughout the SMART
/// libraries. Violations throw smart::util::Error so callers can recover
/// (e.g. a topology that fails to size is reported, not fatal).

#include <stdexcept>
#include <string>

namespace smart::util {

/// Exception thrown on precondition / invariant violations inside SMART.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg, const char* file,
                              int line) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace smart::util

/// Check a condition that must hold; throws smart::util::Error otherwise.
#define SMART_CHECK(cond, msg)                            \
  do {                                                    \
    if (!(cond)) {                                        \
      ::smart::util::fail(std::string("check failed (")   \
                              + #cond + "): " + (msg),    \
                          __FILE__, __LINE__);            \
    }                                                     \
  } while (0)

/// Unconditional failure with a message.
#define SMART_FAIL(msg) ::smart::util::fail((msg), __FILE__, __LINE__)

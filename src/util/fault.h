#pragma once

/// \file fault.h
/// Process-wide fault injector for robustness testing of the sizing
/// pipeline. Production code is instrumented with named injection *sites*
/// (e.g. "model.coeff", "gp.newton", "refsim.delay"); tests arm one
/// FaultClass at a time — optionally filtered to a site substring and
/// delayed until the Nth hit — and the pipeline must either degrade
/// gracefully or report a structured FailureReason, never crash.
///
/// Disarmed cost is one relaxed atomic load per site, so the hooks stay
/// compiled into release builds and chaos runs can arm them in situ.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace smart::util {

/// What kind of damage to inject at matching sites.
enum class FaultClass {
  kNone = 0,
  kModelCoeffPerturb,   ///< multiply model coefficients by `magnitude`
  kModelNonFinite,      ///< poison a model coefficient with NaN
  kSolverNonFinite,     ///< force a non-finite value inside a Newton step
  kSolverExhaustIters,  ///< force the Newton iteration budget to exhaust
  kTimerPerturb,        ///< scale reference-timer delays by `magnitude`
  kTimerNonFinite,      ///< poison the reference-timer worst delay with NaN
  // Serving-layer faults (SMART-Serve resilience sweep).
  kServeFrameCorrupt,   ///< flip bytes of a received protocol frame
  kServeIoFail,         ///< fail a socket accept/read/write
  kServeWorkerStall,    ///< stall a request worker for `magnitude` ms
  kServeCachePoison,    ///< corrupt a result-cache entry on lookup
};

const char* to_string(FaultClass c);

/// Singleton fault injector. Thread-safe: the advisor sizes candidate
/// topologies concurrently and every thread must observe the armed fault.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms `fault`. `site_filter` is a substring match against site names
  /// ("" matches every site); `magnitude` scales perturbation classes;
  /// `skip_hits` delays firing until that many matching hits have passed
  /// (0 = fire on the first hit); `max_fires` stops injecting after that
  /// many firings (< 0 = unlimited) so tests can poison exactly one
  /// candidate of a sweep. Re-arming resets the hit counters.
  void arm(FaultClass fault, std::string site_filter = "",
           double magnitude = 10.0, int skip_hits = 0, int max_fires = -1);

  /// Disarms; sites go back to the single-atomic-load fast path.
  void disarm();

  FaultClass armed() const {
    return static_cast<FaultClass>(armed_.load(std::memory_order_relaxed));
  }

  /// True when `fault` is armed, the site matches, and the skip count has
  /// been consumed. Counts a hit on every match. Boolean sites
  /// (kSolverExhaustIters) call this directly.
  bool should_fire(FaultClass fault, const char* site);

  /// Value-carrying sites: returns `value` untouched unless the fault
  /// fires, in which case perturbation classes return value * magnitude and
  /// non-finite classes return NaN.
  double corrupt(FaultClass fault, const char* site, double value);

  /// Matching-site hits observed since the last arm() (fired or skipped).
  int hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Hits that actually fired (corrupted a value / returned true).
  int fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  FaultInjector() = default;

  std::atomic<int> armed_{0};  ///< FaultClass; fast disarmed check
  std::atomic<int> hits_{0};
  std::atomic<int> fired_{0};
  std::atomic<int> skip_left_{0};
  std::atomic<int> fires_left_{-1};  ///< < 0 = unlimited
  mutable std::mutex mu_;  ///< guards filter_ and magnitude_
  std::string filter_;
  double magnitude_ = 10.0;
};

/// RAII arming for tests: arms on construction, disarms on destruction.
class FaultScope {
 public:
  explicit FaultScope(FaultClass fault, std::string site_filter = "",
                      double magnitude = 10.0, int skip_hits = 0,
                      int max_fires = -1) {
    FaultInjector::instance().arm(fault, std::move(site_filter), magnitude,
                                  skip_hits, max_fires);
  }
  ~FaultScope() { FaultInjector::instance().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

/// Site helper used by instrumented production code: no-op (one atomic
/// load) while disarmed.
inline double fault_corrupt(FaultClass fault, const char* site,
                            double value) {
  auto& fi = FaultInjector::instance();
  if (fi.armed() != fault) return value;
  return fi.corrupt(fault, site, value);
}

inline bool fault_fires(FaultClass fault, const char* site) {
  auto& fi = FaultInjector::instance();
  if (fi.armed() != fault) return false;
  return fi.should_fire(fault, site);
}

}  // namespace smart::util

#pragma once

/// \file table.h
/// ASCII table printer used by the benchmark harnesses to emit the paper's
/// tables/figure series in a uniform, diff-friendly format.

#include <string>
#include <vector>

namespace smart::util {

/// Collects rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a title line, column rule, and aligned cells.
  std::string render(const std::string& title = "") const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smart::util

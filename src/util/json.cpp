#include "util/json.h"

#include <cctype>
#include <cstddef>
#include <cstdio>
#include <exception>

namespace smart::util {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) return true;
    return number(out);
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep the reader simple: skip the code point
            break;
          default: return false;
        }
        ++pos_;
      } else {
        *out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out) {
  return Parser(text).parse(out);
}

namespace {

void dump_string(const std::string& s, std::string* out) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void dump_value(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      char buf[32];
      // Integral values print without an exponent or trailing ".0" so ids
      // (trace/request) survive a parse→dump round trip byte-identically.
      if (v.number == static_cast<long long>(v.number)) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      *out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      dump_string(v.str, out);
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      for (size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) *out += ',';
        dump_value(v.array[i], out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : v.object) {
        if (!first) *out += ',';
        first = false;
        dump_string(key, out);
        *out += ':';
        dump_value(member, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::string json_dump(const JsonValue& value) {
  std::string out;
  dump_value(value, &out);
  return out;
}

}  // namespace smart::util

#include "util/json.h"

#include <cctype>
#include <cstddef>
#include <exception>

namespace smart::util {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) return true;
    return number(out);
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep the reader simple: skip the code point
            break;
          default: return false;
        }
        ++pos_;
      } else {
        *out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out) {
  return Parser(text).parse(out);
}

}  // namespace smart::util

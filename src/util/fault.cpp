#include "util/fault.h"

#include <cstring>
#include <limits>

namespace smart::util {

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kModelCoeffPerturb:
      return "model_coeff_perturb";
    case FaultClass::kModelNonFinite:
      return "model_non_finite";
    case FaultClass::kSolverNonFinite:
      return "solver_non_finite";
    case FaultClass::kSolverExhaustIters:
      return "solver_exhaust_iters";
    case FaultClass::kTimerPerturb:
      return "timer_perturb";
    case FaultClass::kTimerNonFinite:
      return "timer_non_finite";
    case FaultClass::kServeFrameCorrupt:
      return "serve_frame_corrupt";
    case FaultClass::kServeIoFail:
      return "serve_io_fail";
    case FaultClass::kServeWorkerStall:
      return "serve_worker_stall";
    case FaultClass::kServeCachePoison:
      return "serve_cache_poison";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultClass fault, std::string site_filter,
                        double magnitude, int skip_hits, int max_fires) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_ = std::move(site_filter);
  magnitude_ = magnitude;
  hits_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  skip_left_.store(skip_hits, std::memory_order_relaxed);
  fires_left_.store(max_fires, std::memory_order_relaxed);
  armed_.store(static_cast<int>(fault), std::memory_order_release);
}

void FaultInjector::disarm() {
  armed_.store(static_cast<int>(FaultClass::kNone),
               std::memory_order_release);
}

bool FaultInjector::should_fire(FaultClass fault, const char* site) {
  if (armed() != fault) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!filter_.empty() &&
        std::strstr(site, filter_.c_str()) == nullptr)
      return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Consume the skip budget atomically so concurrent sites fire exactly
  // after `skip_hits` matches, not once per racing thread.
  int left = skip_left_.load(std::memory_order_relaxed);
  while (left > 0) {
    if (skip_left_.compare_exchange_weak(left, left - 1,
                                         std::memory_order_relaxed))
      return false;
  }
  // Consume the fire budget the same way (< 0 = unlimited).
  int fires = fires_left_.load(std::memory_order_relaxed);
  while (fires >= 0) {
    if (fires == 0) return false;
    if (fires_left_.compare_exchange_weak(fires, fires - 1,
                                          std::memory_order_relaxed))
      break;
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::corrupt(FaultClass fault, const char* site,
                              double value) {
  if (!should_fire(fault, site)) return value;
  switch (fault) {
    case FaultClass::kModelCoeffPerturb:
    case FaultClass::kTimerPerturb: {
      std::lock_guard<std::mutex> lock(mu_);
      return value * magnitude_;
    }
    case FaultClass::kModelNonFinite:
    case FaultClass::kSolverNonFinite:
    case FaultClass::kTimerNonFinite:
    case FaultClass::kServeCachePoison:
      return std::numeric_limits<double>::quiet_NaN();
    default:
      return value;
  }
}

}  // namespace smart::util

#pragma once

/// \file hash.h
/// FNV-1a 64-bit hashing for content-addressed keys. The serving layer's
/// result cache fingerprints a request's constraint set with it, and frame
/// payloads carry an FNV checksum so corruption (a flaky client, an
/// injected fault) is detected at the protocol layer instead of surfacing
/// as a garbage solve. Not cryptographic — collision resistance here only
/// has to beat accidental corruption and near-identical requests.

#include <cstdint>
#include <cstring>
#include <string_view>

namespace smart::util {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental FNV-1a 64. Mix order matters; fingerprint builders must mix
/// fields in one documented, stable order.
struct Fnv1a {
  uint64_t h = kFnvOffsetBasis;

  void mix_bytes(const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void mix(std::string_view s) {
    mix_bytes(s.data(), s.size());
    // Length separator: mix("ab","c") must differ from mix("a","bc").
    const uint64_t n = s.size();
    mix_bytes(&n, sizeof(n));
  }
  void mix(uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int v) { mix(static_cast<int64_t>(v)); }
  /// Doubles are mixed by bit pattern; callers quantize first when values
  /// that compare equal after rounding should fingerprint identically.
  void mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix_bytes(&bits, sizeof(bits));
  }
};

/// One-shot hash of a byte range.
inline uint64_t fnv1a(const void* data, size_t len) {
  Fnv1a f;
  f.mix_bytes(data, len);
  return f.h;
}

inline uint64_t fnv1a(std::string_view s) { return fnv1a(s.data(), s.size()); }

}  // namespace smart::util

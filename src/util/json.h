#pragma once

/// \file json.h
/// Minimal recursive-descent JSON reader. The repo's exporters (obs
/// metrics/trace, lint reports, scope timing reports) hand-build their JSON;
/// this is the matching in-tree consumer used by tools (bench_diff) and by
/// tests that assert the exports parse back. It covers the JSON the repo
/// emits — objects, arrays, numbers, strings with common escapes, bools,
/// null — and deliberately stays small: \uXXXX escapes are skipped rather
/// than decoded, and numbers are parsed with strtod semantics.

#include <map>
#include <string>
#include <vector>

namespace smart::util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses `text` as a single JSON document. Returns false on any syntax
/// error or trailing garbage; `out` is unspecified on failure.
bool json_parse(const std::string& text, JsonValue* out);

/// Serializes a JsonValue back to compact JSON text. Round-trips anything
/// json_parse accepts (numbers come back via %.17g, so integers stay
/// integral); used by tools that rewrite documents, e.g. trace merging.
std::string json_dump(const JsonValue& value);

}  // namespace smart::util

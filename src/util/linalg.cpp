#include "util/linalg.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace smart::util {

void Matrix::add_outer(const Vec& x, double alpha) {
  SMART_CHECK(rows_ == cols_ && x.size() == rows_,
              "add_outer requires square matrix matching vector size");
  for (size_t i = 0; i < rows_; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    double* row = &data_[i * cols_];
    for (size_t j = 0; j < cols_; ++j) row[j] += xi * x[j];
  }
}

Vec Matrix::mul(const Vec& x) const {
  SMART_CHECK(x.size() == cols_, "matrix-vector size mismatch");
  Vec y(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Vec Matrix::mul_transpose(const Vec& x) const {
  SMART_CHECK(x.size() == rows_, "matrix-transpose-vector size mismatch");
  Vec y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) y[j] += row[j] * xi;
  }
  return y;
}

double dot(const Vec& a, const Vec& b) {
  SMART_CHECK(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  SMART_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vec scaled(const Vec& x, double alpha) {
  Vec y(x);
  for (double& v : y) v *= alpha;
  return y;
}

namespace {

/// In-place Cholesky factorization A = L L^T storing L in the lower
/// triangle. Returns false if a non-positive pivot is encountered.
bool cholesky_factor(Matrix& a) {
  const size_t n = a.rows();
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  return true;
}

Vec cholesky_back_substitute(const Matrix& l, const Vec& b) {
  const size_t n = l.rows();
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

Vec cholesky_solve(Matrix a, Vec b) {
  SMART_CHECK(a.rows() == a.cols() && a.rows() == b.size(),
              "cholesky_solve dimension mismatch");
  const size_t n = a.rows();
  double max_diag = 0.0;
  for (size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, a(i, i));
  if (max_diag <= 0.0) max_diag = 1.0;

  double lambda = 0.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    Matrix work = a;
    if (lambda > 0.0) {
      for (size_t i = 0; i < n; ++i) work(i, i) += lambda;
    }
    if (cholesky_factor(work)) {
      return cholesky_back_substitute(work, b);
    }
    lambda = (lambda == 0.0) ? 1e-10 * max_diag : lambda * 100.0;
  }
  SMART_FAIL("cholesky_solve: matrix not positive definite even after "
             "heavy regularization");
}

SkylineMatrix::SkylineMatrix(std::vector<size_t> first)
    : first_(std::move(first)) {
  start_.resize(first_.size());
  size_t off = 0;
  for (size_t i = 0; i < first_.size(); ++i) {
    SMART_CHECK(first_[i] <= i, "skyline row starts past the diagonal");
    start_[i] = off;
    off += i - first_[i] + 1;
  }
  vals_.assign(off, 0.0);
}

void SkylineMatrix::clear_values() {
  std::fill(vals_.begin(), vals_.end(), 0.0);
}

namespace {

/// In-place envelope Cholesky A = L L^T; L overwrites the stored profile.
/// Row-oriented: both the active row i and the pivot rows j are contiguous
/// in skyline storage. Returns false on a non-positive pivot.
bool skyline_factor(SkylineMatrix& a) {
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) {
    const size_t fi = a.first(i);
    for (size_t j = fi; j < i; ++j) {
      const size_t kmin = std::max(fi, a.first(j));
      double s = a.at(i, j);
      for (size_t k = kmin; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = s / a.at(j, j);
    }
    double d = a.at(i, i);
    for (size_t k = fi; k < i; ++k) d -= a.at(i, k) * a.at(i, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    a.at(i, i) = std::sqrt(d);
  }
  return true;
}

Vec skyline_back_substitute(const SkylineMatrix& l, const Vec& b) {
  const size_t n = l.rows();
  // Forward solve L y = b (row sweep).
  Vec y(b);
  for (size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (size_t k = l.first(i); k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Backward solve L^T x = y (column sweep over row storage).
  for (size_t k = n; k-- > 0;) {
    const double xk = y[k] / l.at(k, k);
    y[k] = xk;
    for (size_t j = l.first(k); j < k; ++j) y[j] -= l.at(k, j) * xk;
  }
  return y;
}

}  // namespace

Vec skyline_cholesky_solve(SkylineMatrix a, Vec b) {
  SMART_CHECK(a.rows() == b.size(),
              "skyline_cholesky_solve dimension mismatch");
  const size_t n = a.rows();
  double max_diag = 0.0;
  for (size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, a.at(i, i));
  if (max_diag <= 0.0) max_diag = 1.0;

  double lambda = 0.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    SkylineMatrix work = a;
    if (lambda > 0.0) {
      for (size_t i = 0; i < n; ++i) work.at(i, i) += lambda;
    }
    if (skyline_factor(work)) {
      return skyline_back_substitute(work, b);
    }
    lambda = (lambda == 0.0) ? 1e-10 * max_diag : lambda * 100.0;
  }
  SMART_FAIL("skyline_cholesky_solve: matrix not positive definite even "
             "after heavy regularization");
}

Vec nnls(const Matrix& a, const Vec& b, int max_iter) {
  const size_t n = a.cols();
  SMART_CHECK(a.rows() == b.size(), "nnls dimension mismatch");

  std::vector<bool> passive(n, false);
  Vec x(n, 0.0);

  // Solve the least-squares subproblem restricted to the passive set via
  // normal equations (fine at fitter scale).
  auto solve_passive = [&](const std::vector<bool>& set) -> Vec {
    std::vector<size_t> idx;
    for (size_t j = 0; j < n; ++j)
      if (set[j]) idx.push_back(j);
    if (idx.empty()) return Vec(n, 0.0);
    const size_t m = idx.size();
    Matrix ata(m, m, 0.0);
    Vec atb(m, 0.0);
    for (size_t r = 0; r < a.rows(); ++r) {
      for (size_t p = 0; p < m; ++p) {
        const double arp = a(r, idx[p]);
        if (arp == 0.0) continue;
        atb[p] += arp * b[r];
        for (size_t q = 0; q < m; ++q) ata(p, q) += arp * a(r, idx[q]);
      }
    }
    for (size_t p = 0; p < m; ++p) ata(p, p) += 1e-12;
    Vec z = cholesky_solve(ata, atb);
    Vec full(n, 0.0);
    for (size_t p = 0; p < m; ++p) full[idx[p]] = z[p];
    return full;
  };

  for (int iter = 0; iter < max_iter; ++iter) {
    // Gradient of 0.5|Ax-b|^2 is A^T(Ax - b); w = -grad.
    Vec resid = a.mul(x);
    axpy(-1.0, b, resid);
    Vec w = a.mul_transpose(resid);
    for (double& v : w) v = -v;

    int best = -1;
    double best_w = 1e-10;
    for (size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = static_cast<int>(j);
      }
    }
    if (best < 0) break;  // KKT satisfied
    passive[static_cast<size_t>(best)] = true;

    Vec z = solve_passive(passive);
    // Inner loop: if the unconstrained passive solution goes negative, step
    // only to the boundary and drop the blocking variables.
    while (true) {
      double alpha = 1.0;
      bool clipped = false;
      for (size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0.0) {
          const double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
          clipped = true;
        }
      }
      if (!clipped) {
        x = z;
        break;
      }
      for (size_t j = 0; j < n; ++j) {
        if (passive[j]) x[j] += alpha * (z[j] - x[j]);
        if (passive[j] && x[j] <= 1e-14) {
          x[j] = 0.0;
          passive[j] = false;
        }
      }
      z = solve_passive(passive);
    }
  }
  for (double& v : x)
    if (v < 0.0) v = 0.0;
  return x;
}

}  // namespace smart::util

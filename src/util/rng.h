#pragma once

/// \file rng.h
/// Deterministic random number generator for reproducible experiments.
/// All workload generators take an explicit Rng so every bench run prints
/// identical tables.

#include <cstdint>
#include <random>

namespace smart::util {

/// Thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard normal scaled by sigma around mean.
  double gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace smart::util

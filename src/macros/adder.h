#pragma once

/// \file adder.h
/// Dual-rail domino carry-lookahead adder (paper §6.2: "a 64 bit dual-rail
/// carry-look-ahead adder", the Fig 6 area-delay workload; §5.2's path
/// explosion example). Structure: seven alternating D1/D2 domino stages —
/// per-bit dual-rail generate/propagate, two levels of 4-ary group
/// lookahead, supergroup/group/bit carry distribution, and dual-rail XOR
/// sum gates. Every signal is a monotonic true/false rail pair; complement
/// rails use the dual (series-of-parallels) pull-down networks. Size labels
/// are shared per stage and role across all bits/groups (regularity).

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Dual-rail domino CLA adder. spec.n = bit width (a multiple of 4 in
/// [8, 64]); param "group" (default 4) is the lookahead radix.
netlist::Netlist adder_domino_cla(const core::MacroSpec& spec);

/// Single-rail static CMOS carry-lookahead adder: NAND-based generate /
/// propagate, AOI group lookahead over 4-bit groups with ripple between
/// groups, 4-NAND XOR sums. The static alternative the advisor can weigh
/// against the domino flagship (slower, but no clock load).
netlist::Netlist adder_static_cla(const core::MacroSpec& spec);

void register_adders(core::MacroDatabase& db);

}  // namespace smart::macros

#include "macros/zero_detect.h"

#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using util::strfmt;

Netlist zero_detect_static(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 2, "zero-detect needs at least 2 bits");
  const int arity = static_cast<int>(spec.param("arity", 4));
  SMART_CHECK(arity >= 2 && arity <= 8, "arity must be in [2, 8]");
  Netlist nl(strfmt("zero%d", bits));

  std::vector<NetId> level;
  for (int i = 0; i < bits; ++i) {
    const NetId in = nl.add_net(strfmt("in%d", i));
    nl.add_input(in, spec.input_arrival_ps, spec.input_slope_ps);
    level.push_back(in);
  }

  // Alternating NOR (active-high inputs) / NAND (active-low) reduction.
  // After a NOR level the intermediate is "group is all zero" (active
  // high); the NAND level then produces "some group not all zero" etc.
  bool nor_level = true;
  int depth = 0;
  while (level.size() > 1) {
    const LabelId nn = nl.add_label(strfmt("N%d", depth));
    const LabelId pn = nl.add_label(strfmt("P%d", depth));
    std::vector<NetId> next;
    for (size_t i = 0; i < level.size(); i += static_cast<size_t>(arity)) {
      const size_t hi = std::min(level.size(), i + static_cast<size_t>(arity));
      std::vector<Stack> leaves;
      for (size_t j = i; j < hi; ++j)
        leaves.push_back(Stack::leaf(level[j], nn));
      const NetId out =
          nl.add_net(strfmt("l%d_%zu", depth, i / static_cast<size_t>(arity)));
      Stack pd = nor_level ? Stack::parallel(std::move(leaves))
                           : Stack::series(std::move(leaves));
      nl.add_component(strfmt("g%d_%zu", depth, i), out,
                       StaticGate{std::move(pd), pn});
      next.push_back(out);
    }
    level = std::move(next);
    nor_level = !nor_level;
    ++depth;
  }

  // The zero flag must be active high: if the last level produced the
  // complement (an even number of inversions so far means the single
  // remaining net is "not zero"), add a final inverter.
  NetId flag = level.front();
  if (nor_level) {  // next would be a NOR level => current value is inverted
    const LabelId ni = nl.add_label("NF"), pi = nl.add_label("PF");
    const NetId out = nl.add_net("zero");
    nl.add_inverter("flag_inv", flag, out, ni, pi);
    flag = out;
  } else {
    nl.rename_net(flag, "zero");
  }
  nl.add_output(flag, spec.load_ff);
  nl.finalize();
  return nl;
}

Netlist zero_detect_domino(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 2, "zero-detect needs at least 2 bits");
  const int group = static_cast<int>(spec.param("group", 8));
  SMART_CHECK(group >= 2 && group <= 16, "group must be in [2, 16]");
  Netlist nl(strfmt("zero%d_domino", bits));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  std::vector<NetId> in;
  for (int i = 0; i < bits; ++i) {
    const NetId net = nl.add_net(strfmt("in%d", i));
    nl.add_input(net, spec.input_arrival_ps, spec.input_slope_ps);
    in.push_back(net);
  }

  const LabelId n1 = nl.add_label("N1");
  const LabelId p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3 = nl.add_label("N3"), p3 = nl.add_label("P3");

  // Wide-OR domino groups: the dynamic node stays high iff the group is
  // all zero. The group flags are ANDed with a static NAND/NOR tree on the
  // dynamic nodes' inverted outputs.
  std::vector<NetId> any_set;  // inverter outputs: "some bit set in group"
  int g = 0;
  for (int i = 0; i < bits; i += group, ++g) {
    const int hi = std::min(bits, i + group);
    std::vector<Stack> leaves;
    for (int j = i; j < hi; ++j)
      leaves.push_back(Stack::leaf(in[static_cast<size_t>(j)], n1));
    const NetId dyn = nl.add_net(strfmt("dyn%d", g));
    nl.add_component(strfmt("dom%d", g), dyn,
                     DominoGate{Stack::parallel(std::move(leaves)), p1, n2,
                                clk, 0.1});
    const NetId flag = nl.add_net(strfmt("set%d", g));
    nl.add_inverter(strfmt("dinv%d", g), dyn, flag, n3, p3);
    any_set.push_back(flag);
  }

  // zero = NOR of the group "any set" flags.
  const LabelId nr = nl.add_label("NR"), pr = nl.add_label("PR");
  NetId flag;
  if (any_set.size() == 1) {
    flag = nl.add_net("zero");
    nl.add_inverter("flag_inv", any_set[0], flag, nr, pr);
  } else {
    std::vector<Stack> leaves;
    for (const NetId s : any_set) leaves.push_back(Stack::leaf(s, nr));
    flag = nl.add_net("zero");
    nl.add_component("flag_nor", flag,
                     StaticGate{Stack::parallel(std::move(leaves)), pr});
  }
  nl.add_output(flag, spec.load_ff);
  nl.finalize();
  return nl;
}

void register_zero_detects(core::MacroDatabase& db) {
  auto wide = [](const MacroSpec& s) { return s.n >= 2; };
  db.register_topology("zero_detect",
                       {"static_tree", "alternating NOR/NAND reduction tree",
                        zero_detect_static, wide});
  db.register_topology("zero_detect",
                       {"domino_or", "wide-OR domino groups + static NOR",
                        zero_detect_domino, wide});
}

}  // namespace smart::macros

#include "macros/registry.h"

#include "macros/adder.h"
#include "macros/comparator.h"
#include "macros/decoder.h"
#include "macros/encoder.h"
#include "macros/incrementor.h"
#include "macros/mux.h"
#include "macros/register_file.h"
#include "macros/shifter.h"
#include "macros/zero_detect.h"

namespace smart::macros {

void register_all(core::MacroDatabase& db) {
  register_muxes(db);
  register_incrementors(db);
  register_zero_detects(db);
  register_decoders(db);
  register_encoders(db);
  register_adders(db);
  register_comparators(db);
  register_shifters(db);
  register_register_files(db);
}

const core::MacroDatabase& builtin_database() {
  static const core::MacroDatabase db = [] {
    core::MacroDatabase d;
    register_all(d);
    return d;
  }();
  return db;
}

}  // namespace smart::macros

#pragma once

/// \file register_file.h
/// Register-file read-port macros — "register files" close out the paper's
/// §2 list of datapath macros. A read port is structurally a wide one-hot
/// mux onto a heavily diffusion-loaded bitline; two topologies:
///   * pass_read    — pass gates onto a shared static bitline + buffer,
///   * domino_read  — precharged bitline pulled down through
///                    wordline/data stacks + high-skew sense inverter.

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Static pass-gate read port. spec.n = entries; param "bits" (default 8)
/// = word width. Inputs d<e>_<b> (stored data) and one-hot word lines
/// wl<e>; outputs o<b>.
netlist::Netlist regfile_pass_read(const core::MacroSpec& spec);

/// Domino read port: bitline precharged high, discharged through a
/// series (wordline, data) stack — so the sensed value is the data bit.
netlist::Netlist regfile_domino_read(const core::MacroSpec& spec);

void register_register_files(core::MacroDatabase& db);

}  // namespace smart::macros

#pragma once

/// \file decoder.h
/// N-to-2^N decoder macros (paper Fig 5(c) workloads: 3:8 .. 7:128).
/// Classic two-stage structure: literal inverters, predecoders over 2-3
/// address bit groups (NAND + INV one-hot lines), and an output AND per
/// word line built from a NAND over one predecode line per group plus an
/// inverter. Size labels are shared per stage — all word lines identical.

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Decoder; spec.n = address width (outputs = 2^n, n in [2, 8]).
netlist::Netlist decoder(const core::MacroSpec& spec);

void register_decoders(core::MacroDatabase& db);

}  // namespace smart::macros

#include "macros/adder.h"

#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using util::strfmt;

namespace {

/// A dual-rail monotonic signal.
struct Rail {
  NetId t = -1;
  NetId f = -1;
};

/// Size labels of one domino gate class (shared across all instances of the
/// class — the stage/role regularity of the macro).
struct GateClass {
  LabelId nd = -1;    ///< NMOS network devices
  LabelId pre = -1;   ///< precharge PMOS
  LabelId foot = -1;  ///< clocked evaluate foot; -1 for D2 stages
  LabelId ni = -1;    ///< output inverter NMOS
  LabelId pi = -1;    ///< output inverter PMOS
};

class AdderBuilder {
 public:
  AdderBuilder(Netlist& nl, NetId clk) : nl_(&nl), clk_(clk) {}

  GateClass make_class(const std::string& tag, bool footed) {
    GateClass c;
    c.nd = nl_->add_label(tag + "_N");
    c.pre = nl_->add_label(tag + "_P");
    if (footed) c.foot = nl_->add_label(tag + "_NF");
    c.ni = nl_->add_label(tag + "_NI");
    c.pi = nl_->add_label(tag + "_PI");
    return c;
  }

  /// Emits a domino gate + high-skew inverter computing an SOP (or, with
  /// pos_form, a product-of-sums — the dual network used for complement
  /// rails) over monotonic rails. Returns the inverter output net.
  NetId domino(const std::string& name,
               const std::vector<std::vector<NetId>>& terms,
               const GateClass& c, bool pos_form = false) {
    SMART_CHECK(!terms.empty(), "domino gate needs at least one term");
    std::vector<Stack> groups;
    for (const auto& term : terms) {
      SMART_CHECK(!term.empty(), "empty product term");
      std::vector<Stack> leaves;
      for (const NetId n : term) leaves.push_back(Stack::leaf(n, c.nd));
      groups.push_back(pos_form ? Stack::parallel(std::move(leaves))
                                : Stack::series(std::move(leaves)));
    }
    Stack pd = pos_form ? Stack::series(std::move(groups))
                        : Stack::parallel(std::move(groups));
    const NetId dyn = nl_->add_net(name + "_dyn");
    nl_->add_component(name, dyn,
                       DominoGate{std::move(pd), c.pre, c.foot, clk_, 0.1});
    const NetId out = nl_->add_net(name);
    nl_->add_inverter(name + "_i", dyn, out, c.ni, c.pi);
    return out;
  }

  /// Dual-rail SOP: the true rail from `terms_t`, the false rail from
  /// `terms_f` (interpreted as POS when f_is_pos — the structural dual of
  /// the true SOP over complement rails).
  Rail rail(const std::string& name,
            const std::vector<std::vector<NetId>>& terms_t,
            const std::vector<std::vector<NetId>>& terms_f,
            const GateClass& ct, const GateClass& cf, bool f_is_pos) {
    Rail r;
    r.t = domino(name + "_t", terms_t, ct, false);
    r.f = domino(name + "_f", terms_f, cf, f_is_pos);
    return r;
  }

  /// Carry-lookahead terms: C = G[k-1] + P[k-1]G[k-2] + ... + P...P*Cin,
  /// over the given rail accessor (true or false side).
  static std::vector<std::vector<NetId>> cla_terms(
      const std::vector<Rail>& g, const std::vector<Rail>& p, NetId carry_in,
      bool true_side) {
    auto pick = [&](const Rail& r) { return true_side ? r.t : r.f; };
    const size_t k = g.size();
    std::vector<std::vector<NetId>> terms;
    for (size_t lead = k; lead-- > 0;) {
      std::vector<NetId> term;
      for (size_t j = k; j-- > lead + 1;) term.push_back(pick(p[j]));
      term.push_back(pick(g[lead]));
      terms.push_back(std::move(term));
    }
    std::vector<NetId> cin_term;
    for (size_t j = k; j-- > 0;) cin_term.push_back(pick(p[j]));
    cin_term.push_back(carry_in);
    terms.push_back(std::move(cin_term));
    return terms;
  }

 private:
  Netlist* nl_;
  NetId clk_;
};

}  // namespace

Netlist adder_domino_cla(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 8 && bits <= 64 && bits % 4 == 0,
              "adder width must be a multiple of 4 in [8, 64]");
  const int radix = static_cast<int>(spec.param("group", 4));
  SMART_CHECK(radix >= 2 && radix <= 8, "lookahead radix must be in [2, 8]");
  Netlist nl(strfmt("adder%d_domino_cla", bits));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  AdderBuilder b(nl, clk);

  // Dual-rail inputs.
  auto rail_input = [&](const std::string& name) {
    Rail r;
    r.t = nl.add_net(name + "_t");
    r.f = nl.add_net(name + "_f");
    nl.add_input(r.t, spec.input_arrival_ps, spec.input_slope_ps);
    nl.add_input(r.f, spec.input_arrival_ps, spec.input_slope_ps);
    return r;
  };
  std::vector<Rail> a, bb;
  for (int i = 0; i < bits; ++i) {
    a.push_back(rail_input(strfmt("a%d", i)));
    bb.push_back(rail_input(strfmt("b%d", i)));
  }
  const Rail cin = rail_input("cin");

  // ---- Stage 1 (D1): per-bit dual-rail generate & propagate ----
  const GateClass s1g_t = b.make_class("s1gt", true);
  const GateClass s1g_f = b.make_class("s1gf", true);
  const GateClass s1p = b.make_class("s1p", true);
  std::vector<Rail> g(static_cast<size_t>(bits)), p(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    const Rail& ai = a[static_cast<size_t>(i)];
    const Rail& bi = bb[static_cast<size_t>(i)];
    g[static_cast<size_t>(i)].t =
        b.domino(strfmt("g%d_t", i), {{ai.t, bi.t}}, s1g_t);
    g[static_cast<size_t>(i)].f =
        b.domino(strfmt("g%d_f", i), {{ai.f}, {bi.f}}, s1g_f);
    p[static_cast<size_t>(i)] = b.rail(
        strfmt("p%d", i), {{ai.t, bi.f}, {ai.f, bi.t}},
        {{ai.t, bi.t}, {ai.f, bi.f}}, s1p, s1p, /*f_is_pos=*/false);
  }

  // ---- Stages 2-3: group and supergroup lookahead (G, P) ----
  auto group_level = [&](const std::vector<Rail>& gin,
                         const std::vector<Rail>& pin, const char* tag,
                         bool footed, std::vector<Rail>& gout,
                         std::vector<Rail>& pout,
                         std::vector<std::vector<int>>& members) {
    const GateClass cg = b.make_class(strfmt("%sG", tag), footed);
    const GateClass cgf = b.make_class(strfmt("%sGf", tag), footed);
    const GateClass cp = b.make_class(strfmt("%sP", tag), footed);
    const GateClass cpf = b.make_class(strfmt("%sPf", tag), footed);
    gout.clear();
    pout.clear();
    members.clear();
    const int count = static_cast<int>(gin.size());
    for (int lo = 0, grp = 0; lo < count; lo += radix, ++grp) {
      const int hi = std::min(count, lo + radix);
      std::vector<int> idx;
      for (int i = lo; i < hi; ++i) idx.push_back(i);
      members.push_back(idx);
      const size_t k = idx.size();
      // G = g[hi-1] + p[hi-1]g[hi-2] + ... ; P = product of p.
      std::vector<std::vector<NetId>> terms_t, terms_f;
      for (size_t lead = k; lead-- > 0;) {
        std::vector<NetId> term_t, term_f;
        for (size_t j = k; j-- > lead + 1;) {
          term_t.push_back(pin[static_cast<size_t>(idx[j])].t);
          term_f.push_back(pin[static_cast<size_t>(idx[j])].f);
        }
        term_t.push_back(gin[static_cast<size_t>(idx[lead])].t);
        term_f.push_back(gin[static_cast<size_t>(idx[lead])].f);
        terms_t.push_back(std::move(term_t));
        terms_f.push_back(std::move(term_f));
      }
      Rail gr = b.rail(strfmt("%sG%d", tag, grp), terms_t, terms_f, cg, cgf,
                       /*f_is_pos=*/true);
      std::vector<NetId> pt, pf_terms;
      std::vector<std::vector<NetId>> pf;
      for (size_t j = 0; j < k; ++j) {
        pt.push_back(pin[static_cast<size_t>(idx[j])].t);
        pf.push_back({pin[static_cast<size_t>(idx[j])].f});
      }
      Rail pr = b.rail(strfmt("%sP%d", tag, grp), {pt}, pf, cp, cpf,
                       /*f_is_pos=*/false);
      gout.push_back(gr);
      pout.push_back(pr);
    }
  };

  std::vector<Rail> g1, p1, g2, p2;
  std::vector<std::vector<int>> groups1, groups2;
  group_level(g, p, "s2", /*footed=*/false, g1, p1, groups1);   // D2
  group_level(g1, p1, "s3", /*footed=*/true, g2, p2, groups2);  // D1

  // ---- Stage 4 (D2): supergroup carries and carry-out ----
  const GateClass s4c = b.make_class("s4c", false);
  const GateClass s4cf = b.make_class("s4cf", false);
  const int n_super = static_cast<int>(g2.size());
  std::vector<Rail> super_carry(static_cast<size_t>(n_super));
  super_carry[0] = cin;
  for (int j = 1; j < n_super; ++j) {
    std::vector<Rail> gs(g2.begin(), g2.begin() + j);
    std::vector<Rail> ps(p2.begin(), p2.begin() + j);
    super_carry[static_cast<size_t>(j)] = b.rail(
        strfmt("sc%d", j), AdderBuilder::cla_terms(gs, ps, cin.t, true),
        AdderBuilder::cla_terms(gs, ps, cin.f, false), s4c, s4cf,
        /*f_is_pos=*/true);
  }
  const Rail cout = b.rail(
      "cout", AdderBuilder::cla_terms(g2, p2, cin.t, true),
      AdderBuilder::cla_terms(g2, p2, cin.f, false), s4c, s4cf,
      /*f_is_pos=*/true);

  // ---- Stage 5 (D1): carries into each level-1 group ----
  const GateClass s5c = b.make_class("s5c", true);
  const GateClass s5cf = b.make_class("s5cf", true);
  std::vector<Rail> group_carry(g1.size());
  for (int j = 0; j < n_super; ++j) {
    const auto& members = groups2[static_cast<size_t>(j)];
    const Rail& carry_in = super_carry[static_cast<size_t>(j)];
    for (size_t m = 0; m < members.size(); ++m) {
      const size_t grp = static_cast<size_t>(members[m]);
      if (m == 0) {
        group_carry[grp] = carry_in;
        continue;
      }
      std::vector<Rail> gs, ps;
      for (size_t q = 0; q < m; ++q) {
        gs.push_back(g1[static_cast<size_t>(members[q])]);
        ps.push_back(p1[static_cast<size_t>(members[q])]);
      }
      group_carry[grp] = b.rail(
          strfmt("gc%zu", grp),
          AdderBuilder::cla_terms(gs, ps, carry_in.t, true),
          AdderBuilder::cla_terms(gs, ps, carry_in.f, false), s5c, s5cf,
          /*f_is_pos=*/true);
    }
  }

  // ---- Stage 6 (D2): per-bit carries within each group ----
  const GateClass s6c = b.make_class("s6c", false);
  const GateClass s6cf = b.make_class("s6cf", false);
  std::vector<Rail> carry(static_cast<size_t>(bits));
  for (size_t grp = 0; grp < groups1.size(); ++grp) {
    const auto& members = groups1[grp];
    const Rail& carry_in = group_carry[grp];
    for (size_t m = 0; m < members.size(); ++m) {
      const size_t bit = static_cast<size_t>(members[m]);
      if (m == 0) {
        carry[bit] = carry_in;
        continue;
      }
      std::vector<Rail> gs, ps;
      for (size_t q = 0; q < m; ++q) {
        gs.push_back(g[static_cast<size_t>(members[q])]);
        ps.push_back(p[static_cast<size_t>(members[q])]);
      }
      carry[bit] = b.rail(
          strfmt("c%zu", bit),
          AdderBuilder::cla_terms(gs, ps, carry_in.t, true),
          AdderBuilder::cla_terms(gs, ps, carry_in.f, false), s6c, s6cf,
          /*f_is_pos=*/true);
    }
  }

  // ---- Stage 7 (D1): dual-rail sums ----
  const GateClass s7s = b.make_class("s7s", true);
  for (int i = 0; i < bits; ++i) {
    const Rail& pi_ = p[static_cast<size_t>(i)];
    const Rail& ci = carry[static_cast<size_t>(i)];
    const Rail s = b.rail(strfmt("s%d", i), {{pi_.t, ci.f}, {pi_.f, ci.t}},
                          {{pi_.t, ci.t}, {pi_.f, ci.f}}, s7s, s7s,
                          /*f_is_pos=*/false);
    nl.add_output(s.t, spec.load_ff);
    nl.add_output(s.f, spec.load_ff);
  }
  nl.add_output(cout.t, spec.load_ff);
  nl.add_output(cout.f, spec.load_ff);

  nl.finalize();
  return nl;
}

Netlist adder_static_cla(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 4 && bits <= 64 && bits % 4 == 0,
              "static adder width must be a multiple of 4 in [4, 64]");
  Netlist nl(strfmt("adder%d_static_cla", bits));
  using netlist::StaticGate;

  std::vector<NetId> a(static_cast<size_t>(bits)), bb(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    a[static_cast<size_t>(i)] = nl.add_net(strfmt("a%d", i));
    bb[static_cast<size_t>(i)] = nl.add_net(strfmt("b%d", i));
    nl.add_input(a[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
    nl.add_input(bb[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
  }
  const NetId cin = nl.add_net("cin");
  nl.add_input(cin, spec.input_arrival_ps, spec.input_slope_ps);

  // Per-bit generate (NAND -> active-low g_n) and propagate (4-NAND XOR).
  const LabelId ng = nl.add_label("NG"), pg = nl.add_label("PG");
  const LabelId ngi = nl.add_label("NGI"), pgi = nl.add_label("PGI");
  const LabelId nx = nl.add_label("NX"), px = nl.add_label("PX");
  std::vector<NetId> g(static_cast<size_t>(bits)), p(static_cast<size_t>(bits));
  auto nand2 = [&](const std::string& name, NetId x, NetId y, LabelId nn,
                   LabelId pn) {
    const NetId out = nl.add_net(name);
    nl.add_component(name + "_g", out,
                     StaticGate{Stack::series({Stack::leaf(x, nn),
                                               Stack::leaf(y, nn)}),
                                pn});
    return out;
  };
  for (int i = 0; i < bits; ++i) {
    const NetId ai = a[static_cast<size_t>(i)];
    const NetId bi = bb[static_cast<size_t>(i)];
    const NetId gn = nand2(strfmt("gn%d", i), ai, bi, ng, pg);
    g[static_cast<size_t>(i)] = nl.add_net(strfmt("g%d", i));
    nl.add_inverter(strfmt("gi%d", i), gn, g[static_cast<size_t>(i)], ngi,
                    pgi);
    // XOR via 4 NANDs.
    const NetId x1 = gn;  // NAND(a,b) reused as the XOR's first stage
    const NetId x2 = nand2(strfmt("px2_%d", i), ai, x1, nx, px);
    const NetId x3 = nand2(strfmt("px3_%d", i), bi, x1, nx, px);
    p[static_cast<size_t>(i)] = nand2(strfmt("p%d", i), x2, x3, nx, px);
  }

  // 4-bit groups: carries inside a group computed with AOI-style complex
  // static gates c_{i+1} = g_i + p_i*c_i (inverting pairs), rippling the
  // group carry to the next group.
  const LabelId nc = nl.add_label("NC"), pc = nl.add_label("PC");
  const LabelId nci = nl.add_label("NCI"), pci = nl.add_label("PCI");
  std::vector<NetId> carry(static_cast<size_t>(bits) + 1);
  carry[0] = cin;
  for (int i = 0; i < bits; ++i) {
    // AOI21: out_n = !(g_i + p_i*c_i); inverter restores the carry.
    const NetId cn = nl.add_net(strfmt("cn%d", i));
    nl.add_component(
        strfmt("aoi%d", i), cn,
        StaticGate{Stack::parallel(
                       {Stack::leaf(g[static_cast<size_t>(i)], nc),
                        Stack::series(
                            {Stack::leaf(p[static_cast<size_t>(i)], nc),
                             Stack::leaf(carry[static_cast<size_t>(i)],
                                         nc)})}),
                   pc});
    carry[static_cast<size_t>(i) + 1] = nl.add_net(strfmt("c%d", i + 1));
    nl.add_inverter(strfmt("ci%d", i), cn,
                    carry[static_cast<size_t>(i) + 1], nci, pci);
  }

  // Sums: s_i = p_i XOR c_i (4-NAND XOR), shared labels.
  const LabelId ns = nl.add_label("NS"), ps = nl.add_label("PS");
  for (int i = 0; i < bits; ++i) {
    const NetId x1 = nand2(strfmt("sx1_%d", i), p[static_cast<size_t>(i)],
                           carry[static_cast<size_t>(i)], ns, ps);
    const NetId x2 = nand2(strfmt("sx2_%d", i), p[static_cast<size_t>(i)],
                           x1, ns, ps);
    const NetId x3 = nand2(strfmt("sx3_%d", i),
                           carry[static_cast<size_t>(i)], x1, ns, ps);
    const NetId s = nand2(strfmt("s%d", i), x2, x3, ns, ps);
    nl.rename_net(s, strfmt("s%d", i));
    nl.add_output(s, spec.load_ff);
  }
  nl.add_output(carry[static_cast<size_t>(bits)], spec.load_ff);
  nl.rename_net(carry[static_cast<size_t>(bits)], "cout");

  nl.finalize();
  return nl;
}

void register_adders(core::MacroDatabase& db) {
  db.register_topology(
      "adder", {"domino_cla", "dual-rail domino carry-lookahead adder",
                adder_domino_cla, [](const MacroSpec& s) {
                  return s.n >= 8 && s.n <= 64 && s.n % 4 == 0;
                }});
  db.register_topology(
      "adder", {"static_cla", "single-rail static CMOS lookahead adder",
                adder_static_cla, [](const MacroSpec& s) {
                  return s.n >= 4 && s.n <= 64 && s.n % 4 == 0;
                }});
}

}  // namespace smart::macros

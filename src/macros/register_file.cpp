#include "macros/register_file.h"

#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::TransGate;
using util::strfmt;

namespace {

int rf_entries(const MacroSpec& spec) {
  SMART_CHECK(spec.n >= 2 && spec.n <= 64,
              "register file entries must be in [2, 64]");
  return spec.n;
}

int rf_bits(const MacroSpec& spec) {
  const int bits = static_cast<int>(spec.param("bits", 8));
  SMART_CHECK(bits >= 1, "register file needs at least 1 bit");
  return bits;
}

}  // namespace

Netlist regfile_pass_read(const MacroSpec& spec) {
  const int entries = rf_entries(spec);
  const int bits = rf_bits(spec);
  Netlist nl(strfmt("rf%dx%d_pass", entries, bits));

  std::vector<NetId> wl;
  for (int e = 0; e < entries; ++e) {
    wl.push_back(nl.add_net(strfmt("wl%d", e)));
    nl.add_input(wl.back(), spec.input_arrival_ps, spec.input_slope_ps);
  }
  const LabelId nd = nl.add_label("ND"), pd = nl.add_label("PD");
  const LabelId np = nl.add_label("NP");
  const LabelId no = nl.add_label("NO"), po = nl.add_label("PO");

  for (int b = 0; b < bits; ++b) {
    const NetId bitline = nl.add_net(strfmt("bl%d", b));
    for (int e = 0; e < entries; ++e) {
      const NetId d = nl.add_net(strfmt("d%d_%d", e, b));
      nl.add_input(d, spec.input_arrival_ps, spec.input_slope_ps);
      // Cell output driver (the storage cell's read buffer), then the
      // access pass gate onto the shared bitline.
      const NetId x = nl.add_net(strfmt("c%d_%d", e, b));
      nl.add_inverter(strfmt("cell%d_%d", e, b), d, x, nd, pd);
      nl.add_component(strfmt("acc%d_%d", e, b), bitline,
                       TransGate{x, wl[static_cast<size_t>(e)], np});
    }
    // The sense inverter restores polarity (cell driver inverted once)
    // and drives the port load.
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("sense%d", b), bitline, out, no, po);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist regfile_domino_read(const MacroSpec& spec) {
  const int entries = rf_entries(spec);
  const int bits = rf_bits(spec);
  Netlist nl(strfmt("rf%dx%d_domino", entries, bits));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  std::vector<NetId> wl;
  for (int e = 0; e < entries; ++e) {
    wl.push_back(nl.add_net(strfmt("wl%d", e)));
    nl.add_input(wl.back(), spec.input_arrival_ps, spec.input_slope_ps);
  }
  const LabelId n1 = nl.add_label("N1");
  const LabelId p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId ni = nl.add_label("NI"), pi = nl.add_label("PI");

  for (int b = 0; b < bits; ++b) {
    std::vector<Stack> branches;
    for (int e = 0; e < entries; ++e) {
      const NetId d = nl.add_net(strfmt("d%d_%d", e, b));
      nl.add_input(d, spec.input_arrival_ps, spec.input_slope_ps);
      branches.push_back(
          Stack::series({Stack::leaf(wl[static_cast<size_t>(e)], n1),
                         Stack::leaf(d, n1)}));
    }
    const NetId bitline = nl.add_net(strfmt("bl%d", b));
    nl.add_component(strfmt("rd%d", b), bitline,
                     DominoGate{Stack::parallel(std::move(branches)), p1, n2,
                                clk, 0.1});
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("sense%d", b), bitline, out, ni, pi);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

void register_register_files(core::MacroDatabase& db) {
  auto ok = [](const MacroSpec& s) { return s.n >= 2 && s.n <= 64; };
  db.register_topology("register_file",
                       {"pass_read", "pass-gate read port, static bitline",
                        regfile_pass_read, ok});
  db.register_topology("register_file",
                       {"domino_read", "precharged-bitline domino read port",
                        regfile_domino_read, ok});
}

}  // namespace smart::macros

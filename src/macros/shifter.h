#pragma once

/// \file shifter.h
/// Barrel shifter macros — "shifters" are on the paper's §2 list of
/// datapath macros. Implemented as log2(n) stages of 2:1 pass-gate muxes
/// with encoded per-stage selects (rotate-by-2^k per stage), the classic
/// datapath structure; labels are shared per stage across all bits.

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// n-bit barrel rotator (rotate right by the binary shift amount).
/// spec.n = data width (power of two in [4, 64]); inputs in<i>, shift
/// amount bits s<k>, outputs o<i>.
netlist::Netlist barrel_rotator(const core::MacroSpec& spec);

void register_shifters(core::MacroDatabase& db);

}  // namespace smart::macros

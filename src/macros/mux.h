#pragma once

/// \file mux.h
/// The multiplexor macro family of the SMART design database (paper §4,
/// Figures 2(a)-(f)). All generators produce bit-sliced macros: `bits`
/// identical slices share one set of size labels (the layout regularity a
/// designer plans in), selects are shared across slices (so select loading
/// grows with datapath width, as in a real datapath).
///
/// Ports: data inputs d<b>_<i> (slice b, input i), selects s<i>, outputs
/// o<b>; domino topologies add the clock net "clk".

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Figure 2(a): strongly mutexed N-first pass-gate mux. Selects are
/// one-hot by contract; input drivers (N1/P1), pass gates (N2), output
/// driver (N3/P3).
netlist::Netlist mux_strong_pass(const core::MacroSpec& spec);

/// Figure 2(b): weakly mutexed pass-gate mux. The last select is derived
/// from the others with a NOR (P4/N4), making the select set one-hot at
/// the cost of extra select-to-output delay.
netlist::Netlist mux_weak_pass(const core::MacroSpec& spec);

/// Figure 2(c): 2-input pass-gate mux with encoded select (one select bit,
/// complement generated locally).
netlist::Netlist mux2_encoded(const core::MacroSpec& spec);

/// Figure 2(d): tri-state mux (P1/N1 tri-states, P2/N2 output driver); the
/// choice for large loads or long interconnect.
netlist::Netlist mux_tristate(const core::MacroSpec& spec);

/// Figure 2(e): un-split domino mux — one dynamic node with n
/// select-and-data branches (N1), precharge P1, foot N2, high-skew output
/// inverter (P3/N3).
netlist::Netlist mux_domino_unsplit(const core::MacroSpec& spec);

/// Figure 2(f): (m, n-m) partitioned domino mux — two smaller dynamic
/// nodes combined with a static NAND2; "typically better than (e) in area
/// and power when the size of the mux is large". Partition size comes from
/// spec param "m" (default floor(n/2), the paper's good choice).
netlist::Netlist mux_domino_split(const core::MacroSpec& spec);

/// Registers all six mux topologies under macro type "mux".
void register_muxes(core::MacroDatabase& db);

}  // namespace smart::macros

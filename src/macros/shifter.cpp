#include "macros/shifter.h"

#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::TransGate;
using util::strfmt;

Netlist barrel_rotator(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 4 && bits <= 64 && (bits & (bits - 1)) == 0,
              "rotator width must be a power of two in [4, 64]");
  int stages = 0;
  while ((1 << stages) < bits) ++stages;
  Netlist nl(strfmt("rot%d", bits));

  std::vector<NetId> data(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    data[static_cast<size_t>(i)] = nl.add_net(strfmt("in%d", i));
    nl.add_input(data[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
  }

  for (int k = 0; k < stages; ++k) {
    const NetId sel = nl.add_net(strfmt("s%d", k));
    nl.add_input(sel, spec.input_arrival_ps, spec.input_slope_ps);
    // Encoded select: one inverter per stage generates the complement.
    const LabelId ns = nl.add_label(strfmt("NS%d", k));
    const LabelId ps = nl.add_label(strfmt("PS%d", k));
    const NetId sel_b = nl.add_net(strfmt("sb%d", k));
    nl.add_inverter(strfmt("sinv%d", k), sel, sel_b, ns, ps);

    // Stage drivers and pass gates share one label set across all bits.
    const LabelId nd = nl.add_label(strfmt("ND%d", k));
    const LabelId pd = nl.add_label(strfmt("PD%d", k));
    const LabelId np = nl.add_label(strfmt("NP%d", k));
    const LabelId no = nl.add_label(strfmt("NO%d", k));
    const LabelId po = nl.add_label(strfmt("PO%d", k));

    const int amount = 1 << k;
    std::vector<NetId> next(static_cast<size_t>(bits));
    for (int i = 0; i < bits; ++i) {
      // Invert-then-restore keeps every stage buffered: pass chains longer
      // than one gate would otherwise degrade without restoration.
      const NetId keep = nl.add_net(strfmt("x%d_%d", k, i));
      nl.add_inverter(strfmt("drv%d_%d", k, i), data[static_cast<size_t>(i)],
                      keep, nd, pd);
      const NetId shared = nl.add_net(strfmt("m%d_%d", k, i));
      // sel = 0: keep bit i; sel = 1: take bit (i + amount) mod n.
      nl.add_component(strfmt("pk%d_%d", k, i), shared,
                       TransGate{keep, sel_b, np});
      const int from = (i + amount) % bits;
      const NetId moved = nl.add_net(strfmt("y%d_%d", k, i));
      nl.add_inverter(strfmt("mdrv%d_%d", k, i),
                      data[static_cast<size_t>(from)], moved, nd, pd);
      nl.add_component(strfmt("pm%d_%d", k, i), shared,
                       TransGate{moved, sel, np});
      const NetId out = nl.add_net(strfmt("d%d_%d", k + 1, i));
      nl.add_inverter(strfmt("obuf%d_%d", k, i), shared, out, no, po);
      next[static_cast<size_t>(i)] = out;
    }
    data = std::move(next);
  }

  for (int i = 0; i < bits; ++i) {
    nl.rename_net(data[static_cast<size_t>(i)], strfmt("o%d", i));
    nl.add_output(data[static_cast<size_t>(i)], spec.load_ff);
  }
  nl.finalize();
  return nl;
}

void register_shifters(core::MacroDatabase& db) {
  db.register_topology(
      "shifter",
      {"barrel_rotate", "log-stage pass-gate barrel rotator", barrel_rotator,
       [](const MacroSpec& s) {
         return s.n >= 4 && s.n <= 64 && (s.n & (s.n - 1)) == 0;
       }});
}

}  // namespace smart::macros

#include "macros/mux.h"

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using netlist::TransGate;
using netlist::Tristate;
using util::strfmt;

namespace {

int mux_inputs(const MacroSpec& spec) {
  SMART_CHECK(spec.n >= 2, "mux needs at least 2 inputs");
  return spec.n;
}

int mux_bits(const MacroSpec& spec) {
  const int bits = static_cast<int>(spec.param("bits", 8));
  SMART_CHECK(bits >= 1, "mux needs at least 1 bit slice");
  return bits;
}

void add_data_inputs(Netlist& nl, std::vector<std::vector<NetId>>& d,
                     const MacroSpec& spec, int n, int bits) {
  d.assign(static_cast<size_t>(bits), {});
  for (int b = 0; b < bits; ++b) {
    for (int i = 0; i < n; ++i) {
      const NetId net = nl.add_net(strfmt("d%d_%d", b, i));
      nl.add_input(net, spec.input_arrival_ps, spec.input_slope_ps);
      d[static_cast<size_t>(b)].push_back(net);
    }
  }
}

void add_selects(Netlist& nl, std::vector<NetId>& s, const MacroSpec& spec,
                 int count) {
  s.clear();
  for (int i = 0; i < count; ++i) {
    const NetId net = nl.add_net(strfmt("s%d", i));
    nl.add_input(net, spec.input_arrival_ps, spec.input_slope_ps);
    s.push_back(net);
  }
}

}  // namespace

Netlist mux_strong_pass(const MacroSpec& spec) {
  const int n = mux_inputs(spec);
  const int bits = mux_bits(spec);
  Netlist nl(strfmt("mux%d_strong_pass_x%d", n, bits));

  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, n, bits);
  add_selects(nl, s, spec, n);

  const LabelId n1 = nl.add_label("N1"), p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3 = nl.add_label("N3"), p3 = nl.add_label("P3");

  for (int b = 0; b < bits; ++b) {
    const NetId shared = nl.add_net(strfmt("m%d", b));
    for (int i = 0; i < n; ++i) {
      const NetId x = nl.add_net(strfmt("x%d_%d", b, i));
      nl.add_inverter(strfmt("drv%d_%d", b, i),
                      d[static_cast<size_t>(b)][static_cast<size_t>(i)], x,
                      n1, p1);
      nl.add_component(strfmt("pg%d_%d", b, i), shared,
                       TransGate{x, s[static_cast<size_t>(i)], n2});
    }
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("odrv%d", b), shared, out, n3, p3);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist mux_weak_pass(const MacroSpec& spec) {
  const int n = mux_inputs(spec);
  const int bits = mux_bits(spec);
  Netlist nl(strfmt("mux%d_weak_pass_x%d", n, bits));

  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, n, bits);
  add_selects(nl, s, spec, n - 1);  // last select derived

  const LabelId n1 = nl.add_label("N1"), p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3 = nl.add_label("N3"), p3 = nl.add_label("P3");
  const LabelId n4 = nl.add_label("N4"), p4 = nl.add_label("P4");

  // NOR of the external selects: high exactly when none is active, which
  // strongly mutexes the full select set.
  const NetId s_last = nl.add_net("s_derived");
  {
    std::vector<Stack> leaves;
    for (int i = 0; i < n - 1; ++i)
      leaves.push_back(Stack::leaf(s[static_cast<size_t>(i)], n4));
    nl.add_component("sel_nor", s_last,
                     StaticGate{Stack::parallel(std::move(leaves)), p4});
  }

  for (int b = 0; b < bits; ++b) {
    const NetId shared = nl.add_net(strfmt("m%d", b));
    for (int i = 0; i < n; ++i) {
      const NetId x = nl.add_net(strfmt("x%d_%d", b, i));
      nl.add_inverter(strfmt("drv%d_%d", b, i),
                      d[static_cast<size_t>(b)][static_cast<size_t>(i)], x,
                      n1, p1);
      const NetId sel = i < n - 1 ? s[static_cast<size_t>(i)] : s_last;
      nl.add_component(strfmt("pg%d_%d", b, i), shared,
                       TransGate{x, sel, n2});
    }
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("odrv%d", b), shared, out, n3, p3);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist mux2_encoded(const MacroSpec& spec) {
  SMART_CHECK(spec.n == 2, "encoded-select mux is a 2-input topology");
  const int bits = mux_bits(spec);
  Netlist nl(strfmt("mux2_encoded_x%d", bits));

  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, 2, bits);
  add_selects(nl, s, spec, 1);

  const LabelId n1 = nl.add_label("N1"), p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3 = nl.add_label("N3"), p3 = nl.add_label("P3");
  const LabelId ns = nl.add_label("NS"), ps = nl.add_label("PS");

  // One local complement shared by all slices (the encoded select).
  const NetId s_b = nl.add_net("s_b");
  nl.add_inverter("sel_inv", s[0], s_b, ns, ps);

  for (int b = 0; b < bits; ++b) {
    const NetId shared = nl.add_net(strfmt("m%d", b));
    for (int i = 0; i < 2; ++i) {
      const NetId x = nl.add_net(strfmt("x%d_%d", b, i));
      nl.add_inverter(strfmt("drv%d_%d", b, i),
                      d[static_cast<size_t>(b)][static_cast<size_t>(i)], x,
                      n1, p1);
      // in1 passes when s is high, in0 when the complement is high.
      nl.add_component(strfmt("pg%d_%d", b, i), shared,
                       TransGate{x, i == 1 ? s[0] : s_b, n2});
    }
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("odrv%d", b), shared, out, n3, p3);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist mux_tristate(const MacroSpec& spec) {
  const int n = mux_inputs(spec);
  const int bits = mux_bits(spec);
  Netlist nl(strfmt("mux%d_tristate_x%d", n, bits));

  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, n, bits);
  add_selects(nl, s, spec, n);

  const LabelId n1 = nl.add_label("N1"), p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2"), p2 = nl.add_label("P2");

  for (int b = 0; b < bits; ++b) {
    const NetId shared = nl.add_net(strfmt("m%d", b));
    for (int i = 0; i < n; ++i) {
      nl.add_component(
          strfmt("ts%d_%d", b, i), shared,
          Tristate{d[static_cast<size_t>(b)][static_cast<size_t>(i)],
                   s[static_cast<size_t>(i)], n1, p1});
    }
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("odrv%d", b), shared, out, n2, p2);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist mux_domino_unsplit(const MacroSpec& spec) {
  const int n = mux_inputs(spec);
  const int bits = mux_bits(spec);
  Netlist nl(strfmt("mux%d_domino_x%d", n, bits));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, n, bits);
  add_selects(nl, s, spec, n);

  const LabelId n1 = nl.add_label("N1");
  const LabelId p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3 = nl.add_label("N3"), p3 = nl.add_label("P3");

  for (int b = 0; b < bits; ++b) {
    const NetId dyn = nl.add_net(strfmt("dyn%d", b));
    std::vector<Stack> branches;
    for (int i = 0; i < n; ++i) {
      branches.push_back(Stack::series(
          {Stack::leaf(s[static_cast<size_t>(i)], n1),
           Stack::leaf(d[static_cast<size_t>(b)][static_cast<size_t>(i)],
                       n1)}));
    }
    nl.add_component(strfmt("dom%d", b), dyn,
                     DominoGate{Stack::parallel(std::move(branches)), p1, n2,
                                clk, 0.1});
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_inverter(strfmt("odrv%d", b), dyn, out, n3, p3);
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

Netlist mux_domino_split(const MacroSpec& spec) {
  const int n = mux_inputs(spec);
  const int bits = mux_bits(spec);
  const int m = static_cast<int>(spec.param("m", n / 2));
  SMART_CHECK(m >= 1 && m < n, "split partition must satisfy 1 <= m < n");
  Netlist nl(strfmt("mux%d_split%d_x%d", n, m, bits));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  std::vector<std::vector<NetId>> d;
  std::vector<NetId> s;
  add_data_inputs(nl, d, spec, n, bits);
  add_selects(nl, s, spec, n);

  // Equal partitions share labels (paper: "If the two partitions are of the
  // same size, they can be labeled identically, if not, label differently").
  const bool same = (m == n - m);
  const LabelId n1 = nl.add_label("N1");
  const LabelId p1 = nl.add_label("P1");
  const LabelId n2 = nl.add_label("N2");
  const LabelId n3b = same ? n1 : nl.add_label("N3");
  const LabelId p3b = same ? p1 : nl.add_label("P3");
  const LabelId n4b = same ? n2 : nl.add_label("N4");
  const LabelId n5 = nl.add_label("N5"), p5 = nl.add_label("P5");

  for (int b = 0; b < bits; ++b) {
    auto make_partition = [&](int lo, int hi, LabelId nd, LabelId pre,
                              LabelId foot, const char* tag) {
      std::vector<Stack> branches;
      for (int i = lo; i < hi; ++i) {
        branches.push_back(Stack::series(
            {Stack::leaf(s[static_cast<size_t>(i)], nd),
             Stack::leaf(d[static_cast<size_t>(b)][static_cast<size_t>(i)],
                         nd)}));
      }
      const NetId dyn = nl.add_net(strfmt("dyn%s%d", tag, b));
      nl.add_component(strfmt("dom%s%d", tag, b), dyn,
                       DominoGate{Stack::parallel(std::move(branches)), pre,
                                  foot, clk, 0.1});
      return dyn;
    };
    const NetId dyn_a = make_partition(0, m, n1, p1, n2, "a");
    const NetId dyn_b = make_partition(m, n, n3b, p3b, n4b, "b");

    // The two dynamic nodes are active-low; a static NAND2 merges them into
    // the selected value (rises when either partition fires).
    const NetId out = nl.add_net(strfmt("o%d", b));
    nl.add_component(strfmt("merge%d", b), out,
                     StaticGate{Stack::series({Stack::leaf(dyn_a, n5),
                                               Stack::leaf(dyn_b, n5)}),
                                p5});
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

void register_muxes(core::MacroDatabase& db) {
  auto any_n = [](const MacroSpec& s) { return s.n >= 2; };
  db.register_topology(
      "mux", {"strong_pass", "strongly mutexed N-first pass-gate mux",
              mux_strong_pass, any_n});
  db.register_topology(
      "mux", {"weak_pass", "weakly mutexed pass-gate mux (derived select)",
              mux_weak_pass, [](const MacroSpec& s) { return s.n >= 3; }});
  db.register_topology(
      "mux", {"encoded2", "2-input pass-gate mux with encoded select",
              mux2_encoded, [](const MacroSpec& s) { return s.n == 2; }});
  db.register_topology(
      "mux", {"tristate", "tri-state mux for large loads/long interconnect",
              mux_tristate, any_n});
  db.register_topology(
      "mux", {"domino_unsplit", "Nx1 un-split domino mux", mux_domino_unsplit,
              any_n});
  db.register_topology(
      "mux", {"domino_split", "(m, n-m) partitioned domino mux",
              mux_domino_split, [](const MacroSpec& s) { return s.n >= 4; }});
}

}  // namespace smart::macros

#include "macros/comparator.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using util::strfmt;

Netlist comparator_domino(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 4, "comparator needs at least 4 bits");
  const int xorsum = static_cast<int>(spec.param("xorsum", 2));
  const int fanin1 = static_cast<int>(spec.param("fanin1", 4));
  const int fanin2 = static_cast<int>(spec.param("fanin2", 2));
  SMART_CHECK(xorsum >= 1 && xorsum <= 8, "xorsum width must be in [1, 8]");
  SMART_CHECK(fanin1 >= 2 && fanin1 <= 8, "fanin1 must be in [2, 8]");
  SMART_CHECK(fanin2 >= 2 && fanin2 <= 8, "fanin2 must be in [2, 8]");
  Netlist nl(strfmt("cmp%d_xs%d_f%d_%d", bits, xorsum, fanin1, fanin2));

  const NetId clk = nl.add_net("clk", netlist::NetKind::kClock);
  std::vector<NetId> at, af, bt, bf;
  for (int i = 0; i < bits; ++i) {
    at.push_back(nl.add_net(strfmt("a%d_t", i)));
    af.push_back(nl.add_net(strfmt("a%d_f", i)));
    bt.push_back(nl.add_net(strfmt("b%d_t", i)));
    bf.push_back(nl.add_net(strfmt("b%d_f", i)));
    nl.add_input(at.back(), spec.input_arrival_ps, spec.input_slope_ps);
    nl.add_input(af.back(), spec.input_arrival_ps, spec.input_slope_ps);
    nl.add_input(bt.back(), spec.input_arrival_ps, spec.input_slope_ps);
    nl.add_input(bf.back(), spec.input_arrival_ps, spec.input_slope_ps);
  }

  // ---- Stage 1 (D1): Xorsum-k — difference detect over a k-bit slice.
  // Pull-down: parallel over bits of (a.t b.f || a.f b.t) series pairs.
  const LabelId xs_n = nl.add_label("XS_N");
  const LabelId xs_p = nl.add_label("XS_P");
  const LabelId xs_foot = nl.add_label("XS_NF");
  const LabelId xs_ni = nl.add_label("XS_NI");
  const LabelId xs_pi = nl.add_label("XS_PI");
  std::vector<NetId> diff;
  for (int lo = 0, gate = 0; lo < bits; lo += xorsum, ++gate) {
    const int hi = std::min(bits, lo + xorsum);
    std::vector<Stack> branches;
    for (int i = lo; i < hi; ++i) {
      branches.push_back(Stack::series(
          {Stack::leaf(at[static_cast<size_t>(i)], xs_n),
           Stack::leaf(bf[static_cast<size_t>(i)], xs_n)}));
      branches.push_back(Stack::series(
          {Stack::leaf(af[static_cast<size_t>(i)], xs_n),
           Stack::leaf(bt[static_cast<size_t>(i)], xs_n)}));
    }
    const NetId dyn = nl.add_net(strfmt("xsdyn%d", gate));
    nl.add_component(strfmt("xorsum%d", gate), dyn,
                     DominoGate{Stack::parallel(std::move(branches)), xs_p,
                                xs_foot, clk, 0.1});
    const NetId out = nl.add_net(strfmt("diff%d", gate));
    nl.add_inverter(strfmt("xsinv%d", gate), dyn, out, xs_ni, xs_pi);
    diff.push_back(out);
  }

  // ---- Reduction stages: domino OR trees, alternating D2 / D1 / ...
  int stage = 2;
  bool footed = false;  // stage 2 is D2
  int fanin = fanin1;
  while (diff.size() > 1) {
    const LabelId rn = nl.add_label(strfmt("R%d_N", stage));
    const LabelId rp = nl.add_label(strfmt("R%d_P", stage));
    const LabelId rfoot =
        footed ? nl.add_label(strfmt("R%d_NF", stage)) : -1;
    const LabelId rni = nl.add_label(strfmt("R%d_NI", stage));
    const LabelId rpi = nl.add_label(strfmt("R%d_PI", stage));
    std::vector<NetId> next;
    for (size_t i = 0; i < diff.size(); i += static_cast<size_t>(fanin)) {
      const size_t hi =
          std::min(diff.size(), i + static_cast<size_t>(fanin));
      std::vector<Stack> leaves;
      for (size_t j = i; j < hi; ++j)
        leaves.push_back(Stack::leaf(diff[j], rn));
      const NetId dyn = nl.add_net(strfmt("rdyn%d_%zu", stage, i));
      nl.add_component(strfmt("red%d_%zu", stage, i), dyn,
                       DominoGate{Stack::parallel(std::move(leaves)), rp,
                                  rfoot, clk, 0.1});
      const NetId out = nl.add_net(strfmt("rd%d_%zu", stage, i));
      nl.add_inverter(strfmt("rinv%d_%zu", stage, i), dyn, out, rni, rpi);
      next.push_back(out);
    }
    diff = std::move(next);
    footed = !footed;
    fanin = fanin2;
    ++stage;
  }

  // Final equality flag: eq = !diff (static high-skew inverter).
  const LabelId fn = nl.add_label("EQ_N"), fp = nl.add_label("EQ_P");
  const NetId eq = nl.add_net("eq");
  nl.add_inverter("eq_inv", diff.front(), eq, fn, fp);
  nl.add_output(eq, spec.load_ff);

  nl.finalize();
  return nl;
}

void register_comparators(core::MacroDatabase& db) {
  auto make = [](int xorsum, int fanin1, int fanin2) {
    return [=](const MacroSpec& s) {
      MacroSpec m = s;
      m.params["xorsum"] = xorsum;
      m.params["fanin1"] = fanin1;
      m.params["fanin2"] = fanin2;
      return comparator_domino(m);
    };
  };
  auto wide = [](const MacroSpec& s) { return s.n >= 4; };
  db.register_topology("comparator",
                       {"xorsum2_nor4", "Xorsum2 -> Nor4 -> Nor2 (original)",
                        make(2, 4, 2), wide});
  db.register_topology("comparator",
                       {"xorsum1_nor8", "Xorsum1 -> Nor8 -> Nor2",
                        make(1, 8, 2), wide});
  db.register_topology("comparator",
                       {"xorsum4_nor4", "Xorsum4 -> Nor4 -> Nor2",
                        make(4, 4, 2), wide});
}

}  // namespace smart::macros

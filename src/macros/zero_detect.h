#pragma once

/// \file zero_detect.h
/// Zero-detect macros (paper Fig 5(b) workloads: 6..63 bit): out = 1 iff
/// all input bits are 0, built as an alternating NOR/NAND reduction tree
/// with per-level shared size labels. A domino variant (single wide-OR
/// dynamic stage feeding a NOR tree) is registered as an alternative
/// topology for exploration.

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Static NOR/NAND tree zero-detect. spec.n = bit width; param "arity"
/// (default 4) bounds the gate fan-in.
netlist::Netlist zero_detect_static(const core::MacroSpec& spec);

/// Domino zero-detect: wide-OR dynamic stage detects any set bit, a
/// high-skew inverter produces the zero flag.
netlist::Netlist zero_detect_domino(const core::MacroSpec& spec);

void register_zero_detects(core::MacroDatabase& db);

}  // namespace smart::macros

#pragma once

/// \file registry.h
/// One-call registration of every built-in macro family into a SMART
/// design database — the "a-priori designed macro database available to
/// the designer" of paper §2. Project-specific topologies can be added on
/// top with MacroDatabase::register_topology (the database's key
/// expandability property).

#include "core/database.h"

namespace smart::macros {

/// Registers muxes, incrementors/decrementors, zero-detects, decoders,
/// adders, and comparators.
void register_all(core::MacroDatabase& db);

/// A process-wide database with all built-in macros registered.
const core::MacroDatabase& builtin_database();

}  // namespace smart::macros

#pragma once

/// \file encoder.h
/// Priority encoder macros — "encoders" complete the paper's §2 list of
/// datapath structures. Finds the highest set input and emits its binary
/// index plus a valid flag: input complements, an MSB-first AND-prefix
/// over the complements (Kogge-Stone style, per-level shared labels), a
/// one-hot select layer, and NOR/INV index reduction trees.

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// n-to-log2(n) priority encoder. spec.n = input count (power of two in
/// [4, 64]); inputs in<i>, outputs idx<k> (binary index of the highest set
/// input) and "valid" (any input set).
netlist::Netlist priority_encoder(const core::MacroSpec& spec);

void register_encoders(core::MacroDatabase& db);

}  // namespace smart::macros

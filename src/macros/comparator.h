#pragma once

/// \file comparator.h
/// Two-phase dynamic (D1-D2) equality comparators (paper §6.3 / Fig 7).
/// Dual-rail inputs; stage 1 is a bank of domino "Xorsum-k" gates, each
/// detecting a difference in a k-bit slice (OR of per-bit XORs); the
/// remaining stages reduce the difference flags with domino OR gates of
/// configurable fan-in, alternating D1/D2 clocking; a final high-skew
/// static inverter emits the equality flag.
///
/// Fig 7's four configurations map to (xorsum width, reduction fan-ins):
///   original        Xorsum2 -> Nor4 -> Nor2 -> Nor2
///   exploration B   Xorsum1 -> Nor8 -> Nor2 -> Nor2
///   exploration C   Xorsum4 -> Nor4 -> Nor2 (+ output inverter)

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Parametrized comparator. spec.n = bit width. Params:
///   "xorsum"  — bits per stage-1 xorsum gate (default 2)
///   "fanin1"  — fan-in of the first reduction stage (default 4)
///   "fanin2"  — fan-in of later reduction stages (default 2)
netlist::Netlist comparator_domino(const core::MacroSpec& spec);

/// Registers the Fig 7 configurations as named topologies of type
/// "comparator": "xorsum2_nor4" (original), "xorsum1_nor8", "xorsum4_nor4".
void register_comparators(core::MacroDatabase& db);

}  // namespace smart::macros

#include "macros/incrementor.h"

#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using util::strfmt;

namespace {

/// NAND2 + inverter = AND2; labels are per tree level for regularity.
NetId and2(Netlist& nl, const std::string& name, NetId a, NetId b,
           LabelId nn, LabelId pn, LabelId ni, LabelId pi) {
  const NetId x = nl.add_net(name + "_n");
  nl.add_component(name + "_nand", x,
                   StaticGate{Stack::series({Stack::leaf(a, nn),
                                             Stack::leaf(b, nn)}),
                              pn});
  const NetId y = nl.add_net(name);
  nl.add_inverter(name + "_inv", x, y, ni, pi);
  return y;
}

/// 4-NAND XOR cell; one shared label set for all sum bits.
NetId xor2(Netlist& nl, const std::string& name, NetId a, NetId b,
           LabelId nn, LabelId pn) {
  const NetId x1 = nl.add_net(name + "_x1");
  nl.add_component(name + "_n1", x1,
                   StaticGate{Stack::series({Stack::leaf(a, nn),
                                             Stack::leaf(b, nn)}),
                              pn});
  const NetId x2 = nl.add_net(name + "_x2");
  nl.add_component(name + "_n2", x2,
                   StaticGate{Stack::series({Stack::leaf(a, nn),
                                             Stack::leaf(x1, nn)}),
                              pn});
  const NetId x3 = nl.add_net(name + "_x3");
  nl.add_component(name + "_n3", x3,
                   StaticGate{Stack::series({Stack::leaf(b, nn),
                                             Stack::leaf(x1, nn)}),
                              pn});
  const NetId y = nl.add_net(name);
  nl.add_component(name + "_n4", y,
                   StaticGate{Stack::series({Stack::leaf(x2, nn),
                                             Stack::leaf(x3, nn)}),
                              pn});
  return y;
}

}  // namespace

Netlist incrementor(const MacroSpec& spec) {
  const int bits = spec.n;
  SMART_CHECK(bits >= 2, "incrementor needs at least 2 bits");
  const bool decrement = spec.param("decrement", 0.0) != 0.0;
  Netlist nl(strfmt("%s%d", decrement ? "dec" : "inc", bits));

  std::vector<NetId> in(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    in[static_cast<size_t>(i)] = nl.add_net(strfmt("in%d", i));
    nl.add_input(in[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
  }

  // Prefix chain operand: the incrementor propagates a carry through a run
  // of ones; the decrementor borrows through a run of zeros (so it prefixes
  // over the complemented inputs).
  std::vector<NetId> prefix_in(in);
  if (decrement) {
    const LabelId nc = nl.add_label("NC"), pc = nl.add_label("PC");
    for (int i = 0; i < bits; ++i) {
      const NetId inv = nl.add_net(strfmt("inb%d", i));
      nl.add_inverter(strfmt("cinv%d", i), in[static_cast<size_t>(i)], inv,
                      nc, pc);
      prefix_in[static_cast<size_t>(i)] = inv;
    }
  }

  // Kogge-Stone AND-prefix: level k combines spans of 2^k bits.
  // prefix[i] = AND of prefix_in[0..i].
  std::vector<NetId> prefix(prefix_in);
  int level = 0;
  for (int span = 1; span < bits; span *= 2, ++level) {
    const LabelId nn = nl.add_label(strfmt("NA%d", level));
    const LabelId pn = nl.add_label(strfmt("PA%d", level));
    const LabelId ni = nl.add_label(strfmt("NI%d", level));
    const LabelId pi = nl.add_label(strfmt("PI%d", level));
    std::vector<NetId> next(prefix);
    for (int i = span; i < bits; ++i) {
      next[static_cast<size_t>(i)] =
          and2(nl, strfmt("pre_l%d_b%d", level, i),
               prefix[static_cast<size_t>(i)],
               prefix[static_cast<size_t>(i - span)], nn, pn, ni, pi);
    }
    prefix = std::move(next);
  }

  // sum[0] = !in[0]; sum[i] = in[i] XOR prefix[i-1]. A carry-out port
  // (prefix[bits-1]) is exposed as well.
  const LabelId nx = nl.add_label("NX"), px = nl.add_label("PX");
  const LabelId n0 = nl.add_label("N0"), p0 = nl.add_label("P0");
  {
    const NetId s0 = nl.add_net("out0");
    nl.add_inverter("sum0", in[0], s0, n0, p0);
    nl.add_output(s0, spec.load_ff);
  }
  for (int i = 1; i < bits; ++i) {
    const NetId s = xor2(nl, strfmt("out%d", i), in[static_cast<size_t>(i)],
                         prefix[static_cast<size_t>(i - 1)], nx, px);
    nl.add_output(s, spec.load_ff);
  }
  {
    const LabelId no = nl.add_label("NCO"), po = nl.add_label("PCO");
    const NetId cob = nl.add_net("carry_b");
    nl.add_inverter("co_inv", prefix[static_cast<size_t>(bits - 1)], cob, no,
                    po);
    const NetId co = nl.add_net("carry");
    nl.add_inverter("co_buf", cob, co, no, po);
    nl.add_output(co, spec.load_ff);
  }

  nl.finalize();
  return nl;
}

void register_incrementors(core::MacroDatabase& db) {
  auto wide = [](const MacroSpec& s) { return s.n >= 2; };
  db.register_topology("incrementor",
                       {"ks_prefix", "Kogge-Stone AND-prefix incrementor",
                        incrementor, wide});
  db.register_topology(
      "decrementor",
      {"ks_prefix", "Kogge-Stone borrow-prefix decrementor",
       [](const MacroSpec& s) {
         MacroSpec d = s;
         d.params["decrement"] = 1.0;
         return incrementor(d);
       },
       wide});
}

}  // namespace smart::macros

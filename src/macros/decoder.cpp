#include "macros/decoder.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using util::strfmt;

Netlist decoder(const MacroSpec& spec) {
  const int n = spec.n;
  SMART_CHECK(n >= 2 && n <= 8, "decoder address width must be in [2, 8]");
  const int words = 1 << n;
  Netlist nl(strfmt("dec%dto%d", n, words));

  std::vector<NetId> addr(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    addr[static_cast<size_t>(i)] = nl.add_net(strfmt("a%d", i));
    nl.add_input(addr[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
  }

  // Literal complements.
  const LabelId nc = nl.add_label("NC"), pc = nl.add_label("PC");
  std::vector<NetId> addr_b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    addr_b[static_cast<size_t>(i)] = nl.add_net(strfmt("ab%d", i));
    nl.add_inverter(strfmt("cinv%d", i), addr[static_cast<size_t>(i)],
                    addr_b[static_cast<size_t>(i)], nc, pc);
  }

  // Group the address bits (groups of <= 3) and predecode each group into
  // one-hot lines: line = AND of the group's literals = NAND + INV.
  struct Group {
    int lo;
    int size;
    std::vector<NetId> lines;  // 2^size one-hot nets
  };
  std::vector<Group> groups;
  for (int lo = 0; lo < n;) {
    const int size = std::min(3, n - lo);
    groups.push_back(Group{lo, size, {}});
    lo += size;
  }

  const LabelId npre = nl.add_label("NPRE"), ppre = nl.add_label("PPRE");
  const LabelId npi = nl.add_label("NPI"), ppi = nl.add_label("PPI");
  for (size_t g = 0; g < groups.size(); ++g) {
    auto& group = groups[g];
    const int combos = 1 << group.size;
    for (int v = 0; v < combos; ++v) {
      std::vector<Stack> leaves;
      for (int b = 0; b < group.size; ++b) {
        const bool one = ((v >> b) & 1) != 0;
        const size_t bit = static_cast<size_t>(group.lo + b);
        leaves.push_back(Stack::leaf(one ? addr[bit] : addr_b[bit], npre));
      }
      const NetId nand_out = nl.add_net(strfmt("pd%zu_%d_n", g, v));
      nl.add_component(strfmt("pre%zu_%d", g, v), nand_out,
                       StaticGate{Stack::series(std::move(leaves)), ppre});
      const NetId line = nl.add_net(strfmt("pd%zu_%d", g, v));
      nl.add_inverter(strfmt("prei%zu_%d", g, v), nand_out, line, npi, ppi);
      group.lines.push_back(line);
    }
  }

  // Word lines: NAND over one predecode line per group, then an inverter.
  const LabelId nw = nl.add_label("NW"), pw = nl.add_label("PW");
  const LabelId nwo = nl.add_label("NWO"), pwo = nl.add_label("PWO");
  for (int w = 0; w < words; ++w) {
    std::vector<Stack> leaves;
    for (const auto& group : groups) {
      const int v = (w >> group.lo) & ((1 << group.size) - 1);
      leaves.push_back(Stack::leaf(group.lines[static_cast<size_t>(v)], nw));
    }
    NetId word;
    if (groups.size() == 1) {
      // Single group: the predecode line already is the word line value;
      // buffer it (two inverters) to keep the output polarity and drive.
      const NetId x = nl.add_net(strfmt("w%d_b", w));
      nl.add_component(strfmt("word%d_n", w), x,
                       StaticGate{std::move(leaves.front()), pw});
      word = nl.add_net(strfmt("o%d", w));
      nl.add_inverter(strfmt("word%d_i", w), x, word, nwo, pwo);
    } else {
      const NetId x = nl.add_net(strfmt("w%d_n", w));
      nl.add_component(strfmt("word%d_n", w), x,
                       StaticGate{Stack::series(std::move(leaves)), pw});
      word = nl.add_net(strfmt("o%d", w));
      nl.add_inverter(strfmt("word%d_i", w), x, word, nwo, pwo);
    }
    nl.add_output(word, spec.load_ff);
  }

  nl.finalize();
  return nl;
}

void register_decoders(core::MacroDatabase& db) {
  db.register_topology(
      "decoder",
      {"predecode", "two-stage predecoded NAND decoder", decoder,
       [](const MacroSpec& s) { return s.n >= 2 && s.n <= 8; }});
}

}  // namespace smart::macros

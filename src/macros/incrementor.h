#pragma once

/// \file incrementor.h
/// Static incrementor / decrementor macros (paper Fig 5(a) workloads:
/// 3..64 bit). Carry generation uses a logarithmic AND-prefix tree
/// (Kogge-Stone style) built from NAND2+INV pairs with per-level shared
/// size labels; the sum bits are 4-NAND XOR cells. A decrementor is the
/// same prefix structure over complemented inputs (borrow chain).

#include "core/database.h"
#include "netlist/netlist.h"

namespace smart::macros {

/// Incrementor (out = in + 1). spec.n = bit width; param "decrement" != 0
/// builds a decrementor (out = in - 1) instead.
netlist::Netlist incrementor(const core::MacroSpec& spec);

/// Registers the incrementor topology under types "incrementor" and
/// "decrementor".
void register_incrementors(core::MacroDatabase& db);

}  // namespace smart::macros

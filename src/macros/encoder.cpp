#include "macros/encoder.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::macros {

using core::MacroSpec;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using util::strfmt;

Netlist priority_encoder(const MacroSpec& spec) {
  const int n = spec.n;
  SMART_CHECK(n >= 4 && n <= 64 && (n & (n - 1)) == 0,
              "encoder input count must be a power of two in [4, 64]");
  int idx_bits = 0;
  while ((1 << idx_bits) < n) ++idx_bits;
  Netlist nl(strfmt("penc%d", n));

  std::vector<NetId> in(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    in[static_cast<size_t>(i)] = nl.add_net(strfmt("in%d", i));
    nl.add_input(in[static_cast<size_t>(i)], spec.input_arrival_ps,
                 spec.input_slope_ps);
  }

  // Input complements.
  const LabelId nc = nl.add_label("NC"), pc = nl.add_label("PC");
  std::vector<NetId> cb(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    cb[static_cast<size_t>(i)] = nl.add_net(strfmt("cb%d", i));
    nl.add_inverter(strfmt("cinv%d", i), in[static_cast<size_t>(i)],
                    cb[static_cast<size_t>(i)], nc, pc);
  }

  // nh[i] = AND of cb[j] for j > i ("no higher input set"): an MSB-first
  // AND-prefix tree over the complements, NAND2+INV pairs with per-level
  // shared labels. nh[n-1] is the constant-true case (no gate needed).
  std::vector<NetId> nh(static_cast<size_t>(n), -1);
  {
    // prefix[i] after the tree = AND of cb[i..n-1]; nh[i] = prefix[i+1].
    std::vector<NetId> prefix(cb);
    int level = 0;
    for (int span = 1; span < n; span *= 2, ++level) {
      const LabelId nn = nl.add_label(strfmt("NA%d", level));
      const LabelId pn = nl.add_label(strfmt("PA%d", level));
      const LabelId ni = nl.add_label(strfmt("NI%d", level));
      const LabelId pi = nl.add_label(strfmt("PI%d", level));
      std::vector<NetId> next(prefix);
      for (int i = 0; i + span < n; ++i) {
        const NetId x = nl.add_net(strfmt("pre_l%d_%d_n", level, i));
        nl.add_component(
            strfmt("pre_l%d_%d", level, i), x,
            StaticGate{Stack::series(
                           {Stack::leaf(prefix[static_cast<size_t>(i)], nn),
                            Stack::leaf(
                                prefix[static_cast<size_t>(i + span)], nn)}),
                       pn});
        const NetId y = nl.add_net(strfmt("pre_l%d_%d", level, i));
        nl.add_inverter(strfmt("prei_l%d_%d", level, i), x, y, ni, pi);
        next[static_cast<size_t>(i)] = y;
      }
      prefix = std::move(next);
    }
    for (int i = 0; i + 1 < n; ++i)
      nh[static_cast<size_t>(i)] = prefix[static_cast<size_t>(i + 1)];
  }

  // One-hot select: sel[i] = in[i] AND nh[i] (top input needs no mask).
  const LabelId ns = nl.add_label("NSEL"), ps = nl.add_label("PSEL");
  const LabelId nsi = nl.add_label("NSELI"), psi = nl.add_label("PSELI");
  std::vector<NetId> sel(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i + 1 == n) {
      // sel[n-1] = in[n-1]; buffer it for uniform drive/polarity.
      const NetId x = nl.add_net(strfmt("sel%d_n", i));
      nl.add_inverter(strfmt("selb%d", i), in[static_cast<size_t>(i)], x, ns,
                      ps);
      sel[static_cast<size_t>(i)] = nl.add_net(strfmt("sel%d", i));
      nl.add_inverter(strfmt("seli%d", i), x, sel[static_cast<size_t>(i)],
                      nsi, psi);
      continue;
    }
    const NetId x = nl.add_net(strfmt("sel%d_n", i));
    nl.add_component(
        strfmt("selg%d", i), x,
        StaticGate{Stack::series({Stack::leaf(in[static_cast<size_t>(i)], ns),
                                  Stack::leaf(nh[static_cast<size_t>(i)],
                                              ns)}),
                   ps});
    sel[static_cast<size_t>(i)] = nl.add_net(strfmt("sel%d", i));
    nl.add_inverter(strfmt("seli%d", i), x, sel[static_cast<size_t>(i)], nsi,
                    psi);
  }

  // Index bits: idx[k] = OR of sel[i] with bit k of i set; valid = OR of
  // all sel. NOR trees (arity 4) with per-stage labels + a final inverter.
  const LabelId nr = nl.add_label("NR"), pr = nl.add_label("PR");
  const LabelId nri = nl.add_label("NRI"), pri = nl.add_label("PRI");
  // The second-level labels only exist when some tree has more than one
  // NOR group (n > 4); created lazily so small encoders carry no dead
  // labels.
  LabelId nr2 = -1, pr2 = -1;
  auto or_tree = [&](const std::vector<NetId>& terms,
                     const std::string& name) {
    // Level 1: NOR4 groups; level 2: NAND of the group results gives the
    // OR; a buffer is added when only one group exists.
    std::vector<NetId> groups;
    for (size_t i = 0; i < terms.size(); i += 4) {
      const size_t hi = std::min(terms.size(), i + 4);
      std::vector<Stack> leaves;
      for (size_t j = i; j < hi; ++j)
        leaves.push_back(Stack::leaf(terms[j], nr));
      const NetId g = nl.add_net(strfmt("%s_g%zu", name.c_str(), i / 4));
      nl.add_component(strfmt("%s_nor%zu", name.c_str(), i / 4), g,
                       StaticGate{Stack::parallel(std::move(leaves)), pr});
      groups.push_back(g);
    }
    const NetId out = nl.add_net(name);
    if (groups.size() == 1) {
      nl.add_inverter(name + "_inv", groups[0], out, nri, pri);
    } else {
      if (nr2 < 0) {
        nr2 = nl.add_label("NR2");
        pr2 = nl.add_label("PR2");
      }
      std::vector<Stack> leaves;
      for (const NetId g : groups) leaves.push_back(Stack::leaf(g, nr2));
      nl.add_component(name + "_nand", out,
                       StaticGate{Stack::series(std::move(leaves)), pr2});
    }
    return out;
  };

  for (int k = 0; k < idx_bits; ++k) {
    std::vector<NetId> terms;
    for (int i = 0; i < n; ++i)
      if ((i >> k) & 1) terms.push_back(sel[static_cast<size_t>(i)]);
    nl.add_output(or_tree(terms, strfmt("idx%d", k)), spec.load_ff);
  }
  nl.add_output(or_tree(sel, "valid"), spec.load_ff);

  nl.finalize();
  return nl;
}

void register_encoders(core::MacroDatabase& db) {
  db.register_topology(
      "encoder",
      {"priority", "MSB-first static priority encoder", priority_encoder,
       [](const MacroSpec& s) {
         return s.n >= 4 && s.n <= 64 && (s.n & (s.n - 1)) == 0;
       }});
}

}  // namespace smart::macros

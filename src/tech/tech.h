#pragma once

/// \file tech.h
/// Synthetic 180 nm-class technology parameters. The paper used an Intel
/// in-house process; all its results are normalized, so any self-consistent
/// parameter set exercises the same optimization behaviour (see DESIGN.md
/// substitution table). Units: width in um, capacitance in fF, resistance in
/// kOhm, time in ps, voltage in V.

namespace smart::tech {

/// Process corner: device strength / capacitance variation envelope.
enum class Corner { kTypical, kFast, kSlow };

/// Process/device parameters shared by the reference timer, the posynomial
/// model fitter and the power estimator.
struct Tech {
  // Per-square channel resistance of a 1 um wide device (kOhm * um).
  double r_nmos = 2.0;   ///< NMOS effective drive resistance * width
  double r_pmos = 4.0;   ///< PMOS is ~2x weaker per width

  // Capacitance per um of device width (fF / um).
  double c_gate = 1.0;  ///< gate capacitance
  double c_diff = 0.5;  ///< source/drain diffusion capacitance

  // Fixed wiring capacitance added to every internal net (fF).
  double c_wire = 0.5;
  // Additional wire cap per fanout connection, models short branch wiring.
  double c_wire_per_fanout = 0.1;

  double vdd = 1.8;        ///< supply voltage (V)
  double w_min = 0.3;      ///< minimum transistor width (um)
  double w_max = 200.0;    ///< maximum transistor width (um)

  // Slope (10-90 transition time) handling.
  double slope_to_delay = 0.28;  ///< delay contribution per ps of input slope
  double slope_sat = 90.0;      ///< slope effect saturation constant (ps)

  double elmore_ln2 = 0.69;   ///< 50% point of a single RC
  double slope_factor = 2.2;  ///< 10-90 slope of a single RC

  /// Default input slope assumed at macro boundaries (ps).
  double default_input_slope = 30.0;
  /// Default clock frequency for power numbers (GHz).
  double clock_ghz = 1.0;

  /// Drive resistance * width for a device type (kOhm * um).
  double r_device(bool is_pmos) const { return is_pmos ? r_pmos : r_nmos; }

  /// The saturating slope transform used by the reference timer's delay
  /// model: effective_slope(s) = s / (1 + s / slope_sat).
  double saturate_slope(double s) const { return s / (1.0 + s / slope_sat); }

  /// This technology shifted to a process corner: slow silicon has weaker
  /// devices (higher R) and heavier parasitics; fast silicon the reverse.
  /// High-performance sizing is done at the slow corner and checked
  /// everywhere.
  Tech at_corner(Corner corner) const {
    Tech t = *this;
    const double r = corner == Corner::kSlow   ? 1.20
                     : corner == Corner::kFast ? 0.85
                                               : 1.0;
    const double c = corner == Corner::kSlow   ? 1.08
                     : corner == Corner::kFast ? 0.94
                                               : 1.0;
    t.r_nmos *= r;
    t.r_pmos *= r;
    t.c_gate *= c;
    t.c_diff *= c;
    t.c_wire *= c;
    t.c_wire_per_fanout *= c;
    return t;
  }
};

/// The default technology used across tests, examples and benches.
const Tech& default_tech();

}  // namespace smart::tech

#include "tech/tech.h"

namespace smart::tech {

const Tech& default_tech() {
  static const Tech tech{};
  return tech;
}

}  // namespace smart::tech

#pragma once

/// \file slack.h
/// Required-time / slack analysis over the reference timer: back-propagate
/// output deadlines against the forward arrival times, yielding per-net,
/// per-edge slack — the designer's view of *where* a spec is failing and
/// how much margin the rest of the macro has.

#include <vector>

#include "refsim/rc_timer.h"

namespace smart::refsim {

/// Per-net slack (ps). An entry is +inf when the transition never occurs
/// or no deadline reaches it (e.g. dead logic).
struct SlackReport {
  std::vector<double> slack_rise;
  std::vector<double> slack_fall;
  double worst_slack = 0.0;
  netlist::NetId worst_net = -1;
  bool worst_is_rise = false;

  /// Worst of the two edges at one net.
  double at(netlist::NetId n) const {
    return std::min(slack_rise.at(static_cast<size_t>(n)),
                    slack_fall.at(static_cast<size_t>(n)));
  }
};

/// Computes evaluate-phase slack against a uniform output deadline, or
/// per-output deadlines aligned with Netlist::outputs() (entries <= 0 fall
/// back to the uniform value).
SlackReport compute_slack(const netlist::Netlist& nl,
                          const netlist::Sizing& sizing,
                          const tech::Tech& tech, double required_ps,
                          const std::vector<double>& per_output = {});

}  // namespace smart::refsim

#pragma once

/// \file critical_path.h
/// Critical-path extraction and reporting on top of the reference timer —
/// the "where did my delay go" view a designer reads after each sizing run
/// (the role PathMill's path reports played in the paper's flow).

#include <string>
#include <vector>

#include "refsim/rc_timer.h"

namespace smart::refsim {

/// One hop of the critical path.
struct CriticalStep {
  netlist::Arc arc;
  bool in_rise = false;
  bool out_rise = false;
  double arrival_ps = 0.0;  ///< arrival at the destination net
  double delay_ps = 0.0;    ///< this arc's contribution
  double slope_ps = 0.0;    ///< output slope of the transition
  double cap_ff = 0.0;      ///< load the arc drives
};

struct CriticalPath {
  netlist::NetId start = -1;
  bool start_rise = false;
  netlist::NetId end = -1;
  double arrival_ps = 0.0;
  std::vector<CriticalStep> steps;
};

/// Traces the worst evaluate-phase path to the latest macro output by
/// backtracking the reference timer's arrival times.
CriticalPath critical_path(const netlist::Netlist& nl,
                           const netlist::Sizing& sizing,
                           const tech::Tech& tech);

/// Renders a per-stage text report of the critical path.
std::string describe_critical_path(const netlist::Netlist& nl,
                                   const CriticalPath& path);

}  // namespace smart::refsim

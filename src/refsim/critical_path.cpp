#include "refsim/critical_path.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/strfmt.h"
#include "util/table.h"

namespace smart::refsim {

using netlist::Arc;
using netlist::EdgeMap;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sizing;

CriticalPath critical_path(const Netlist& nl, const Sizing& sizing,
                           const tech::Tech& tech) {
  const RcTimer timer(tech);
  const auto report = timer.analyze(nl, sizing);
  const auto caps = timer.all_net_caps(nl, sizing);

  // Find the latest-arriving output transition.
  CriticalPath path;
  double worst = -1e300;
  bool worst_rise = false;
  for (const auto& ot : report.outputs) {
    if (ot.arr_rise > worst) {
      worst = ot.arr_rise;
      path.end = ot.net;
      worst_rise = true;
    }
    if (ot.arr_fall > worst) {
      worst = ot.arr_fall;
      path.end = ot.net;
      worst_rise = false;
    }
  }
  SMART_CHECK(path.end >= 0 && worst > -1e299,
              "no output transition to trace");
  path.arrival_ps = worst;

  // Walk backwards: at each net/edge, find the incoming arc transition
  // whose source arrival + edge delay reproduces this arrival.
  NetId net = path.end;
  bool rise = worst_rise;
  std::vector<CriticalStep> reversed;
  std::vector<EdgeMap> maps;
  for (int guard = 0; guard < 10000; ++guard) {
    const auto& nt = report.nets[static_cast<size_t>(net)];
    const double arrival = rise ? nt.arr_rise : nt.arr_fall;
    const Arc* best_arc = nullptr;
    EdgeMap best_map{false, false};
    double best_err = 1e-3;
    EdgeDelay best_ed;
    for (const Arc& a : nl.arcs_into(net)) {
      bool footed = true;
      if (const auto* dg = nl.comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, netlist::Phase::kEvaluate, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.out_rise != rise) continue;
        const auto& src = report.nets[static_cast<size_t>(a.from)];
        const double t_in = em.in_rise ? src.arr_rise : src.arr_fall;
        if (t_in < -1e299) continue;
        const double s_in = em.in_rise ? src.slope_rise : src.slope_fall;
        const EdgeDelay ed = timer.arc_delay_with_cap(
            nl, sizing, a, em.out_rise, s_in, netlist::Phase::kEvaluate,
            caps[static_cast<size_t>(a.to)]);
        const double err = std::fabs(t_in + ed.delay_ps - arrival);
        if (err < best_err) {
          best_err = err;
          best_arc = &a;
          best_map = em;
          best_ed = ed;
        }
      }
    }
    if (best_arc == nullptr) break;  // reached a primary input / clock
    CriticalStep step;
    step.arc = *best_arc;
    step.in_rise = best_map.in_rise;
    step.out_rise = best_map.out_rise;
    step.arrival_ps = arrival;
    step.delay_ps = best_ed.delay_ps;
    step.slope_ps = best_ed.out_slope_ps;
    step.cap_ff = caps[static_cast<size_t>(best_arc->to)];
    reversed.push_back(step);
    net = best_arc->from;
    rise = best_map.in_rise;
  }
  path.start = net;
  path.start_rise = rise;
  path.steps.assign(reversed.rbegin(), reversed.rend());
  return path;
}

std::string describe_critical_path(const Netlist& nl,
                                   const CriticalPath& path) {
  std::ostringstream out;
  out << util::strfmt("critical path: %s (%s) -> %s, %.1f ps, %zu stages\n",
                      nl.net(path.start).name.c_str(),
                      path.start_rise ? "rise" : "fall",
                      nl.net(path.end).name.c_str(), path.arrival_ps,
                      path.steps.size());
  util::Table table({"through", "to net", "edge", "delay (ps)",
                     "arrival (ps)", "slope (ps)", "load (fF)"});
  for (const auto& s : path.steps) {
    table.add_row({nl.comp(s.arc.comp).name, nl.net(s.arc.to).name,
                   s.out_rise ? "r" : "f",
                   util::strfmt("%.1f", s.delay_ps),
                   util::strfmt("%.1f", s.arrival_ps),
                   util::strfmt("%.1f", s.slope_ps),
                   util::strfmt("%.1f", s.cap_ff)});
  }
  out << table.render();
  return out.str();
}

}  // namespace smart::refsim

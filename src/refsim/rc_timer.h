#pragma once

/// \file rc_timer.h
/// Reference static timing engine (the reproduction's stand-in for PathMill,
/// see DESIGN.md). Computes per-net rise/fall arrival times and slopes over
/// a sized netlist using switch-level Elmore RC delays with:
///   - per-device effective resistance and diffusion/gate capacitance,
///   - internal stack-node capacitance along the worst conducting path,
///   - a *saturating* (non-posynomial) input-slope delay term,
///   - domino keeper contention (nonlinear in widths),
///   - separate evaluate and precharge phases for domino logic, where
///     unfooted (D2) stages cannot finish precharging before their inputs
///     reset — the monotonic reset ripple.
/// Because these effects are deliberately richer than the posynomial
/// component models, the SMART sizing loop's model-vs-STA mismatch iteration
/// (paper Fig 4) is exercised for real.

#include <vector>

#include "netlist/netlist.h"
#include "tech/tech.h"

namespace smart::refsim {

/// Timing phase (shared with the netlist edge-transition tables).
using Phase = netlist::Phase;

/// Arrival/slope state of one net (ps). Arrivals start at -inf meaning the
/// transition never occurs in the analyzed phase.
struct NetTiming {
  double arr_rise;
  double arr_fall;
  double slope_rise = 0.0;
  double slope_fall = 0.0;

  double worst_arrival() const;
};

/// Timing at one macro output.
struct OutputTiming {
  netlist::NetId net = -1;
  double arr_rise = 0.0;  ///< -inf if the output never rises in this phase
  double arr_fall = 0.0;
  double slope = 0.0;     ///< slope of the worst transition
};

struct TimingReport {
  std::vector<NetTiming> nets;           ///< evaluate-phase state, by net
  std::vector<OutputTiming> outputs;     ///< evaluate-phase output timing
  double worst_delay = 0.0;              ///< max finite output arrival (ps)
  double worst_output_slope = 0.0;       ///< max slope at any output (ps)
  double max_internal_slope = 0.0;       ///< max slope anywhere (reliability)
  double worst_precharge = 0.0;          ///< max domino precharge settle (ps)
};

/// One pin-to-pin transition delay.
struct EdgeDelay {
  double delay_ps = 0.0;
  double out_slope_ps = 0.0;
};

/// Reference RC timer. Stateless w.r.t. netlists; one instance per tech.
class RcTimer {
 public:
  explicit RcTimer(const tech::Tech& tech) : tech_(&tech) {}

  /// Full static timing analysis of a sized macro.
  TimingReport analyze(const netlist::Netlist& nl,
                       const netlist::Sizing& sizing) const;

  /// Total capacitance on a net: gate + diffusion + wire + port load (fF).
  double net_cap(const netlist::Netlist& nl, const netlist::Sizing& sizing,
                 netlist::NetId n) const;

  /// Capacitance of every net in one component sweep (much faster than
  /// calling net_cap per net on large macros).
  std::vector<double> all_net_caps(const netlist::Netlist& nl,
                                   const netlist::Sizing& sizing) const;

  /// Delay/slope of one arc for a given output transition in a given phase.
  /// `out_rising` selects the pull-up (true) or pull-down (false) event at
  /// the arc's destination. `in_slope` is the slope of the causing input
  /// transition (ps).
  EdgeDelay arc_delay(const netlist::Netlist& nl,
                      const netlist::Sizing& sizing, const netlist::Arc& arc,
                      bool out_rising, double in_slope,
                      Phase phase = Phase::kEvaluate) const;

  /// Same, with the destination net capacitance supplied by the caller
  /// (lets analyze() cache all net caps instead of rescanning the netlist
  /// for every arc).
  EdgeDelay arc_delay_with_cap(const netlist::Netlist& nl,
                               const netlist::Sizing& sizing,
                               const netlist::Arc& arc, bool out_rising,
                               double in_slope, Phase phase,
                               double c_out) const;

 private:
  /// Elmore delay/slope through a series device path. `path[0]` is adjacent
  /// to the output node; each entry is (resistance-ohms-um / width-um).
  /// Internal nodes carry the diffusion of their adjacent devices.
  EdgeDelay elmore(const std::vector<std::pair<double, double>>&
                       r_and_w_from_out,
                   double c_out, double in_slope) const;

  const tech::Tech* tech_;
};

}  // namespace smart::refsim

#pragma once

/// \file logic_sim.h
/// Switch-level functional simulator for macro netlists. Evaluates the
/// steady state of one clock phase: static CMOS gates through their
/// pull-down networks, pass gates / tri-states with Z resolution on shared
/// nodes, and domino gates in the evaluate phase (dynamic nodes precharged
/// high, discharged when the pull-down network conducts with the foot on).
/// Used by the test suite to verify that every generated macro computes
/// its intended function at the transistor level.

#include <map>
#include <vector>

#include "netlist/netlist.h"

namespace smart::refsim {

/// Four-valued logic: strong 0/1, unknown, floating.
enum class Logic : uint8_t { k0 = 0, k1 = 1, kX = 2, kZ = 3 };

inline Logic from_bool(bool b) { return b ? Logic::k1 : Logic::k0; }
inline bool is_known(Logic v) { return v == Logic::k0 || v == Logic::k1; }
inline Logic negate(Logic v) {
  if (v == Logic::k0) return Logic::k1;
  if (v == Logic::k1) return Logic::k0;
  return Logic::kX;
}

/// Functional simulator over a finalized netlist.
class LogicSim {
 public:
  explicit LogicSim(const netlist::Netlist& nl);

  /// Evaluate-phase steady state for the given primary input values
  /// (clock nets are implicitly at 1 / "evaluating"). Unassigned inputs
  /// are X. Returns one value per net.
  std::vector<Logic> evaluate(
      const std::map<netlist::NetId, bool>& inputs) const;

  /// Value of one net from an evaluate() result.
  static Logic value(const std::vector<Logic>& state, netlist::NetId n) {
    return state.at(static_cast<size_t>(n));
  }

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::NetId> topo_;  ///< nets in topological order
};

}  // namespace smart::refsim

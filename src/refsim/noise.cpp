#include "refsim/noise.h"

#include <algorithm>

#include "refsim/rc_timer.h"
#include "util/check.h"

namespace smart::refsim {

using netlist::Netlist;
using netlist::Sizing;
using netlist::Stack;

namespace {

/// Worst-case internal capacitance that can share charge with the dynamic
/// node: the diffusion of every device on the deepest series path except
/// the topmost (whose drain *is* the dynamic node).
double internal_share_cap(const Netlist& nl, const netlist::DominoGate& gate,
                          const Sizing& sizing, const tech::Tech& tech) {
  const auto path = gate.pulldown.worst_path();
  double cap = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    // Node between devices i and i+1 carries both diffusions.
    cap += tech.c_diff * (nl.label_width(path[i].second, sizing) +
                          nl.label_width(path[i + 1].second, sizing));
  }
  // A footed stack adds one more internal node above the evaluate device.
  if (gate.evaluate_label >= 0 && !path.empty()) {
    cap += tech.c_diff * (nl.label_width(path.back().second, sizing) +
                          nl.label_width(gate.evaluate_label, sizing));
  }
  return cap;
}

}  // namespace

std::vector<DominoNoiseReport> analyze_domino_noise(
    const Netlist& nl, const Sizing& sizing, const tech::Tech& tech,
    const NoiseOptions& options) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  const RcTimer timer(tech);
  const auto caps = timer.all_net_caps(nl, sizing);

  std::vector<DominoNoiseReport> reports;
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto& comp = nl.comp(static_cast<netlist::CompId>(c));
    const auto* gate = comp.as_domino();
    if (gate == nullptr) continue;

    DominoNoiseReport report;
    report.comp = static_cast<netlist::CompId>(c);
    report.name = comp.name;

    const double c_dyn = caps[static_cast<size_t>(comp.out)];
    const double c_int = internal_share_cap(nl, *gate, sizing, tech);
    report.charge_share = c_int / (c_int + c_dyn);
    report.charge_share_ok = report.charge_share <= options.max_charge_share;

    // Conductance ratio of the keeper vs the worst pull-down path.
    double r_path = 0.0;
    for (const auto& [net, label] : gate->pulldown.worst_path())
      r_path += tech.r_nmos / nl.label_width(label, sizing);
    if (gate->evaluate_label >= 0)
      r_path += tech.r_nmos / nl.label_width(gate->evaluate_label, sizing);
    const double g_path = 1.0 / r_path;
    const double g_keeper =
        gate->keeper_ratio * nl.label_width(gate->precharge_label, sizing) /
        tech.r_pmos;
    report.keeper_strength = g_keeper / g_path;
    report.keeper_ok =
        report.keeper_strength >= options.min_keeper_strength &&
        report.keeper_strength <= options.max_keeper_strength;

    reports.push_back(std::move(report));
  }
  return reports;
}

bool noise_clean(const std::vector<DominoNoiseReport>& reports) {
  return std::all_of(reports.begin(), reports.end(),
                     [](const DominoNoiseReport& r) { return r.ok(); });
}

}  // namespace smart::refsim

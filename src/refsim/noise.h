#pragma once

/// \file noise.h
/// Domino noise-immunity checks (the paper's reliability thread: "on a
/// particularly noisy portion of the chip, the designer may like to
/// manually tune certain transistor sizes"). Two classic dynamic-node
/// hazards are analyzed per domino gate:
///   * charge sharing — internal stack nodes steal charge from the dynamic
///     node when upper devices turn on before the path conducts; the
///     voltage droop is approximately C_internal / (C_internal + C_dyn),
///   * keeper strength — the keeper must be strong enough to hold the node
///     against leakage but weak enough not to fight evaluation.
/// A designer reviews this report and locks labels (Netlist::fix_label)
/// where the automatic sizing is not robust enough for the local
/// environment.

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "tech/tech.h"

namespace smart::refsim {

struct NoiseOptions {
  /// Maximum tolerated charge-sharing droop (fraction of the swing).
  double max_charge_share = 0.25;
  /// Keeper conductance at least this fraction of the worst pull-down
  /// conductance (holds the node against leakage/noise).
  double min_keeper_strength = 0.01;
  /// ... and at most this fraction (evaluation must win cleanly).
  double max_keeper_strength = 0.5;
};

struct DominoNoiseReport {
  netlist::CompId comp = -1;
  std::string name;
  double charge_share = 0.0;     ///< worst-case droop fraction
  double keeper_strength = 0.0;  ///< keeper / pull-down conductance ratio
  bool charge_share_ok = true;
  bool keeper_ok = true;

  bool ok() const { return charge_share_ok && keeper_ok; }
};

/// Analyzes every domino gate of a sized macro. Non-domino macros return
/// an empty report list.
std::vector<DominoNoiseReport> analyze_domino_noise(
    const netlist::Netlist& nl, const netlist::Sizing& sizing,
    const tech::Tech& tech, const NoiseOptions& options = {});

/// True when every domino gate passes both checks.
bool noise_clean(const std::vector<DominoNoiseReport>& reports);

}  // namespace smart::refsim

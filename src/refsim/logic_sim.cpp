#include "refsim/logic_sim.h"

#include <queue>

#include "util/check.h"

namespace smart::refsim {

using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;

namespace {

/// Conduction of a series/parallel network given per-leaf gate values.
/// Returns k1 (conducts), k0 (off), or kX.
Logic conducts(const Stack& s, const std::vector<Logic>& state,
               bool invert_inputs) {
  if (s.is_leaf()) {
    const Logic v = state.at(static_cast<size_t>(s.input()));
    if (v == Logic::kZ) return Logic::kX;
    return invert_inputs ? negate(v) : v;
  }
  if (s.op() == Stack::Op::kSeries) {
    Logic acc = Logic::k1;
    for (const auto& c : s.children()) {
      const Logic v = conducts(c, state, invert_inputs);
      if (v == Logic::k0) return Logic::k0;
      if (v == Logic::kX) acc = Logic::kX;
    }
    return acc;
  }
  Logic acc = Logic::k0;
  for (const auto& c : s.children()) {
    const Logic v = conducts(c, state, invert_inputs);
    if (v == Logic::k1) return Logic::k1;
    if (v == Logic::kX) acc = Logic::kX;
  }
  return acc;
}

/// Resolves the contributions of multiple drivers on a shared node.
Logic resolve(Logic a, Logic b) {
  if (a == Logic::kZ) return b;
  if (b == Logic::kZ) return a;
  if (a == b) return a;
  return Logic::kX;
}

}  // namespace

LogicSim::LogicSim(const Netlist& nl) : nl_(&nl) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  std::vector<int> indeg(nl.net_count(), 0);
  for (const auto& a : nl.arcs()) indeg[static_cast<size_t>(a.to)]++;
  std::queue<NetId> ready;
  for (size_t n = 0; n < nl.net_count(); ++n)
    if (indeg[n] == 0) ready.push(static_cast<NetId>(n));
  while (!ready.empty()) {
    const NetId n = ready.front();
    ready.pop();
    topo_.push_back(n);
    for (const auto& a : nl.arcs_from(n))
      if (--indeg[static_cast<size_t>(a.to)] == 0) ready.push(a.to);
  }
  SMART_CHECK(topo_.size() == nl.net_count(), "netlist contains a cycle");
}

std::vector<Logic> LogicSim::evaluate(
    const std::map<NetId, bool>& inputs) const {
  const Netlist& nl = *nl_;
  std::vector<Logic> state(nl.net_count(), Logic::kX);
  for (size_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock)
      state[n] = Logic::k1;  // evaluate phase
  }
  for (const auto& [net, value] : inputs)
    state.at(static_cast<size_t>(net)) = from_bool(value);

  for (const NetId n : topo_) {
    const auto& drivers = nl.drivers_of(n);
    if (drivers.empty()) continue;  // primary input or clock
    Logic out = Logic::kZ;
    for (const auto c : drivers) {
      const auto& comp = nl.comp(c);
      Logic contribution = Logic::kZ;
      if (const auto* g = comp.as_static()) {
        // Complementary CMOS: output is the complement of the pull-down
        // conduction; the pull-up is its structural dual.
        const Logic pd = conducts(g->pulldown, state, false);
        contribution = negate(pd);
      } else if (const auto* t = comp.as_transgate()) {
        const Logic sel = state[static_cast<size_t>(t->sel)];
        if (sel == Logic::k1) {
          contribution = state[static_cast<size_t>(t->data)];
        } else if (sel == Logic::k0) {
          contribution = Logic::kZ;
        } else {
          contribution = Logic::kX;
        }
      } else if (const auto* t3 = comp.as_tristate()) {
        const Logic en = state[static_cast<size_t>(t3->en)];
        if (en == Logic::k1) {
          contribution = negate(state[static_cast<size_t>(t3->data)]);
        } else if (en == Logic::k0) {
          contribution = Logic::kZ;
        } else {
          contribution = Logic::kX;
        }
      } else if (const auto* d = comp.as_domino()) {
        // Evaluate phase: the dynamic node was precharged high and falls
        // iff the pull-down conducts (the clocked foot is on).
        const Logic pd = conducts(d->pulldown, state, false);
        contribution = negate(pd);
      }
      out = resolve(out, contribution);
    }
    // A floating shared node holds its precharge/previous value — treat as
    // unknown for functional checking purposes.
    state[static_cast<size_t>(n)] = out == Logic::kZ ? Logic::kX : out;
  }
  return state;
}

}  // namespace smart::refsim

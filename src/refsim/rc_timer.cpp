#include "refsim/rc_timer.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"
#include "util/fault.h"

namespace smart::refsim {

using netlist::Arc;
using netlist::ArcKind;
using netlist::Component;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sizing;

namespace {

constexpr double kNever = -1e300;

bool happened(double t) { return t > kNever / 2; }

}  // namespace

double NetTiming::worst_arrival() const {
  double w = kNever;
  if (happened(arr_rise)) w = std::max(w, arr_rise);
  if (happened(arr_fall)) w = std::max(w, arr_fall);
  return w;
}

EdgeDelay RcTimer::elmore(
    const std::vector<std::pair<double, double>>& r_and_w_from_out,
    double c_out, double in_slope) const {
  const auto& t = *tech_;
  const size_t depth = r_and_w_from_out.size();
  SMART_CHECK(depth > 0, "elmore path must have at least one device");

  // Resistance of each device and running totals; path[0] is adjacent to
  // the output node, path[depth-1] to the supply rail.
  double r_total = 0.0;
  for (const auto& [r, w] : r_and_w_from_out) {
    SMART_CHECK(w > 0.0, "device width must be positive");
    r_total += r / w;
  }
  double elmore_sum = r_total * c_out;
  // Internal node k sits between devices k and k+1 and carries their
  // diffusion capacitance; its resistance to the supply is the sum of the
  // device resistances below it.
  double r_below = r_total;
  for (size_t k = 0; k + 1 < depth; ++k) {
    r_below -= r_and_w_from_out[k].first / r_and_w_from_out[k].second;
    const double c_node =
        t.c_diff *
        (r_and_w_from_out[k].second + r_and_w_from_out[k + 1].second);
    elmore_sum += r_below * c_node;
  }

  EdgeDelay d;
  // Saturating slope term: sub-linear in input slope, so the (linear)
  // posynomial models genuinely mismatch at large slopes.
  const double slope_term =
      t.slope_to_delay * in_slope / (1.0 + in_slope / t.slope_sat);
  d.delay_ps = t.elmore_ln2 * elmore_sum + slope_term;
  d.out_slope_ps = t.slope_factor * elmore_sum + 0.1 * in_slope;
  return d;
}

double RcTimer::net_cap(const Netlist& nl, const Sizing& sizing,
                        NetId n) const {
  const auto& t = *tech_;
  double cap = 0.0;
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto id = static_cast<netlist::CompId>(c);
    cap += t.c_gate * nl.resolve_width(nl.gate_width_on_net(id, n), sizing);
    cap += t.c_diff *
           nl.resolve_width(nl.diffusion_width_on_net(id, n), sizing);
  }
  cap += t.c_wire + nl.net(n).extra_wire_ff +
         t.c_wire_per_fanout * static_cast<double>(nl.arcs_from(n).size());
  for (const auto& port : nl.outputs())
    if (port.net == n) cap += port.load_ff;
  return cap;
}

std::vector<double> RcTimer::all_net_caps(const Netlist& nl,
                                           const Sizing& sizing) const {
  const auto& t = *tech_;
  std::vector<double> caps(nl.net_count(), 0.0);
  for (size_t n = 0; n < nl.net_count(); ++n) {
    caps[n] = t.c_wire + nl.net(static_cast<NetId>(n)).extra_wire_ff +
              t.c_wire_per_fanout *
                  static_cast<double>(
                      nl.arcs_from(static_cast<NetId>(n)).size());
  }
  for (const auto& port : nl.outputs())
    caps[static_cast<size_t>(port.net)] += port.load_ff;
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto id = static_cast<netlist::CompId>(c);
    for (const NetId n : nl.touched_nets(id)) {
      caps[static_cast<size_t>(n)] +=
          t.c_gate * nl.resolve_width(nl.gate_width_on_net(id, n), sizing) +
          t.c_diff *
              nl.resolve_width(nl.diffusion_width_on_net(id, n), sizing);
    }
  }
  return caps;
}

EdgeDelay RcTimer::arc_delay(const Netlist& nl, const Sizing& sizing,
                             const Arc& arc, bool out_rising, double in_slope,
                             Phase phase) const {
  return arc_delay_with_cap(nl, sizing, arc, out_rising, in_slope, phase,
                            net_cap(nl, sizing, arc.to));
}

EdgeDelay RcTimer::arc_delay_with_cap(const Netlist& nl, const Sizing& sizing,
                                      const Arc& arc, bool out_rising,
                                      double in_slope, Phase phase,
                                      double c_out) const {
  const auto& t = *tech_;
  const Component& comp = nl.comp(arc.comp);

  auto label_w = [&](netlist::LabelId l) { return nl.label_width(l, sizing); };

  if (const auto* g = comp.as_static()) {
    std::vector<std::pair<NetId, netlist::LabelId>> path;
    std::vector<std::pair<double, double>> rw;
    if (out_rising) {
      const bool found = g->pulldown.dual().worst_path_through(arc.from, path);
      SMART_CHECK(found, "static arc input not in pull-up network");
      for (size_t k = 0; k < path.size(); ++k)
        rw.emplace_back(t.r_pmos, label_w(g->pmos_label));
    } else {
      const bool found = g->pulldown.worst_path_through(arc.from, path);
      SMART_CHECK(found, "static arc input not in pull-down network");
      for (const auto& [net, label] : path)
        rw.emplace_back(t.r_nmos, label_w(label));
    }
    return elmore(rw, c_out, in_slope);
  }

  if (const auto* tg = comp.as_transgate()) {
    const double w = label_w(tg->label);
    const double r_eff = (t.r_nmos * t.r_pmos) / (t.r_nmos + t.r_pmos);
    if (arc.kind == ArcKind::kPassData) {
      return elmore({{r_eff, w}}, c_out, in_slope);
    }
    // Control path: the local inverter generates the PMOS select, then the
    // opened gate conducts the (already present) data value to the output.
    const double w_inv = netlist::TransGate::kLocalInvRatio * w;
    const double c_inv_load =
        t.c_gate * w + 2.0 * t.c_diff * w_inv;  // P pass gate + self
    const EdgeDelay inv =
        elmore({{t.r_nmos, w_inv}}, c_inv_load, in_slope);
    EdgeDelay pass = elmore({{r_eff, w}}, c_out, inv.out_slope_ps);
    pass.delay_ps += inv.delay_ps;
    return pass;
  }

  if (const auto* t3 = comp.as_tristate()) {
    const double wn = label_w(t3->nmos_label);
    const double wp = label_w(t3->pmos_label);
    auto stack2 = [&](bool rising) {
      return std::vector<std::pair<double, double>>{
          {rising ? t.r_pmos : t.r_nmos, rising ? wp : wn},
          {rising ? t.r_pmos : t.r_nmos, rising ? wp : wn}};
    };
    if (arc.kind == ArcKind::kTristateData) {
      return elmore(stack2(out_rising), c_out, in_slope);
    }
    // Enable path: internal complement inverter, then the 2-stack conducts.
    const double w_inv = netlist::Tristate::kLocalInvRatio * wn;
    const double c_inv_load = t.c_gate * wp + 2.0 * t.c_diff * w_inv;
    const EdgeDelay inv = elmore({{t.r_nmos, w_inv}}, c_inv_load, in_slope);
    EdgeDelay cond = elmore(stack2(out_rising), c_out, inv.out_slope_ps);
    cond.delay_ps += inv.delay_ps;
    return cond;
  }

  const auto* d = comp.as_domino();
  SMART_CHECK(d != nullptr, "unknown component kind");
  const double w_pre = label_w(d->precharge_label);

  if (arc.kind == ArcKind::kDominoPrecharge ||
      (phase == Phase::kPrecharge && arc.kind == ArcKind::kDominoEval)) {
    // Precharge through P1. For unfooted stages, callers gate this on the
    // inputs having fallen; the RC is the same either way.
    return elmore({{t.r_pmos, w_pre}}, c_out, in_slope);
  }

  // Evaluate: pull-down path through the causing input (or the worst path
  // for the clock-to-output arc of a footed stage), plus the foot device.
  std::vector<std::pair<NetId, netlist::LabelId>> path;
  if (arc.kind == ArcKind::kDominoClkEval) {
    path = d->pulldown.worst_path();
  } else {
    const bool found = d->pulldown.worst_path_through(arc.from, path);
    SMART_CHECK(found, "domino arc input not in pull-down network");
  }
  std::vector<std::pair<double, double>> rw;
  for (const auto& [net, label] : path)
    rw.emplace_back(t.r_nmos, label_w(label));
  if (d->evaluate_label >= 0)
    rw.emplace_back(t.r_nmos, label_w(d->evaluate_label));

  EdgeDelay ed = elmore(rw, c_out, in_slope);
  // Keeper contention: the keeper PMOS fights the pull-down until the node
  // crosses; effective slowdown G/(G - G_keeper). Nonlinear in widths, so
  // invisible to the posynomial models — handled by the sizing loop.
  double g_path = 0.0;
  {
    double r_sum = 0.0;
    for (const auto& [r, w] : rw) r_sum += r / w;
    g_path = 1.0 / r_sum;
  }
  const double g_keeper = d->keeper_ratio * w_pre / t.r_pmos;
  const double factor =
      (g_path > g_keeper * 1.02) ? g_path / (g_path - g_keeper) : 50.0;
  ed.delay_ps *= factor;
  ed.out_slope_ps *= factor;
  return ed;
}

TimingReport RcTimer::analyze(const Netlist& nl,
                              const Sizing& sizing) const {
  SMART_CHECK(nl.finalized(), "netlist must be finalized before timing");
  const auto& t = *tech_;

  // Topological order of nets over arcs (Kahn).
  const size_t n_nets = nl.net_count();
  std::vector<int> indeg(n_nets, 0);
  for (const Arc& a : nl.arcs()) indeg[static_cast<size_t>(a.to)]++;
  std::vector<NetId> topo;
  topo.reserve(n_nets);
  std::queue<NetId> ready;
  for (size_t n = 0; n < n_nets; ++n)
    if (indeg[n] == 0) ready.push(static_cast<NetId>(n));
  while (!ready.empty()) {
    const NetId n = ready.front();
    ready.pop();
    topo.push_back(n);
    for (const Arc& a : nl.arcs_from(n))
      if (--indeg[static_cast<size_t>(a.to)] == 0) ready.push(a.to);
  }
  SMART_CHECK(topo.size() == n_nets, "netlist contains a cycle");

  // Net capacitances are sizing-dependent but phase-independent; compute
  // them once for the whole analysis.
  const std::vector<double> caps = all_net_caps(nl, sizing);

  auto run_phase = [&](Phase phase) {
    std::vector<NetTiming> nets(
        n_nets, NetTiming{kNever, kNever, 0.0, 0.0});
    // Sources: clock nets and primary inputs.
    for (size_t n = 0; n < n_nets; ++n) {
      if (nl.net(static_cast<NetId>(n)).kind != netlist::NetKind::kClock)
        continue;
      auto& nt = nets[n];
      if (phase == Phase::kEvaluate) {
        nt.arr_rise = 0.0;
        nt.slope_rise = t.default_input_slope;
      } else {
        nt.arr_fall = 0.0;
        nt.slope_fall = t.default_input_slope;
      }
    }
    for (const auto& p : nl.inputs()) {
      auto& nt = nets[static_cast<size_t>(p.net)];
      const double slope =
          p.slope_ps >= 0.0 ? p.slope_ps : t.default_input_slope;
      const double arr = phase == Phase::kEvaluate ? p.arrival_ps : 0.0;
      nt.arr_rise = arr;
      nt.arr_fall = arr;
      nt.slope_rise = slope;
      nt.slope_fall = slope;
    }

    std::vector<netlist::EdgeMap> maps;
    for (const NetId n : topo) {
      for (const Arc& a : nl.arcs_into(n)) {
        bool footed = true;
        if (const auto* dg = nl.comp(a.comp).as_domino())
          footed = dg->evaluate_label >= 0;
        netlist::arc_edge_maps(a.kind, phase, footed, maps);
        const auto& src = nets[static_cast<size_t>(a.from)];
        auto& dst = nets[static_cast<size_t>(a.to)];
        for (const netlist::EdgeMap& em : maps) {
          const double t_in = em.in_rise ? src.arr_rise : src.arr_fall;
          if (!happened(t_in)) continue;
          const double s_in = em.in_rise ? src.slope_rise : src.slope_fall;
          const EdgeDelay ed = arc_delay_with_cap(
              nl, sizing, a, em.out_rise, s_in, phase,
              caps[static_cast<size_t>(a.to)]);
          const double t_out = t_in + ed.delay_ps;
          double& arr = em.out_rise ? dst.arr_rise : dst.arr_fall;
          double& slope = em.out_rise ? dst.slope_rise : dst.slope_fall;
          if (t_out > arr) {
            arr = t_out;
            slope = ed.out_slope_ps;
          }
        }
      }
    }
    return nets;
  };

  TimingReport report;
  report.nets = run_phase(Phase::kEvaluate);

  for (const auto& port : nl.outputs()) {
    const auto& nt = report.nets[static_cast<size_t>(port.net)];
    OutputTiming ot;
    ot.net = port.net;
    ot.arr_rise = nt.arr_rise;
    ot.arr_fall = nt.arr_fall;
    double slope = 0.0;
    double worst = kNever;
    if (happened(nt.arr_rise) && nt.arr_rise > worst) {
      worst = nt.arr_rise;
      slope = nt.slope_rise;
    }
    if (happened(nt.arr_fall) && nt.arr_fall > worst) {
      worst = nt.arr_fall;
      slope = nt.slope_fall;
    }
    ot.slope = slope;
    report.outputs.push_back(ot);
    if (happened(worst)) report.worst_delay = std::max(report.worst_delay, worst);
    report.worst_output_slope = std::max(report.worst_output_slope, slope);
  }
  for (const auto& nt : report.nets) {
    if (happened(nt.arr_rise))
      report.max_internal_slope =
          std::max(report.max_internal_slope, nt.slope_rise);
    if (happened(nt.arr_fall))
      report.max_internal_slope =
          std::max(report.max_internal_slope, nt.slope_fall);
  }

  // Precharge settle: only meaningful when the macro contains domino logic.
  bool has_domino = false;
  for (const auto& c : nl.comps())
    if (c.as_domino() != nullptr) has_domino = true;
  if (has_domino) {
    const auto pre = run_phase(Phase::kPrecharge);
    for (const auto& nt : pre) {
      const double w = nt.worst_arrival();
      if (happened(w)) report.worst_precharge = std::max(report.worst_precharge, w);
    }
  }
  // Fault-injection sites: chaos tests corrupt the reference measurement
  // here to prove the sizing loop rejects untrustworthy verification.
  report.worst_delay = util::fault_corrupt(
      util::FaultClass::kTimerPerturb, "refsim.delay", report.worst_delay);
  report.worst_delay = util::fault_corrupt(
      util::FaultClass::kTimerNonFinite, "refsim.delay", report.worst_delay);
  return report;
}

}  // namespace smart::refsim

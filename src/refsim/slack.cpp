#include "refsim/slack.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace smart::refsim {

using netlist::Arc;
using netlist::EdgeMap;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sizing;

SlackReport compute_slack(const Netlist& nl, const Sizing& sizing,
                          const tech::Tech& tech, double required_ps,
                          const std::vector<double>& per_output) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  SMART_CHECK(per_output.empty() || per_output.size() == nl.outputs().size(),
              "per-output deadline list must match the output port count");
  const RcTimer timer(tech);
  const auto report = timer.analyze(nl, sizing);
  const auto caps = timer.all_net_caps(nl, sizing);
  const size_t n_nets = nl.net_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Required times per (net, edge), initialized at the output ports.
  std::vector<double> req_rise(n_nets, kInf), req_fall(n_nets, kInf);
  for (size_t oi = 0; oi < nl.outputs().size(); ++oi) {
    const auto net = static_cast<size_t>(nl.outputs()[oi].net);
    double deadline = required_ps;
    if (!per_output.empty() && per_output[oi] > 0.0)
      deadline = per_output[oi];
    req_rise[net] = std::min(req_rise[net], deadline);
    req_fall[net] = std::min(req_fall[net], deadline);
  }

  // Reverse topological order of nets.
  std::vector<int> indeg(n_nets, 0);
  for (const Arc& a : nl.arcs()) indeg[static_cast<size_t>(a.to)]++;
  std::vector<NetId> topo;
  std::queue<NetId> ready;
  for (size_t n = 0; n < n_nets; ++n)
    if (indeg[n] == 0) ready.push(static_cast<NetId>(n));
  while (!ready.empty()) {
    const NetId n = ready.front();
    ready.pop();
    topo.push_back(n);
    for (const Arc& a : nl.arcs_from(n))
      if (--indeg[static_cast<size_t>(a.to)] == 0) ready.push(a.to);
  }

  std::vector<EdgeMap> maps;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NetId n = *it;
    for (const Arc& a : nl.arcs_from(n)) {
      bool footed = true;
      if (const auto* dg = nl.comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, netlist::Phase::kEvaluate, footed, maps);
      for (const EdgeMap& em : maps) {
        const double req_out = em.out_rise
                                   ? req_rise[static_cast<size_t>(a.to)]
                                   : req_fall[static_cast<size_t>(a.to)];
        if (req_out == kInf) continue;
        const auto& src = report.nets[static_cast<size_t>(a.from)];
        const double s_in = em.in_rise ? src.slope_rise : src.slope_fall;
        const auto ed = timer.arc_delay_with_cap(
            nl, sizing, a, em.out_rise, s_in, netlist::Phase::kEvaluate,
            caps[static_cast<size_t>(a.to)]);
        double& req_in = em.in_rise ? req_rise[static_cast<size_t>(a.from)]
                                    : req_fall[static_cast<size_t>(a.from)];
        req_in = std::min(req_in, req_out - ed.delay_ps);
      }
    }
  }

  SlackReport slack;
  slack.slack_rise.assign(n_nets, kInf);
  slack.slack_fall.assign(n_nets, kInf);
  slack.worst_slack = kInf;
  for (size_t n = 0; n < n_nets; ++n) {
    const auto& nt = report.nets[n];
    if (nt.arr_rise > -1e299 && req_rise[n] < kInf)
      slack.slack_rise[n] = req_rise[n] - nt.arr_rise;
    if (nt.arr_fall > -1e299 && req_fall[n] < kInf)
      slack.slack_fall[n] = req_fall[n] - nt.arr_fall;
    for (bool rise : {true, false}) {
      const double s = rise ? slack.slack_rise[n] : slack.slack_fall[n];
      if (s < slack.worst_slack) {
        slack.worst_slack = s;
        slack.worst_net = static_cast<NetId>(n);
        slack.worst_is_rise = rise;
      }
    }
  }
  if (slack.worst_slack == kInf) slack.worst_slack = 0.0;
  return slack;
}

}  // namespace smart::refsim

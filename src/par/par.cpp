#include "par/par.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/obs.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::par {

namespace {

/// Depth of chunk bodies executing on this thread. Nonzero means we are
/// inside a pool chunk already, so a nested parallel_for must run inline —
/// dispatching it back to the pool could deadlock (all executors busy in
/// the outer batch) and gains nothing.
thread_local int g_chunk_depth = 0;

/// One parallel_for invocation. Lives on the caller's stack; the pool only
/// holds a pointer until the batch drains.
struct Batch {
  const std::function<void(size_t, size_t)>* body = nullptr;
  const char* tag = nullptr;
  size_t n = 0;
  size_t chunk_size = 0;
  size_t chunk_count = 0;
  // All mutable state is guarded by the pool mutex. Claiming a chunk and
  // finding the batch happen in the SAME critical section: an executor that
  // holds an unexecuted claim implies done < chunk_count, which pins the
  // caller (and therefore this stack-allocated struct) in Pool::run until
  // the executor has counted the chunk — never a dangling Batch*.
  size_t next = 0;  ///< next unclaimed chunk index
  size_t done = 0;  ///< finished chunks
  std::exception_ptr error;  ///< lowest-chunk exception
  size_t error_chunk = static_cast<size_t>(-1);
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int threads() const { return threads_; }

  void resize(int n) {
    n = std::max(1, n);
    stop_workers();
    threads_ = n;
    // The caller of parallel_for helps execute, so n executors means n-1
    // dedicated workers.
    workers_.reserve(static_cast<size_t>(n - 1));
    for (int i = 0; i < n - 1; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void run(Batch& batch) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(&batch);
    }
    work_cv_.notify_all();
    while (run_chunk(&batch)) {
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.done == batch.chunk_count; });
    queue_.erase(std::find(queue_.begin(), queue_.end(), &batch));
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  Pool() { resize(env_threads()); }
  ~Pool() { stop_workers(); }

  static int hardware_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  static int env_threads() {
    const char* env = std::getenv("SMART_THREADS");
    if (env == nullptr) return hardware_threads();
    int n = 0;
    if (!parse_thread_spec(env, &n)) {
      // A malformed spec must not silently degrade to single-threaded (the
      // old atoi behavior for "abc") or launch thousands of workers.
      util::log_warn(util::strfmt(
          "par: ignoring invalid SMART_THREADS='%s' (want an integer in "
          "[1, %d]); using hardware concurrency %d",
          env, kMaxThreads, hardware_threads()));
      return hardware_threads();
    }
    return n;
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SMART_CHECK(queue_.empty(),
                  "par: thread count changed while work was in flight");
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    stopping_ = false;
  }

  /// Runs the already-claimed chunk `idx` of `batch`. The claim (made under
  /// the pool mutex) keeps the batch alive until `done` is counted here.
  void execute_chunk(Batch* batch, size_t idx) {
    const size_t begin = idx * batch->chunk_size;
    const size_t end = std::min(batch->n, begin + batch->chunk_size);
    ++g_chunk_depth;
    try {
      obs::Span span(batch->tag, "par");
      span.arg("chunk", static_cast<double>(idx));
      span.arg("begin", static_cast<double>(begin));
      span.arg("end", static_cast<double>(end));
      (*batch->body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (idx < batch->error_chunk) {
        batch->error_chunk = idx;
        batch->error = std::current_exception();
      }
    }
    --g_chunk_depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch->done == batch->chunk_count) done_cv_.notify_all();
    }
    // `batch` must not be touched past this point: counting the final chunk
    // releases the caller, which destroys the stack-allocated Batch.
  }

  /// Claims and executes one chunk of `batch`. Returns false once the batch
  /// has no unclaimed chunks left. Only safe for a batch the caller keeps
  /// alive itself (Pool::run's own batch).
  bool run_chunk(Batch* batch) {
    size_t idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (batch->next >= batch->chunk_count) return false;
      idx = batch->next++;
    }
    execute_chunk(batch, idx);
    return true;
  }

  void worker_loop() {
    for (;;) {
      Batch* batch = nullptr;
      size_t idx = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          if (stopping_) return true;
          for (Batch* b : queue_)
            if (b->next < b->chunk_count) return true;
          return false;
        });
        if (stopping_) return;
        for (Batch* b : queue_) {
          if (b->next < b->chunk_count) {
            batch = b;
            idx = batch->next++;  // claim while still holding the lock
            break;
          }
        }
      }
      if (batch != nullptr) execute_chunk(batch, idx);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Batch*> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  int threads_ = 1;
};

}  // namespace

bool parse_thread_spec(const char* spec, int* out) {
  if (spec == nullptr || *spec == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(spec, &end, 10);
  if (errno != 0 || end == spec || *end != '\0') return false;
  if (v < 1 || v > static_cast<long>(kMaxThreads)) return false;
  *out = static_cast<int>(v);
  return true;
}

int thread_count() { return Pool::instance().threads(); }

void set_thread_count(int n) {
  if (n < 1 || n > kMaxThreads) {
    const int clamped = std::clamp(n, 1, kMaxThreads);
    util::log_warn(util::strfmt(
        "par: set_thread_count(%d) out of [1, %d]; clamping to %d", n,
        kMaxThreads, clamped));
    n = clamped;
  }
  Pool::instance().resize(n);
}

void parallel_for(size_t n, const std::function<void(size_t, size_t)>& body,
                  const char* tag, size_t min_grain) {
  if (n == 0) return;
  Pool& pool = Pool::instance();
  const size_t executors = static_cast<size_t>(pool.threads());
  if (min_grain == 0) min_grain = 1;
  if (g_chunk_depth > 0 || executors <= 1 || n <= min_grain) {
    body(0, n);
    return;
  }
  // Static chunking: boundaries depend only on (n, thread count), never on
  // scheduling. A few chunks per executor smooths uneven chunk costs while
  // keeping per-chunk span overhead negligible.
  size_t chunk_count = std::min(n, executors * 4);
  size_t chunk_size = (n + chunk_count - 1) / chunk_count;
  chunk_size = std::max(chunk_size, min_grain);
  chunk_count = (n + chunk_size - 1) / chunk_size;
  if (chunk_count <= 1) {
    body(0, n);
    return;
  }

  Batch batch;
  batch.body = &body;
  batch.tag = tag;
  batch.n = n;
  batch.chunk_size = chunk_size;
  batch.chunk_count = chunk_count;
  pool.run(batch);
}

}  // namespace smart::par

#pragma once

/// \file par.h
/// Deterministic data parallelism for the sizing pipeline.
///
/// A process-wide pool of persistent workers executes index ranges with
/// *static* chunk boundaries and index-ordered result placement, so output
/// is bit-identical to the sequential loop at any thread count: every index
/// writes to its own slot, chunk boundaries depend only on (n, thread
/// count), and merging is by index, never by completion order. The worker
/// count comes from `SMART_THREADS` (env) at first use, or
/// `set_thread_count` (the CLI's `--threads` flag); the default is the
/// hardware concurrency.
///
/// Scheduling is caller-helps: the thread that calls `parallel_for`
/// executes chunks alongside the pool, so the pool never deadlocks when a
/// chunk body itself calls `parallel_for` (nested calls run inline on the
/// calling thread). Workers are persistent across calls, which keeps their
/// obs tids stable; each executed chunk records an obs span tagged with the
/// chunk index and range.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace smart::par {

/// Upper bound on configurable workers; values beyond it are rejected as
/// absurd (a typo'd SMART_THREADS, not a real machine).
constexpr int kMaxThreads = 4096;

/// Strictly parses a thread-count spec ("8"): the whole string must be a
/// decimal integer in [1, kMaxThreads]. Returns false (leaving `out`
/// untouched) on empty, non-numeric, trailing-garbage, or out-of-range
/// input — the validation behind SMART_THREADS and `--threads`.
bool parse_thread_spec(const char* spec, int* out);

/// Configured worker count (>= 1). First call reads SMART_THREADS; a spec
/// that fails parse_thread_spec logs a warning and falls back to the
/// hardware concurrency instead of silently misbehaving.
int thread_count();

/// Rebuilds the pool with `n` workers. Out-of-range values are clamped to
/// [1, kMaxThreads] with a warning. Must not be called while any
/// parallel_for is in flight; intended for CLI startup and tests.
void set_thread_count(int n);

/// Runs `body(begin, end)` over static chunks of [0, n). Blocks until every
/// chunk has finished. The first exception (by lowest chunk index) thrown
/// by any chunk is rethrown on the calling thread after the batch drains.
/// `tag` names the per-chunk obs spans; `min_grain` is the smallest chunk
/// size worth dispatching (ranges below it run inline).
void parallel_for(size_t n, const std::function<void(size_t, size_t)>& body,
                  const char* tag = "par.for", size_t min_grain = 1);

/// Maps `fn(i)` over [0, n) into an index-ordered vector. T must be default
/// constructible; slot i is written only by the chunk owning index i, so
/// the result is identical to the sequential loop at any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(size_t n, Fn&& fn, const char* tag = "par.map",
                            size_t min_grain = 1) {
  std::vector<T> out(n);
  parallel_for(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      tag, min_grain);
  return out;
}

}  // namespace smart::par

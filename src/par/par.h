#pragma once

/// \file par.h
/// Deterministic data parallelism for the sizing pipeline.
///
/// A process-wide pool of persistent workers executes index ranges with
/// *static* chunk boundaries and index-ordered result placement, so output
/// is bit-identical to the sequential loop at any thread count: every index
/// writes to its own slot, chunk boundaries depend only on (n, thread
/// count), and merging is by index, never by completion order. The worker
/// count comes from `SMART_THREADS` (env) at first use, or
/// `set_thread_count` (the CLI's `--threads` flag); the default is the
/// hardware concurrency.
///
/// Scheduling is caller-helps: the thread that calls `parallel_for`
/// executes chunks alongside the pool, so the pool never deadlocks when a
/// chunk body itself calls `parallel_for` (nested calls run inline on the
/// calling thread). Workers are persistent across calls, which keeps their
/// obs tids stable; each executed chunk records an obs span tagged with the
/// chunk index and range.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace smart::par {

/// Configured worker count (>= 1). First call reads SMART_THREADS.
int thread_count();

/// Rebuilds the pool with `n` workers (clamped to >= 1). Must not be called
/// while any parallel_for is in flight; intended for CLI startup and tests.
void set_thread_count(int n);

/// Runs `body(begin, end)` over static chunks of [0, n). Blocks until every
/// chunk has finished. The first exception (by lowest chunk index) thrown
/// by any chunk is rethrown on the calling thread after the batch drains.
/// `tag` names the per-chunk obs spans; `min_grain` is the smallest chunk
/// size worth dispatching (ranges below it run inline).
void parallel_for(size_t n, const std::function<void(size_t, size_t)>& body,
                  const char* tag = "par.for", size_t min_grain = 1);

/// Maps `fn(i)` over [0, n) into an index-ordered vector. T must be default
/// constructible; slot i is written only by the chunk owning index i, so
/// the result is identical to the sequential loop at any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_map(size_t n, Fn&& fn, const char* tag = "par.map",
                            size_t min_grain = 1) {
  std::vector<T> out(n);
  parallel_for(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      tag, min_grain);
  return out;
}

}  // namespace smart::par

#include "blocks/block.h"

#include <algorithm>

#include "power/power.h"
#include "refsim/rc_timer.h"
#include "util/check.h"
#include "util/strfmt.h"

namespace smart::blocks {

using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using util::strfmt;

Netlist random_logic(const std::string& name, int target_devices,
                     util::Rng& rng) {
  Netlist nl(name);
  // Primary inputs feeding the first layer.
  std::vector<NetId> pool;
  const int n_inputs = std::max(4, target_devices / 40);
  for (int i = 0; i < n_inputs; ++i) {
    const NetId in = nl.add_net(strfmt("in%d", i));
    nl.add_input(in);
    pool.push_back(in);
  }

  int devices = 0;
  int gate_idx = 0;
  std::vector<NetId> recent = pool;
  while (devices < target_devices) {
    // Pick a gate type; control logic mixes inverters and 2-3 input gates.
    const int kind = rng.uniform_int(0, 3);
    const int fanin = kind == 0 ? 1 : (kind == 3 ? 3 : 2);
    std::vector<Stack> leaves;
    const LabelId nlab = nl.add_label(strfmt("N%d", gate_idx));
    const LabelId plab = nl.add_label(strfmt("P%d", gate_idx));
    for (int f = 0; f < fanin; ++f) {
      // Bias toward recent nets to get realistic logic depth.
      const auto& source = rng.chance(0.7) && !recent.empty() ? recent : pool;
      const NetId in =
          source[static_cast<size_t>(rng.uniform_int(
              0, static_cast<int>(source.size()) - 1))];
      leaves.push_back(Stack::leaf(in, nlab));
    }
    const NetId out = nl.add_net(strfmt("g%d", gate_idx));
    Stack pd = fanin == 1
                   ? std::move(leaves.front())
                   : (rng.chance(0.5) ? Stack::series(std::move(leaves))
                                      : Stack::parallel(std::move(leaves)));
    nl.add_component(strfmt("gate%d", gate_idx), out,
                     StaticGate{std::move(pd), plab});
    devices += 2 * fanin;
    pool.push_back(out);
    recent.push_back(out);
    if (recent.size() > 12) recent.erase(recent.begin());
    ++gate_idx;
  }

  // Expose sinks: any net nobody reads becomes an output.
  std::vector<int> fanout(nl.net_count(), 0);
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto& comp = nl.comp(static_cast<int>(c));
    if (const auto* g = comp.as_static()) {
      std::vector<std::pair<NetId, LabelId>> leaves2;
      g->pulldown.collect_leaves(leaves2);
      for (const auto& [in, l] : leaves2) fanout[static_cast<size_t>(in)]++;
    }
  }
  for (size_t n = 0; n < nl.net_count(); ++n) {
    const auto id = static_cast<NetId>(n);
    bool is_input = false;
    for (const auto& p : nl.inputs()) is_input |= (p.net == id);
    if (!is_input && fanout[n] == 0) nl.add_output(id, 8.0);
  }
  nl.finalize();
  return nl;
}

Block build_block(const BlockSpec& spec, const core::MacroDatabase& db) {
  Block block;
  block.name = spec.name;
  for (const auto& req : spec.macros) {
    const auto* entry = db.find(req.type, req.topology);
    SMART_CHECK(entry != nullptr,
                "unknown macro topology: " + req.type + "/" + req.topology);
    block.macros.push_back(entry->generate(req.spec));
  }
  util::Rng rng(spec.seed);
  block.filler =
      random_logic(spec.name + "_filler", spec.filler_devices, rng);
  return block;
}

namespace {

void accumulate(const Netlist& nl, const netlist::Sizing& sizing,
                const tech::Tech& tech, const power::PowerOptions& activity,
                bool is_macro, BlockReport& report) {
  const auto stats = nl.device_stats(sizing);
  power::PowerEstimator estimator(tech);
  const auto p = estimator.estimate(nl, sizing, activity);
  report.devices += stats.device_count;
  report.total_width_um += stats.total_width;
  report.total_power_mw += p.total_mw;
  if (is_macro) {
    report.macro_width_um += stats.total_width;
    report.macro_power_mw += p.total_mw;
  }
}

}  // namespace

BlockExperiment run_block_experiment(const Block& block,
                                     const tech::Tech& tech,
                                     const models::ModelLibrary& lib,
                                     const core::IsoDelayOptions& opt) {
  BlockExperiment ex;
  ex.macros_total = static_cast<int>(block.macros.size());

  core::BaselineSizer baseline(tech, opt.baseline);
  const auto filler_sizing = baseline.size(block.filler);
  accumulate(block.filler, filler_sizing, tech, opt.activity, false,
             ex.before);
  accumulate(block.filler, filler_sizing, tech, opt.activity, false,
             ex.after);

  for (const auto& macro : block.macros) {
    const auto cmp = core::run_iso_delay(macro, tech, lib, opt);
    accumulate(macro, cmp.baseline.sizing, tech, opt.activity, true,
               ex.before);
    ex.before.worst_macro_delay_ps = std::max(
        ex.before.worst_macro_delay_ps, cmp.baseline.measured_delay_ps);
    // §6.4: SMART replaces the macro only when it met the original timing
    // ("A timing analysis on the new design showed no performance penalty").
    if (cmp.ok) {
      ++ex.macros_converged;
      accumulate(macro, cmp.smart.sizing, tech, opt.activity, true, ex.after);
      ex.after.worst_macro_delay_ps = std::max(
          ex.after.worst_macro_delay_ps, cmp.smart.measured_delay_ps);
    } else {
      accumulate(macro, cmp.baseline.sizing, tech, opt.activity, true,
                 ex.after);
      ex.after.worst_macro_delay_ps = std::max(
          ex.after.worst_macro_delay_ps, cmp.baseline.measured_delay_ps);
    }
  }
  return ex;
}

}  // namespace smart::blocks

#pragma once

/// \file block.h
/// Synthetic functional blocks for the paper's block-level experiments
/// (§6.4 and Table 2). A block is a set of datapath macro instances plus
/// random static ("control") logic, mixed to a target transistor count and
/// macro share. SMART is applied to the macros only — the §6.4 protocol —
/// and savings are reported at block level. See DESIGN.md for why this
/// substitutes for the paper's proprietary microprocessor blocks: the
/// block-level numbers are driven by the macro content fraction, which the
/// builder controls.

#include <string>
#include <vector>

#include "core/database.h"
#include "core/experiment.h"
#include "netlist/netlist.h"
#include "util/rng.h"

namespace smart::blocks {

/// One macro instantiation request inside a block.
struct MacroRequest {
  std::string type;
  std::string topology;
  core::MacroSpec spec;
};

struct BlockSpec {
  std::string name = "block";
  std::vector<MacroRequest> macros;
  /// Devices of random static logic to add around the macros.
  int filler_devices = 1000;
  uint64_t seed = 1;
};

/// A built block: generated macro netlists plus the filler netlist.
struct Block {
  std::string name;
  std::vector<netlist::Netlist> macros;
  netlist::Netlist filler{"filler"};
};

/// Generates random static logic (NAND/NOR/INV layers) with roughly the
/// requested device count. Every gate gets its own labels — control logic
/// has none of the datapath's regularity.
netlist::Netlist random_logic(const std::string& name, int target_devices,
                              util::Rng& rng);

/// Builds a block from a spec using a macro database.
Block build_block(const BlockSpec& spec, const core::MacroDatabase& db);

/// Aggregate block metrics at a given per-piece sizing.
struct BlockReport {
  int devices = 0;
  double total_width_um = 0.0;
  double macro_width_um = 0.0;   ///< portion in macros
  double total_power_mw = 0.0;
  double macro_power_mw = 0.0;
  double worst_macro_delay_ps = 0.0;
};

/// Result of applying SMART to the macros of a baseline-sized block.
struct BlockExperiment {
  BlockReport before;  ///< everything baseline-sized
  BlockReport after;   ///< macros SMART-sized at iso-delay, filler untouched
  int macros_converged = 0;
  int macros_total = 0;

  double width_saving() const {
    return 1.0 - after.total_width_um / before.total_width_um;
  }
  double power_saving() const {
    return 1.0 - after.total_power_mw / before.total_power_mw;
  }
};

/// Runs the §6.4 protocol on a block: baseline-size everything, then
/// replace each macro with its SMART iso-delay solution.
BlockExperiment run_block_experiment(const Block& block,
                                     const tech::Tech& tech,
                                     const models::ModelLibrary& lib,
                                     const core::IsoDelayOptions& opt = {});

}  // namespace smart::blocks

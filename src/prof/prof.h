#pragma once

/// \file prof.h
/// SMART-Prof: a low-overhead in-process sampling profiler plus span-level
/// resource accounting (see resource.h and DESIGN.md §13).
///
/// Sampling design: every registered thread gets a POSIX per-thread
/// CPU-time timer (`timer_create` on the thread's CPU clock, delivered as
/// SIGPROF via SIGEV_THREAD_ID), so a thread is sampled `hz` times per
/// CPU-second it actually burns — idle daemon workers produce no samples
/// and no wakeups. The async-signal-safe handler captures a raw `backtrace`
/// frame vector, the thread's current obs span-path id (maintained by the
/// obs::SpanHooks this profiler installs), and the thread's current trace
/// id (obs::ScopedTraceId) into a lock-free single-producer/single-consumer
/// per-thread sample ring. Symbolization (dladdr + demangling) happens
/// offline at export time, never in the handler.
///
/// Threads register lazily: the first obs::Span on a thread registers it
/// (and arms its timer when a collection is running), so the par pool, the
/// serve worker pool and the main thread are all covered without explicit
/// plumbing. Threads that spin without ever opening a span can call
/// register_current_thread() themselves.
///
/// Exports: collapsed-stack text ("folded", flamegraph.pl / inferno
/// compatible: `frame;frame;frame count` lines, optionally prefixed with
/// `span:`-tagged span-path pseudo-frames and filterable by trace id) and
/// speedscope-compatible JSON (https://www.speedscope.app file format,
/// "sampled" profiles, one per thread).
///
/// Cost discipline: while no profiler has ever started, every obs span
/// site pays one extra relaxed atomic load (no hooks installed). While
/// hooks are installed but collection is stopped, a span costs one
/// interned path-table lookup; sampling overhead at 99 Hz is measured
/// < 5% on a GP solve (ProfOverheadTest locks this in ctest).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace smart::prof {

/// Frames kept per sample; deeper stacks are truncated at capture time.
inline constexpr size_t kMaxFrames = 48;

/// One captured sample. `pcs` is innermost-first, exactly as `backtrace`
/// returned it (including the profiler's own handler frames — they are
/// stripped at symbolization time, not in the handler).
struct Sample {
  uint64_t trace_id = 0;  ///< obs::current_trace_id() at capture (0 = none)
  /// Program counter the signal interrupted (from the handler's ucontext).
  /// Export-time stripping drops the handler + trampoline frames before it.
  void* sig_pc = nullptr;
  uint32_t path_id = 0;   ///< interned obs span path (0 = outside any span)
  uint32_t tid = 0;       ///< small stable per-thread id (1-based)
  uint16_t depth = 0;
  void* pcs[kMaxFrames];
};

struct ProfilerOptions {
  /// Per-thread CPU-time sampling rate (samples per CPU-second). Prefer
  /// primes (97/997) so the sampler cannot phase-lock to periodic work.
  double hz = 997.0;
  /// Per-thread ring capacity in samples. The ring is the only memory the
  /// signal handler touches; when it fills, samples are dropped (counted).
  size_t ring_capacity = 4096;
  /// Retained-sample cap after draining; oldest samples beyond it are
  /// discarded so a long-running daemon cannot grow without bound.
  size_t max_samples = 1 << 20;
};

struct FoldedOptions {
  /// Keep only samples tagged with this trace id (0 = all samples).
  uint64_t trace_filter = 0;
  /// Prefix each stack with its obs span path as `span:<name>` pseudo
  /// frames, so flamegraphs group by pipeline stage before code frames.
  bool span_prefix = true;
};

/// Process-wide sampling profiler. All control methods are safe from any
/// thread; start/stop pairs may repeat within one process (samples
/// accumulate across runs until reset()).
class Profiler {
 public:
  static Profiler& instance();

  /// Installs the obs span hooks (first start only), primes `backtrace`,
  /// installs the SIGPROF handler, registers the calling thread, and arms
  /// per-thread timers for every known thread. Fails (without arming
  /// anything) when a collection is already running or the options are
  /// invalid.
  util::Status start(const ProfilerOptions& opt = {});

  /// Disarms all timers and drains every ring into the retained buffer.
  /// Safe to call when not collecting (no-op).
  void stop();

  bool collecting() const;
  double hz() const;

  /// Pulls completed samples out of the per-thread rings into the retained
  /// buffer without stopping collection (used by the daemon to snapshot
  /// per-request profiles while serving).
  void drain();

  /// Drops retained samples and drop counters (the interned path table and
  /// thread registrations survive; ids stay stable).
  void reset();

  /// Retained samples (post-drain). `sample_count` includes every retained
  /// sample; `dropped` counts ring-overflow losses since reset().
  size_t sample_count() const;
  uint64_t dropped() const;
  std::vector<Sample> samples() const;

  /// Human-readable span path for an interned id ("a;b;c", "" for id 0).
  std::string span_path(uint32_t path_id) const;

  /// Retained-sample counts grouped by span path string ("" = no span).
  std::map<std::string, size_t> samples_by_span() const;

  /// Collapsed-stack text: one `frame;frame;... count` line per distinct
  /// stack, root first, suitable for flamegraph.pl / inferno / speedscope.
  std::string folded(const FoldedOptions& opt = {}) const;
  bool write_folded(const std::string& path,
                    const FoldedOptions& opt = {}) const;

  /// Speedscope file-format JSON ("sampled" profiles, one per thread).
  std::string speedscope_json(const std::string& name = "smart") const;
  bool write_speedscope(const std::string& path,
                        const std::string& name = "smart") const;

  /// Per-frame attribution over the retained samples: `self` counts
  /// samples whose leaf is the frame, `total` counts samples containing it
  /// anywhere. Sorted by self descending, truncated to `k`.
  struct FrameStat {
    std::string frame;
    size_t self = 0;
    size_t total = 0;
  };
  std::vector<FrameStat> top_frames(size_t k) const;

  /// Symbolizes one pc (demangled function name, or "module+0x..." when no
  /// dynamic symbol covers it). Cached; for tools and tests.
  std::string symbolize(void* pc) const;

 private:
  Profiler() = default;
};

/// Registers the calling thread with the profiler (idempotent) and arms
/// its sampling timer when a collection is running. Threads that emit obs
/// spans are registered automatically via the span hooks.
void register_current_thread();

/// Number of threads the profiler has ever registered (for tests).
size_t registered_thread_count();

// ---- optional counting allocator hook (see alloc_hook.cpp) -------------

/// Monotonic per-thread allocation counters, maintained by the replaced
/// global operator new when the hook is compiled in and enabled.
struct AllocCounters {
  uint64_t bytes = 0;   ///< total bytes requested
  uint64_t allocs = 0;  ///< total allocations
};

/// True when the build carries the operator-new replacement (it is
/// compiled out under ASan/TSan, whose runtimes own the allocator).
bool alloc_hook_available();
/// Turns per-thread allocation counting on/off (no-op when unavailable).
void set_alloc_hook_enabled(bool on);
bool alloc_hook_enabled();
/// The calling thread's counters (zeros while disabled/unavailable).
AllocCounters thread_alloc_counters();

}  // namespace smart::prof

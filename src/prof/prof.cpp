#include "prof/prof.h"

#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <cxxabi.h>
#include <deque>
#include <memory>
#include <mutex>

#include "obs/obs.h"
#include "util/strfmt.h"

// Older glibc exposes SIGEV_THREAD_ID but not the field alias.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace smart::prof {

namespace {

// ---- signal-safety rules (see DESIGN.md §13) ---------------------------
// The SIGPROF handler may only: read thread-locals, read/write lock-free
// atomics, call backtrace() (primed at start() so its one-time libgcc
// load happened in normal context), and write into the pre-allocated
// per-thread ring slot it reserved. No allocation, no locks, no I/O.

/// Lock-free single-producer (the signal handler, which runs on the ring's
/// owner thread) / single-consumer (any drainer) ring of samples. The
/// producer never blocks: a full ring drops the sample and counts it.
class SampleRing {
 public:
  void init(size_t capacity) { slots_.resize(capacity < 64 ? 64 : capacity); }

  Sample* reserve() {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) >= slots_.size())
      return nullptr;
    return &slots_[h % slots_.size()];
  }
  void commit() { head_.fetch_add(1, std::memory_order_release); }

  template <typename Fn>
  void consume(Fn&& fn) {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    const uint64_t h = head_.load(std::memory_order_acquire);
    for (; t != h; ++t) fn(slots_[t % slots_.size()]);
    tail_.store(t, std::memory_order_release);
  }

 private:
  std::vector<Sample> slots_;
  std::atomic<uint64_t> head_{0};  ///< written by the signal handler
  std::atomic<uint64_t> tail_{0};  ///< written by the drainer
};

struct ThreadState {
  SampleRing ring;
  /// Interned id of the innermost open obs span (read by the handler).
  std::atomic<uint32_t> current_path{0};
  /// Owner-thread-only span-path stack backing current_path.
  std::vector<uint32_t> stack;
  std::atomic<uint64_t> dropped{0};
  pid_t kernel_tid = 0;
  uint32_t stable_tid = 0;
  clockid_t cpu_clock{};
  pthread_t pthread{};
  timer_t timer{};
  bool armed = false;  ///< guarded by g_registry_mu
  bool dead = false;   ///< guarded by g_registry_mu
};

/// Interns (parent span path, span name) -> dense id. id 0 is "no span".
class PathTable {
 public:
  uint32_t intern(uint32_t parent, const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto key = std::make_pair(parent, std::string(name));
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    nodes_.push_back({parent, key.second});
    const uint32_t id = static_cast<uint32_t>(nodes_.size());
    ids_.emplace(key, id);
    return id;
  }

  std::string path(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    while (id != 0 && id <= nodes_.size()) {
      const auto& node = nodes_[id - 1];
      out = out.empty() ? node.second : node.second + ";" + out;
      id = node.first;
    }
    return out;
  }

  /// Parent-chain of span names, root first (for folded pseudo-frames).
  std::vector<std::string> chain(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    while (id != 0 && id <= nodes_.size()) {
      const auto& node = nodes_[id - 1];
      out.insert(out.begin(), node.second);
      id = node.first;
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<uint32_t, std::string>, uint32_t> ids_;
  std::vector<std::pair<uint32_t, std::string>> nodes_;
};

PathTable& paths() {
  static PathTable* table = new PathTable();  // leaked: outlives all threads
  return *table;
}

std::mutex g_registry_mu;
std::vector<std::shared_ptr<ThreadState>>& registry() {
  static auto* reg = new std::vector<std::shared_ptr<ThreadState>>();
  return *reg;
}

std::atomic<bool> g_collecting{false};
double g_hz = 0.0;                       ///< guarded by g_registry_mu
size_t g_ring_capacity = 4096;           ///< guarded by g_registry_mu
size_t g_max_samples = 1 << 20;          ///< guarded by g_registry_mu
bool g_sigaction_installed = false;      ///< guarded by g_registry_mu

std::mutex g_samples_mu;
std::deque<Sample> g_samples;  ///< retained samples, oldest first

/// Raw TLS pointer read by the signal handler. Registration publishes it
/// last; thread exit clears it before deleting the timer.
thread_local ThreadState* t_state = nullptr;

void* interrupted_pc(void* uctx) {
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(uctx);
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(uctx);
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  (void)uctx;
  return nullptr;
#endif
}

void sigprof_handler(int, siginfo_t*, void* uctx) {
  ThreadState* ts = t_state;
  if (ts == nullptr || !g_collecting.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  Sample* slot = ts->ring.reserve();
  if (slot == nullptr) {
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const int depth = ::backtrace(slot->pcs, static_cast<int>(kMaxFrames));
  slot->depth = depth > 0 ? static_cast<uint16_t>(depth) : 0;
  slot->sig_pc = uctx != nullptr ? interrupted_pc(uctx) : nullptr;
  slot->path_id = ts->current_path.load(std::memory_order_relaxed);
  slot->trace_id = obs::current_trace_id();
  slot->tid = ts->stable_tid;
  ts->ring.commit();
  errno = saved_errno;
}

/// Arms `ts`'s per-thread CPU-time timer. Caller holds g_registry_mu.
bool arm_locked(ThreadState* ts) {
  if (ts->armed || ts->dead) return ts->armed;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ts->kernel_tid;
  if (::timer_create(ts->cpu_clock, &sev, &ts->timer) != 0) return false;
  const long interval_ns = static_cast<long>(1e9 / g_hz);
  struct itimerspec its;
  its.it_interval.tv_sec = interval_ns / 1000000000L;
  its.it_interval.tv_nsec = interval_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (::timer_settime(ts->timer, 0, &its, nullptr) != 0) {
    ::timer_delete(ts->timer);
    return false;
  }
  ts->armed = true;
  return true;
}

/// Caller holds g_registry_mu.
void disarm_locked(ThreadState* ts) {
  if (!ts->armed) return;
  ::timer_delete(ts->timer);
  ts->armed = false;
}

ThreadState* ensure_registered();

// ---- obs span hooks ----------------------------------------------------
// Installed at the first Profiler::start() and never removed; they keep
// the per-thread span-path context alive whether or not a collection is
// currently running (the context is also how worker threads get lazily
// registered and armed).

void hook_enter(const char* name) {
  ThreadState* ts = ensure_registered();
  const uint32_t parent = ts->stack.empty() ? 0 : ts->stack.back();
  const uint32_t id = paths().intern(parent, name);
  ts->stack.push_back(id);
  ts->current_path.store(id, std::memory_order_relaxed);
}

void hook_exit() {
  ThreadState* ts = t_state;
  if (ts == nullptr || ts->stack.empty()) return;
  ts->stack.pop_back();
  ts->current_path.store(ts->stack.empty() ? 0 : ts->stack.back(),
                         std::memory_order_relaxed);
}

const obs::SpanHooks kSpanHooks = {&hook_enter, &hook_exit};

/// Thread-exit cleanup: unpublish the TLS pointer first (the handler sees
/// nullptr from then on), then delete the timer. The ThreadState itself is
/// owned by the registry so undrained samples survive the thread.
struct TlsGuard {
  ThreadState* ts = nullptr;
  ~TlsGuard() {
    if (ts == nullptr) return;
    t_state = nullptr;
    std::lock_guard<std::mutex> lock(g_registry_mu);
    disarm_locked(ts);
    ts->dead = true;
  }
};
thread_local TlsGuard t_guard;

ThreadState* ensure_registered() {
  if (t_state != nullptr) return t_state;
  auto ts = std::make_shared<ThreadState>();
  ts->kernel_tid = static_cast<pid_t>(::syscall(SYS_gettid));
  ts->pthread = ::pthread_self();
  if (::pthread_getcpuclockid(ts->pthread, &ts->cpu_clock) != 0)
    ts->cpu_clock = CLOCK_THREAD_CPUTIME_ID;  // own-thread fallback
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    ts->ring.init(g_ring_capacity);
    ts->stable_tid = static_cast<uint32_t>(registry().size()) + 1;
    registry().push_back(ts);
    t_guard.ts = ts.get();
    t_state = ts.get();  // published only after the ring exists
    if (g_collecting.load(std::memory_order_relaxed)) arm_locked(ts.get());
  }
  return t_state;
}

void drain_into_retained() {
  std::vector<std::shared_ptr<ThreadState>> threads;
  size_t max_samples;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    threads = registry();
    max_samples = g_max_samples;
  }
  std::lock_guard<std::mutex> lock(g_samples_mu);
  for (const auto& ts : threads)
    ts->ring.consume([&](const Sample& s) { g_samples.push_back(s); });
  while (g_samples.size() > max_samples) g_samples.pop_front();
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (n != content.size()) std::fclose(f);
  return ok;
}

std::string demangle(const char* name) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status != 0 || demangled == nullptr) {
    std::free(demangled);
    return name;
  }
  std::string out = demangled;
  std::free(demangled);
  return out;
}

std::mutex g_symbol_mu;
std::map<void*, std::string>& symbol_cache() {
  static auto* cache = new std::map<void*, std::string>();
  return *cache;
}

std::string symbolize_pc(void* pc) {
  {
    std::lock_guard<std::mutex> lock(g_symbol_mu);
    auto it = symbol_cache().find(pc);
    if (it != symbol_cache().end()) return it->second;
  }
  std::string name;
  Dl_info info;
  // backtrace records return addresses; subtract 1 so a call at the end of
  // a function does not resolve into the next symbol.
  void* lookup = static_cast<char*>(pc) - 1;
  if (::dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    name = demangle(info.dli_sname);
  } else if (::dladdr(lookup, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    name = util::strfmt(
        "%s+0x%zx", base != nullptr ? base + 1 : info.dli_fname,
        static_cast<size_t>(static_cast<char*>(pc) -
                            static_cast<char*>(info.dli_fbase)));
  } else {
    name = util::strfmt("0x%zx", reinterpret_cast<size_t>(pc));
  }
  std::lock_guard<std::mutex> lock(g_symbol_mu);
  symbol_cache().emplace(pc, name);
  return name;
}

/// Strips the profiler's own capture frames from the innermost end of a
/// sample: the handler frame (always index 0 — backtrace's first entry is
/// its caller) plus the kernel signal trampoline right after it. The
/// unwinder reports the interrupted frame with its exact pc (signal frames
/// are not return addresses), so the frame matching sig_pc is the true
/// leaf; fall back to name-based trampoline stripping when it is absent.
size_t strip_internal_frames(const Sample& s) {
  if (s.sig_pc != nullptr) {
    const size_t limit = s.depth < 6 ? s.depth : 6;
    for (size_t i = 0; i < limit; ++i)
      if (s.pcs[i] == s.sig_pc) return i;
  }
  size_t begin = s.depth > 0 ? 1 : 0;
  while (begin < s.depth && begin < 4) {
    const std::string sym = symbolize_pc(s.pcs[begin]);
    if (sym == "__restore_rt" || sym == "__kernel_rt_sigreturn") {
      ++begin;
      continue;
    }
    break;
  }
  return begin;
}

/// Root-first symbolized stack of one sample (internal frames stripped).
std::vector<std::string> stack_of(const Sample& s) {
  std::vector<std::string> frames;
  const size_t begin = strip_internal_frames(s);
  frames.reserve(s.depth - begin);
  for (size_t i = s.depth; i > begin; --i)
    frames.push_back(symbolize_pc(s.pcs[i - 1]));
  return frames;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

util::Status Profiler::start(const ProfilerOptions& opt) {
  using util::FailureReason;
  if (!(opt.hz > 0.0) || opt.hz > 100000.0)
    return util::Status::Fail(FailureReason::kInvalidInput,
                              util::strfmt("bad sampling rate %g Hz", opt.hz));
  if (g_collecting.load(std::memory_order_relaxed))
    return util::Status::Fail(FailureReason::kInvalidInput,
                              "profiler already collecting");

  // Prime backtrace in normal context: its first call may load libgcc via
  // the dynamic loader (malloc + locks), which must never happen inside
  // the signal handler.
  void* prime[4];
  ::backtrace(prime, 4);

  obs::install_span_hooks(&kSpanHooks);

  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    g_hz = opt.hz;
    g_ring_capacity = opt.ring_capacity;
    g_max_samples = opt.max_samples == 0 ? 1 : opt.max_samples;
    if (!g_sigaction_installed) {
      struct sigaction sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sa_sigaction = &sigprof_handler;
      sa.sa_flags = SA_SIGINFO | SA_RESTART;
      ::sigemptyset(&sa.sa_mask);
      if (::sigaction(SIGPROF, &sa, nullptr) != 0)
        return util::Status::Fail(FailureReason::kInternal,
                                  "cannot install SIGPROF handler");
      g_sigaction_installed = true;
    }
  }

  g_collecting.store(true, std::memory_order_relaxed);
  register_current_thread();
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (const auto& ts : registry())
      if (!ts->dead) arm_locked(ts.get());
  }
  return util::Status::Ok();
}

void Profiler::stop() {
  if (!g_collecting.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    for (const auto& ts : registry()) disarm_locked(ts.get());
  }
  drain_into_retained();
}

bool Profiler::collecting() const {
  return g_collecting.load(std::memory_order_relaxed);
}

double Profiler::hz() const {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  return g_hz;
}

void Profiler::drain() { drain_into_retained(); }

void Profiler::reset() {
  drain_into_retained();  // empty the rings so old samples cannot reappear
  std::lock_guard<std::mutex> lock(g_samples_mu);
  g_samples.clear();
  std::lock_guard<std::mutex> reg_lock(g_registry_mu);
  for (const auto& ts : registry())
    ts->dropped.store(0, std::memory_order_relaxed);
}

size_t Profiler::sample_count() const {
  std::lock_guard<std::mutex> lock(g_samples_mu);
  return g_samples.size();
}

uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  uint64_t total = 0;
  for (const auto& ts : registry())
    total += ts->dropped.load(std::memory_order_relaxed);
  return total;
}

std::vector<Sample> Profiler::samples() const {
  std::lock_guard<std::mutex> lock(g_samples_mu);
  return {g_samples.begin(), g_samples.end()};
}

std::string Profiler::span_path(uint32_t path_id) const {
  return paths().path(path_id);
}

std::map<std::string, size_t> Profiler::samples_by_span() const {
  std::map<uint32_t, size_t> by_id;
  {
    std::lock_guard<std::mutex> lock(g_samples_mu);
    for (const Sample& s : g_samples) ++by_id[s.path_id];
  }
  std::map<std::string, size_t> out;
  for (const auto& [id, count] : by_id) out[paths().path(id)] += count;
  return out;
}

std::string Profiler::folded(const FoldedOptions& opt) const {
  const std::vector<Sample> all = samples();
  std::map<std::string, size_t> collapsed;
  for (const Sample& s : all) {
    if (opt.trace_filter != 0 && s.trace_id != opt.trace_filter) continue;
    std::string key;
    if (opt.span_prefix && s.path_id != 0) {
      for (const std::string& span : paths().chain(s.path_id)) {
        if (!key.empty()) key += ";";
        key += "span:" + span;
      }
    }
    for (const std::string& frame : stack_of(s)) {
      if (!key.empty()) key += ";";
      key += frame;
    }
    if (key.empty()) key = "[unknown]";
    ++collapsed[key];
  }
  std::string out;
  for (const auto& [stack, count] : collapsed)
    out += stack + " " + util::strfmt("%zu", count) + "\n";
  return out;
}

bool Profiler::write_folded(const std::string& path,
                            const FoldedOptions& opt) const {
  return write_file(path, folded(opt));
}

std::string Profiler::speedscope_json(const std::string& name) const {
  const std::vector<Sample> all = samples();
  std::vector<std::string> frames;
  std::map<std::string, size_t> frame_ids;
  const auto frame_id = [&](const std::string& frame) {
    auto it = frame_ids.find(frame);
    if (it != frame_ids.end()) return it->second;
    frames.push_back(frame);
    return frame_ids.emplace(frame, frames.size() - 1).first->second;
  };
  // One "sampled" profile per thread, samples in capture order.
  std::map<uint32_t, std::vector<std::vector<size_t>>> per_thread;
  for (const Sample& s : all) {
    std::vector<size_t> ids;
    for (const std::string& frame : stack_of(s)) ids.push_back(frame_id(frame));
    if (ids.empty()) ids.push_back(frame_id("[unknown]"));
    per_thread[s.tid].push_back(std::move(ids));
  }

  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"exporter\":\"smart-prof\",\"name\":\"" +
      json_escape(name) + "\",\"activeProfileIndex\":0,\"shared\":{"
      "\"frames\":[";
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + json_escape(frames[i]) + "\"}";
  }
  out += "]},\"profiles\":[";
  bool first_profile = true;
  for (const auto& [tid, stacks] : per_thread) {
    if (!first_profile) out += ",";
    first_profile = false;
    out += util::strfmt(
        "{\"type\":\"sampled\",\"name\":\"%s tid %u\",\"unit\":\"none\","
        "\"startValue\":0,\"endValue\":%zu,\"samples\":[",
        json_escape(name).c_str(), tid, stacks.size());
    for (size_t i = 0; i < stacks.size(); ++i) {
      if (i != 0) out += ",";
      out += "[";
      for (size_t j = 0; j < stacks[i].size(); ++j)
        out += (j ? "," : "") + util::strfmt("%zu", stacks[i][j]);
      out += "]";
    }
    out += "],\"weights\":[";
    for (size_t i = 0; i < stacks.size(); ++i) out += i ? ",1" : "1";
    out += "]}";
  }
  if (per_thread.empty())
    out += "{\"type\":\"sampled\",\"name\":\"" + json_escape(name) +
           "\",\"unit\":\"none\",\"startValue\":0,\"endValue\":0,"
           "\"samples\":[],\"weights\":[]}";
  out += "]}";
  return out;
}

bool Profiler::write_speedscope(const std::string& path,
                                const std::string& name) const {
  return write_file(path, speedscope_json(name));
}

std::vector<Profiler::FrameStat> Profiler::top_frames(size_t k) const {
  const std::vector<Sample> all = samples();
  std::map<std::string, FrameStat> stats;
  for (const Sample& s : all) {
    const std::vector<std::string> frames = stack_of(s);
    if (frames.empty()) continue;
    std::map<std::string, bool> seen;
    for (const std::string& frame : frames) {
      FrameStat& st = stats[frame];
      st.frame = frame;
      if (!seen[frame]) {
        ++st.total;  // inclusive: count each sample once per frame
        seen[frame] = true;
      }
    }
    ++stats[frames.back()].self;  // leaf frame owns the sample
  }
  std::vector<FrameStat> out;
  out.reserve(stats.size());
  for (auto& [frame, st] : stats) out.push_back(std::move(st));
  std::sort(out.begin(), out.end(), [](const FrameStat& a, const FrameStat& b) {
    if (a.self != b.self) return a.self > b.self;
    if (a.total != b.total) return a.total > b.total;
    return a.frame < b.frame;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::string Profiler::symbolize(void* pc) const { return symbolize_pc(pc); }

void register_current_thread() { ensure_registered(); }

size_t registered_thread_count() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  return registry().size();
}

}  // namespace smart::prof

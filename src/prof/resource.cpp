#include "prof/resource.h"

#include <sys/resource.h>

#include <string>

#include "obs/obs.h"
#include "prof/prof.h"

namespace smart::prof {

namespace {

double tv_ms(const struct timeval& tv) {
  return static_cast<double>(tv.tv_sec) * 1e3 +
         static_cast<double>(tv.tv_usec) / 1e3;
}

}  // namespace

ResourceUsage snapshot_usage() {
  ResourceUsage u;
  struct rusage thread_ru;
  if (::getrusage(RUSAGE_THREAD, &thread_ru) == 0) {
    u.utime_ms = tv_ms(thread_ru.ru_utime);
    u.stime_ms = tv_ms(thread_ru.ru_stime);
    u.minflt = thread_ru.ru_minflt;
    u.majflt = thread_ru.ru_majflt;
  }
  struct rusage proc_ru;
  if (::getrusage(RUSAGE_SELF, &proc_ru) == 0)
    u.peak_rss_kb = proc_ru.ru_maxrss;
  const AllocCounters ac = thread_alloc_counters();
  u.alloc_bytes = ac.bytes;
  u.allocs = ac.allocs;
  return u;
}

ResourceScope::ResourceScope(const char* tag) : tag_(tag) {
  if (!obs::Telemetry::instance().enabled()) return;
  live_ = true;
  start_ = snapshot_usage();
}

ResourceScope::~ResourceScope() {
  if (!live_) return;
  const ResourceUsage d = delta();
  obs::Telemetry& tel = obs::Telemetry::instance();
  const std::string prefix = std::string("rusage.") + tag_;
  tel.counter_add(prefix + ".utime_ms", d.utime_ms);
  tel.counter_add(prefix + ".stime_ms", d.stime_ms);
  tel.counter_add(prefix + ".minflt", static_cast<double>(d.minflt));
  tel.counter_add(prefix + ".majflt", static_cast<double>(d.majflt));
  tel.hist_record(prefix + ".cpu_ms", d.utime_ms + d.stime_ms);
  // Peak RSS is a process high-water mark, not a delta: export the level.
  tel.gauge_set(prefix + ".peak_rss_kb", static_cast<double>(d.peak_rss_kb));
  if (alloc_hook_enabled()) {
    tel.counter_add(prefix + ".alloc_bytes",
                    static_cast<double>(d.alloc_bytes));
    tel.counter_add(prefix + ".allocs", static_cast<double>(d.allocs));
  }
}

ResourceUsage ResourceScope::delta() const {
  if (!live_) return {};
  const ResourceUsage now = snapshot_usage();
  ResourceUsage d;
  d.utime_ms = now.utime_ms - start_.utime_ms;
  d.stime_ms = now.stime_ms - start_.stime_ms;
  d.minflt = now.minflt - start_.minflt;
  d.majflt = now.majflt - start_.majflt;
  d.peak_rss_kb = now.peak_rss_kb;  // high-water level, not a delta
  d.alloc_bytes = now.alloc_bytes - start_.alloc_bytes;
  d.allocs = now.allocs - start_.allocs;
  return d;
}

}  // namespace smart::prof

#pragma once

/// \file resource.h
/// Span-level resource accounting: RAII deltas of per-thread rusage
/// (utime/stime, minor/major faults), process peak RSS, and — when the
/// counting allocator hook is compiled in and enabled — per-thread
/// allocation counts (see prof.h).
///
/// A ResourceScope snapshots the counters at construction and, when
/// telemetry is enabled, records the deltas at destruction under a tag:
///   counters:  rusage.<tag>.utime_ms / .stime_ms / .minflt / .majflt
///              rusage.<tag>.alloc_bytes / .allocs   (hook enabled only)
///   histogram: rusage.<tag>.cpu_ms          (utime + stime per scope)
///   gauge:     rusage.<tag>.peak_rss_kb     (process ru_maxrss high-water)
/// All land in the existing obs metrics JSON with zero new export code.
///
/// Cost discipline matches obs::Span: while telemetry is disabled the
/// constructor is one relaxed atomic load and nothing else runs.

#include <cstdint>

namespace smart::prof {

/// Point-in-time resource counters (see snapshot()).
struct ResourceUsage {
  double utime_ms = 0.0;     ///< thread user CPU time
  double stime_ms = 0.0;     ///< thread system CPU time
  int64_t minflt = 0;        ///< thread minor page faults
  int64_t majflt = 0;        ///< thread major page faults
  int64_t peak_rss_kb = 0;   ///< process peak RSS (ru_maxrss, KiB)
  uint64_t alloc_bytes = 0;  ///< thread bytes via operator new (hook only)
  uint64_t allocs = 0;       ///< thread allocation count (hook only)
};

/// Current counters for the calling thread (+ process peak RSS). Always
/// available; alloc fields are zero unless the hook is on.
ResourceUsage snapshot_usage();

/// RAII accounting scope. `tag` must outlive the scope (string literals).
class ResourceScope {
 public:
  explicit ResourceScope(const char* tag);
  ~ResourceScope();

  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

  /// Deltas so far (zeros while telemetry is disabled). For tests.
  ResourceUsage delta() const;

 private:
  const char* tag_;
  bool live_ = false;
  ResourceUsage start_;
};

}  // namespace smart::prof

/// \file alloc_hook.cpp
/// Optional counting allocator: replaces global operator new/delete to
/// maintain per-thread allocation counters (prof::thread_alloc_counters).
/// Counting is off by default — the replaced operators cost one relaxed
/// atomic load on the disabled path, same discipline as obs/fault hooks.
///
/// Compiled out under ASan/TSan/MSan: sanitizer runtimes interpose the
/// allocator themselves and a second replacement breaks their bookkeeping.
/// prof::alloc_hook_available() reports which variant the build carries.

#include "prof/prof.h"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define SMART_PROF_NO_ALLOC_HOOK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SMART_PROF_NO_ALLOC_HOOK 1
#endif
#endif

namespace smart::prof {

namespace {
std::atomic<bool> g_alloc_hook_on{false};
thread_local AllocCounters t_alloc_counters;
}  // namespace

#if !defined(SMART_PROF_NO_ALLOC_HOOK)

bool alloc_hook_available() { return true; }

namespace {
inline void count_alloc(size_t size) {
  if (!g_alloc_hook_on.load(std::memory_order_relaxed)) return;
  t_alloc_counters.bytes += size;
  ++t_alloc_counters.allocs;
}
}  // namespace

#else  // sanitizer build: no operator replacement, counters stay zero

bool alloc_hook_available() { return false; }

#endif

void set_alloc_hook_enabled(bool on) {
  if (!alloc_hook_available()) return;
  g_alloc_hook_on.store(on, std::memory_order_relaxed);
}

bool alloc_hook_enabled() {
  return g_alloc_hook_on.load(std::memory_order_relaxed);
}

AllocCounters thread_alloc_counters() { return t_alloc_counters; }

}  // namespace smart::prof

#if !defined(SMART_PROF_NO_ALLOC_HOOK)

// Replaceable global allocation functions ([new.delete.single] — a program
// may provide these in any translation unit). Kept minimal: malloc/free
// plus the counter bump; alignment overloads forward to aligned_alloc.

void* operator new(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  smart::prof::count_alloc(size);
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) smart::prof::count_alloc(size);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (size == 0) size = 1;
  const size_t a = static_cast<size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  smart::prof::count_alloc(size);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !SMART_PROF_NO_ALLOC_HOOK

#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/obs.h"
#include "util/json.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

using util::FailureReason;
using util::Status;

/// poll() for `events` within `timeout_ms`; false on timeout.
bool wait_fd(int fd, short events, double timeout_ms) {
  pollfd p{fd, events, 0};
  const int rc = ::poll(&p, 1, std::max(0, static_cast<int>(timeout_ms)));
  return rc > 0 && (p.revents & events) != 0;
}

}  // namespace

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Client::connect_once() {
  close();
  const bool unix_mode = !opt_.unix_path.empty();
  fd_ = ::socket(unix_mode ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    return Status::Fail(FailureReason::kInternal,
                        util::strfmt("socket: %s", std::strerror(errno)));
  sockaddr_un un{};
  sockaddr_in in{};
  const sockaddr* addr = nullptr;
  socklen_t len = 0;
  if (unix_mode) {
    un.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(un.sun_path)) {
      close();
      return Status::Fail(FailureReason::kInvalidInput,
                          "unix socket path too long");
    }
    std::strncpy(un.sun_path, opt_.unix_path.c_str(),
                 sizeof(un.sun_path) - 1);
    addr = reinterpret_cast<const sockaddr*>(&un);
    len = sizeof(un);
  } else {
    in.sin_family = AF_INET;
    in.sin_port = htons(static_cast<uint16_t>(opt_.port));
    if (::inet_pton(AF_INET, opt_.host.c_str(), &in.sin_addr) != 1) {
      close();
      return Status::Fail(
          FailureReason::kInvalidInput,
          util::strfmt("bad address '%s'", opt_.host.c_str()));
    }
    addr = reinterpret_cast<const sockaddr*>(&in);
    len = sizeof(in);
  }

  // Non-blocking connect bounded by connect_timeout_ms.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd_, addr, len);
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string err =
        util::strfmt("connect: %s", std::strerror(errno));
    close();
    return Status::Fail(FailureReason::kInternal, err);
  }
  if (rc != 0) {
    if (!wait_fd(fd_, POLLOUT, opt_.connect_timeout_ms)) {
      close();
      return Status::Fail(FailureReason::kTimeout, "connect timed out");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len);
    if (soerr != 0) {
      const std::string err =
          util::strfmt("connect: %s", std::strerror(soerr));
      close();
      return Status::Fail(FailureReason::kInternal, err);
    }
  }
  if (!unix_mode) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Status::Ok();
}

util::Status Client::send_all(const std::string& bytes, double timeout_ms,
                              size_t* sent) {
  *sent = 0;
  obs::StopWatch watch;
  while (*sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + *sent,
                             bytes.size() - *sent, MSG_NOSIGNAL);
    if (n > 0) {
      *sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const double left = timeout_ms - watch.elapsed_ms();
      if (left <= 0.0)
        return Status::Fail(FailureReason::kTimeout, "send timed out");
      wait_fd(fd_, POLLOUT, std::min(left, 100.0));
      continue;
    }
    return Status::Fail(FailureReason::kInternal,
                        util::strfmt("send: %s", std::strerror(errno)));
  }
  return Status::Ok();
}

util::Status Client::read_frame(Frame* out, double timeout_ms) {
  std::string buf;
  char chunk[16384];
  obs::StopWatch watch;
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    std::string err;
    obs::StopWatch decode_watch;
    const DecodeStatus st = decode_frame(buf.data(), buf.size(), &frame,
                                         &consumed, &err, nullptr);
    last_call_.decode_ms += decode_watch.elapsed_ms();
    if (st == DecodeStatus::kOk) {
      *out = std::move(frame);
      return Status::Ok();
    }
    if (st == DecodeStatus::kBad)
      return Status::Fail(FailureReason::kInvalidInput,
                          "corrupt response frame: " + err);
    const double left = timeout_ms - watch.elapsed_ms();
    if (left <= 0.0)
      return Status::Fail(FailureReason::kTimeout,
                          "timed out waiting for response");
    if (!wait_fd(fd_, POLLIN, std::min(left, 250.0))) continue;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0)
      return Status::Fail(FailureReason::kInternal,
                          "server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return Status::Fail(FailureReason::kInternal,
                          util::strfmt("recv: %s", std::strerror(errno)));
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

void Client::backoff(int attempt) {
  double ms = opt_.backoff_initial_ms;
  for (int i = 0; i < attempt && ms < opt_.backoff_max_ms; ++i) ms *= 2.0;
  ms = std::min(ms, opt_.backoff_max_ms);
  ms += rng_.uniform(0.0, opt_.backoff_initial_ms * 0.5);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
}

uint64_t Client::make_trace_id() {
  // Trace ids must differ across clients and processes; the deterministic
  // jitter rng would hand every Client the identical id sequence. Mix a
  // process-wide counter, the pid, and elapsed time through a splitmix64
  // finalizer instead, and keep 48 bits so the id survives the
  // double-typed JSON number round trip exactly.
  static std::atomic<uint64_t> seq{0};
  uint64_t x = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x ^= static_cast<uint64_t>(::getpid()) << 40;
  x += 0x9e3779b97f4a7c15ull *
       (seq.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  const uint64_t id = x & 0xFFFFFFFFFFFFull;
  return id != 0 ? id : 1;
}

namespace {

/// Pulls the server-reported stage breakdown (the "pulse" object smartd
/// splices into result payloads) into the call stats. Quietly a no-op for
/// error replies, pings, and pre-v2 servers.
void parse_server_pulse(const Frame& reply, CallStats* stats) {
  if (reply.type != FrameType::kResult || reply.payload.empty()) return;
  if (reply.payload.find("\"pulse\"") == std::string::npos) return;
  util::JsonValue doc;
  if (!util::json_parse(reply.payload, &doc)) return;
  const util::JsonValue* pulse = doc.find("pulse");
  if (pulse == nullptr) return;
  if (const util::JsonValue* v = pulse->find("queue_us"))
    stats->server_queue_us = v->number;
  if (const util::JsonValue* v = pulse->find("decode_us"))
    stats->server_decode_us = v->number;
  if (const util::JsonValue* v = pulse->find("solve_us"))
    stats->server_solve_us = v->number;
}

}  // namespace

util::Status Client::call(FrameType type, const std::string& payload,
                          double deadline_ms, Frame* reply) {
  // kShutdown is fired at most once — replaying it is harmless in effect
  // but the policy is "retry only what provably never started".
  const bool retryable = type != FrameType::kShutdown;
  const int attempts = retryable ? opt_.max_retries + 1 : 1;
  Status last = Status::Fail(FailureReason::kInternal, "not attempted");

  last_call_ = CallStats{};
  last_call_.trace_id = make_trace_id();
  // Client-side spans join the request's cross-process trace: everything
  // recorded here and everything the server records for this request
  // carries the same trace id.
  obs::ScopedTraceId trace_scope(last_call_.trace_id);
  obs::Span call_span("client.call", "serve");
  obs::StopWatch total_watch;

  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      backoff(attempt - 1);
    }
    ++last_call_.attempts;
    if (fd_ < 0) {
      obs::Span connect_span("client.connect", "serve");
      obs::StopWatch connect_watch;
      last = connect_once();
      last_call_.connect_ms += connect_watch.elapsed_ms();
      if (!last.ok()) continue;  // connect never starts the request
    }

    Frame frame;
    frame.type = type;
    frame.request_id = next_id_++;
    frame.deadline_ms = deadline_ms;
    frame.trace_id = last_call_.trace_id;
    frame.payload = payload;
    size_t sent = 0;
    const std::string bytes = encode_frame(frame);
    const double send_budget =
        deadline_ms >= 0.0 ? deadline_ms : opt_.io_timeout_ms;
    obs::StopWatch send_watch;
    {
      obs::Span send_span("client.send", "serve");
      last = send_all(bytes, send_budget, &sent);
    }
    last_call_.send_ms += send_watch.elapsed_ms();
    if (!last.ok()) {
      const bool never_started = sent == 0;
      close();
      if (never_started) continue;  // stale pooled connection; safe retry
      last_call_.total_ms = total_watch.elapsed_ms();
      return last;  // partially sent: the server may be solving it
    }

    const double read_budget = deadline_ms >= 0.0
                                   ? deadline_ms + 2000.0
                                   : opt_.io_timeout_ms;
    obs::StopWatch wait_watch;
    {
      obs::Span wait_span("client.wait", "serve");
      last = read_frame(reply, read_budget);
    }
    last_call_.wait_ms += wait_watch.elapsed_ms();
    if (!last.ok()) {
      close();
      last_call_.total_ms = total_watch.elapsed_ms();
      return last;  // request may be executing; never replay
    }
    // A server that could not decode the request (corruption in flight)
    // answers with id 0 — it cannot know the real id. Attribute that error
    // frame to this request; any other id mismatch is a protocol bug.
    const bool anonymous_error =
        reply->type == FrameType::kError && reply->request_id == 0;
    if (reply->request_id != frame.request_id && !anonymous_error) {
      last_call_.total_ms = total_watch.elapsed_ms();
      return Status::Fail(FailureReason::kInternal,
                          "response id does not match request");
    }

    if (reply->type == FrameType::kError &&
        reply->error == ErrorCode::kOverloaded) {
      // Shed by admission control before queueing: provably not started.
      last = Status::Fail(FailureReason::kInternal,
                          "server overloaded: " + reply->payload);
      continue;
    }
    last_call_.total_ms = total_watch.elapsed_ms();
    parse_server_pulse(*reply, &last_call_);
    if (reply->type == FrameType::kError)
      return Status::Fail(reason_from(reply->error), reply->payload);
    return Status::Ok();
  }
  last_call_.total_ms = total_watch.elapsed_ms();
  return last;
}

}  // namespace smart::serve

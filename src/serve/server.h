#pragma once

/// \file server.h
/// The SMART sizing daemon's network core. One poll()-based I/O thread
/// accepts connections (TCP on localhost or a Unix-domain socket), frames
/// requests, and feeds a bounded queue drained by a fixed worker pool that
/// runs the handlers. Robustness properties (see DESIGN.md §11):
///
///   * Admission control — a full queue sheds with kOverloaded instead of
///     queueing unboundedly; clients retry with backoff.
///   * Deadline propagation — each request carries the client's remaining
///     budget; the worker subtracts queueing delay and hands the rest to
///     the solver, so a queued-out request times out cheaply.
///   * Crash isolation — handlers never throw past the worker; any failure
///     becomes a typed error frame on the request's id.
///   * Slow-client protection — response writes poll with a timeout; a
///     stuck client gets disconnected, not a stuck worker.
///   * Idle reaping — connections silent past idle_timeout_ms are closed.
///   * Graceful drain — SIGTERM (or a kShutdown frame) stops accepting,
///     rejects new requests with kShuttingDown, finishes in-flight work,
///     then flushes the obs exporters.
///
/// Fault-injection sites (util::FaultInjector): "serve.accept",
/// "serve.read", "serve.write" (kServeIoFail), "serve.frame"
/// (kServeFrameCorrupt), "serve.worker" (kServeWorkerStall), and
/// "serve.cache.lookup" (kServeCachePoison, in the cache).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "serve/cache.h"
#include "serve/handlers.h"
#include "serve/protocol.h"
#include "serve/pulse.h"
#include "util/deadline.h"
#include "util/status.h"

namespace smart::serve {

struct ServerOptions {
  /// When non-empty, listen on this Unix-domain socket path instead of TCP.
  std::string unix_path;
  /// TCP mode: bind address and port; port 0 picks an ephemeral port
  /// (readable from Server::port() after start()).
  std::string host = "127.0.0.1";
  int port = 0;
  /// Worker threads; 0 = par::thread_count().
  int workers = 0;
  /// Admission control: requests queued beyond this are shed (kOverloaded).
  size_t max_queue = 64;
  size_t max_connections = 128;
  double idle_timeout_ms = 30000.0;
  /// Per-response write budget; a client that cannot drain a response
  /// within it is disconnected.
  double write_timeout_ms = 5000.0;
  size_t cache_capacity = 256;
  bool enable_cache = true;
  /// Relative L-infinity radius for warm-start neighbors.
  double near_distance = 0.25;
  /// Obs exports flushed after drain (empty = none).
  std::string metrics_out;
  std::string trace_out;
  /// Periodic metrics flush interval for metrics_out; <= 0 writes only at
  /// drain. With a positive interval a killed daemon still leaves data no
  /// older than this (flushes are atomic: tmp file + rename).
  double metrics_flush_ms = 0.0;
  /// SMART-Pulse access log: JSONL file sink (empty = ring only) and the
  /// size of the recent-requests ring exposed through kStats.
  std::string access_log_path;
  size_t access_log_capacity = 64;
  /// Slow-request capture: requests slower than slow_threshold_ms end-to-
  /// end are spooled (record + request + solve diagnostics) into
  /// slow_spool_dir. Empty dir or non-positive threshold disables it.
  std::string slow_spool_dir;
  double slow_threshold_ms = -1.0;
  /// SMART-Prof per-request profiling: when profile_dir is non-empty the
  /// daemon samples continuously at profile_hz (per-thread CPU-time
  /// timers, so idle workers cost nothing). Requests the slow capture
  /// fires on additionally get their samples — matched by trace id —
  /// written to profile_dir/profile-<trace>.folded, and a whole-run
  /// profile (folded + speedscope) lands there at drain.
  std::string profile_dir;
  double profile_hz = 99.0;
  /// Retained-sample cap for the daemon's profiler (bounds memory; at
  /// 99 Hz the default keeps roughly the last 10 CPU-minutes).
  size_t profile_max_samples = 1 << 16;
};

/// Monotonic counters snapshot; every field counts since start().
struct ServerStats {
  uint64_t accepted = 0;      ///< connections accepted
  uint64_t rejected = 0;      ///< connections refused at max_connections
  uint64_t requests = 0;      ///< solving requests admitted to the queue
  uint64_t responses = 0;     ///< result/error frames sent by workers
  uint64_t shed = 0;          ///< requests shed by admission control
  uint64_t bad_frames = 0;    ///< corrupt frames (checksum, magic, type)
  uint64_t timeouts = 0;      ///< requests whose deadline expired in queue
  uint64_t errors = 0;        ///< handler failures (typed error frames)
  uint64_t abandoned = 0;     ///< responses dropped: client was gone
  uint64_t reaped_idle = 0;   ///< idle connections closed
  uint64_t io_faults = 0;     ///< injected/real socket-level failures
  uint64_t pings = 0;
  uint64_t stats_requests = 0;   ///< kStats snapshots served
  uint64_t health_requests = 0;  ///< kHealth probes served
  uint64_t slow_captured = 0;    ///< requests spooled by the slow capture
  uint64_t queue_depth = 0;   ///< gauge: queued at snapshot time
  uint64_t in_flight = 0;     ///< gauge: executing at snapshot time
  uint64_t connections = 0;   ///< gauge: open at snapshot time
};

class Server {
 public:
  /// `ctx.cache` is ignored; the server owns its cache (options-gated) and
  /// patches it into the context handed to handlers.
  Server(const ServeContext& ctx, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O thread and worker pool. Returns a
  /// failed status (and starts nothing) when the socket cannot be bound.
  util::Status start();

  /// Asks the server to drain: stop accepting, reject new requests, finish
  /// in-flight ones. Safe from any thread; also triggered by a kShutdown
  /// frame or an installed signal handler.
  void request_shutdown();

  /// Blocks until the server has fully drained and all threads joined,
  /// then flushes the obs exporters named in the options.
  void wait();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound TCP port (valid after start(); 0 in Unix-socket mode).
  int port() const { return bound_port_; }
  /// "host:port" or the Unix socket path.
  const std::string& endpoint() const { return endpoint_; }

  ServerStats stats() const;
  ResultCache* cache() { return cache_ ? cache_.get() : nullptr; }

  /// SMART-Pulse stats snapshot — the JSON served for kStats frames:
  /// uptime, counters, queue/in-flight gauges, per-stage latency
  /// histograms, cache and error-by-code counters, worker utilization,
  /// and the recent-request ring. Safe from any thread.
  std::string stats_json() const;
  /// The JSON served for kHealth frames: status ("ok"/"draining"),
  /// uptime, and headline gauges. Safe from any thread.
  std::string health_json() const;
  /// All-time request records accounted by the access log.
  uint64_t accounted_requests() const { return access_log_.total(); }

  /// Installs SIGTERM/SIGINT handlers that request_shutdown() this server
  /// (async-signal-safe: one write to the wake pipe). Call after start();
  /// pass nullptr to detach.
  static void install_signal_handlers(Server* server);

 private:
  struct Conn {
    int fd = -1;
    std::string rbuf;  ///< io thread only
    std::string peer;  ///< "ip:port" or "unix"; set at accept, then const
    /// Last traffic (steady ms); touched by io thread and workers.
    std::atomic<int64_t> last_active_ms{0};
    /// Requests of this connection queued or executing. The idle reaper
    /// skips connections with outstanding work — a long solve is not idle.
    std::atomic<int> outstanding{0};
    std::mutex write_mu;  ///< serializes response writes
    std::atomic<bool> closed{false};
    ~Conn();
  };

  struct WorkItem {
    std::shared_ptr<Conn> conn;
    Frame frame;
    std::chrono::steady_clock::time_point enqueued;
    util::Deadline deadline;
    double decode_us = 0.0;      ///< frame decode time on the io thread
    double enqueue_ts_us = 0.0;  ///< trace-clock enqueue time (queue span)
  };

  /// Per-stage latency rings behind the kStats snapshot. Bounded and
  /// always on (independent of the telemetry enable flag) — a daemon must
  /// answer stats after weeks of uptime without unbounded sample growth.
  struct StageHists {
    obs::BoundedHistogram queue_ms;
    obs::BoundedHistogram decode_ms;
    obs::BoundedHistogram solve_ms;
    obs::BoundedHistogram encode_ms;
    obs::BoundedHistogram total_ms;
  };

  void io_loop();
  void worker_loop();
  void flush_loop();
  void accept_pending();
  void read_conn(const std::shared_ptr<Conn>& conn);
  void dispatch(const std::shared_ptr<Conn>& conn, Frame frame,
                double decode_us);
  void process(WorkItem item);
  /// Encodes and writes a frame with the write-timeout budget; marks the
  /// connection closed on failure. Returns false when the client is gone.
  bool send_frame(const std::shared_ptr<Conn>& conn, const Frame& frame,
                  double timeout_ms);
  void send_error(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                  ErrorCode code, const std::string& detail,
                  double timeout_ms, uint64_t trace_id = 0);
  void close_conn(int fd);
  void begin_drain();
  void reap_idle();
  /// Per-ErrorCode failure accounting (kStats "errors_by_code").
  void bump_code(ErrorCode code);

  ServeContext ctx_;
  ServerOptions opt_;
  std::unique_ptr<ResultCache> cache_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int bound_port_ = 0;
  std::string endpoint_;

  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::thread flush_thread_;
  std::map<int, std::shared_ptr<Conn>> conns_;  ///< io thread only

  // ---- SMART-Pulse state ----
  StageHists stage_;
  AccessLog access_log_;
  SlowSpool spool_;
  /// True when start() brought up the SMART-Prof sampler (profile_dir set).
  bool profiling_ = false;
  /// Worker-time accounting for utilization: µs spent handling + encoding
  /// across all workers since start().
  std::atomic<uint64_t> busy_us_{0};
  std::chrono::steady_clock::time_point started_;
  int worker_count_ = 0;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool stop_flush_ = false;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  size_t in_flight_ = 0;
  bool stop_workers_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<size_t> conn_count_{0};

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::map<uint16_t, uint64_t> errors_by_code_;  ///< guarded by stats_mu_
  void bump(uint64_t ServerStats::*field, uint64_t delta = 1);
};

}  // namespace smart::serve

#pragma once

/// \file client.h
/// Blocking client for the sizing daemon with deadline-aware retries.
/// Retry policy: only failures where the request provably never *started*
/// on the server are retried — connect failures, sends that wrote zero
/// bytes to a stale connection, and kOverloaded sheds (the server rejects
/// before queueing). A failed read after a complete send is NOT retried:
/// the solve may be executing, and replaying it would double the work.
/// Backoff is exponential with deterministic jitter (util::Rng).

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/rng.h"
#include "util/status.h"

namespace smart::serve {

struct ClientOptions {
  /// When non-empty, connect to this Unix-domain socket instead of TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_ms = 2000.0;
  /// Read budget for a response when the request has no deadline; with a
  /// deadline the budget is deadline + slack.
  double io_timeout_ms = 30000.0;
  /// Retry attempts beyond the first try (0 = never retry).
  int max_retries = 3;
  double backoff_initial_ms = 50.0;
  double backoff_max_ms = 1000.0;
  uint64_t jitter_seed = 0x5eedc11e;
};

/// Per-call timing and trace identity of the most recent call(), always
/// populated (independent of the telemetry flag). Server-side stage
/// micros come from the "pulse" object smartd splices into result
/// payloads; they stay negative when the reply carried none (errors,
/// pings, old servers).
struct CallStats {
  uint64_t trace_id = 0;  ///< id generated for the call (48-bit, nonzero)
  int attempts = 0;       ///< connection+send attempts consumed
  double connect_ms = 0.0;  ///< connect() time (0 on a pooled connection)
  double send_ms = 0.0;     ///< request serialization + socket write
  double wait_ms = 0.0;     ///< send-complete to response-complete
  double decode_ms = 0.0;   ///< client-side response frame decode
  double total_ms = 0.0;    ///< whole call() including retries/backoff
  double server_queue_us = -1.0;
  double server_decode_us = -1.0;
  double server_solve_us = -1.0;
};

class Client {
 public:
  explicit Client(ClientOptions options)
      : opt_(std::move(options)), rng_(opt_.jitter_seed) {}
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and blocks for its response. `deadline_ms` < 0 = no
  /// deadline; otherwise it rides in the frame header and the server
  /// propagates what remains into the solver. On success (`kResult`/
  /// `kPong`) returns Ok with the reply in `*reply`; error frames map back
  /// to a util::Status via reason_from() with the reply still filled in,
  /// so callers can distinguish e.g. kOverloaded from kTimeout.
  util::Status call(FrameType type, const std::string& payload,
                    double deadline_ms, Frame* reply);

  void close();
  bool connected() const { return fd_ >= 0; }
  /// Retries performed across all call()s (observability for tests).
  int retries() const { return retries_; }
  /// Timing/trace breakdown of the most recent call().
  const CallStats& last_call() const { return last_call_; }

 private:
  util::Status connect_once();
  util::Status send_all(const std::string& bytes, double timeout_ms,
                        size_t* sent);
  util::Status read_frame(Frame* out, double timeout_ms);
  void backoff(int attempt);
  /// 48-bit nonzero trace id (fits a JSON double exactly).
  uint64_t make_trace_id();

  ClientOptions opt_;
  util::Rng rng_;
  int fd_ = -1;
  uint64_t next_id_ = 1;
  int retries_ = 0;
  CallStats last_call_;
};

}  // namespace smart::serve

#include "serve/pulse.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/protocol.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

std::string us_field(const char* key, double v) {
  return util::strfmt("\"%s\":%.1f", key, v);
}

}  // namespace

std::string record_json(const RequestRecord& rec) {
  std::string out = "{";
  out += util::strfmt("\"trace_id\":%llu,\"request_id\":%llu,",
                      static_cast<unsigned long long>(rec.trace_id),
                      static_cast<unsigned long long>(rec.request_id));
  out += "\"peer\":\"" + json_escape(rec.peer) + "\",";
  out += "\"op\":\"" + json_escape(rec.op) + "\",";
  out += "\"macro\":\"" + json_escape(rec.macro) + "\",";
  out += "\"cache\":\"" + json_escape(rec.cache) + "\",";
  out += "\"rung\":\"" + json_escape(rec.rung) + "\",";
  out += "\"status\":\"" + json_escape(rec.status) + "\",";
  out += us_field("queue_us", rec.queue_us) + ",";
  out += us_field("decode_us", rec.decode_us) + ",";
  out += us_field("solve_us", rec.solve_us) + ",";
  out += us_field("encode_us", rec.encode_us) + ",";
  out += us_field("total_us", rec.total_us) + ",";
  out += util::strfmt("\"unix_ms\":%lld}",
                      static_cast<long long>(rec.unix_ms));
  return out;
}

AccessLog::~AccessLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

bool AccessLog::configure(size_t capacity, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  if (path.empty()) return true;
  sink_ = std::fopen(path.c_str(), "a");
  return sink_ != nullptr;
}

void AccessLog::append(const RequestRecord& rec) {
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[next_] = rec;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
    if (sink_ == nullptr) return;
    line = record_json(rec);
    line += '\n';
    // Written under the lock: one record per line, never interleaved.
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
  }
}

std::vector<RequestRecord> AccessLog::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

uint64_t AccessLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string AccessLog::recent_json() const {
  const std::vector<RequestRecord> records = recent();
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ",";
    out += record_json(records[i]);
  }
  out += "]";
  return out;
}

bool SlowSpool::configure(const std::string& dir, double threshold_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
  dir_ = dir;
  threshold_ms_ = threshold_ms;
  if (dir.empty() || threshold_ms <= 0.0) return true;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) return false;
  enabled_ = true;
  return true;
}

bool SlowSpool::capture(const RequestRecord& rec,
                        const std::string& request_json,
                        const std::string& diag_json) {
  std::string body = "{\"record\":" + record_json(rec);
  body += ",\"request\":";
  body += request_json.empty() ? "null" : request_json;
  body += ",\"diagnostics\":";
  body += diag_json.empty() ? "null" : diag_json;
  body += "}\n";

  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return false;
    const uint64_t id = rec.trace_id != 0 ? rec.trace_id : rec.request_id;
    path = util::strfmt("%s/slow-%lld-%llu-%llu.json", dir_.c_str(),
                        static_cast<long long>(rec.unix_ms),
                        static_cast<unsigned long long>(id),
                        static_cast<unsigned long long>(seq_++));
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool wrote = std::fclose(f) == 0 && n == body.size();
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++captured_;
  return true;
}

uint64_t SlowSpool::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

}  // namespace smart::serve

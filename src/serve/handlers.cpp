#include "serve/handlers.h"

#include <cmath>
#include <exception>

#include "core/advisor.h"
#include "core/baseline.h"
#include "core/sizer.h"
#include "gp/verify.h"
#include "lint/erc.h"
#include "obs/obs.h"
#include "refsim/rc_timer.h"
#include "scope/scope.h"
#include "serve/request.h"
#include "util/deadline.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

using util::FailureReason;
using util::Status;

core::CostMetric cost_metric(const Request& r) {
  if (r.cost == "power") return core::CostMetric::kPower;
  if (r.cost == "clock") return core::CostMetric::kClockLoad;
  return core::CostMetric::kTotalWidth;
}

HandlerOutcome fail(FailureReason reason, std::string detail) {
  return {Status::Fail(reason, std::move(detail)), ""};
}

/// Resolves the named topology and generates the netlist; generation
/// errors (unknown topology, inapplicable n) are the client's fault.
Status generate(const ServeContext& ctx, const Request& r,
                netlist::Netlist* out) {
  const auto* entry = ctx.db->find(r.type, r.topology);
  if (entry == nullptr)
    return Status::Fail(FailureReason::kInvalidInput,
                        util::strfmt("unknown topology %s/%s",
                                     r.type.c_str(), r.topology.c_str()));
  try {
    *out = entry->generate(to_spec(r));
  } catch (const std::exception& e) {
    return Status::Fail(
        FailureReason::kInvalidInput,
        util::strfmt("macro generation failed: %s", e.what()));
  }
  return Status::Ok();
}

/// Fills the spec-derived SizerOptions fields shared by size and report.
/// When the request has no explicit delay spec it is derived from the hand
/// baseline, same protocol as the CLI.
Status sizing_options(const ServeContext& ctx, const Request& r,
                      const netlist::Netlist& nl, double budget_ms,
                      core::SizerOptions* opt) {
  opt->delay_spec_ps = r.delay_ps;
  if (opt->delay_spec_ps <= 0.0) {
    const core::BaselineSizer baseline(*ctx.tech);
    const refsim::RcTimer timer(*ctx.tech);
    const auto rep = timer.analyze(nl, baseline.size(nl));
    opt->delay_spec_ps = rep.worst_delay;
    if (rep.worst_precharge > 0.0)
      opt->precharge_spec_ps = rep.worst_precharge;
  }
  if (r.precharge_ps >= 0.0) opt->precharge_spec_ps = r.precharge_ps;
  if (r.slope_ps > 0.0) opt->slope_budget_ps = r.slope_ps;
  opt->cost = cost_metric(r);
  opt->gp.deadline_ms = budget_ms;
  return Status::Ok();
}

std::string render_widths(const std::vector<double>& widths) {
  std::string out = "[";
  for (size_t i = 0; i < widths.size(); ++i) {
    if (i > 0) out += ",";
    out += util::strfmt("%.6g", widths[i]);
  }
  out += "]";
  return out;
}

/// SMART-Scope-flavored solve diagnostics for the slow-request spool:
/// which rung answered, how hard the GP worked, what was binding, and the
/// model-vs-STA respec trajectory. Built from fields SizerResult always
/// records — no keep_solve_snapshot needed on the serving path.
std::string solve_diag_json(const core::SizerResult& result) {
  std::string out = util::strfmt(
      "{\"rung\":\"%s\",\"status\":\"%s\",\"ok\":%s,"
      "\"newton_iterations\":%d,\"respec_iterations\":%d,"
      "\"measured_delay_ps\":%.3f,\"total_width_um\":%.3f,"
      "\"binding\":[",
      core::to_string(result.rung),
      json_escape(result.status.to_string()).c_str(),
      result.ok ? "true" : "false", result.gp_newton_iterations,
      result.respec_iterations, result.measured_delay_ps,
      result.total_width_um);
  for (size_t i = 0; i < result.binding_constraints.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(result.binding_constraints[i]) + "\"";
  }
  out += "],\"respec_trace\":[";
  for (size_t i = 0; i < result.respec_trace.size(); ++i) {
    const auto& it = result.respec_trace[i];
    if (i > 0) out += ",";
    out += util::strfmt(
        "{\"iter\":%d,\"model_spec_ps\":%.3f,\"measured_delay_ps\":%.3f,"
        "\"mismatch\":%.4f,\"binding_count\":%zu,\"meets\":%s,"
        "\"accepted\":%s}",
        it.iter, it.model_spec_ps, it.measured_delay_ps, it.mismatch,
        it.binding_count, it.meets ? "true" : "false",
        it.accepted ? "true" : "false");
  }
  out += "]}";
  return out;
}

std::string render_size_response(const std::string& macro,
                                 const CachedResult& r,
                                 const char* cache_state, bool warm) {
  return util::strfmt(
      "{\"macro\":\"%s\",\"ok\":true,\"rung\":\"%s\",\"cache\":\"%s\","
      "\"warm_start\":%s,\"measured_delay_ps\":%.3f,"
      "\"measured_precharge_ps\":%.3f,\"total_width_um\":%.3f,"
      "\"newton_iterations\":%d,\"respec_iterations\":%d,"
      "\"widths\":%s}",
      json_escape(macro).c_str(), r.rung.c_str(), cache_state,
      warm ? "true" : "false", r.measured_delay_ps, r.measured_precharge_ps,
      r.total_width_um, r.newton_iterations, r.respec_iterations,
      render_widths(r.widths).c_str());
}

HandlerOutcome handle_size(const ServeContext& ctx, const Request& req,
                           double budget_ms) {
  auto& tel = obs::Telemetry::instance();
  const std::string bucket = macro_bucket(req);
  netlist::Netlist nl("");
  if (Status st = generate(ctx, req, &nl); !st.ok())
    return {st, "", bucket};

  const uint64_t fingerprint = request_fingerprint(req);
  const std::vector<double> params = constraint_params(req);
  const bool cache_on = ctx.cache != nullptr && req.use_cache;

  if (cache_on) {
    CachedResult hit;
    if (ctx.cache->lookup_exact(bucket, fingerprint, &hit)) {
      tel.counter_add("serve.cache.hit");
      return {Status::Ok(), render_size_response(bucket, hit, "hit", false),
              bucket, "hit", hit.rung, ""};
    }
  }

  core::SizerOptions opt;
  if (Status st = sizing_options(ctx, req, nl, budget_ms, &opt); !st.ok())
    return {st, "", bucket};

  bool warm = false;
  if (cache_on) {
    CachedResult neighbor;
    if (ctx.cache->lookup_near(bucket, params, 0.25, &neighbor)) {
      opt.warm_start = std::move(neighbor.solution_x);
      warm = true;
      tel.counter_add("serve.cache.warm");
    } else {
      tel.counter_add("serve.cache.miss");
    }
  }
  const std::string cache_state = cache_on ? (warm ? "warm" : "miss") : "";

  const core::Sizer sizer(*ctx.tech, *ctx.lib);
  const core::SizerResult result = sizer.size(nl, opt);
  if (!result.ok) {
    const Status st = result.status.ok()
                          ? Status::Fail(FailureReason::kInternal,
                                         result.message)
                          : result.status;
    return {st, "", bucket, cache_state, core::to_string(result.rung),
            solve_diag_json(result)};
  }

  CachedResult value;
  value.solution_x = result.solution_x;
  value.widths = result.sizing;
  value.measured_delay_ps = result.measured_delay_ps;
  value.measured_precharge_ps = result.measured_precharge_ps;
  value.total_width_um = result.total_width_um;
  value.newton_iterations = result.gp_newton_iterations;
  value.respec_iterations = result.respec_iterations;
  value.rung = core::to_string(result.rung);
  const std::string payload =
      render_size_response(bucket, value, warm ? "warm" : "miss", warm);
  if (cache_on) ctx.cache->insert(bucket, fingerprint, params, value);
  return {Status::Ok(), payload, bucket, warm ? "warm" : "miss", value.rung,
          solve_diag_json(result)};
}

HandlerOutcome handle_advise(const ServeContext& ctx, const Request& req,
                             double budget_ms) {
  core::AdvisorRequest request;
  request.spec = to_spec(req);
  request.delay_spec_ps = req.delay_ps;
  request.cost = cost_metric(req);
  request.sizer.gp.deadline_ms = budget_ms;
  const core::DesignAdvisor advisor(*ctx.db, *ctx.tech, *ctx.lib);
  const core::Advice advice = advisor.advise(request);
  if (advice.solutions.empty())
    return fail(FailureReason::kInfeasible,
                advice.message.empty() ? "no feasible topology"
                                       : advice.message);
  std::string out = util::strfmt("{\"spec_ps\":%.3f,\"solutions\":[",
                                 advice.derived_delay_spec_ps);
  for (size_t i = 0; i < advice.solutions.size(); ++i) {
    const auto& sol = advice.solutions[i];
    if (i > 0) out += ",";
    out += util::strfmt(
        "{\"topology\":\"%s\",\"cost\":%.4f,\"delay_ps\":%.3f,"
        "\"width_um\":%.3f,\"meets_spec\":%s}",
        json_escape(sol.topology).c_str(), sol.cost_value,
        sol.sizing.measured_delay_ps, sol.sizing.total_width_um,
        sol.meets_spec ? "true" : "false");
  }
  out += "],\"failures\":[";
  for (size_t i = 0; i < advice.failures.size(); ++i) {
    const auto& f = advice.failures[i];
    if (i > 0) out += ",";
    out += util::strfmt("{\"topology\":\"%s\",\"status\":\"%s\"}",
                        json_escape(f.topology).c_str(),
                        json_escape(f.status.to_string()).c_str());
  }
  out += "]}";
  return {Status::Ok(), out};
}

HandlerOutcome handle_lint(const ServeContext& ctx, const Request& req) {
  netlist::Netlist nl("");
  if (Status st = generate(ctx, req, &nl); !st.ok()) return {st, ""};
  const lint::Options opt;
  lint::Report report(opt);
  report.merge(lint::run_erc(nl, opt));
  core::ConstraintOptions copt;
  // Structural check, not a feasibility check — a loose spec on purpose.
  copt.delay_spec_ps = req.delay_ps > 0.0 ? req.delay_ps : 1000.0;
  try {
    const auto gen = core::generate_problem(nl, copt, *ctx.lib, *ctx.tech);
    report.merge(gp::verify_problem(*gen.problem, opt, nl.name()));
  } catch (const std::exception& e) {
    return fail(FailureReason::kInternal,
                util::strfmt("constraint generation failed: %s", e.what()));
  }
  return {Status::Ok(), report.to_json()};
}

HandlerOutcome handle_report(const ServeContext& ctx, const Request& req,
                             double budget_ms) {
  netlist::Netlist nl("");
  if (Status st = generate(ctx, req, &nl); !st.ok()) return {st, ""};
  core::SizerOptions opt;
  if (Status st = sizing_options(ctx, req, nl, budget_ms, &opt); !st.ok())
    return {st, ""};
  opt.keep_solve_snapshot = true;
  opt.gp.tolerance = 1e-6;  // report-grade binding set (see CLI `report`)
  const core::Sizer sizer(*ctx.tech, *ctx.lib);
  const core::SizerResult result = sizer.size(nl, opt);
  if (!result.ok)
    return {result.status.ok()
                ? Status::Fail(FailureReason::kInternal, result.message)
                : result.status,
            ""};
  scope::ScopeOptions sopt;
  sopt.top_k = static_cast<size_t>(req.top_k);
  const auto report = scope::build_report(nl, result, *ctx.tech, sopt);
  return {Status::Ok(), scope::render_json(report), macro_bucket(req), "",
          core::to_string(result.rung), solve_diag_json(result)};
}

}  // namespace

HandlerOutcome handle_request(const ServeContext& ctx, FrameType type,
                              const std::string& payload, double budget_ms) {
  try {
    Request req;
    if (Status st = parse_request(payload, &req); !st.ok())
      return {st, ""};
    if ((type == FrameType::kSize || type == FrameType::kLint ||
         type == FrameType::kReport) &&
        req.topology.empty())
      return fail(FailureReason::kInvalidInput,
                  util::strfmt("%s request needs a 'topology'",
                               to_string(type)));
    HandlerOutcome out;
    switch (type) {
      case FrameType::kSize:
        out = handle_size(ctx, req, budget_ms);
        break;
      case FrameType::kAdvise:
        out = handle_advise(ctx, req, budget_ms);
        break;
      case FrameType::kLint:
        out = handle_lint(ctx, req);
        break;
      case FrameType::kReport:
        out = handle_report(ctx, req, budget_ms);
        break;
      default:
        return fail(FailureReason::kInvalidInput,
                    util::strfmt("frame type %s is not a solving request",
                                 to_string(type)));
    }
    // Every op gets a macro key in its access-log record, even the ones
    // (advise, lint) that do not go through the size bucket.
    if (out.macro.empty())
      out.macro = req.topology.empty() ? req.type : macro_bucket(req);
    return out;
  } catch (const util::TimeoutError& e) {
    return fail(FailureReason::kTimeout, e.what());
  } catch (const std::exception& e) {
    // The crash-isolation backstop: whatever a handler let escape becomes
    // a typed error frame, never a dead worker.
    return fail(FailureReason::kInternal, e.what());
  } catch (...) {
    return fail(FailureReason::kInternal, "unknown exception in handler");
  }
}

}  // namespace smart::serve

#pragma once

/// \file handlers.h
/// Per-request business logic of the sizing daemon, crash-isolated from
/// the transport: every handler returns a util::Status plus a JSON payload
/// and never lets an exception escape — the server maps the status to a
/// typed protocol error frame. Handlers are pure functions of the shared
/// read-only context (macro database, tech, models) plus the result cache,
/// so the worker pool runs them concurrently without coordination.

#include <string>

#include "core/database.h"
#include "models/fitter.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "tech/tech.h"
#include "util/status.h"

namespace smart::serve {

/// Shared immutable state of the daemon. All pointers must outlive the
/// server; `cache` may be nullptr (caching disabled).
struct ServeContext {
  const core::MacroDatabase* db = nullptr;
  const tech::Tech* tech = nullptr;
  const models::ModelLibrary* lib = nullptr;
  ResultCache* cache = nullptr;
};

struct HandlerOutcome {
  util::Status status;  ///< ok() => payload is the response JSON
  std::string payload;  ///< response JSON, or error detail on failure
  // ---- SMART-Pulse accounting (access log, stats, slow-spool) ----
  std::string macro;  ///< macro bucket key ("" when the op has none)
  std::string cache;  ///< "hit" | "near" | "miss" | "" (non-solve ops)
  std::string rung;   ///< sizing rung of a solve ("" otherwise)
  /// SMART-Scope-style solve diagnostics JSON (respec trace, binding
  /// constraints, Newton iterations); "" when the op ran no solver.
  /// Captured with the request by the slow-request spool.
  std::string diag;
};

/// Dispatches one request frame. `budget_ms` is the wall-clock budget left
/// after queueing (< 0 = none); solving handlers thread it into
/// SolverOptions::deadline_ms so a queued-out request times out instead of
/// hogging a worker. Never throws.
HandlerOutcome handle_request(const ServeContext& ctx, FrameType type,
                              const std::string& payload, double budget_ms);

}  // namespace smart::serve

#pragma once

/// \file protocol.h
/// Wire protocol of the SMART sizing daemon (smartd). Length-prefixed
/// binary frames over a stream socket (TCP or Unix domain). Version 2
/// layout:
///
///   offset size field
///   0      4    magic 0x534D5254 ("SMRT")
///   4      2    protocol version (kProtocolVersion)
///   6      2    FrameType
///   8      2    ErrorCode (responses; 0 in requests)
///   10     2    flags (reserved, must be 0)
///   12     4    payload length (bytes, <= kMaxPayload)
///   16     8    request id (echoed verbatim in the response)
///   24     8    deadline_ms as an IEEE-754 double (< 0 = no deadline;
///               the client's *remaining* budget at send time — the server
///               subtracts its own queueing delay before solving)
///   32     8    trace id (v2+; 0 = none; echoed in the response and
///               attached to every obs span the request touches, so one
///               Chrome trace follows it across the socket boundary)
///   40     8    FNV-1a checksum over header bytes [0,40) and the payload
///   48     ...  payload (UTF-8 JSON for every type that carries one)
///
/// Version 1 frames (40-byte header: no trace id, checksum at offset 32
/// over header bytes [0,32) and the payload) still decode — bytes [0,16)
/// are layout-identical across versions, so the decoder reads the version
/// field first and then applies that version's header size and checksum
/// placement. Unknown versions are rejected as a typed
/// kUnsupportedVersion error, never a checksum mystery. Encoding always
/// emits the current version (encode_frame_v1 exists for compatibility
/// tests and old peers).
///
/// All integers are little-endian on the wire. The checksum turns any
/// corruption — a flaky client, a fault-injected byte flip — into a
/// detected kBadFrame instead of a garbage solve. Decoding is incremental:
/// feed a growing buffer, get kNeedMore until a whole frame is present.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace smart::serve {

constexpr uint32_t kMagic = 0x534D5254u;  // "SMRT"
constexpr uint16_t kProtocolVersion = 2;
/// Oldest version the decoder still accepts.
constexpr uint16_t kMinProtocolVersion = 1;
/// Header size of the current (v2) wire format.
constexpr size_t kHeaderSize = 48;
/// Header size of the legacy v1 format (no trace id field).
constexpr size_t kHeaderSizeV1 = 40;
/// Bytes whose layout is identical in every version — enough to read the
/// magic, version, flags, and payload length before committing to a
/// version-specific header size.
constexpr size_t kHeaderPrefix = 16;
/// Upper bound on a frame payload; larger lengths are kBadFrame (protects
/// the server from allocating on a corrupted length field).
constexpr size_t kMaxPayload = 8u << 20;

/// Frame types. Requests are < 64, responses >= 64; a server never sends a
/// request type and vice versa.
enum class FrameType : uint16_t {
  // requests
  kPing = 1,      ///< liveness probe; empty payload
  kSize = 2,      ///< size one macro (payload: request JSON)
  kAdvise = 3,    ///< rank all applicable topologies
  kLint = 4,      ///< ERC + GP well-formedness report
  kReport = 5,    ///< SMART-Scope introspection report
  kShutdown = 6,  ///< ask the daemon to drain and exit
  kStats = 7,     ///< SMART-Pulse stats snapshot (admin plane; v2+)
  kHealth = 8,    ///< liveness/readiness probe with status JSON (v2+)
  // responses
  kPong = 65,    ///< reply to kPing
  kResult = 66,  ///< success; payload is the response JSON
  kError = 67,   ///< failure; `error` says why, payload carries detail JSON
};

const char* to_string(FrameType t);
inline bool is_request(FrameType t) { return static_cast<uint16_t>(t) < 64; }

/// Why a request failed, carried in response frames. Values 1..7 mirror
/// util::FailureReason one-for-one (handler failures); values >= 32 are
/// protocol/serving conditions the handler never sees.
enum class ErrorCode : uint16_t {
  kOk = 0,
  kInvalidInput = 1,
  kInfeasible = 2,
  kMaxIter = 3,
  kTimeout = 4,
  kNumericalError = 5,
  kFaultInjected = 6,
  kInternal = 7,
  kBadFrame = 32,            ///< bad magic/length/checksum or unknown type
  kUnsupportedVersion = 33,  ///< protocol version mismatch
  kOverloaded = 34,          ///< admission control shed the request
  kShuttingDown = 35,        ///< daemon is draining; request not started
};

const char* to_string(ErrorCode e);
ErrorCode error_from(const util::Status& status);
/// Inverse mapping for client-side Status reconstruction. Protocol-level
/// codes (kBadFrame and up) map to kInvalidInput/kInternal.
util::FailureReason reason_from(ErrorCode e);

/// One decoded (or to-be-encoded) frame. `deadline_ms < 0` means none.
/// `trace_id` is 0 when absent (v1 peers, untraced requests); generated
/// ids stay within 48 bits so they survive JSON number round trips.
struct Frame {
  FrameType type = FrameType::kPing;
  ErrorCode error = ErrorCode::kOk;
  uint64_t request_id = 0;
  double deadline_ms = -1.0;
  uint64_t trace_id = 0;
  std::string payload;
};

/// Serializes a frame (header + checksum + payload) to wire bytes in the
/// current protocol version.
std::string encode_frame(const Frame& frame);

/// Serializes in the legacy v1 format (drops trace_id). Exists so the
/// version-compatibility contract — old clients keep working — stays
/// under test; new code always uses encode_frame.
std::string encode_frame_v1(const Frame& frame);

enum class DecodeStatus {
  kOk,        ///< one whole frame decoded; `consumed` bytes eaten
  kNeedMore,  ///< buffer holds only a prefix; read more and retry
  kBad,       ///< corrupt (magic/version/length/checksum); close the stream
};

/// Incrementally decodes the first frame of `data[0, len)`. On kOk the
/// frame and its byte count are written to `out`/`consumed`; on kBad `err`
/// explains what was wrong (version mismatches also set `bad_version`).
DecodeStatus decode_frame(const char* data, size_t len, Frame* out,
                          size_t* consumed, std::string* err,
                          bool* bad_version = nullptr);

/// JSON string escaping for hand-built payloads (quotes, backslashes,
/// control characters).
std::string json_escape(const std::string& s);

}  // namespace smart::serve

#pragma once

/// \file pulse.h
/// SMART-Pulse: per-request accounting for the serving layer. Three
/// pieces (see DESIGN.md §12):
///
///   * RequestRecord — one structured record per served request: trace
///     id, peer, macro key, cache outcome, sizing rung, per-stage micros
///     (queue/decode/solve/encode/total), and final status.
///   * AccessLog — a bounded in-memory ring of the most recent records
///     (exposed through the kStats snapshot) plus an optional append-only
///     JSONL file sink, one record per line.
///   * SlowSpool — automatic capture of requests whose total latency
///     exceeds a threshold: the record, the original request JSON, and
///     the SMART-Scope solve diagnostics are written to a spool
///     directory crash-safely (tmp file + rename) for offline analysis.
///
/// Everything here is thread-safe and independent of the obs telemetry
/// enable flag: the serving stats plane must answer even when tracing is
/// off.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace smart::serve {

/// One served request, as accounted by the worker (or, for shed
/// requests, the I/O thread). Stage times are microseconds; a stage that
/// never ran (e.g. solve on a shed request) stays 0.
struct RequestRecord {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  std::string peer;    ///< "ip:port" or "unix"
  std::string op;      ///< frame type name ("size", "advise", ...)
  std::string macro;   ///< macro bucket key ("" when not a solve)
  std::string cache;   ///< "hit" | "warm" | "miss" | ""
  std::string rung;    ///< sizing rung ("gp", "gp_relaxed", "baseline", "")
  std::string status;  ///< "ok" or the protocol error code name
  double queue_us = 0.0;
  double decode_us = 0.0;
  double solve_us = 0.0;
  double encode_us = 0.0;
  double total_us = 0.0;
  int64_t unix_ms = 0;  ///< wall-clock completion time (ms since epoch)
};

/// One-line JSON rendering of a record (no trailing newline).
std::string record_json(const RequestRecord& rec);

/// Bounded ring of recent requests plus an optional JSONL file sink.
/// configure() is called once before the server starts accepting;
/// append() is called from workers and the I/O thread concurrently.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Sets ring capacity and (when `path` is non-empty) opens the file
  /// sink in append mode. Returns false when the file cannot be opened;
  /// the ring still works in that case.
  bool configure(size_t capacity, const std::string& path);

  void append(const RequestRecord& rec);

  /// Oldest-to-newest copy of the retained ring.
  std::vector<RequestRecord> recent() const;
  /// All-time appended count.
  uint64_t total() const;
  /// JSON array of recent(), newest last.
  std::string recent_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<RequestRecord> ring_;
  size_t capacity_ = 64;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::FILE* sink_ = nullptr;
};

/// Crash-safe slow-request capture. Each captured request becomes one
/// JSON file `slow-<unix_ms>-<trace or request id>.json` in the spool
/// directory, containing the record, the request payload, and the solve
/// diagnostics; writes go to a ".tmp" sibling first and rename into
/// place so a crash mid-write never leaves a torn file visible.
class SlowSpool {
 public:
  /// Enables capture into `dir` (created if absent) for requests slower
  /// than `threshold_ms`. A non-positive threshold or empty dir disables
  /// capture. Returns false when the directory cannot be created.
  bool configure(const std::string& dir, double threshold_ms);

  bool enabled() const { return enabled_; }
  double threshold_ms() const { return threshold_ms_; }

  /// Writes one capture file; returns false on I/O failure (counted by
  /// the caller, never fatal). `request_json` is the original request
  /// payload ("" when none), `diag_json` the solve diagnostics ("" when
  /// none); both are embedded verbatim when non-empty.
  bool capture(const RequestRecord& rec, const std::string& request_json,
               const std::string& diag_json);

  /// All-time successful captures.
  uint64_t captured() const;

 private:
  mutable std::mutex mu_;
  std::string dir_;
  double threshold_ms_ = -1.0;
  bool enabled_ = false;
  uint64_t captured_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace smart::serve

#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/obs.h"
#include "par/par.h"
#include "prof/prof.h"
#include "prof/resource.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Wake-pipe write end the signal handler targets. A single write() is
/// async-signal-safe; everything else happens on the io thread.
std::atomic<int> g_signal_wake_fd{-1};

void on_shutdown_signal(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'S';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Atomic file replace for the periodic metrics flush: a reader (or a
/// crash) never sees a torn file, only the previous complete one.
bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && n == content.size();
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

int64_t unix_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Stage-histogram JSON for the kStats snapshot: window summary plus the
/// all-time count (the window is the last N samples, count <= N).
std::string hist_json(const obs::BoundedHistogram& h) {
  const obs::HistogramSummary s = h.summary();
  return util::strfmt(
      "{\"count\":%llu,\"window\":%zu,\"min\":%.3f,\"max\":%.3f,"
      "\"mean\":%.3f,\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f}",
      static_cast<unsigned long long>(h.total_count()), s.count, s.min,
      s.max, s.mean, s.p50, s.p90, s.p99);
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(const ServeContext& ctx, ServerOptions options)
    : ctx_(ctx), opt_(std::move(options)) {
  if (opt_.enable_cache)
    cache_ = std::make_unique<ResultCache>(opt_.cache_capacity);
  ctx_.cache = cache_.get();
}

Server::~Server() {
  if (running_.load(std::memory_order_acquire)) {
    request_shutdown();
    wait();
  }
  for (const int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::bump(uint64_t ServerStats::*field, uint64_t delta) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += delta;
}

void Server::bump_code(ErrorCode code) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++errors_by_code_[static_cast<uint16_t>(code)];
}

util::Status Server::start() {
  if (running_.load(std::memory_order_acquire))
    return util::Status::Fail(util::FailureReason::kInvalidInput,
                              "server already running");
  if (::pipe(wake_pipe_) != 0)
    return util::Status::Fail(
        util::FailureReason::kInternal,
        util::strfmt("pipe: %s", std::strerror(errno)));
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  const bool unix_mode = !opt_.unix_path.empty();
  listen_fd_ = ::socket(unix_mode ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return util::Status::Fail(
        util::FailureReason::kInternal,
        util::strfmt("socket: %s", std::strerror(errno)));

  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::Fail(util::FailureReason::kInvalidInput,
                                "unix socket path too long");
    }
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(opt_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err =
          util::strfmt("bind %s: %s", opt_.unix_path.c_str(),
                       std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::Fail(util::FailureReason::kInternal, err);
    }
    endpoint_ = opt_.unix_path;
  } else {
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(opt_.port));
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::Fail(
          util::FailureReason::kInvalidInput,
          util::strfmt("bad bind address '%s'", opt_.host.c_str()));
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err = util::strfmt("bind %s:%d: %s",
                                           opt_.host.c_str(), opt_.port,
                                           std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return util::Status::Fail(util::FailureReason::kInternal, err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
    endpoint_ = util::strfmt("%s:%d", opt_.host.c_str(), bound_port_);
  }

  if (::listen(listen_fd_, 64) != 0) {
    const std::string err =
        util::strfmt("listen: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::Fail(util::FailureReason::kInternal, err);
  }
  set_nonblocking(listen_fd_);

  // SMART-Pulse state, configured before any thread can touch it.
  started_ = std::chrono::steady_clock::now();
  if (!access_log_.configure(opt_.access_log_capacity, opt_.access_log_path))
    util::log_warn(util::strfmt("smartd: cannot open access log %s",
                                opt_.access_log_path.c_str()));
  if (!spool_.configure(opt_.slow_spool_dir, opt_.slow_threshold_ms))
    util::log_warn(util::strfmt("smartd: cannot create slow spool dir %s",
                                opt_.slow_spool_dir.c_str()));
  if (!opt_.profile_dir.empty()) {
    if (::mkdir(opt_.profile_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      util::log_warn(util::strfmt("smartd: cannot create profile dir %s",
                                  opt_.profile_dir.c_str()));
    } else {
      prof::ProfilerOptions popt;
      popt.hz = opt_.profile_hz;
      popt.max_samples = opt_.profile_max_samples;
      if (const util::Status st = prof::Profiler::instance().start(popt);
          st.ok()) {
        profiling_ = true;
        util::log_info(util::strfmt("smartd: profiling at %.0f Hz -> %s",
                                    opt_.profile_hz,
                                    opt_.profile_dir.c_str()));
      } else {
        util::log_warn(
            util::strfmt("smartd: profiler start failed: %s",
                         st.detail.c_str()));
      }
    }
  }

  const int n = opt_.workers > 0 ? opt_.workers
                                 : std::max(1, par::thread_count());
  worker_count_ = n;
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
  if (!opt_.metrics_out.empty() && opt_.metrics_flush_ms > 0.0) {
    stop_flush_ = false;
    flush_thread_ = std::thread([this] { flush_loop(); });
  }
  util::log_info(util::strfmt("smartd: listening on %s (%d workers)",
                              endpoint_.c_str(), n));
  return util::Status::Ok();
}

void Server::flush_loop() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  const auto interval = std::chrono::duration<double, std::milli>(
      opt_.metrics_flush_ms);
  while (!stop_flush_) {
    flush_cv_.wait_for(lock, interval, [&] { return stop_flush_; });
    if (stop_flush_) break;
    // The exporter snapshots under the telemetry lock without clearing
    // state; the atomic replace keeps readers (and crashes) safe.
    lock.unlock();
    write_file_atomic(opt_.metrics_out,
                      obs::Telemetry::instance().metrics_json());
    lock.lock();
  }
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'S';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  if (flush_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_flush_ = true;
    }
    flush_cv_.notify_all();
    flush_thread_.join();
  }
  running_.store(false, std::memory_order_release);
  if (!opt_.unix_path.empty()) ::unlink(opt_.unix_path.c_str());
  // Part of the graceful-drain contract: telemetry written after the last
  // in-flight request has finished, so the export reflects the whole run.
  auto& tel = obs::Telemetry::instance();
  if (!opt_.metrics_out.empty() && !tel.write_metrics(opt_.metrics_out))
    util::log_warn(util::strfmt("smartd: cannot write metrics to %s",
                                opt_.metrics_out.c_str()));
  if (!opt_.trace_out.empty() && !tel.write_chrome_trace(opt_.trace_out))
    util::log_warn(util::strfmt("smartd: cannot write trace to %s",
                                opt_.trace_out.c_str()));
  if (profiling_) {
    auto& profiler = prof::Profiler::instance();
    profiler.stop();
    profiling_ = false;
    const std::string base = opt_.profile_dir + "/profile-full";
    if (!profiler.write_folded(base + ".folded") ||
        !profiler.write_speedscope(base + ".speedscope.json", "smartd"))
      util::log_warn(util::strfmt("smartd: cannot write run profile to %s",
                                  opt_.profile_dir.c_str()));
  }
}

ServerStats Server::stats() const {
  ServerStats snap;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snap = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snap.queue_depth = queue_.size();
    snap.in_flight = in_flight_;
  }
  snap.connections = conn_count_.load(std::memory_order_relaxed);
  return snap;
}

void Server::install_signal_handlers(Server* server) {
  g_signal_wake_fd.store(server != nullptr ? server->wake_pipe_[1] : -1,
                         std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = server != nullptr ? on_shutdown_signal : SIG_DFL;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Server::io_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({draining_.load(std::memory_order_relaxed) ? -1
                                                             : listen_fd_,
                   POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      fds.push_back({fd, POLLIN, 0});
      polled.push_back(conn);
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      bool shutdown_byte = false;
      for (;;) {
        const ssize_t n = ::read(wake_pipe_[0], buf, sizeof(buf));
        if (n <= 0) break;
        for (ssize_t i = 0; i < n; ++i)
          if (buf[i] == 'S') shutdown_byte = true;
      }
      if (shutdown_byte ||
          shutdown_requested_.load(std::memory_order_acquire))
        begin_drain();
    }
    if ((fds[1].revents & POLLIN) != 0) accept_pending();
    for (size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[2 + i].revents;
      const auto& conn = polled[i];
      if (conn->closed.load(std::memory_order_acquire) ||
          (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        close_conn(conn->fd);
        continue;
      }
      if ((revents & POLLIN) != 0) read_conn(conn);
    }
    reap_idle();

    if (draining_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.empty() && in_flight_ == 0) break;
    }
  }

  // Drained: release the workers, then drop every connection (closing the
  // sockets tells lingering clients the daemon is gone).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (const auto& [fd, conn] : conns_)
    conn->closed.store(true, std::memory_order_release);
  conns_.clear();
  conn_count_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  util::log_info("smartd: drained");
}

void Server::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  util::log_info("smartd: drain requested; finishing in-flight requests");
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::accept_pending() {
  for (;;) {
    if (listen_fd_ < 0) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error; poll will retry
    }
    // Injected accept failure: the kernel handed us a connection but the
    // daemon "fails" it — the client sees a reset and retries.
    if (util::fault_fires(util::FaultClass::kServeIoFail, "serve.accept")) {
      ::close(fd);
      bump(&ServerStats::io_faults);
      continue;
    }
    if (conns_.size() >= opt_.max_connections) {
      ::close(fd);
      bump(&ServerStats::rejected);
      continue;
    }
    set_nonblocking(fd);
    if (opt_.unix_path.empty()) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    if (opt_.unix_path.empty()) {
      sockaddr_in sa{};
      socklen_t slen = sizeof(sa);
      char ip[INET_ADDRSTRLEN] = "?";
      if (::getpeername(fd, reinterpret_cast<sockaddr*>(&sa), &slen) == 0 &&
          ::inet_ntop(AF_INET, &sa.sin_addr, ip, sizeof(ip)) != nullptr)
        conn->peer = util::strfmt("%s:%d", ip, ntohs(sa.sin_port));
    } else {
      conn->peer = "unix";
    }
    conn->last_active_ms.store(now_ms(), std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_relaxed);
    bump(&ServerStats::accepted);
    obs::Telemetry::instance().counter_add("serve.accepted");
  }
}

void Server::read_conn(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    if (util::fault_fires(util::FaultClass::kServeIoFail, "serve.read")) {
      bump(&ServerStats::io_faults);
      close_conn(conn->fd);
      return;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {  // peer closed
      close_conn(conn->fd);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn->fd);
      return;
    }
    const size_t received = static_cast<size_t>(n);
    conn->rbuf.append(buf, received);
    // Frame-corruption site: flip the last received byte; the checksum in
    // decode_frame must turn this into kBadFrame, never a garbage solve.
    if (util::fault_fires(util::FaultClass::kServeFrameCorrupt,
                          "serve.frame"))
      conn->rbuf[conn->rbuf.size() - 1] =
          static_cast<char>(conn->rbuf[conn->rbuf.size() - 1] ^ 0x5A);
    conn->last_active_ms.store(now_ms(), std::memory_order_relaxed);
    if (received < sizeof(buf)) break;  // drained the socket
  }

  while (!conn->closed.load(std::memory_order_acquire)) {
    Frame frame;
    size_t consumed = 0;
    std::string err;
    bool bad_version = false;
    obs::StopWatch decode_watch;
    const DecodeStatus st =
        decode_frame(conn->rbuf.data(), conn->rbuf.size(), &frame,
                     &consumed, &err, &bad_version);
    const double decode_us = decode_watch.elapsed_ms() * 1000.0;
    if (st == DecodeStatus::kNeedMore) {
      if (conn->rbuf.size() > kHeaderSize + kMaxPayload) {
        bump(&ServerStats::bad_frames);
        send_error(conn, 0, ErrorCode::kBadFrame, "oversized frame", 250.0);
        close_conn(conn->fd);
      }
      return;
    }
    if (st == DecodeStatus::kBad) {
      bump(&ServerStats::bad_frames);
      obs::Telemetry::instance().counter_add("serve.bad_frames");
      send_error(conn, 0,
                 bad_version ? ErrorCode::kUnsupportedVersion
                             : ErrorCode::kBadFrame,
                 err, 250.0);
      close_conn(conn->fd);
      return;
    }
    conn->rbuf.erase(0, consumed);
    dispatch(conn, std::move(frame), decode_us);
  }
}

void Server::dispatch(const std::shared_ptr<Conn>& conn, Frame frame,
                      double decode_us) {
  switch (frame.type) {
    case FrameType::kPing: {
      bump(&ServerStats::pings);
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      pong.trace_id = frame.trace_id;
      send_frame(conn, pong, 250.0);
      return;
    }
    case FrameType::kShutdown: {
      Frame ack;
      ack.type = FrameType::kResult;
      ack.request_id = frame.request_id;
      ack.trace_id = frame.trace_id;
      ack.payload = "{\"draining\":true}";
      send_frame(conn, ack, 250.0);
      begin_drain();
      return;
    }
    // The admin plane answers on the io thread — cheap JSON snapshots
    // must not queue behind solves, and they keep working while the
    // daemon drains (a dying server is exactly when probes matter).
    case FrameType::kStats: {
      bump(&ServerStats::stats_requests);
      Frame reply;
      reply.type = FrameType::kResult;
      reply.request_id = frame.request_id;
      reply.trace_id = frame.trace_id;
      reply.payload = stats_json();
      send_frame(conn, reply, opt_.write_timeout_ms);
      return;
    }
    case FrameType::kHealth: {
      bump(&ServerStats::health_requests);
      Frame reply;
      reply.type = FrameType::kResult;
      reply.request_id = frame.request_id;
      reply.trace_id = frame.trace_id;
      reply.payload = health_json();
      send_frame(conn, reply, 250.0);
      return;
    }
    case FrameType::kSize:
    case FrameType::kAdvise:
    case FrameType::kLint:
    case FrameType::kReport:
      break;
    default:
      // A response-type frame from a client is a protocol violation.
      bump(&ServerStats::bad_frames);
      send_error(conn, frame.request_id, ErrorCode::kBadFrame,
                 util::strfmt("unexpected frame type %s",
                              to_string(frame.type)),
                 250.0, frame.trace_id);
      close_conn(conn->fd);
      return;
  }

  if (draining_.load(std::memory_order_relaxed)) {
    send_error(conn, frame.request_id, ErrorCode::kShuttingDown,
               "daemon is draining; request not started", 250.0,
               frame.trace_id);
    return;
  }
  const uint64_t id = frame.request_id;
  const uint64_t trace_id = frame.trace_id;
  const FrameType op = frame.type;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= opt_.max_queue) {
      shed = true;
    } else {
      WorkItem item;
      item.conn = conn;
      item.enqueued = std::chrono::steady_clock::now();
      item.deadline = util::Deadline::from_ms(frame.deadline_ms);
      item.decode_us = decode_us;
      item.enqueue_ts_us = obs::Telemetry::instance().now_us();
      item.frame = std::move(frame);
      queue_.push_back(std::move(item));
    }
  }
  auto& tel = obs::Telemetry::instance();
  if (shed) {
    bump(&ServerStats::shed);
    tel.counter_add("serve.shed");
    send_error(conn, id, ErrorCode::kOverloaded,
               util::strfmt("queue full (%zu queued)", opt_.max_queue),
               250.0, trace_id);
    // Shed requests never reach a worker; account them here so the
    // access log covers every admitted-or-refused request.
    RequestRecord rec;
    rec.trace_id = trace_id;
    rec.request_id = id;
    rec.peer = conn->peer;
    rec.op = to_string(op);
    rec.status = to_string(ErrorCode::kOverloaded);
    rec.decode_us = decode_us;
    rec.total_us = decode_us;
    rec.unix_ms = unix_ms_now();
    access_log_.append(rec);
    return;
  }
  conn->outstanding.fetch_add(1, std::memory_order_relaxed);
  bump(&ServerStats::requests);
  tel.counter_add("serve.requests");
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    process(std::move(item));
  }
}

void Server::process(WorkItem item) {
  auto& tel = obs::Telemetry::instance();
  const double queue_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - item.enqueued)
          .count();
  const double queue_us = queue_ms * 1000.0;
  tel.hist_record("serve.queue_ms", queue_ms);
  stage_.queue_ms.record(queue_ms);
  stage_.decode_ms.record(item.decode_us / 1000.0);
  // The queue wait happened on no thread — record it as an explicit span
  // (enqueue timestamp + measured duration) so the trace shows the gap
  // between client send and worker pickup under the request's trace id.
  if (tel.enabled() && item.frame.trace_id != 0) {
    obs::SpanEvent ev;
    ev.name = "serve.queue";
    ev.cat = "serve";
    ev.ts_us = item.enqueue_ts_us;
    ev.dur_us = queue_us;
    ev.trace_id = item.frame.trace_id;
    tel.record_span(std::move(ev));
  }

  // Every span below (serve.worker, and the sizer.*/gp.* spans inside the
  // handler) inherits the request's trace id from this thread context.
  obs::ScopedTraceId trace_scope(item.frame.trace_id);

  RequestRecord rec;
  rec.trace_id = item.frame.trace_id;
  rec.request_id = item.frame.request_id;
  rec.peer = item.conn->peer;
  rec.op = to_string(item.frame.type);
  rec.queue_us = queue_us;
  rec.decode_us = item.decode_us;

  const auto finish = [&] {
    rec.total_us = item.decode_us + queue_us + rec.solve_us + rec.encode_us;
    rec.unix_ms = unix_ms_now();
    stage_.total_ms.record(rec.total_us / 1000.0);
    access_log_.append(rec);
    item.conn->outstanding.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(queue_mu_);
    --in_flight_;
  };

  // Client already gone (mid-request disconnect): don't burn a solve.
  if (item.conn->closed.load(std::memory_order_acquire)) {
    bump(&ServerStats::abandoned);
    tel.counter_add("serve.abandoned");
    rec.status = "abandoned";
    finish();
    return;
  }
  // Deadline spent in the queue: typed timeout, no solver time wasted.
  if (item.deadline.expired()) {
    bump(&ServerStats::timeouts);
    tel.counter_add("serve.timeouts");
    send_error(item.conn, item.frame.request_id, ErrorCode::kTimeout,
               "deadline expired before the request started",
               opt_.write_timeout_ms, item.frame.trace_id);
    rec.status = to_string(ErrorCode::kTimeout);
    finish();
    return;
  }
  // Worker-stall site: a bounded hiccup, long enough that concurrent
  // clients pile into the queue and admission control gets exercised.
  if (util::fault_fires(util::FaultClass::kServeWorkerStall,
                        "serve.worker"))
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Deadline propagation: client budget minus queueing delay becomes the
  // solver's deadline (-1 = unbounded).
  const double budget_ms = item.deadline.remaining_ms();
  obs::StopWatch watch;
  HandlerOutcome out;
  {
    obs::Span span("serve.worker", "serve");
    prof::ResourceScope worker_rusage("serve.worker");
    span.arg("queue_ms", queue_ms);
    out = handle_request(ctx_, item.frame.type, item.frame.payload,
                         budget_ms);
  }
  const double solve_ms = watch.elapsed_ms();
  tel.hist_record("serve.request_ms", solve_ms);
  stage_.solve_ms.record(solve_ms);
  rec.solve_us = solve_ms * 1000.0;
  rec.macro = out.macro;
  rec.cache = out.cache;
  rec.rung = out.rung;

  Frame reply;
  reply.request_id = item.frame.request_id;
  reply.trace_id = item.frame.trace_id;
  if (out.status.ok()) {
    reply.type = FrameType::kResult;
    reply.payload = out.payload;
    rec.status = "ok";
    // Server-side stage breakdown, spliced into the result JSON so the
    // client can report where its latency went (see Client::last_call).
    const size_t brace = reply.payload.rfind('}');
    if (brace != std::string::npos)
      reply.payload.insert(
          brace,
          util::strfmt(",\"pulse\":{\"queue_us\":%.1f,\"decode_us\":%.1f,"
                       "\"solve_us\":%.1f}",
                       queue_us, item.decode_us, rec.solve_us));
  } else {
    bump(&ServerStats::errors);
    tel.counter_add("serve.errors");
    reply.type = FrameType::kError;
    reply.error = error_from(out.status);
    reply.payload = util::strfmt(
        "{\"error\":\"%s\",\"detail\":\"%s\"}", to_string(reply.error),
        json_escape(out.status.detail).c_str());
    bump_code(reply.error);
    rec.status = to_string(reply.error);
  }
  obs::StopWatch encode_watch;
  if (send_frame(item.conn, reply, opt_.write_timeout_ms)) {
    bump(&ServerStats::responses);
    tel.counter_add("serve.responses");
  } else {
    bump(&ServerStats::abandoned);
    tel.counter_add("serve.abandoned");
    rec.status = "abandoned";
  }
  const double encode_ms = encode_watch.elapsed_ms();
  stage_.encode_ms.record(encode_ms);
  rec.encode_us = encode_ms * 1000.0;
  busy_us_.fetch_add(
      static_cast<uint64_t>((solve_ms + encode_ms) * 1000.0),
      std::memory_order_relaxed);
  item.conn->last_active_ms.store(now_ms(), std::memory_order_relaxed);

  // Slow-request capture: record + original request + solve diagnostics,
  // spooled crash-safely for offline analysis.
  const double total_ms =
      (item.decode_us + queue_us + rec.solve_us + rec.encode_us) / 1000.0;
  if (spool_.enabled() && total_ms > spool_.threshold_ms()) {
    rec.total_us = total_ms * 1000.0;
    rec.unix_ms = unix_ms_now();
    if (spool_.capture(rec, item.frame.payload, out.diag)) {
      bump(&ServerStats::slow_captured);
      tel.counter_add("serve.slow_captured");
    }
    // SMART-Prof join: snapshot this slow request's CPU samples (matched
    // by trace id) next to its spool entry, so "why was it slow" comes
    // with a flamegraph, not just a record.
    if (profiling_ && item.frame.trace_id != 0) {
      auto& profiler = prof::Profiler::instance();
      profiler.drain();
      prof::FoldedOptions fopt;
      fopt.trace_filter = item.frame.trace_id;
      const std::string folded = profiler.folded(fopt);
      if (!folded.empty()) {
        const std::string path = util::strfmt(
            "%s/profile-%016llx.folded", opt_.profile_dir.c_str(),
            static_cast<unsigned long long>(item.frame.trace_id));
        FILE* f = std::fopen(path.c_str(), "w");
        if (f != nullptr) {
          std::fputs(folded.c_str(), f);
          std::fclose(f);
          tel.counter_add("serve.profile_captured");
        }
      }
    }
  }
  finish();
}

bool Server::send_frame(const std::shared_ptr<Conn>& conn,
                        const Frame& frame, double timeout_ms) {
  const std::string bytes = encode_frame(frame);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return false;
  const auto give_up = [&] {
    // Mark dead and half-close so the io thread's poll sees HUP and
    // removes the connection; the fd itself closes with the last ref.
    conn->closed.store(true, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    return false;
  };
  obs::StopWatch watch;
  size_t off = 0;
  while (off < bytes.size()) {
    if (util::fault_fires(util::FaultClass::kServeIoFail, "serve.write")) {
      bump(&ServerStats::io_faults);
      return give_up();
    }
    const ssize_t n = ::send(conn->fd, bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow-client protection: wait for writability only within the
      // response's write budget, then disconnect.
      const double left = timeout_ms - watch.elapsed_ms();
      if (left <= 0.0) return give_up();
      pollfd p{conn->fd, POLLOUT, 0};
      ::poll(&p, 1, static_cast<int>(std::min(left, 100.0)) + 1);
      continue;
    }
    return give_up();
  }
  return true;
}

void Server::send_error(const std::shared_ptr<Conn>& conn,
                        uint64_t request_id, ErrorCode code,
                        const std::string& detail, double timeout_ms,
                        uint64_t trace_id) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.error = code;
  frame.request_id = request_id;
  frame.trace_id = trace_id;
  frame.payload =
      util::strfmt("{\"error\":\"%s\",\"detail\":\"%s\"}", to_string(code),
                   json_escape(detail).c_str());
  bump_code(code);
  send_frame(conn, frame, timeout_ms);
}

void Server::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second->closed.store(true, std::memory_order_release);
  conns_.erase(it);  // fd closes when the last worker drops its reference
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
}

void Server::reap_idle() {
  if (opt_.idle_timeout_ms <= 0.0) return;
  const int64_t now = now_ms();
  std::vector<int> victims;
  for (const auto& [fd, conn] : conns_) {
    if (conn->outstanding.load(std::memory_order_relaxed) > 0) continue;
    const int64_t idle =
        now - conn->last_active_ms.load(std::memory_order_relaxed);
    if (static_cast<double>(idle) > opt_.idle_timeout_ms)
      victims.push_back(fd);
  }
  for (const int fd : victims) {
    close_conn(fd);
    bump(&ServerStats::reaped_idle);
    obs::Telemetry::instance().counter_add("serve.reaped_idle");
  }
}

std::string Server::stats_json() const {
  const ServerStats s = stats();
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  const auto u64 = [](uint64_t v) {
    return util::strfmt("%llu", static_cast<unsigned long long>(v));
  };

  std::string out = "{";
  out += util::strfmt("\"uptime_s\":%.3f,", uptime_s);
  out += "\"endpoint\":\"" + json_escape(endpoint_) + "\",";
  out += util::strfmt("\"protocol_version\":%u,", kProtocolVersion);
  out += util::strfmt("\"draining\":%s,",
                      draining_.load(std::memory_order_relaxed) ? "true"
                                                                : "false");
  out += "\"counters\":{";
  out += "\"accepted\":" + u64(s.accepted) + ",";
  out += "\"rejected\":" + u64(s.rejected) + ",";
  out += "\"requests\":" + u64(s.requests) + ",";
  out += "\"responses\":" + u64(s.responses) + ",";
  out += "\"shed\":" + u64(s.shed) + ",";
  out += "\"bad_frames\":" + u64(s.bad_frames) + ",";
  out += "\"timeouts\":" + u64(s.timeouts) + ",";
  out += "\"errors\":" + u64(s.errors) + ",";
  out += "\"abandoned\":" + u64(s.abandoned) + ",";
  out += "\"reaped_idle\":" + u64(s.reaped_idle) + ",";
  out += "\"io_faults\":" + u64(s.io_faults) + ",";
  out += "\"pings\":" + u64(s.pings) + ",";
  out += "\"stats_requests\":" + u64(s.stats_requests) + ",";
  out += "\"health_requests\":" + u64(s.health_requests) + ",";
  out += "\"slow_captured\":" + u64(s.slow_captured) + "},";
  out += "\"gauges\":{";
  out += "\"queue_depth\":" + u64(s.queue_depth) + ",";
  out += "\"in_flight\":" + u64(s.in_flight) + ",";
  out += "\"connections\":" + u64(s.connections) + "},";

  // Worker utilization: busy worker-µs over elapsed worker-µs.
  const uint64_t busy = busy_us_.load(std::memory_order_relaxed);
  const double capacity_us =
      uptime_s * 1e6 * std::max(1, worker_count_);
  out += util::strfmt(
      "\"utilization\":{\"workers\":%d,\"busy_us\":%llu,"
      "\"busy_ratio\":%.4f},",
      worker_count_, static_cast<unsigned long long>(busy),
      capacity_us > 0.0 ? static_cast<double>(busy) / capacity_us : 0.0);

  out += "\"stages\":{";
  out += "\"queue_ms\":" + hist_json(stage_.queue_ms) + ",";
  out += "\"decode_ms\":" + hist_json(stage_.decode_ms) + ",";
  out += "\"solve_ms\":" + hist_json(stage_.solve_ms) + ",";
  out += "\"encode_ms\":" + hist_json(stage_.encode_ms) + ",";
  out += "\"total_ms\":" + hist_json(stage_.total_ms) + "},";

  if (cache_ != nullptr) {
    const CacheStats cs = cache_->stats();
    out += util::strfmt(
        "\"cache\":{\"size\":%zu,\"hits\":%llu,\"near_hits\":%llu,"
        "\"misses\":%llu,\"insertions\":%llu,\"evictions\":%llu,"
        "\"poisoned\":%llu},",
        cache_->size(), static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.near_hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.insertions),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.poisoned));
  } else {
    out += "\"cache\":null,";
  }

  out += "\"errors_by_code\":{";
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    bool first = true;
    for (const auto& [code, count] : errors_by_code_) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += to_string(static_cast<ErrorCode>(code));
      out += "\":" + u64(count);
    }
  }
  out += "},";

  out += util::strfmt("\"slow\":{\"threshold_ms\":%.1f,\"captured\":%llu},",
                      spool_.threshold_ms(),
                      static_cast<unsigned long long>(spool_.captured()));
  if (profiling_) {
    auto& profiler = prof::Profiler::instance();
    profiler.drain();
    out += util::strfmt(
        "\"profile\":{\"hz\":%.1f,\"samples\":%llu,\"dropped\":%llu,"
        "\"threads\":%llu},",
        profiler.hz(),
        static_cast<unsigned long long>(profiler.sample_count()),
        static_cast<unsigned long long>(profiler.dropped()),
        static_cast<unsigned long long>(prof::registered_thread_count()));
  }
  out += "\"requests_total\":" + u64(access_log_.total()) + ",";
  out += "\"recent\":" + access_log_.recent_json();
  out += "}";
  return out;
}

std::string Server::health_json() const {
  const ServerStats s = stats();
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  const bool draining = draining_.load(std::memory_order_relaxed);
  return util::strfmt(
      "{\"status\":\"%s\",\"uptime_s\":%.3f,\"endpoint\":\"%s\","
      "\"protocol_version\":%u,\"workers\":%d,\"connections\":%llu,"
      "\"queue_depth\":%llu,\"in_flight\":%llu}",
      draining ? "draining" : "ok", uptime_s,
      json_escape(endpoint_).c_str(), kProtocolVersion, worker_count_,
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.in_flight));
}

}  // namespace smart::serve

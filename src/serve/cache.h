#pragma once

/// \file cache.h
/// Content-addressed result cache of the sizing daemon. Keys are
/// (macro bucket, constraint fingerprint): the bucket pins everything that
/// must match exactly (macro identity, cost metric), the fingerprint the
/// quantized continuous constraints. Two lookup modes:
///
///   * exact  — same bucket and fingerprint: the stored response is served
///              without touching the solver.
///   * near   — same bucket, different constraints within a relative
///              L-infinity distance: the stored GP point seeds
///              SizerOptions::warm_start, so the new solve skips phase I
///              and most of the barrier schedule (measurably fewer Newton
///              iterations — the cache's second currency).
///
/// Every entry carries an FNV checksum over its numeric content; lookups
/// verify it, so a poisoned entry (util::FaultClass::kServeCachePoison, or
/// a real memory corruption) is detected, dropped, and counted instead of
/// being served. Eviction is LRU at a fixed capacity. All methods are
/// thread-safe — the worker pool hits the cache concurrently.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace smart::serve {

/// The sized answer a cache entry stores: enough to render a response
/// without re-solving, plus the GP point that warm-starts neighbors.
struct CachedResult {
  std::vector<double> solution_x;  ///< GP point (empty for baseline rung)
  std::vector<double> widths;      ///< accepted sizing (label order)
  double measured_delay_ps = 0.0;
  double measured_precharge_ps = 0.0;
  double total_width_um = 0.0;
  int newton_iterations = 0;
  int respec_iterations = 0;
  std::string rung;  ///< "gp" | "gp_relaxed" | "baseline"
};

struct CacheStats {
  uint64_t hits = 0;        ///< exact hits served without solving
  uint64_t near_hits = 0;   ///< neighbor found for a warm start
  uint64_t misses = 0;      ///< exact lookups that found nothing usable
  uint64_t insertions = 0;
  uint64_t evictions = 0;   ///< LRU evictions at capacity
  uint64_t poisoned = 0;    ///< entries dropped on checksum mismatch
};

class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Exact lookup; counts a hit or miss. Returns false (and counts
  /// `poisoned`) when the matching entry failed its checksum.
  bool lookup_exact(const std::string& bucket, uint64_t fingerprint,
                    CachedResult* out);

  /// Nearest stored neighbor in `bucket` by relative L-infinity distance
  /// over the constraint params, within `max_rel_dist`. Only entries with
  /// a non-empty GP point qualify (baseline results cannot warm-start).
  /// Does not count hits/misses — it is a best-effort accelerator probed
  /// after an exact miss.
  bool lookup_near(const std::string& bucket,
                   const std::vector<double>& params, double max_rel_dist,
                   CachedResult* out);

  void insert(const std::string& bucket, uint64_t fingerprint,
              std::vector<double> params, CachedResult result);

  CacheStats stats() const;
  size_t size() const;
  void clear();

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::vector<double> params;
    CachedResult result;
    uint64_t checksum = 0;
    uint64_t last_used = 0;
  };

  static uint64_t checksum_of(const CachedResult& r);
  /// Relative L-infinity distance; infinity on dimension mismatch.
  static double rel_distance(const std::vector<double>& a,
                             const std::vector<double>& b);
  void evict_locked();

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Entry>> buckets_;
  size_t capacity_;
  size_t entries_ = 0;
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace smart::serve

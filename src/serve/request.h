#pragma once

/// \file request.h
/// JSON request payload of the serving protocol, plus the content-address
/// derivation the result cache keys on. One Request struct covers every
/// solving frame type (size/advise/lint/report) — fields a given handler
/// does not use are simply ignored.

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace smart::serve {

struct Request {
  std::string type;      ///< macro type ("mux", "adder", ...)
  std::string topology;  ///< required for size/lint/report; advise ranks all
  int n = 4;
  double bits = -1.0;  ///< < 0 = absent
  double m = -1.0;     ///< < 0 = absent
  double load_ff = 15.0;
  double delay_ps = -1.0;      ///< <= 0 = derive from the hand baseline
  double precharge_ps = -1.0;  ///< < 0 = same as delay
  double slope_ps = -1.0;      ///< < 0 = default slope budget
  std::string cost = "width";  ///< width|power|clock
  int top_k = 5;               ///< report: paths in the scope view
  bool use_cache = true;       ///< size: allow cache hits / warm starts
};

/// Parses a request payload. Unknown keys are rejected (a typo must not
/// silently size with defaults); missing keys keep their defaults.
util::Status parse_request(const std::string& payload, Request* out);

/// Client-side serializer; parse_request(request_json(r)) round-trips.
std::string request_json(const Request& r);

core::MacroSpec to_spec(const Request& r);

/// Cache bucket: everything that must match *exactly* for two requests to
/// share solutions — the macro identity and the cost metric. Two requests
/// in the same bucket generate the same netlist and variable table, so GP
/// points transfer between them (the warm-start precondition).
std::string macro_bucket(const Request& r);

/// The continuous constraint parameters, in one documented stable order:
/// {load_ff, delay_ps, precharge_ps, slope_ps}. Near-neighbor warm-start
/// distance is relative L-infinity over this vector.
std::vector<double> constraint_params(const Request& r);

/// Content address of the full request: FNV-1a over the bucket and the
/// constraint params quantized to 1e-6 (requests that agree to six decimals
/// fingerprint identically, so float formatting noise cannot split keys).
uint64_t request_fingerprint(const Request& r);

}  // namespace smart::serve

#include "serve/protocol.h"

#include <cstring>

#include "util/hash.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

void put_u16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint16_t get_u16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t get_u32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t get_u64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Checksum over the header bytes that precede the checksum field, then
/// the payload. Both sides must compute it over identical bytes; the
/// summed header length is version-dependent (32 in v1, 40 in v2).
uint64_t frame_checksum(const char* header, size_t summed_len,
                        const char* payload, size_t payload_len) {
  util::Fnv1a f;
  f.mix_bytes(header, summed_len);
  f.mix_bytes(payload, payload_len);
  return f.h;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kPing: return "ping";
    case FrameType::kSize: return "size";
    case FrameType::kAdvise: return "advise";
    case FrameType::kLint: return "lint";
    case FrameType::kReport: return "report";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kStats: return "stats";
    case FrameType::kHealth: return "health";
    case FrameType::kPong: return "pong";
    case FrameType::kResult: return "result";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

const char* to_string(ErrorCode e) {
  switch (e) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidInput: return "invalid_input";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kMaxIter: return "max_iter";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNumericalError: return "numerical_error";
    case ErrorCode::kFaultInjected: return "fault_injected";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

ErrorCode error_from(const util::Status& status) {
  switch (status.reason) {
    case util::FailureReason::kNone: return ErrorCode::kOk;
    case util::FailureReason::kInvalidInput: return ErrorCode::kInvalidInput;
    case util::FailureReason::kInfeasible: return ErrorCode::kInfeasible;
    case util::FailureReason::kMaxIter: return ErrorCode::kMaxIter;
    case util::FailureReason::kTimeout: return ErrorCode::kTimeout;
    case util::FailureReason::kNumericalError:
      return ErrorCode::kNumericalError;
    case util::FailureReason::kFaultInjected:
      return ErrorCode::kFaultInjected;
    case util::FailureReason::kInternal: return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

util::FailureReason reason_from(ErrorCode e) {
  switch (e) {
    case ErrorCode::kOk: return util::FailureReason::kNone;
    case ErrorCode::kInvalidInput: return util::FailureReason::kInvalidInput;
    case ErrorCode::kInfeasible: return util::FailureReason::kInfeasible;
    case ErrorCode::kMaxIter: return util::FailureReason::kMaxIter;
    case ErrorCode::kTimeout: return util::FailureReason::kTimeout;
    case ErrorCode::kNumericalError:
      return util::FailureReason::kNumericalError;
    case ErrorCode::kFaultInjected:
      return util::FailureReason::kFaultInjected;
    case ErrorCode::kInternal: return util::FailureReason::kInternal;
    case ErrorCode::kBadFrame:
    case ErrorCode::kUnsupportedVersion:
      return util::FailureReason::kInvalidInput;
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
      return util::FailureReason::kInternal;
  }
  return util::FailureReason::kInternal;
}

namespace {

/// Shared header fields [0,32) common to both versions, then the
/// version-specific tail: v1 appends the checksum directly; v2 appends
/// the trace id first.
std::string encode_with_version(const Frame& frame, uint16_t version) {
  const size_t header = version >= 2 ? kHeaderSize : kHeaderSizeV1;
  std::string out;
  out.reserve(header + frame.payload.size());
  put_u32(out, kMagic);
  put_u16(out, version);
  put_u16(out, static_cast<uint16_t>(frame.type));
  put_u16(out, static_cast<uint16_t>(frame.error));
  put_u16(out, 0);  // flags (reserved)
  put_u32(out, static_cast<uint32_t>(frame.payload.size()));
  put_u64(out, frame.request_id);
  uint64_t deadline_bits = 0;
  std::memcpy(&deadline_bits, &frame.deadline_ms, sizeof(deadline_bits));
  put_u64(out, deadline_bits);
  if (version >= 2) put_u64(out, frame.trace_id);
  const uint64_t sum = frame_checksum(out.data(), out.size(),
                                      frame.payload.data(),
                                      frame.payload.size());
  put_u64(out, sum);
  out.append(frame.payload);
  return out;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  return encode_with_version(frame, kProtocolVersion);
}

std::string encode_frame_v1(const Frame& frame) {
  return encode_with_version(frame, 1);
}

DecodeStatus decode_frame(const char* data, size_t len, Frame* out,
                          size_t* consumed, std::string* err,
                          bool* bad_version) {
  if (bad_version != nullptr) *bad_version = false;
  // The first 16 bytes are layout-identical in every version; buffer at
  // least that much before judging anything so a split read never turns
  // into a spurious kBad.
  if (len < kHeaderPrefix) return DecodeStatus::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  if (get_u32(p) != kMagic) {
    if (err != nullptr) *err = "bad magic";
    return DecodeStatus::kBad;
  }
  const uint16_t version = get_u16(p + 4);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    if (err != nullptr)
      *err = util::strfmt("unsupported protocol version %u (want %u..%u)",
                          version, kMinProtocolVersion, kProtocolVersion);
    if (bad_version != nullptr) *bad_version = true;
    return DecodeStatus::kBad;
  }
  const uint16_t flags = get_u16(p + 10);
  const uint32_t payload_len = get_u32(p + 12);
  if (flags != 0 || payload_len > kMaxPayload) {
    if (err != nullptr)
      *err = util::strfmt("bad frame header (flags=%u, payload_len=%u)",
                          flags, payload_len);
    return DecodeStatus::kBad;
  }
  const size_t header = version >= 2 ? kHeaderSize : kHeaderSizeV1;
  if (len < header + payload_len) return DecodeStatus::kNeedMore;

  // The checksum sits in the last 8 header bytes, summed over everything
  // before it plus the payload.
  const uint64_t stated = get_u64(p + header - 8);
  const uint64_t actual =
      frame_checksum(data, header - 8, data + header, payload_len);
  if (stated != actual) {
    if (err != nullptr) *err = "frame checksum mismatch";
    return DecodeStatus::kBad;
  }

  const uint16_t raw_type = get_u16(p + 6);
  switch (static_cast<FrameType>(raw_type)) {
    case FrameType::kPing:
    case FrameType::kSize:
    case FrameType::kAdvise:
    case FrameType::kLint:
    case FrameType::kReport:
    case FrameType::kShutdown:
    case FrameType::kStats:
    case FrameType::kHealth:
    case FrameType::kPong:
    case FrameType::kResult:
    case FrameType::kError:
      break;
    default:
      if (err != nullptr)
        *err = util::strfmt("unknown frame type %u", raw_type);
      return DecodeStatus::kBad;
  }

  out->type = static_cast<FrameType>(raw_type);
  out->error = static_cast<ErrorCode>(get_u16(p + 8));
  out->request_id = get_u64(p + 16);
  const uint64_t deadline_bits = get_u64(p + 24);
  std::memcpy(&out->deadline_ms, &deadline_bits, sizeof(out->deadline_ms));
  out->trace_id = version >= 2 ? get_u64(p + 32) : 0;
  out->payload.assign(data + header, payload_len);
  *consumed = header + payload_len;
  return DecodeStatus::kOk;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::strfmt("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace smart::serve

#include "serve/cache.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/fault.h"
#include "util/hash.h"

namespace smart::serve {

uint64_t ResultCache::checksum_of(const CachedResult& r) {
  util::Fnv1a f;
  f.mix(static_cast<uint64_t>(r.solution_x.size()));
  for (const double v : r.solution_x) f.mix(v);
  f.mix(static_cast<uint64_t>(r.widths.size()));
  for (const double v : r.widths) f.mix(v);
  f.mix(r.measured_delay_ps);
  f.mix(r.measured_precharge_ps);
  f.mix(r.total_width_um);
  f.mix(r.newton_iterations);
  f.mix(r.respec_iterations);
  f.mix(std::string_view(r.rung));
  return f.h;
}

double ResultCache::rel_distance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::fabs(a[i]), std::fabs(b[i]), 1.0});
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

bool ResultCache::lookup_exact(const std::string& bucket,
                               uint64_t fingerprint, CachedResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(bucket);
  if (it != buckets_.end()) {
    auto& entries = it->second;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].fingerprint != fingerprint) continue;
      CachedResult copy = entries[i].result;
      // Poison injection site: corrupt the copy the way a bit flip in the
      // stored entry would, then let the checksum catch it.
      if (!copy.solution_x.empty())
        copy.solution_x[0] = util::fault_corrupt(
            util::FaultClass::kServeCachePoison, "serve.cache.lookup",
            copy.solution_x[0]);
      else if (!copy.widths.empty())
        copy.widths[0] = util::fault_corrupt(
            util::FaultClass::kServeCachePoison, "serve.cache.lookup",
            copy.widths[0]);
      if (checksum_of(copy) != entries[i].checksum) {
        entries.erase(entries.begin() + static_cast<long>(i));
        --entries_;
        ++stats_.poisoned;
        ++stats_.misses;
        return false;
      }
      entries[i].last_used = ++tick_;
      *out = std::move(copy);
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

bool ResultCache::lookup_near(const std::string& bucket,
                              const std::vector<double>& params,
                              double max_rel_dist, CachedResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return false;
  auto& entries = it->second;
  size_t best = entries.size();
  double best_dist = max_rel_dist;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].result.solution_x.empty()) continue;
    const double d = rel_distance(entries[i].params, params);
    if (d <= best_dist) {
      best = i;
      best_dist = d;
    }
  }
  if (best == entries.size()) return false;
  CachedResult copy = entries[best].result;
  copy.solution_x[0] = util::fault_corrupt(
      util::FaultClass::kServeCachePoison, "serve.cache.lookup",
      copy.solution_x[0]);
  if (checksum_of(copy) != entries[best].checksum) {
    entries.erase(entries.begin() + static_cast<long>(best));
    --entries_;
    ++stats_.poisoned;
    return false;
  }
  entries[best].last_used = ++tick_;
  *out = std::move(copy);
  ++stats_.near_hits;
  return true;
}

void ResultCache::insert(const std::string& bucket, uint64_t fingerprint,
                         std::vector<double> params, CachedResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.params = std::move(params);
  entry.checksum = checksum_of(result);
  entry.result = std::move(result);
  entry.last_used = ++tick_;
  auto& entries = buckets_[bucket];
  for (Entry& existing : entries) {
    if (existing.fingerprint == fingerprint) {
      existing = std::move(entry);  // refresh in place, no growth
      return;
    }
  }
  entries.push_back(std::move(entry));
  ++entries_;
  ++stats_.insertions;
  if (entries_ > capacity_) evict_locked();
}

void ResultCache::evict_locked() {
  // Linear LRU scan: capacities are small (hundreds) and eviction is rare
  // relative to lookups, so an index structure would not pay for itself.
  auto victim_bucket = buckets_.end();
  size_t victim_idx = 0;
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
    for (size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].last_used < oldest) {
        oldest = it->second[i].last_used;
        victim_bucket = it;
        victim_idx = i;
      }
    }
  }
  if (victim_bucket == buckets_.end()) return;
  victim_bucket->second.erase(victim_bucket->second.begin() +
                              static_cast<long>(victim_idx));
  if (victim_bucket->second.empty()) buckets_.erase(victim_bucket);
  --entries_;
  ++stats_.evictions;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  entries_ = 0;
}

}  // namespace smart::serve

#include "serve/request.h"

#include <cmath>

#include "serve/protocol.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/strfmt.h"

namespace smart::serve {

namespace {

bool read_number(const util::JsonValue& v, double* out) {
  if (v.kind != util::JsonValue::Kind::kNumber) return false;
  *out = v.number;
  return true;
}

}  // namespace

util::Status parse_request(const std::string& payload, Request* out) {
  util::JsonValue doc;
  if (!util::json_parse(payload, &doc) ||
      doc.kind != util::JsonValue::Kind::kObject)
    return util::Status::Fail(util::FailureReason::kInvalidInput,
                              "request payload is not a JSON object");
  Request r;
  for (const auto& [key, value] : doc.object) {
    if (key == "type" || key == "topology" || key == "cost") {
      if (value.kind != util::JsonValue::Kind::kString)
        return util::Status::Fail(
            util::FailureReason::kInvalidInput,
            util::strfmt("request key '%s' must be a string", key.c_str()));
      if (key == "type") r.type = value.str;
      else if (key == "topology") r.topology = value.str;
      else r.cost = value.str;
    } else if (key == "use_cache") {
      if (value.kind != util::JsonValue::Kind::kBool)
        return util::Status::Fail(util::FailureReason::kInvalidInput,
                                  "request key 'use_cache' must be a bool");
      r.use_cache = value.boolean;
    } else if (key == "n" || key == "top_k") {
      double num = 0.0;
      if (!read_number(value, &num) || num < 1 ||
          num != std::floor(num) || num > 1e6)
        return util::Status::Fail(
            util::FailureReason::kInvalidInput,
            util::strfmt("request key '%s' must be a positive integer",
                         key.c_str()));
      if (key == "n") r.n = static_cast<int>(num);
      else r.top_k = static_cast<int>(num);
    } else if (key == "bits" || key == "m" || key == "load_ff" ||
               key == "delay_ps" || key == "precharge_ps" ||
               key == "slope_ps") {
      double num = 0.0;
      if (!read_number(value, &num) || !std::isfinite(num))
        return util::Status::Fail(
            util::FailureReason::kInvalidInput,
            util::strfmt("request key '%s' must be a finite number",
                         key.c_str()));
      if (key == "bits") r.bits = num;
      else if (key == "m") r.m = num;
      else if (key == "load_ff") r.load_ff = num;
      else if (key == "delay_ps") r.delay_ps = num;
      else if (key == "precharge_ps") r.precharge_ps = num;
      else r.slope_ps = num;
    } else {
      return util::Status::Fail(
          util::FailureReason::kInvalidInput,
          util::strfmt("unknown request key '%s'", key.c_str()));
    }
  }
  if (r.type.empty())
    return util::Status::Fail(util::FailureReason::kInvalidInput,
                              "request is missing 'type'");
  if (r.cost != "width" && r.cost != "power" && r.cost != "clock")
    return util::Status::Fail(
        util::FailureReason::kInvalidInput,
        util::strfmt("unknown cost metric '%s' (want width|power|clock)",
                     r.cost.c_str()));
  if (r.load_ff <= 0.0)
    return util::Status::Fail(util::FailureReason::kInvalidInput,
                              "'load_ff' must be positive");
  *out = r;
  return util::Status::Ok();
}

std::string request_json(const Request& r) {
  std::string out = "{";
  out += util::strfmt("\"type\":\"%s\"", json_escape(r.type).c_str());
  if (!r.topology.empty())
    out += util::strfmt(",\"topology\":\"%s\"",
                        json_escape(r.topology).c_str());
  out += util::strfmt(",\"n\":%d", r.n);
  if (r.bits >= 0.0) out += util::strfmt(",\"bits\":%.17g", r.bits);
  if (r.m >= 0.0) out += util::strfmt(",\"m\":%.17g", r.m);
  out += util::strfmt(",\"load_ff\":%.17g", r.load_ff);
  if (r.delay_ps > 0.0) out += util::strfmt(",\"delay_ps\":%.17g", r.delay_ps);
  if (r.precharge_ps >= 0.0)
    out += util::strfmt(",\"precharge_ps\":%.17g", r.precharge_ps);
  if (r.slope_ps >= 0.0)
    out += util::strfmt(",\"slope_ps\":%.17g", r.slope_ps);
  out += util::strfmt(",\"cost\":\"%s\"", json_escape(r.cost).c_str());
  out += util::strfmt(",\"top_k\":%d", r.top_k);
  if (!r.use_cache) out += ",\"use_cache\":false";
  out += "}";
  return out;
}

core::MacroSpec to_spec(const Request& r) {
  core::MacroSpec spec;
  spec.type = r.type;
  spec.n = r.n;
  if (r.bits >= 0.0) spec.params["bits"] = r.bits;
  if (r.m >= 0.0) spec.params["m"] = r.m;
  spec.load_ff = r.load_ff;
  if (r.slope_ps >= 0.0) spec.input_slope_ps = r.slope_ps;
  return spec;
}

std::string macro_bucket(const Request& r) {
  std::string bucket =
      util::strfmt("%s/%s/n%d", r.type.c_str(), r.topology.c_str(), r.n);
  if (r.bits >= 0.0) bucket += util::strfmt("/b%g", r.bits);
  if (r.m >= 0.0) bucket += util::strfmt("/m%g", r.m);
  bucket += "/" + r.cost;
  return bucket;
}

std::vector<double> constraint_params(const Request& r) {
  return {r.load_ff, r.delay_ps, r.precharge_ps, r.slope_ps};
}

uint64_t request_fingerprint(const Request& r) {
  util::Fnv1a f;
  f.mix(std::string_view(macro_bucket(r)));
  for (const double v : constraint_params(r))
    f.mix(static_cast<int64_t>(std::llround(v * 1e6)));
  return f.h;
}

}  // namespace smart::serve

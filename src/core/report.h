#pragma once

/// \file report.h
/// Designer-facing text report for a sized macro: per-label widths with
/// device counts, timing/power summary and the optimization statistics —
/// the "comparison result" a SMART user reviews before accepting a
/// solution (paper Fig 1).

#include <string>

#include "core/sizer.h"
#include "power/power.h"

namespace smart::core {

/// Renders a multi-line report of a sizing result for a macro.
std::string describe_solution(const netlist::Netlist& nl,
                              const SizerResult& result,
                              const tech::Tech& tech);

}  // namespace smart::core

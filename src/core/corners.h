#pragma once

/// \file corners.h
/// Process-corner verification of a sized macro. High-performance teams
/// size at the slow corner and verify the result everywhere: a design that
/// only meets timing at typical silicon does not ship. The sizer itself is
/// corner-agnostic — construct it with `tech.at_corner(Corner::kSlow)` and
/// a library calibrated for that corner; this helper then measures the
/// resulting sizing across all three corners.

#include "core/sizer.h"
#include "tech/tech.h"

namespace smart::core {

/// Reference-timer measurements of one sizing at one corner.
struct CornerMeasurement {
  tech::Corner corner = tech::Corner::kTypical;
  double delay_ps = 0.0;
  double precharge_ps = 0.0;
  double max_slope_ps = 0.0;
};

struct CornerSweep {
  CornerMeasurement typical;
  CornerMeasurement fast;
  CornerMeasurement slow;

  /// Worst (slowest) delay across the sweep — always the slow corner for a
  /// monotone technology shift, reported explicitly for checking.
  double worst_delay_ps() const;
  /// True when every corner meets the deadline (and precharge budget).
  bool meets(double delay_spec_ps, double precharge_spec_ps = -1.0) const;
};

/// Measures a sizing at typical / fast / slow corners of a base technology.
CornerSweep measure_corners(const netlist::Netlist& nl,
                            const netlist::Sizing& sizing,
                            const tech::Tech& base);

}  // namespace smart::core

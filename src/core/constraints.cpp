#include "core/constraints.h"

#include <cstring>
#include <optional>
#include <unordered_map>

#include "obs/obs.h"
#include "par/par.h"
#include "util/check.h"
#include "util/strfmt.h"

namespace smart::core {

using netlist::Netlist;
using posy::Monomial;
using posy::PosyAccum;
using posy::Posynomial;

posy::Posynomial cost_posy(const Netlist& nl, CostMetric cost,
                           const models::LabelVarMap& labels,
                           const power::PowerOptions& activity,
                           const tech::Tech& tech) {
  PosyAccum obj;
  switch (cost) {
    case CostMetric::kTotalWidth: {
      for (size_t c = 0; c < nl.comp_count(); ++c) {
        for (const auto& ref :
             nl.all_device_widths(static_cast<netlist::CompId>(c))) {
          Monomial m = labels.at(static_cast<size_t>(ref.label));
          m *= ref.scale;
          obj.add(m);
        }
      }
      break;
    }
    case CostMetric::kPower: {
      const auto act = power::net_activities(nl, activity);
      const auto caps = models::net_cap_posy_all(nl, labels, tech);
      for (size_t n = 0; n < nl.net_count(); ++n)
        obj.add(caps[n] * act[n]);
      break;
    }
    case CostMetric::kClockLoad: {
      for (size_t n = 0; n < nl.net_count(); ++n) {
        if (nl.net(static_cast<netlist::NetId>(n)).kind !=
            netlist::NetKind::kClock)
          continue;
        for (size_t c = 0; c < nl.comp_count(); ++c) {
          for (const auto& ref : nl.gate_width_on_net(
                   static_cast<netlist::CompId>(c),
                   static_cast<netlist::NetId>(n))) {
            Monomial m = labels.at(static_cast<size_t>(ref.label));
            m *= ref.scale;
            obj.add(m);
          }
        }
      }
      // Clock load alone can leave data devices unconstrained from above;
      // a small width term keeps the objective bounded and realistic.
      Posynomial width = cost_posy(nl, CostMetric::kTotalWidth, labels,
                                   activity, tech);
      obj.add(width * 0.01);
      break;
    }
  }
  Posynomial out = obj.take();
  SMART_CHECK(!out.is_zero(), "cost objective is zero — empty netlist?");
  return out;
}

GeneratedProblem generate_problem(const Netlist& nl,
                                  const ConstraintOptions& opt,
                                  const models::ModelLibrary& lib,
                                  const tech::Tech& tech) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  SMART_CHECK(opt.delay_spec_ps > 0.0, "delay spec must be positive");

  GeneratedProblem gen;
  gen.built_options = opt;
  // The deadline is a per-call borrow; the stored options must not keep a
  // pointer that outlives the caller's Deadline.
  gen.built_options.deadline = nullptr;
  gen.vars = std::make_unique<posy::VarTable>();
  gen.labels = models::make_label_vars(nl, *gen.vars);

  gen.objective = cost_posy(nl, opt.cost, gen.labels, opt.activity, tech);

  // Net capacitances are shared across many arc models; precompute them all
  // (one scatter pass + parallel build) instead of the former lazy per-net
  // cache, which was both O(nets * comps) and unsafe to share across the
  // parallel stages below.
  const std::vector<Posynomial> caps = [&] {
    obs::Span caps_span("core.congen.net_caps");
    return models::net_cap_posy_all(nl, gen.labels, tech);
  }();
  auto net_cap = [&](netlist::NetId n) -> const Posynomial& {
    return caps[static_cast<size_t>(n)];
  };

  const Posynomial slope_budget(opt.slope_budget_ps);

  // ---- timing constraint templates from representative paths ----
  timing::PathExtractor extractor(nl);
  timing::PruneOptions prune = opt.prune;
  if (opt.deadline != nullptr) prune.deadline = opt.deadline;
  gen.paths = extractor.extract(prune, &gen.path_stats);

  // The same arc transition at the same input slope appears on many paths;
  // model it once. Keys collect in path order, each distinct model builds
  // in parallel (each its own slot), and the emission stage below only
  // reads the finished memo — so the produced posynomials are the ones the
  // sequential per-step calls would produce, at a fraction of the calls.
  struct StepKey {
    int32_t comp;
    int32_t from;
    int32_t to;
    int8_t kind;
    int8_t out_rise;
    int8_t phase;
    uint64_t slope_bits;
    bool operator==(const StepKey&) const = default;
  };
  struct StepKeyHash {
    size_t operator()(const StepKey& k) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      auto mix = [&h](uint64_t v) {
        v *= 0xff51afd7ed558ccdULL;
        v ^= v >> 33;
        h = (h ^ v) * 0x2545f4914f6cdd1dULL;
        h ^= h >> 29;
      };
      mix(static_cast<uint64_t>(static_cast<uint32_t>(k.comp)));
      mix((static_cast<uint64_t>(static_cast<uint32_t>(k.from)) << 32) |
          static_cast<uint64_t>(static_cast<uint32_t>(k.to)));
      mix((static_cast<uint64_t>(static_cast<uint8_t>(k.kind)) << 16) |
          (static_cast<uint64_t>(static_cast<uint8_t>(k.out_rise)) << 8) |
          static_cast<uint64_t>(static_cast<uint8_t>(k.phase)));
      mix(k.slope_bits);
      return static_cast<size_t>(h);
    }
  };
  auto step_key = [&](const timing::PathStep& step, netlist::Phase phase,
                      double slope) {
    StepKey k;
    k.comp = static_cast<int32_t>(step.arc.comp);
    k.from = static_cast<int32_t>(step.arc.from);
    k.to = static_cast<int32_t>(step.arc.to);
    k.kind = static_cast<int8_t>(step.arc.kind);
    k.out_rise = step.out_rise ? 1 : 0;
    k.phase = static_cast<int8_t>(phase);
    std::memcpy(&k.slope_bits, &slope, sizeof(slope));
    return k;
  };
  std::unordered_map<StepKey, uint32_t, StepKeyHash> model_index;
  std::vector<std::pair<StepKey, double>> model_keys;
  {
    obs::Span keys_span("core.congen.model_keys");
    for (const auto& path : gen.paths) {
      const double in_slope = path.start_slope >= 0.0
                                  ? path.start_slope
                                  : tech.default_input_slope;
      for (size_t si = 0; si < path.steps.size(); ++si) {
        const double slope = si == 0 ? in_slope : opt.slope_budget_ps;
        const StepKey k = step_key(path.steps[si], path.phase, slope);
        if (model_index.emplace(k, model_keys.size()).second)
          model_keys.emplace_back(k, slope);
      }
    }
  }
  std::vector<models::ArcPosy> models_memo(model_keys.size());
  {
    obs::Span models_span("core.congen.arc_models");
    par::parallel_for(
        model_keys.size(),
        [&](size_t begin, size_t end) {
          // Deadline poll at chunk granularity: chunk boundaries are
          // deterministic, so the check never perturbs the output.
          if (util::deadline_expired(opt.deadline))
            throw util::TimeoutError(
                "constraint generation deadline exceeded (arc models)");
          for (size_t i = begin; i < end; ++i) {
            const auto& [k, slope] = model_keys[i];
            netlist::Arc arc;
            arc.from = static_cast<netlist::NetId>(k.from);
            arc.to = static_cast<netlist::NetId>(k.to);
            arc.comp = static_cast<netlist::CompId>(k.comp);
            arc.kind = static_cast<netlist::ArcKind>(k.kind);
            models_memo[i] = models::arc_model_posy(
                nl, arc, k.out_rise != 0, Posynomial(slope),
                net_cap(arc.to), gen.labels, lib, tech,
                static_cast<netlist::Phase>(k.phase));
          }
        },
        "core.congen.arc_models", 8);
  }

  std::optional<obs::Span> templates_span{std::in_place,
                                          "core.congen.templates"};
  gen.path_templates = par::parallel_map<PathConstraintTemplate>(
      gen.paths.size(),
      [&](size_t pi) {
        if (util::deadline_expired(opt.deadline))
          throw util::TimeoutError(
              "constraint generation deadline exceeded (templates)");
        const auto& path = gen.paths[pi];
        const double in_slope = path.start_slope >= 0.0
                                    ? path.start_slope
                                    : tech.default_input_slope;
        PathConstraintTemplate tmpl;
        tmpl.phase = path.phase;
        tmpl.end = path.end();
        tmpl.stages_total = path.domino_stages();
        PosyAccum total;
        total.add(path.start_arrival);
        int stages_seen = 0;
        for (size_t si = 0; si < path.steps.size(); ++si) {
          const auto& step = path.steps[si];
          const double slope = si == 0 ? in_slope : opt.slope_budget_ps;
          const auto& arc_posy = models_memo[model_index.find(
              step_key(step, path.phase, slope))->second];

          const bool enters_domino =
              step.arc.kind == netlist::ArcKind::kDominoEval ||
              step.arc.kind == netlist::ArcKind::kDominoClkEval;
          if (enters_domino) {
            ++stages_seen;
            // Without opportunistic time borrowing, a stage that evaluates
            // in phase k cannot start before its inputs are final at the
            // phase edge: everything upstream of domino stage k must settle
            // within the first (k-1)/S of the spec. With OTB ([12])
            // evaluation simply begins when the data arrives and only the
            // end-to-end constraint remains. Recorded as a prefix template
            // here; normalized by the current spec in assemble_problem.
            if (stages_seen >= 2 && path.phase == netlist::Phase::kEvaluate)
              tmpl.stage_prefixes.emplace_back(stages_seen, total.snapshot());
          }
          total.add(arc_posy.delay);
        }
        tmpl.total = total.take();
        return tmpl;
      },
      "core.congen.templates");
  templates_span.reset();

  // ---- input pin capacitance (load) constraints ----
  const auto& per_port = opt.input_cap_limits_ff;
  SMART_CHECK(per_port.empty() || per_port.size() == nl.inputs().size(),
              "input cap limit list must match the input port count");
  for (size_t ii = 0; ii < nl.inputs().size(); ++ii) {
    const double limit = per_port.empty() ? opt.input_cap_limit_ff
                                          : per_port[ii];
    if (limit <= 0.0) continue;
    const netlist::NetId in = nl.inputs()[ii].net;
    gen.static_constraints.push_back(gp::Constraint{
        net_cap(in) * (1.0 / (limit * opt.input_cap_slack)),
        util::strfmt("incap_%s", nl.net(in).name.c_str())});
  }

  // ---- per-arc slope (reliability) constraints ----
  if (opt.enforce_slopes) {
    obs::Span slopes_span("core.congen.slopes");
    // Arcs are independent: each arc's constraints build into its own slot
    // (reusing the memoized model when a timing path already evaluated the
    // same transition at the slope budget), then merge in arc order.
    const auto& arcs = nl.arcs();
    auto per_arc = par::parallel_map<std::vector<gp::Constraint>>(
        arcs.size(),
        [&](size_t ai) {
          if (util::deadline_expired(opt.deadline))
            throw util::TimeoutError(
                "constraint generation deadline exceeded (slopes)");
          const auto& arc = arcs[ai];
          std::vector<gp::Constraint> out;
          static thread_local std::vector<netlist::EdgeMap> maps;
          bool footed = true;
          if (const auto* dg = nl.comp(arc.comp).as_domino())
            footed = dg->evaluate_label >= 0;
          netlist::arc_edge_maps(arc.kind, netlist::Phase::kEvaluate, footed,
                                 maps);
          // Each distinct output transition gets one slope bound.
          bool done_rise = false, done_fall = false;
          for (const auto& em : maps) {
            if (em.out_rise ? done_rise : done_fall) continue;
            (em.out_rise ? done_rise : done_fall) = true;
            timing::PathStep step;
            step.arc = arc;
            step.out_rise = em.out_rise;
            const auto it = model_index.find(step_key(
                step, netlist::Phase::kEvaluate, opt.slope_budget_ps));
            // Each (arc, transition) maps to a distinct memo index and the
            // path templates above only read .delay, so the memoized slope
            // posynomial can be stolen instead of copied (no race: arcs own
            // disjoint indices).
            Posynomial out_slope =
                it != model_index.end()
                    ? std::move(models_memo[it->second].out_slope)
                    : models::arc_out_slope_posy(nl, arc, em.out_rise,
                                                 slope_budget,
                                                 net_cap(arc.to), gen.labels,
                                                 lib, tech);
            out_slope *= 1.0 / opt.slope_budget_ps;
            std::string tag = "slope_";
            tag += nl.net(arc.to).name;
            tag += em.out_rise ? "_r" : "_f";
            out.push_back(
                gp::Constraint{std::move(out_slope), std::move(tag)});
          }
          return out;
        },
        "core.congen.slopes");
    for (auto& arc_cons : per_arc) {
      for (auto& c : arc_cons) {
        gen.static_constraints.push_back(std::move(c));
        ++gen.slope_constraints;
      }
    }
  }

  assemble_problem(gen, opt.delay_spec_ps, opt.precharge_spec_ps, opt.otb,
                   opt.output_required_ps, nl);
  return gen;
}

void assemble_problem(GeneratedProblem& gen, double delay_spec_ps,
                      double precharge_spec_ps, bool otb,
                      const std::vector<double>& output_required_ps,
                      const Netlist& nl) {
  SMART_CHECK(delay_spec_ps > 0.0, "delay spec must be positive");
  const double pre_spec =
      precharge_spec_ps > 0.0 ? precharge_spec_ps : delay_spec_ps;

  SMART_CHECK(output_required_ps.empty() ||
                  output_required_ps.size() == nl.outputs().size(),
              "output required-time list must match the output port count");
  std::vector<double> required(nl.net_count(), -1.0);
  for (size_t oi = 0; oi < output_required_ps.size(); ++oi) {
    if (output_required_ps[oi] > 0.0)
      required[static_cast<size_t>(nl.outputs()[oi].net)] =
          output_required_ps[oi];
  }

  gen.problem = std::make_unique<gp::GpProblem>(*gen.vars);
  gen.problem->set_objective(gen.objective);
  gen.timing_constraints = 0;
  gen.stage_constraints = 0;
  gen.path_specs.assign(gen.path_templates.size(), 0.0);
  for (size_t pi = 0; pi < gen.path_templates.size(); ++pi) {
    const auto& tmpl = gen.path_templates[pi];
    double spec =
        tmpl.phase == netlist::Phase::kEvaluate ? delay_spec_ps : pre_spec;
    if (tmpl.phase == netlist::Phase::kEvaluate &&
        required[static_cast<size_t>(tmpl.end)] > 0.0) {
      spec = required[static_cast<size_t>(tmpl.end)];
    }
    gen.path_specs[pi] = spec;
    if (!otb) {
      for (const auto& [stage, prefix] : tmpl.stage_prefixes) {
        const double deadline = spec * static_cast<double>(stage - 1) /
                                static_cast<double>(tmpl.stages_total);
        gen.problem->add_constraint(
            prefix * (1.0 / deadline),
            util::strfmt("stage%d_of_path%zu", stage, pi));
        ++gen.stage_constraints;
      }
    }
    gen.problem->add_constraint(
        tmpl.total * (1.0 / spec),
        util::strfmt("%s_path%zu",
                     tmpl.phase == netlist::Phase::kEvaluate ? "eval" : "pre",
                     pi));
    ++gen.timing_constraints;
  }
  for (const auto& c : gen.static_constraints)
    gen.problem->add_constraint(c.lhs, c.tag);
}

netlist::Sizing sizing_from_solution(const Netlist& nl,
                                     const GeneratedProblem& gen,
                                     const util::Vec& x) {
  netlist::Sizing sizing(nl.label_count(), 0.0);
  for (size_t li = 0; li < nl.label_count(); ++li) {
    const auto& label = nl.label(static_cast<netlist::LabelId>(li));
    if (label.fixed) {
      sizing[li] = label.fixed_width;
      continue;
    }
    const Monomial& m = gen.labels.at(li);
    SMART_CHECK(m.factors().size() == 1,
                "free label is not a single variable");
    sizing[li] = x.at(static_cast<size_t>(m.factors()[0].var));
  }
  return sizing;
}

}  // namespace smart::core

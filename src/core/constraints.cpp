#include "core/constraints.h"

#include <unordered_map>

#include "util/check.h"
#include "util/strfmt.h"

namespace smart::core {

using netlist::Netlist;
using posy::Monomial;
using posy::Posynomial;

posy::Posynomial cost_posy(const Netlist& nl, CostMetric cost,
                           const models::LabelVarMap& labels,
                           const power::PowerOptions& activity,
                           const tech::Tech& tech) {
  Posynomial obj;
  switch (cost) {
    case CostMetric::kTotalWidth: {
      for (size_t c = 0; c < nl.comp_count(); ++c) {
        for (const auto& ref :
             nl.all_device_widths(static_cast<netlist::CompId>(c))) {
          Monomial m = labels.at(static_cast<size_t>(ref.label));
          m *= ref.scale;
          obj += m;
        }
      }
      break;
    }
    case CostMetric::kPower: {
      const auto act = power::net_activities(nl, activity);
      for (size_t n = 0; n < nl.net_count(); ++n) {
        Posynomial cap = models::net_cap_posy(
            nl, static_cast<netlist::NetId>(n), labels, tech);
        obj += cap * act[n];
      }
      break;
    }
    case CostMetric::kClockLoad: {
      for (size_t n = 0; n < nl.net_count(); ++n) {
        if (nl.net(static_cast<netlist::NetId>(n)).kind !=
            netlist::NetKind::kClock)
          continue;
        for (size_t c = 0; c < nl.comp_count(); ++c) {
          for (const auto& ref : nl.gate_width_on_net(
                   static_cast<netlist::CompId>(c),
                   static_cast<netlist::NetId>(n))) {
            Monomial m = labels.at(static_cast<size_t>(ref.label));
            m *= ref.scale;
            obj += m;
          }
        }
      }
      // Clock load alone can leave data devices unconstrained from above;
      // a small width term keeps the objective bounded and realistic.
      Posynomial width = cost_posy(nl, CostMetric::kTotalWidth, labels,
                                   activity, tech);
      obj += width * 0.01;
      break;
    }
  }
  SMART_CHECK(!obj.is_zero(), "cost objective is zero — empty netlist?");
  return obj;
}

GeneratedProblem generate_problem(const Netlist& nl,
                                  const ConstraintOptions& opt,
                                  const models::ModelLibrary& lib,
                                  const tech::Tech& tech) {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  SMART_CHECK(opt.delay_spec_ps > 0.0, "delay spec must be positive");

  GeneratedProblem gen;
  gen.built_options = opt;
  gen.vars = std::make_unique<posy::VarTable>();
  gen.labels = models::make_label_vars(nl, *gen.vars);

  gen.objective = cost_posy(nl, opt.cost, gen.labels, opt.activity, tech);

  // Net capacitances are shared across many arc models; cache them.
  std::vector<Posynomial> cap_cache(nl.net_count());
  std::vector<bool> cap_ready(nl.net_count(), false);
  auto net_cap = [&](netlist::NetId n) -> const Posynomial& {
    if (!cap_ready[static_cast<size_t>(n)]) {
      cap_cache[static_cast<size_t>(n)] =
          models::net_cap_posy(nl, n, gen.labels, tech);
      cap_ready[static_cast<size_t>(n)] = true;
    }
    return cap_cache[static_cast<size_t>(n)];
  };

  const Posynomial slope_budget(opt.slope_budget_ps);

  // ---- timing constraint templates from representative paths ----
  timing::PathExtractor extractor(nl);
  gen.paths = extractor.extract(opt.prune, &gen.path_stats);
  for (const auto& path : gen.paths) {
    const double in_slope = path.start_slope >= 0.0
                                ? path.start_slope
                                : tech.default_input_slope;
    PathConstraintTemplate tmpl;
    tmpl.phase = path.phase;
    tmpl.end = path.end();
    tmpl.stages_total = path.domino_stages();
    Posynomial total(path.start_arrival);
    int stages_seen = 0;
    for (size_t si = 0; si < path.steps.size(); ++si) {
      const auto& step = path.steps[si];
      const Posynomial step_slope(si == 0 ? in_slope : opt.slope_budget_ps);
      const auto arc_posy = models::arc_model_posy(
          nl, step.arc, step.out_rise, step_slope, net_cap(step.arc.to),
          gen.labels, lib, tech, path.phase);

      const bool enters_domino =
          step.arc.kind == netlist::ArcKind::kDominoEval ||
          step.arc.kind == netlist::ArcKind::kDominoClkEval;
      if (enters_domino) {
        ++stages_seen;
        // Without opportunistic time borrowing, a stage that evaluates in
        // phase k cannot start before its inputs are final at the phase
        // edge: everything upstream of domino stage k must settle within
        // the first (k-1)/S of the spec. With OTB ([12]) evaluation simply
        // begins when the data arrives and only the end-to-end constraint
        // remains. Recorded as a prefix template here; normalized by the
        // current spec in assemble_problem.
        if (stages_seen >= 2 && path.phase == netlist::Phase::kEvaluate)
          tmpl.stage_prefixes.emplace_back(stages_seen, total);
      }
      total += arc_posy.delay;
    }
    tmpl.total = std::move(total);
    gen.path_templates.push_back(std::move(tmpl));
  }

  // ---- input pin capacitance (load) constraints ----
  const auto& per_port = opt.input_cap_limits_ff;
  SMART_CHECK(per_port.empty() || per_port.size() == nl.inputs().size(),
              "input cap limit list must match the input port count");
  for (size_t ii = 0; ii < nl.inputs().size(); ++ii) {
    const double limit = per_port.empty() ? opt.input_cap_limit_ff
                                          : per_port[ii];
    if (limit <= 0.0) continue;
    const netlist::NetId in = nl.inputs()[ii].net;
    gen.static_constraints.push_back(gp::Constraint{
        net_cap(in) * (1.0 / (limit * opt.input_cap_slack)),
        util::strfmt("incap_%s", nl.net(in).name.c_str())});
  }

  // ---- per-arc slope (reliability) constraints ----
  if (opt.enforce_slopes) {
    std::vector<netlist::EdgeMap> maps;
    for (const auto& arc : nl.arcs()) {
      bool footed = true;
      if (const auto* dg = nl.comp(arc.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(arc.kind, netlist::Phase::kEvaluate, footed,
                             maps);
      // Each distinct output transition gets one slope bound.
      bool done_rise = false, done_fall = false;
      for (const auto& em : maps) {
        if (em.out_rise ? done_rise : done_fall) continue;
        (em.out_rise ? done_rise : done_fall) = true;
        const auto arc_posy = models::arc_model_posy(
            nl, arc, em.out_rise, slope_budget, net_cap(arc.to), gen.labels,
            lib, tech);
        gen.static_constraints.push_back(gp::Constraint{
            arc_posy.out_slope * (1.0 / opt.slope_budget_ps),
            util::strfmt("slope_%s_%s", nl.net(arc.to).name.c_str(),
                         em.out_rise ? "r" : "f")});
        ++gen.slope_constraints;
      }
    }
  }

  assemble_problem(gen, opt.delay_spec_ps, opt.precharge_spec_ps, opt.otb,
                   opt.output_required_ps, nl);
  return gen;
}

void assemble_problem(GeneratedProblem& gen, double delay_spec_ps,
                      double precharge_spec_ps, bool otb,
                      const std::vector<double>& output_required_ps,
                      const Netlist& nl) {
  SMART_CHECK(delay_spec_ps > 0.0, "delay spec must be positive");
  const double pre_spec =
      precharge_spec_ps > 0.0 ? precharge_spec_ps : delay_spec_ps;

  SMART_CHECK(output_required_ps.empty() ||
                  output_required_ps.size() == nl.outputs().size(),
              "output required-time list must match the output port count");
  std::vector<double> required(nl.net_count(), -1.0);
  for (size_t oi = 0; oi < output_required_ps.size(); ++oi) {
    if (output_required_ps[oi] > 0.0)
      required[static_cast<size_t>(nl.outputs()[oi].net)] =
          output_required_ps[oi];
  }

  gen.problem = std::make_unique<gp::GpProblem>(*gen.vars);
  gen.problem->set_objective(gen.objective);
  gen.timing_constraints = 0;
  gen.stage_constraints = 0;
  gen.path_specs.assign(gen.path_templates.size(), 0.0);
  for (size_t pi = 0; pi < gen.path_templates.size(); ++pi) {
    const auto& tmpl = gen.path_templates[pi];
    double spec =
        tmpl.phase == netlist::Phase::kEvaluate ? delay_spec_ps : pre_spec;
    if (tmpl.phase == netlist::Phase::kEvaluate &&
        required[static_cast<size_t>(tmpl.end)] > 0.0) {
      spec = required[static_cast<size_t>(tmpl.end)];
    }
    gen.path_specs[pi] = spec;
    if (!otb) {
      for (const auto& [stage, prefix] : tmpl.stage_prefixes) {
        const double deadline = spec * static_cast<double>(stage - 1) /
                                static_cast<double>(tmpl.stages_total);
        gen.problem->add_constraint(
            prefix * (1.0 / deadline),
            util::strfmt("stage%d_of_path%zu", stage, pi));
        ++gen.stage_constraints;
      }
    }
    gen.problem->add_constraint(
        tmpl.total * (1.0 / spec),
        util::strfmt("%s_path%zu",
                     tmpl.phase == netlist::Phase::kEvaluate ? "eval" : "pre",
                     pi));
    ++gen.timing_constraints;
  }
  for (const auto& c : gen.static_constraints)
    gen.problem->add_constraint(c.lhs, c.tag);
}

netlist::Sizing sizing_from_solution(const Netlist& nl,
                                     const GeneratedProblem& gen,
                                     const util::Vec& x) {
  netlist::Sizing sizing(nl.label_count(), 0.0);
  for (size_t li = 0; li < nl.label_count(); ++li) {
    const auto& label = nl.label(static_cast<netlist::LabelId>(li));
    if (label.fixed) {
      sizing[li] = label.fixed_width;
      continue;
    }
    const Monomial& m = gen.labels.at(li);
    SMART_CHECK(m.factors().size() == 1,
                "free label is not a single variable");
    sizing[li] = x.at(static_cast<size_t>(m.factors()[0].var));
  }
  return sizing;
}

}  // namespace smart::core

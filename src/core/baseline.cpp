#include "core/baseline.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "refsim/rc_timer.h"
#include "util/check.h"

namespace smart::core {

using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sizing;

Sizing BaselineSizer::size(const Netlist& nl) const {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  const auto& t = *tech_;
  const double w_floor =
      opt_.min_width_um > 0.0 ? opt_.min_width_um : t.w_min;

  Sizing sizing(nl.label_count());
  for (size_t li = 0; li < nl.label_count(); ++li) {
    const auto& label = nl.label(static_cast<LabelId>(li));
    sizing[li] = label.fixed ? label.fixed_width
                             : std::max(label.w_min, w_floor);
  }
  Sizing next = sizing;

  auto bump = [&](LabelId id, double w_req) {
    const auto& label = nl.label(static_cast<LabelId>(id));
    if (label.fixed) return;
    const double w =
        std::clamp(w_req, std::max(label.w_min, w_floor), label.w_max);
    auto& slot = next[static_cast<size_t>(id)];
    slot = std::max(slot, w);
  };

  // Reverse topological order of nets: sinks first, so every reader's gate
  // width is already set when its driver is sized from the measured load.
  std::vector<int> indeg(nl.net_count(), 0);
  for (const auto& a : nl.arcs()) indeg[static_cast<size_t>(a.to)]++;
  std::vector<NetId> topo;
  std::queue<NetId> ready;
  for (size_t n = 0; n < nl.net_count(); ++n)
    if (indeg[n] == 0) ready.push(static_cast<NetId>(n));
  while (!ready.empty()) {
    const NetId n = ready.front();
    ready.pop();
    topo.push_back(n);
    for (const auto& a : nl.arcs_from(n))
      if (--indeg[static_cast<size_t>(a.to)] == 0) ready.push(a.to);
  }
  std::reverse(topo.begin(), topo.end());

  const refsim::RcTimer timer(t);
  const double tau = opt_.stage_delay_ps;
  const double m = opt_.margin;

  for (int pass = 0; pass < opt_.passes; ++pass) {
    // Each pass re-derives every width from the previous pass's loads —
    // the way a designer re-sizes after seeing extraction results.
    for (size_t li = 0; li < nl.label_count(); ++li) {
      const auto& label = nl.label(static_cast<LabelId>(li));
      next[li] = label.fixed ? label.fixed_width
                             : std::max(label.w_min, w_floor);
    }
  const auto caps = timer.all_net_caps(nl, sizing);
  for (const NetId n : topo) {
    for (const netlist::CompId c : nl.drivers_of(n)) {
      const auto& comp = nl.comp(c);
      const double load = caps[static_cast<size_t>(n)];
      if (const auto* g = comp.as_static()) {
        const double d_pd = g->pulldown.max_depth();
        const double d_pu = g->pulldown.dual().max_depth();
        std::vector<std::pair<NetId, LabelId>> leaves;
        g->pulldown.collect_leaves(leaves);
        for (const auto& [in, label] : leaves)
          bump(label, d_pd * t.r_nmos * load / tau * m);
        bump(g->pmos_label, d_pu * t.r_pmos * load / tau * m);
      } else if (const auto* tg = comp.as_transgate()) {
        const double r_eff =
            (t.r_nmos * t.r_pmos) / (t.r_nmos + t.r_pmos);
        bump(tg->label, r_eff * load / tau * m);
      } else if (const auto* t3 = comp.as_tristate()) {
        bump(t3->nmos_label, 2.0 * t.r_nmos * load / tau * m);
        bump(t3->pmos_label, 2.0 * t.r_pmos * load / tau * m);
      } else if (const auto* d = comp.as_domino()) {
        const bool footed = d->evaluate_label >= 0;
        const double depth =
            d->pulldown.max_depth() + (footed ? 1.0 : 0.0);
        std::vector<std::pair<NetId, LabelId>> leaves;
        d->pulldown.collect_leaves(leaves);
        double w_leaf_max = 0.0;
        for (const auto& [in, label] : leaves) {
          const double w_req = depth * t.r_nmos * load / tau * m;
          bump(label, w_req);
          w_leaf_max = std::max(
              w_leaf_max, sizing[static_cast<size_t>(label)]);
        }
        if (footed) {
          // Designers guard the foot: at least as wide as the stack devices
          // and then some.
          bump(d->evaluate_label,
               std::max(depth * t.r_nmos * load / tau * m,
                        w_leaf_max) * opt_.clock_margin);
        }
        // Precharge is allowed ~2 stage budgets but guarded for robustness.
        bump(d->precharge_label,
             t.r_pmos * load / (2.0 * tau) * m * opt_.clock_margin);
      }
    }
  }
    double max_change = 0.0;
    for (size_t li = 0; li < nl.label_count(); ++li) {
      const double before = sizing[li];
      max_change = std::max(max_change,
                            std::fabs(next[li] - before) /
                                std::max(before, 1e-9));
    }
    sizing = next;
    if (max_change < opt_.pass_tol) break;
  }
  return sizing;
}

}  // namespace smart::core

#pragma once

/// \file constraints.h
/// Constraint generation (paper Fig 4 / §5.3): turns a macro netlist plus
/// designer constraints (delay spec, loads, slopes) into a geometric
/// program over the size-label variables.
///
/// Constraint families generated:
///   * timing      — one constraint per representative path (after §5.2
///                   pruning) per phase: sum of posynomial arc delays +
///                   source arrival <= spec. Pass-gate control arcs yield
///                   both output transitions (the "four constraints per
///                   pass gate"); domino precharge paths check the reset.
///   * stage       — without OTB (opportunistic time borrowing), every
///                   domino stage along a path must finish within its even
///                   share of the spec; with OTB only the end-to-end
///                   constraint remains (paper §5.3, [12]).
///   * slope       — per-arc output slope <= slope budget (reliability).
///   * device size — variable box bounds (min/max width), designer-fixed
///                   labels become constants.

#include <memory>

#include "gp/problem.h"
#include "models/arc_model.h"
#include "power/power.h"
#include "timing/paths.h"

namespace smart::core {

/// What the sizer minimizes (paper: "a specified cost function (area,
/// power)"); clock load is the Fig-7 metric.
enum class CostMetric { kTotalWidth, kPower, kClockLoad };

struct ConstraintOptions {
  double delay_spec_ps = 0.0;      ///< evaluate-phase spec at the outputs
  double precharge_spec_ps = -1.0; ///< < 0 => same as delay_spec
  double slope_budget_ps = 120.0;  ///< reliability bound and model in-slope
  bool enforce_slopes = true;
  bool otb = true;                 ///< opportunistic time borrowing
  CostMetric cost = CostMetric::kTotalWidth;
  power::PowerOptions activity;    ///< used by the kPower objective
  timing::PruneOptions prune;

  /// Per-output required times (ps), aligned with Netlist::outputs(); an
  /// entry <= 0 falls back to the uniform delay spec. A datapath macro's
  /// ports rarely share one deadline — result bits feeding a bypass leave
  /// earlier than flags feeding a branch unit.
  std::vector<double> output_required_ps;

  /// Load constraints (paper Fig 4): cap the macro's input pin capacitance
  /// so the optimizer cannot buy delay with arbitrarily large first-stage
  /// devices the upstream driver would have to pay for. A uniform limit,
  /// or per-input-port limits aligned with Netlist::inputs(). < 0 => off.
  double input_cap_limit_ff = -1.0;
  std::vector<double> input_cap_limits_ff;  ///< overrides the uniform limit
  /// Headroom applied to input cap limits. Limits are usually taken from a
  /// reference design whose drivers may already be at minimum width; a few
  /// percent of slack keeps the constraint strictly satisfiable.
  double input_cap_slack = 1.05;

  /// Optional wall-clock budget for generate_problem, polled between
  /// chunks of the parallel model-evaluation / template-emission waves and
  /// forwarded to path extraction (prune.deadline is overridden when this
  /// is set). Expiry throws util::TimeoutError; the sizer maps it to
  /// FailureReason::kTimeout. Non-owning; may be nullptr.
  const util::Deadline* deadline = nullptr;
};

/// Spec-independent template of one path's timing constraint: the raw
/// (unnormalized) delay posynomial plus the domino stage prefixes. The
/// re-specification loop rescales these instead of regenerating them.
struct PathConstraintTemplate {
  posy::Posynomial total;          ///< arrival + sum of arc delays
  netlist::Phase phase = netlist::Phase::kEvaluate;
  netlist::NetId end = -1;
  int stages_total = 0;
  /// (stage index k >= 2, prefix delay before entering stage k).
  std::vector<std::pair<int, posy::Posynomial>> stage_prefixes;
};

/// A generated geometric program, owning its variable table. Movable; the
/// GpProblem keeps a pointer to the VarTable held by unique_ptr.
/// The spec-independent parts (objective, path templates, slope and
/// input-cap constraints) are kept so assemble_problem() can re-normalize
/// for a new delay/precharge spec without re-extracting anything.
struct GeneratedProblem {
  std::unique_ptr<posy::VarTable> vars;
  models::LabelVarMap labels;  ///< label -> monomial over *vars
  std::unique_ptr<gp::GpProblem> problem;
  timing::PathStats path_stats;
  size_t timing_constraints = 0;
  size_t stage_constraints = 0;
  size_t slope_constraints = 0;

  // Spec-independent templates (see assemble_problem).
  posy::Posynomial objective;
  std::vector<PathConstraintTemplate> path_templates;
  std::vector<gp::Constraint> static_constraints;
  ConstraintOptions built_options;  ///< options the templates were built at

  /// The representative paths the templates were generated from, aligned
  /// with path_templates (path i produced template i, and constraint tags
  /// "eval_path<i>"/"pre_path<i>"/"stage<k>_of_path<i>"). Kept so report
  /// layers can map a binding constraint back to concrete netlist arcs.
  std::vector<timing::Path> paths;
  /// Per-template spec (ps) the last assemble_problem() normalized by —
  /// the denominator that turns a template's delay posynomial into its
  /// <= 1 constraint. Aligned with path_templates.
  std::vector<double> path_specs;
};

/// Rebuilds gen.problem for new delay/precharge specs (and OTB setting)
/// from the stored templates. Much cheaper than generate_problem: no path
/// extraction, no model evaluation — only re-normalization. The slope
/// budget and pruning options must match the ones the templates were
/// generated with (callers regenerate when those change).
void assemble_problem(GeneratedProblem& gen, double delay_spec_ps,
                      double precharge_spec_ps, bool otb,
                      const std::vector<double>& output_required_ps,
                      const netlist::Netlist& nl);

/// Builds the GP for a finalized netlist. The model library supplies the
/// posynomial coefficients; tech supplies R/C parameters.
GeneratedProblem generate_problem(const netlist::Netlist& nl,
                                  const ConstraintOptions& opt,
                                  const models::ModelLibrary& lib,
                                  const tech::Tech& tech);

/// Converts a GP solution vector into a label sizing for the netlist.
netlist::Sizing sizing_from_solution(const netlist::Netlist& nl,
                                     const GeneratedProblem& gen,
                                     const util::Vec& x);

/// The cost objective as a posynomial (also usable standalone, e.g. for
/// reporting the modeled cost of a sizing).
posy::Posynomial cost_posy(const netlist::Netlist& nl, CostMetric cost,
                           const models::LabelVarMap& labels,
                           const power::PowerOptions& activity,
                           const tech::Tech& tech);

}  // namespace smart::core

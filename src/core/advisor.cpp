#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "lint/erc.h"
#include "par/par.h"
#include "obs/obs.h"
#include "power/power.h"
#include "refsim/critical_path.h"
#include "refsim/rc_timer.h"
#include "util/check.h"
#include "util/strfmt.h"

namespace smart::core {

namespace {

/// Value of a cost metric for a sized netlist.
double metric_value(const netlist::Netlist& nl, const netlist::Sizing& sizing,
                    CostMetric cost, const power::PowerOptions& activity,
                    const tech::Tech& tech) {
  switch (cost) {
    case CostMetric::kTotalWidth:
      return nl.device_stats(sizing).total_width;
    case CostMetric::kPower: {
      power::PowerEstimator est(tech);
      return est.estimate(nl, sizing, activity).total_mw;
    }
    case CostMetric::kClockLoad:
      return nl.device_stats(sizing).clock_gate_width;
  }
  return 0.0;
}

/// Critical-path one-liner for a sized candidate. Best-effort: a backtrace
/// failure (degenerate netlist, injected fault) leaves the optional empty
/// rather than failing the candidate.
std::optional<CriticalSummary> summarize_critical(
    const netlist::Netlist& nl, const SizerResult& sizing,
    const tech::Tech& tech) {
  try {
    const auto cp = refsim::critical_path(nl, sizing.sizing, tech);
    if (cp.end < 0 || cp.steps.empty()) return std::nullopt;
    CriticalSummary s;
    s.startpoint = util::strfmt("%s (%s)", nl.net(cp.start).name.c_str(),
                                cp.start_rise ? "R" : "F");
    s.endpoint = util::strfmt(
        "%s (%s)", nl.net(cp.end).name.c_str(),
        cp.steps.back().out_rise ? "R" : "F");
    s.arrival_ps = cp.arrival_ps;
    s.stages = cp.steps.size();
    if (!sizing.binding_constraints.empty())
      s.limited_by = sizing.binding_constraints.front();
    return s;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

Advice DesignAdvisor::advise(const AdvisorRequest& request) const {
  obs::Span advise_span("advisor.advise");
  Advice advice;
  const auto topos = db_->topologies(request.spec.type, &request.spec);
  if (topos.empty()) {
    advice.message =
        "no applicable topology for macro type '" + request.spec.type + "'";
    return advice;
  }

  // Derive the delay spec from a baseline-sized reference design if the
  // designer did not give one.
  double delay_spec = request.delay_spec_ps;
  double pre_spec = request.precharge_spec_ps;
  if (delay_spec <= 0.0) {
    try {
      netlist::Netlist ref = topos.front()->generate(request.spec);
      apply_site_wiring(ref, request.spec);
      BaselineSizer baseline(*tech_, request.baseline);
      const auto ref_sizing = baseline.size(ref);
      const refsim::RcTimer timer(*tech_);
      const auto rep = timer.analyze(ref, ref_sizing);
      delay_spec = rep.worst_delay;
      if (pre_spec <= 0.0 && rep.worst_precharge > 0.0)
        pre_spec = rep.worst_precharge;
    } catch (const std::exception& e) {
      advice.message = util::strfmt(
          "could not derive a delay spec from the reference design: %s",
          e.what());
      return advice;
    }
    if (!(delay_spec > 0.0) || !std::isfinite(delay_spec)) {
      advice.message = util::strfmt(
          "reference design produced an unusable delay spec (%g ps)",
          delay_spec);
      return advice;
    }
  }
  advice.derived_delay_spec_ps = delay_spec;

  // Sizes one candidate. Must not throw: a poisoned candidate (bad model,
  // degenerate GP, generator bug) is reported, not fatal — the sweep over
  // the remaining topologies continues.
  auto size_one = [&](const TopologyEntry* entry) {
    // Wall time is measured unconditionally (StopWatch) so Advice always
    // carries per-candidate timing; the span only records when tracing.
    obs::Span span("advisor.candidate:" + entry->name);
    obs::StopWatch watch;
    Solution sol{entry->name, netlist::Netlist{entry->name}, SizerResult{},
                 0.0, false, 0.0, std::nullopt};
    try {
      sol.netlist = entry->generate(request.spec);
      apply_site_wiring(sol.netlist, request.spec);
      // Pre-solve gate: a candidate whose schematic fails ERC (floating
      // gates, undriven nodes, pass-gate contention, ...) would only fail
      // later and slower inside the optimizer — report it structurally
      // instead of spending a GP solve on it.
      const auto erc = lint::run_erc(sol.netlist);
      if (erc.errors() > 0) {
        const auto* worst = erc.first(lint::Severity::kError);
        sol.sizing.ok = false;
        sol.sizing.status = util::Status::Fail(
            util::FailureReason::kInvalidInput,
            util::strfmt("erc %s at %s: %s", worst->rule.c_str(),
                         worst->location.c_str(), worst->message.c_str()));
        sol.sizing.message = sol.sizing.status.to_string();
      } else {
        SizerOptions sopt = request.sizer;
        sopt.delay_spec_ps = delay_spec;
        sopt.precharge_spec_ps = pre_spec;
        sopt.cost = request.cost;
        Sizer sizer(*tech_, *lib_);
        if (sopt.input_cap_limit_ff <= 0.0 &&
            sopt.input_cap_limits_ff.empty()) {
          // Drop-in-replacement rule: the SMART solution may not present
          // more pin capacitance than this topology's baseline-sized
          // design would.
          BaselineSizer baseline(*tech_, request.baseline);
          sopt.input_cap_limits_ff =
              sizer.input_caps(sol.netlist, baseline.size(sol.netlist));
        }
        sol.sizing = sizer.size(sol.netlist, sopt);
        if (sol.sizing.ok && sol.sizing.rung != SizingRung::kBaseline) {
          sol.meets_spec = sol.sizing.rung == SizingRung::kGp &&
                           sol.sizing.message == "converged";
          sol.cost_value = metric_value(sol.netlist, sol.sizing.sizing,
                                        request.cost, request.sizer.activity,
                                        *tech_);
          sol.critical = summarize_critical(sol.netlist, sol.sizing, *tech_);
        }
      }
    } catch (const std::exception& e) {
      sol.sizing.ok = false;
      sol.sizing.status = util::Status::Fail(
          util::FailureReason::kInternal, e.what());
      sol.sizing.message = sol.sizing.status.to_string();
    }
    sol.wall_ms = watch.elapsed_ms();
    auto& tel = obs::Telemetry::instance();
    if (tel.enabled()) {
      const bool ranked =
          sol.sizing.ok && sol.sizing.rung != SizingRung::kBaseline;
      tel.hist_record("advisor.candidate.ms", sol.wall_ms);
      tel.counter_add(ranked ? "advisor.candidate.ok"
                             : "advisor.candidate.failed");
      span.arg("wall_ms", sol.wall_ms);
      span.arg("ok", ranked ? 1.0 : 0.0);
    }
    return sol;
  };

  // Candidate fan-out on the shared worker pool. Results land index-ordered
  // (slot i belongs to topos[i]), so the sweep ranks identically at any
  // thread count; a candidate whose sizer itself calls parallel_for nests
  // safely because the pool is caller-helps. Solution has no default
  // constructor (Netlist carries a mandatory name), hence the optional hop.
  std::vector<Solution> sized;
  sized.reserve(topos.size());
  if (request.parallel && topos.size() > 1) {
    auto slots = par::parallel_map<std::optional<Solution>>(
        topos.size(),
        [&](size_t i) { return std::optional<Solution>(size_one(topos[i])); },
        "advisor.sweep");
    for (auto& slot : slots) sized.push_back(std::move(*slot));
  } else {
    for (const TopologyEntry* entry : topos) sized.push_back(size_one(entry));
  }

  for (auto& sol : sized) {
    // A candidate only ranks when the optimizer produced its sizing; failed
    // and baseline-degraded candidates are reported with their structured
    // reason instead ("reported, not fatal").
    if (!sol.sizing.ok || sol.sizing.rung == SizingRung::kBaseline) {
      advice.message += util::strfmt("[%s: %s] ", sol.topology.c_str(),
                                     sol.sizing.message.c_str());
      advice.failures.push_back({sol.topology, sol.sizing.status,
                                 sol.sizing.rung, sol.sizing.message,
                                 sol.wall_ms});
      continue;
    }
    advice.solutions.push_back(std::move(sol));
  }

  // Deterministic ranking: stable sort plus a full tie-break chain so equal
  // costs cannot reorder between runs (or between parallel/serial sizing).
  std::stable_sort(advice.solutions.begin(), advice.solutions.end(),
                   [](const Solution& a, const Solution& b) {
                     if (a.meets_spec != b.meets_spec) return a.meets_spec;
                     if (a.cost_value != b.cost_value)
                       return a.cost_value < b.cost_value;
                     return a.topology < b.topology;
                   });
  if (advice.message.empty()) advice.message = "ok";
  return advice;
}

std::vector<TradeoffPoint> DesignAdvisor::tradeoff_curve(
    const netlist::Netlist& nl, const std::vector<double>& delay_specs,
    const SizerOptions& base_options) const {
  std::vector<TradeoffPoint> curve;
  Sizer sizer(*tech_, *lib_);
  for (double spec : delay_specs) {
    SizerOptions opt = base_options;
    opt.delay_spec_ps = spec;
    if (base_options.precharge_spec_ps <= 0.0)
      opt.precharge_spec_ps = spec * 1.5;
    // A curve point that cannot meet its spec is simply marked infeasible;
    // walking the degradation ladder would only slow the sweep down.
    opt.allow_relaxed_retry = false;
    opt.allow_baseline_fallback = false;
    const auto result = sizer.size(nl, opt);
    TradeoffPoint point;
    point.delay_spec_ps = spec;
    point.feasible = result.ok && result.rung == SizingRung::kGp &&
                     result.message == "converged";
    if (result.ok) {
      point.measured_delay_ps = result.measured_delay_ps;
      point.total_width_um = result.total_width_um;
    }
    curve.push_back(point);
  }
  return curve;
}

}  // namespace smart::core

#include "core/corners.h"

#include <algorithm>

#include "refsim/rc_timer.h"

namespace smart::core {

namespace {

CornerMeasurement measure_at(const netlist::Netlist& nl,
                             const netlist::Sizing& sizing,
                             const tech::Tech& base, tech::Corner corner) {
  const tech::Tech tech = base.at_corner(corner);
  const refsim::RcTimer timer(tech);
  const auto report = timer.analyze(nl, sizing);
  CornerMeasurement m;
  m.corner = corner;
  m.delay_ps = report.worst_delay;
  m.precharge_ps = report.worst_precharge;
  m.max_slope_ps = report.max_internal_slope;
  return m;
}

}  // namespace

double CornerSweep::worst_delay_ps() const {
  return std::max({typical.delay_ps, fast.delay_ps, slow.delay_ps});
}

bool CornerSweep::meets(double delay_spec_ps,
                        double precharge_spec_ps) const {
  for (const auto* m : {&typical, &fast, &slow}) {
    if (m->delay_ps > delay_spec_ps) return false;
    if (precharge_spec_ps > 0.0 && m->precharge_ps > precharge_spec_ps)
      return false;
  }
  return true;
}

CornerSweep measure_corners(const netlist::Netlist& nl,
                            const netlist::Sizing& sizing,
                            const tech::Tech& base) {
  CornerSweep sweep;
  sweep.typical = measure_at(nl, sizing, base, tech::Corner::kTypical);
  sweep.fast = measure_at(nl, sizing, base, tech::Corner::kFast);
  sweep.slow = measure_at(nl, sizing, base, tech::Corner::kSlow);
  return sweep;
}

}  // namespace smart::core

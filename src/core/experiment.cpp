#include "core/experiment.h"

#include <algorithm>

#include "refsim/rc_timer.h"

namespace smart::core {

IsoDelayComparison run_iso_delay(const netlist::Netlist& nl,
                                 const tech::Tech& tech,
                                 const models::ModelLibrary& lib,
                                 const IsoDelayOptions& opt) {
  IsoDelayComparison cmp;

  BaselineSizer baseline(tech, opt.baseline);
  const auto base_sizing = baseline.size(nl);
  Sizer sizer(tech, lib);
  cmp.baseline = sizer.measure(nl, base_sizing);

  const refsim::RcTimer timer(tech);
  const auto base_report = timer.analyze(nl, base_sizing);

  SizerOptions sopt = opt.sizer;
  sopt.delay_spec_ps = cmp.baseline.measured_delay_ps;
  // The precharge must fit inside the opposite clock phase; with a
  // symmetric clock that budget is the evaluate-phase delay, so the
  // binding requirement is the looser of the original's settle time and
  // the phase budget.
  sopt.precharge_spec_ps =
      cmp.baseline.measured_precharge_ps > 0.0
          ? std::max(cmp.baseline.measured_precharge_ps,
                     cmp.baseline.measured_delay_ps)
          : -1.0;
  sopt.input_cap_limits_ff = sizer.input_caps(nl, base_sizing);
  // The SMART design must be a drop-in replacement: it may not have worse
  // edges than the original anywhere, but it need not be better either.
  sopt.slope_budget_ps = std::max(
      sopt.slope_budget_ps, base_report.max_internal_slope * 1.02);

  cmp.smart = sizer.size(nl, sopt);
  // Degraded-rung results (relaxed constraints or baseline fallback) are
  // usable sizings but not iso-delay wins: drop-in invariants only hold for
  // a fully constrained GP solve.
  cmp.ok = cmp.smart.ok && cmp.smart.rung == SizingRung::kGp &&
           cmp.smart.message == "converged";

  power::PowerEstimator estimator(tech);
  cmp.baseline_power = estimator.estimate(nl, base_sizing, opt.activity);
  if (cmp.smart.ok)
    cmp.smart_power = estimator.estimate(nl, cmp.smart.sizing, opt.activity);
  return cmp;
}

}  // namespace smart::core

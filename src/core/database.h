#pragma once

/// \file database.h
/// The SMART design database (paper §4): "a large expandable database of
/// the best available tried and tested topologies for the basic set of
/// macros. Whenever a designer comes up with an implementation not
/// available in the database, it can be incorporated" — hence a runtime
/// registry of topology generators rather than a closed enum.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace smart::core {

/// Request for one macro instance: its type, width, and the boundary
/// conditions of the instantiation site.
struct MacroSpec {
  std::string type;  ///< e.g. "mux", "incrementor", "zero_detect", ...
  int n = 0;         ///< fan-in for muxes, bit width for datapath macros
  /// Extra knobs a topology may honor (e.g. "partition" for split domino,
  /// "group" for comparator xorsum width).
  std::map<std::string, double> params;

  // Instantiation-site constraints applied to the generated netlist.
  double load_ff = 15.0;        ///< per-output external load
  double input_slope_ps = -1.0; ///< < 0 => technology default
  double input_arrival_ps = 0.0;
  /// Route capacitance each output travels over at this site (fF) — long
  /// interconnects favour tri-state topologies (paper Fig 2(d)).
  double output_wire_ff = 0.0;

  double param(const std::string& key, double fallback) const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

/// Builds an unsized, finalized netlist for a macro spec (ports already
/// configured from the spec's boundary conditions).
using TopologyGenerator =
    std::function<netlist::Netlist(const MacroSpec&)>;

/// Applies instantiation-site wiring from a spec to a generated macro
/// (currently: output route capacitance). Must run before finalization-
/// dependent analyses are cached — the advisor and experiment helpers call
/// it right after generation.
void apply_site_wiring(netlist::Netlist& nl, const MacroSpec& spec);

struct TopologyEntry {
  std::string name;         ///< e.g. "mux/strong_pass"
  std::string description;  ///< one-line designer-facing summary
  TopologyGenerator generate;
  /// Whether this topology applies to a spec (e.g. encoded-select muxes
  /// only exist for n == 2).
  std::function<bool(const MacroSpec&)> applicable;
};

/// Registry of macro topologies, keyed by macro type. Expandable at
/// runtime — the paper's "key element of SMART's design database".
class MacroDatabase {
 public:
  /// Registers a topology for a macro type. Names must be unique per type.
  void register_topology(const std::string& macro_type, TopologyEntry entry);

  /// All registered types.
  std::vector<std::string> macro_types() const;

  /// Topologies of a type applicable to a spec (all, if spec is nullptr).
  std::vector<const TopologyEntry*> topologies(
      const std::string& macro_type, const MacroSpec* spec = nullptr) const;

  /// Finds one topology by qualified name ("type/name"); nullptr if absent.
  const TopologyEntry* find(const std::string& macro_type,
                            const std::string& name) const;

 private:
  std::map<std::string, std::vector<TopologyEntry>> by_type_;
};

}  // namespace smart::core

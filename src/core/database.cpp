#include "core/database.h"

#include "util/check.h"

namespace smart::core {

void apply_site_wiring(netlist::Netlist& nl, const MacroSpec& spec) {
  if (spec.output_wire_ff <= 0.0) return;
  for (const auto& port : nl.outputs())
    nl.set_extra_wire(port.net, spec.output_wire_ff);
}

void MacroDatabase::register_topology(const std::string& macro_type,
                                      TopologyEntry entry) {
  SMART_CHECK(static_cast<bool>(entry.generate),
              "topology needs a generator: " + entry.name);
  auto& list = by_type_[macro_type];
  for (const auto& e : list)
    SMART_CHECK(e.name != entry.name,
                "duplicate topology name: " + macro_type + "/" + entry.name);
  if (!entry.applicable) entry.applicable = [](const MacroSpec&) { return true; };
  list.push_back(std::move(entry));
}

std::vector<std::string> MacroDatabase::macro_types() const {
  std::vector<std::string> types;
  types.reserve(by_type_.size());
  for (const auto& [type, list] : by_type_) types.push_back(type);
  return types;
}

std::vector<const TopologyEntry*> MacroDatabase::topologies(
    const std::string& macro_type, const MacroSpec* spec) const {
  std::vector<const TopologyEntry*> out;
  auto it = by_type_.find(macro_type);
  if (it == by_type_.end()) return out;
  for (const auto& e : it->second)
    if (spec == nullptr || e.applicable(*spec)) out.push_back(&e);
  return out;
}

const TopologyEntry* MacroDatabase::find(const std::string& macro_type,
                                         const std::string& name) const {
  auto it = by_type_.find(macro_type);
  if (it == by_type_.end()) return nullptr;
  for (const auto& e : it->second)
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace smart::core

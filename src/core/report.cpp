#include "core/report.h"

#include <map>
#include <sstream>

#include "util/strfmt.h"
#include "util/table.h"

namespace smart::core {

std::string describe_solution(const netlist::Netlist& nl,
                              const SizerResult& result,
                              const tech::Tech& tech) {
  std::ostringstream out;
  out << "macro " << nl.name() << " — " << result.message << "\n";
  out << util::strfmt(
      "  delay %.1f ps, precharge %.1f ps, total width %.1f um, clock "
      "width %.1f um\n",
      result.measured_delay_ps, result.measured_precharge_ps,
      result.total_width_um, result.clock_width_um);
  out << util::strfmt(
      "  %d respec iterations, %zu constraints from %zu paths (raw %.0f)\n",
      result.respec_iterations, result.constraint_count,
      result.path_stats.final_paths, result.path_stats.raw_topological);

  if (!result.sizing.empty()) {
    // Device count per label, for width context.
    std::map<netlist::LabelId, int> devices_per_label;
    for (size_t c = 0; c < nl.comp_count(); ++c)
      for (const auto& ref :
           nl.all_device_widths(static_cast<netlist::CompId>(c)))
        devices_per_label[ref.label]++;

    util::Table table({"label", "width (um)", "devices", "fixed"});
    for (size_t i = 0; i < nl.label_count(); ++i) {
      const auto id = static_cast<netlist::LabelId>(i);
      const auto& label = nl.label(id);
      table.add_row({label.name,
                     util::strfmt("%.2f", nl.label_width(id, result.sizing)),
                     util::strfmt("%d", devices_per_label[id]),
                     label.fixed ? "yes" : ""});
    }
    out << table.render();
  }

  if (!result.binding_constraints.empty()) {
    out << "  binding:";
    size_t shown = 0;
    for (const auto& tag : result.binding_constraints) {
      if (shown++ == 8) {
        out << util::strfmt(" ... (+%zu more)",
                            result.binding_constraints.size() - 8);
        break;
      }
      out << " " << tag;
    }
    out << "\n";
  }

  power::PowerEstimator estimator(tech);
  if (!result.sizing.empty()) {
    const auto p = estimator.estimate(nl, result.sizing);
    out << util::strfmt("  power %.3f mW (clock %.3f mW) @ %.1f GHz\n",
                        p.total_mw, p.clock_mw, tech.clock_ghz);
  }
  return out.str();
}

}  // namespace smart::core

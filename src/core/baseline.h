#pragma once

/// \file baseline.h
/// Baseline "hand design" sizing policy. The paper compares SMART against
/// manually sized production macros and attributes the baseline's excess
/// area/power to over-design under schedule pressure (§2c: "Tight schedule
/// constraints limit design space exploration, thus resulting in
/// over-design"). This policy reproduces that mechanism:
///   * every stage is sized by a local load rule (drive the measured load
///     at a fixed per-stage RC budget) — no global slack redistribution,
///   * a uniform guard margin is applied everywhere, critical or not,
///   * clocked devices (precharge, evaluate feet) get an extra robustness
///     factor, the way designers guard dynamic nodes.
/// The resulting design is functional and meets its own timing — SMART is
/// then asked to match the baseline's *measured* performance with less
/// width (the §6.1 experiment protocol).

#include "netlist/netlist.h"
#include "tech/tech.h"

namespace smart::core {

struct BaselineOptions {
  /// Per-stage RC delay budget (ps); smaller = faster, larger baseline.
  double stage_delay_ps = 30.0;
  /// Uniform over-design guard margin applied to every width.
  double margin = 1.2;
  /// Extra factor on clock-gated devices (precharge / evaluate feet).
  double clock_margin = 2.2;
  /// Minimum width floor (um); < 0 => technology minimum.
  double min_width_um = -1.0;
  /// Load-rule relaxation passes. Each pass re-derives every width from the
  /// loads implied by the previous pass; heavily self-loaded structures
  /// (wide domino nodes) keep growing for a few passes, reproducing the
  /// guard-banding hand designers apply to dynamic nodes.
  int passes = 5;
  /// Stop early when no width moved by more than this fraction.
  double pass_tol = 0.02;
};

/// Produces the "original design" sizing for a macro.
class BaselineSizer {
 public:
  explicit BaselineSizer(const tech::Tech& tech, BaselineOptions opt = {})
      : tech_(&tech), opt_(opt) {}

  netlist::Sizing size(const netlist::Netlist& nl) const;

 private:
  const tech::Tech* tech_;
  BaselineOptions opt_;
};

}  // namespace smart::core

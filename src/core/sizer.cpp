#include "core/sizer.h"

#include <algorithm>
#include <cmath>

#include "gp/verify.h"
#include "obs/obs.h"
#include "prof/resource.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::core {

using util::FailureReason;
using util::Status;

namespace {

/// Per-request telemetry: which degradation rung answered (or that none
/// could), plus the respec iteration count of the returned result.
void record_sizing(obs::Span& span, const SizerResult& r) {
  auto& tel = obs::Telemetry::instance();
  if (!tel.enabled()) return;
  tel.counter_add("sizer.size.calls");
  if (r.ok)
    tel.counter_add(std::string("sizer.rung.") + to_string(r.rung));
  else
    tel.counter_add("sizer.failed");
  tel.hist_record("sizer.respec.iterations", r.respec_iterations);
  span.arg("ok", r.ok ? 1.0 : 0.0);
  span.arg("rung", static_cast<double>(r.rung));
  span.arg("respec_iterations", r.respec_iterations);
}

}  // namespace

const char* to_string(SizingRung rung) {
  switch (rung) {
    case SizingRung::kGp:
      return "gp";
    case SizingRung::kGpRelaxed:
      return "gp_relaxed";
    case SizingRung::kBaseline:
      return "baseline_fallback";
  }
  return "unknown";
}

SizerResult Sizer::measure(const netlist::Netlist& nl,
                           const netlist::Sizing& sizing) const {
  const refsim::RcTimer timer(*tech_);
  const auto report = timer.analyze(nl, sizing);
  const auto stats = nl.device_stats(sizing);
  SizerResult r;
  r.ok = true;
  r.sizing = sizing;
  r.measured_delay_ps = report.worst_delay;
  r.measured_precharge_ps = report.worst_precharge;
  r.total_width_um = stats.total_width;
  r.clock_width_um = stats.clock_gate_width;
  return r;
}

std::vector<double> Sizer::input_caps(const netlist::Netlist& nl,
                                      const netlist::Sizing& sizing) const {
  const refsim::RcTimer timer(*tech_);
  std::vector<double> caps;
  caps.reserve(nl.inputs().size());
  for (const auto& p : nl.inputs())
    caps.push_back(timer.net_cap(nl, sizing, p.net));
  return caps;
}

SizerResult Sizer::size_gp(const netlist::Netlist& nl,
                           const SizerOptions& opt) const {
  auto& tel = obs::Telemetry::instance();
  const refsim::RcTimer timer(*tech_);

  // One wall-clock budget for the whole rung: extraction, constraint
  // generation (polled between parallel chunks), and every GP solve all
  // draw from it. opt.gp.deadline_ms < 0 disables (the default).
  const util::Deadline deadline = util::Deadline::from_ms(opt.gp.deadline_ms);

  const double target_delay = opt.delay_spec_ps;
  const double target_pre =
      opt.precharge_spec_ps > 0.0 ? opt.precharge_spec_ps : target_delay;

  // Model-facing specifications, retargeted each iteration by the
  // model-vs-reference mismatch. The slope budget also relaxes on repeated
  // infeasibility: the (conservative) slope models can over-predict edges
  // on heavily loaded dynamic nodes that the reference timer accepts.
  double model_spec = target_delay;
  double model_pre_spec = target_pre;
  double slope_budget = opt.slope_budget_ps;

  util::Vec warm_start;  // previous iteration's solution
  // Constraint templates are rebuilt only when the slope budget moves
  // (infeasibility relaxation); otherwise each iteration just re-normalizes
  // them for the new model-facing specs.
  GeneratedProblem gen;
  double built_slope_budget = -1.0;
  SizerResult best;
  best.message = "no feasible GP solve";
  Status last_fail = Status::Fail(FailureReason::kInfeasible,
                                  "no feasible GP solve");
  double best_err = 1e300;
  bool best_meets = false;
  double prev_width = -1.0;
  int total_newton = 0;

  // Introspection: per-iteration retargeting trace plus the parameters of
  // the accepted solve (for the optional snapshot regeneration below).
  std::vector<RespecIteration> respec_trace;
  int accepted_trace_idx = -1;
  gp::GpResult snap_gp;
  double snap_model_spec = 0.0, snap_model_pre = 0.0, snap_slope = 0.0;
  std::vector<double> snap_required;

  for (int iter = 0; iter < opt.max_respec_iters; ++iter) {
    if (deadline.expired()) {
      last_fail = Status::Fail(FailureReason::kTimeout,
                               "sizing deadline exceeded between respec "
                               "iterations");
      if (!best.ok) best.message = last_fail.to_string();
      break;
    }
    obs::Span iter_span("sizer.respec_iter");
    iter_span.arg("iter", iter);
    tel.counter_add("sizer.respec.iters");
    std::vector<double> scaled_required = opt.output_required_ps;
    for (auto& r : scaled_required)
      if (r > 0.0) r *= model_spec / target_delay;  // respec scales ports too

    {
      obs::Span gen_span("sizer.constraints");
      if (built_slope_budget != slope_budget) {
        ConstraintOptions copt;
        copt.delay_spec_ps = model_spec;
        copt.precharge_spec_ps = model_pre_spec;
        copt.slope_budget_ps = slope_budget;
        copt.enforce_slopes = opt.enforce_slopes;
        copt.otb = opt.otb;
        copt.cost = opt.cost;
        copt.activity = opt.activity;
        copt.prune = opt.prune;
        copt.input_cap_limit_ff = opt.input_cap_limit_ff;
        copt.input_cap_limits_ff = opt.input_cap_limits_ff;
        copt.output_required_ps = scaled_required;
        copt.deadline = deadline.enabled ? &deadline : nullptr;
        try {
          gen = generate_problem(nl, copt, *lib_, *tech_);
        } catch (const util::TimeoutError& e) {
          // Extraction/congen ran out of budget: report kTimeout and let
          // the ladder produce a valid (if unoptimized) point.
          last_fail = Status::Fail(FailureReason::kTimeout, e.what());
          if (!best.ok) best.message = last_fail.to_string();
          break;
        }
        built_slope_budget = slope_budget;
        // Pre-solve gate: statically reject degenerate problems (NaN
        // coefficients, box-infeasible constraints, unbounded variables)
        // instead of letting the solver burn restarts discovering the
        // same thing numerically. The structured reason feeds the same
        // degradation ladder a failed solve would.
        const auto wf =
            gp::verify_problem(*gen.problem, {}, nl.name());
        if (wf.errors() > 0) {
          last_fail = gp::verify_status(wf);
          if (!best.ok) {
            best.message = util::strfmt("GP rejected pre-solve: %s",
                                        last_fail.to_string().c_str());
            best.path_stats = gen.path_stats;
          }
          if (last_fail.reason == FailureReason::kInfeasible) {
            // Box-infeasible at this spec: relax exactly as a solver
            // phase-I failure would, and retry.
            model_spec *= 1.25;
            model_pre_spec *= 1.25;
            slope_budget = std::min(slope_budget * 1.15,
                                    opt.slope_budget_ps * 2.0);
            continue;
          }
          break;
        }
      } else {
        assemble_problem(gen, model_spec, model_pre_spec, opt.otb,
                         scaled_required, nl);
      }
    }

    // First iteration: accept a caller-provided warm start (a cached
    // neighbor's solution) when it matches the generated variable table
    // and is numerically sane; anything else degrades to a cold solve.
    if (iter == 0 && warm_start.empty() && !opt.warm_start.empty() &&
        opt.warm_start.size() == gen.vars->size()) {
      bool sane = true;
      for (const double v : opt.warm_start)
        if (!std::isfinite(v) || v <= 0.0) sane = false;
      if (sane) {
        warm_start = opt.warm_start;
        tel.counter_add("sizer.warm_start.accepted");
      } else {
        tel.counter_add("sizer.warm_start.rejected");
      }
    }

    gp::SolverOptions gpo = opt.gp;
    gpo.deadline_ms = deadline.remaining_ms();  // -1 when no deadline
    gp::GpSolver solver(gpo);
    const gp::GpResult sol =
        warm_start.empty() ? solver.solve(*gen.problem)
                           : solver.solve_from(*gen.problem, warm_start);
    total_newton += sol.newton_iterations;
    RespecIteration rec;
    rec.iter = iter;
    rec.model_spec_ps = model_spec;
    rec.model_pre_spec_ps = model_pre_spec;
    rec.gp_status = sol.status;
    rec.binding_count = sol.binding.size();
    if (sol.status == gp::SolveStatus::kInfeasible) {
      respec_trace.push_back(rec);
      // The model may overestimate delay (it is conservative); relax the
      // model-facing spec and retry. If the target is truly unreachable the
      // loop ends with a best-effort result whose message says so.
      last_fail = sol.diagnostics;
      if (!best.ok) {
        best.message = util::strfmt(
            "infeasible at model spec %.1f ps: %s", model_spec,
            sol.message.c_str());
        best.path_stats = gen.path_stats;
      }
      model_spec *= 1.25;
      model_pre_spec *= 1.25;
      slope_budget = std::min(slope_budget * 1.15,
                              opt.slope_budget_ps * 2.0);
      continue;
    }
    if (sol.status == gp::SolveStatus::kNumericalError ||
        sol.status == gp::SolveStatus::kTimeout ||
        sol.status == gp::SolveStatus::kInvalidInput) {
      respec_trace.push_back(rec);
      // Poisoned problem data or an exhausted deadline: retrying the respec
      // loop cannot fix either, so hand the structured reason up the ladder.
      last_fail = sol.diagnostics;
      if (!best.ok) {
        best.message = util::strfmt("GP solve failed: %s",
                                    sol.message.c_str());
        best.path_stats = gen.path_stats;
      }
      break;
    }
    // kOptimal and kMaxIter both carry a usable finite point; a best-effort
    // kMaxIter solution is verified against the reference timer like any
    // other and kept only if it measures well.

    warm_start = sol.x;
    auto sizing = sizing_from_solution(nl, gen, sol.x);
    if (opt.width_grid_um > 0.0) {
      for (size_t li = 0; li < nl.label_count(); ++li) {
        const auto& label = nl.label(static_cast<netlist::LabelId>(li));
        if (label.fixed) continue;
        const double cells = std::ceil(sizing[li] / opt.width_grid_um - 1e-9);
        sizing[li] = std::min(cells * opt.width_grid_um, label.w_max);
      }
    }
    const auto report = [&] {
      obs::Span verify_span("sizer.verify");
      return timer.analyze(nl, sizing);
    }();
    const auto stats = nl.device_stats(sizing);
    if (!std::isfinite(report.worst_delay) ||
        !std::isfinite(report.worst_precharge) ||
        !std::isfinite(stats.total_width)) {
      // Reference verification produced garbage (e.g. an injected timer
      // fault): this sizing cannot be trusted or compared.
      last_fail = Status::Fail(FailureReason::kNumericalError,
                               "non-finite reference-timer measurement");
      if (!best.ok) best.message = last_fail.to_string();
      respec_trace.push_back(rec);
      break;
    }

    // The delay spec is an upper bound: a design that is *faster* than the
    // target at minimum feasible width (e.g. pinned by slope constraints)
    // is converged, not an error.
    const double err_delay =
        std::max(0.0, (report.worst_delay - target_delay) / target_delay);
    const double slack_delay =
        std::max(0.0, (target_delay - report.worst_delay) / target_delay);
    const double err_pre =
        report.worst_precharge > 0.0
            ? std::max(0.0, (report.worst_precharge - target_pre) / target_pre)
            : 0.0;
    // Precharge only penalizes overshoot: settling early is free.
    const double err = std::max(err_delay, err_pre);

    const bool meets =
        report.worst_delay <= target_delay * (1 + opt.converge_tol) &&
        report.worst_precharge <= target_pre * (1 + opt.converge_tol);
    if (meets && best.converged_iteration < 0)
      best.converged_iteration = iter + 1;
    // Preference order: meeting spec with least width, then closest miss.
    const bool better =
        !best.ok ||
        (meets && (!best_meets || stats.total_width < best.total_width_um)) ||
        (!meets && !best_meets && err < best_err);
    if (better) {
      best.ok = true;
      best.sizing = sizing;
      best.measured_delay_ps = report.worst_delay;
      best.measured_precharge_ps = report.worst_precharge;
      best.total_width_um = stats.total_width;
      best.clock_width_um = stats.clock_gate_width;
      best.modeled_cost = sol.objective;
      best.path_stats = gen.path_stats;
      best.constraint_count = gen.timing_constraints +
                              gen.stage_constraints + gen.slope_constraints;
      best.binding_constraints = sol.binding;
      best.respec_iterations = iter + 1;
      best.solution_x = sol.x;
      best.message = meets ? "converged" : "best effort";
      best_err = err;
      best_meets = meets;
      accepted_trace_idx = static_cast<int>(respec_trace.size());
      if (opt.keep_solve_snapshot) {
        snap_gp = sol;
        snap_model_spec = model_spec;
        snap_model_pre = model_pre_spec;
        snap_slope = slope_budget;
        snap_required = scaled_required;
      }
    }
    rec.measured_delay_ps = report.worst_delay;
    rec.measured_precharge_ps = report.worst_precharge;
    rec.total_width_um = stats.total_width;
    rec.mismatch = std::fabs(report.worst_delay / model_spec - 1.0);
    rec.meets = meets;
    respec_trace.push_back(rec);

    // Model-vs-measured mismatch of this iteration: the GP sized to hit
    // model_spec, the reference timer measured worst_delay — their ratio is
    // the model error the respec loop corrects for ("better model accuracy
    // leads to faster convergence" — §5.1).
    if (tel.enabled()) {
      const double mismatch =
          std::fabs(report.worst_delay / model_spec - 1.0);
      tel.hist_record("sizer.respec.mismatch", mismatch);
      iter_span.arg("model_spec_ps", model_spec);
      iter_span.arg("measured_ps", report.worst_delay);
      iter_span.arg("mismatch", mismatch);
    }

    util::log_debug(util::strfmt(
        "sizer iter %d: model spec %.1f -> measured %.1f (target %.1f), "
        "width %.1f", iter, model_spec, report.worst_delay, target_delay,
        stats.total_width));

    if (meets && slack_delay <= opt.converge_tol) break;
    // Width stagnation with spec met: the solution is pinned by other
    // constraints (slopes, caps); relaxing the spec further cannot help.
    if (meets && prev_width > 0.0 &&
        std::fabs(stats.total_width - prev_width) < 0.005 * prev_width) {
      break;
    }
    prev_width = stats.total_width;

    // Retarget by the mismatch ratio, damped to avoid oscillation.
    const double ratio = std::clamp(
        target_delay / std::max(report.worst_delay, 1e-6), 0.5, 2.0);
    model_spec *= std::pow(ratio, 0.8);
    if (report.worst_precharge > 0.0) {
      const double pratio = std::clamp(
          target_pre / std::max(report.worst_precharge, 1e-6), 0.5, 2.0);
      model_pre_spec *= std::pow(pratio, 0.8);
    }
  }

  best.gp_newton_iterations = total_newton;
  best.status = best.ok ? Status::Ok() : last_fail;
  if (accepted_trace_idx >= 0 &&
      accepted_trace_idx < static_cast<int>(respec_trace.size()))
    respec_trace[static_cast<size_t>(accepted_trace_idx)].accepted = true;
  best.respec_trace = std::move(respec_trace);

  // Optional snapshot: regenerate the problem at the accepted iteration's
  // model-facing specs. generate_problem is deterministic in its options,
  // so the regenerated constraint order matches snap_gp.diag index-for-
  // index without having to copy a move-only GeneratedProblem mid-loop.
  if (opt.keep_solve_snapshot && best.ok && snap_model_spec > 0.0) {
    try {
      ConstraintOptions copt;
      copt.delay_spec_ps = snap_model_spec;
      copt.precharge_spec_ps = snap_model_pre;
      copt.slope_budget_ps = snap_slope;
      copt.enforce_slopes = opt.enforce_slopes;
      copt.otb = opt.otb;
      copt.cost = opt.cost;
      copt.activity = opt.activity;
      copt.prune = opt.prune;
      copt.input_cap_limit_ff = opt.input_cap_limit_ff;
      copt.input_cap_limits_ff = opt.input_cap_limits_ff;
      copt.output_required_ps = snap_required;
      auto snap = std::make_shared<SolveSnapshot>();
      snap->gen = generate_problem(nl, copt, *lib_, *tech_);
      snap->gp = std::move(snap_gp);
      snap->model_delay_spec_ps = snap_model_spec;
      snap->model_precharge_spec_ps = snap_model_pre;
      snap->slope_budget_ps = snap_slope;
      snap->target_delay_ps = target_delay;
      snap->target_precharge_ps = target_pre;
      snap->scaled_required_ps = snap_required;
      best.snapshot = std::move(snap);
    } catch (const std::exception& e) {
      // A snapshot is an introspection extra; failing to build one must
      // not fail a sizing that already verified.
      util::log_warn(util::strfmt("sizer: snapshot regeneration failed: %s",
                                  e.what()));
    }
  }
  return best;
}

SizerResult Sizer::size(const netlist::Netlist& nl,
                        const SizerOptions& opt) const {
  obs::Span size_span("sizer.size");
  prof::ResourceScope size_rusage("sizer.size");
  if (!(opt.delay_spec_ps > 0.0)) {
    SizerResult r;
    r.status = Status::Fail(FailureReason::kInvalidInput,
                            "delay spec must be positive");
    r.message = r.status.to_string();
    record_sizing(size_span, r);
    return r;
  }

  // The deadline budget spans the whole degradation ladder: a rung-2 retry
  // only gets what rung 1 left over, so a served request's budget bounds
  // the entire call, not each rung separately.
  const util::Deadline ladder_deadline =
      util::Deadline::from_ms(opt.gp.deadline_ms);

  // Rung 1: the full GP sizing loop.
  SizerResult first;
  try {
    first = size_gp(nl, opt);
  } catch (const util::TimeoutError& e) {
    first.ok = false;
    first.status = Status::Fail(FailureReason::kTimeout, e.what());
    first.message = first.status.to_string();
  } catch (const util::Error& e) {
    first.ok = false;
    first.status = Status::Fail(FailureReason::kNumericalError, e.what());
    first.message = first.status.to_string();
  } catch (const std::exception& e) {
    first.ok = false;
    first.status = Status::Fail(FailureReason::kInternal, e.what());
    first.message = first.status.to_string();
  }
  if (first.ok) {
    record_sizing(size_span, first);
    return first;
  }
  const Status gp_failure = first.status.ok()
                                ? Status::Fail(FailureReason::kInfeasible,
                                               first.message)
                                : first.status;

  // Rung 2: the slope and input-cap constraints are the usual source of
  // over-tight problems — drop them and retry a short respec loop.
  if (opt.allow_relaxed_retry &&
      (opt.enforce_slopes || opt.input_cap_limit_ff > 0.0 ||
       !opt.input_cap_limits_ff.empty())) {
    SizerOptions relaxed = opt;
    relaxed.enforce_slopes = false;
    relaxed.input_cap_limit_ff = -1.0;
    relaxed.input_cap_limits_ff.clear();
    relaxed.max_respec_iters = std::min(opt.max_respec_iters, 4);
    // The retry inherits only the unspent budget (0 when already over:
    // size_gp then times out immediately and the ladder falls through to
    // the cheap baseline rung).
    relaxed.gp.deadline_ms = ladder_deadline.remaining_ms();
    SizerResult second;
    try {
      second = size_gp(nl, relaxed);
    } catch (const std::exception&) {
      second.ok = false;
    }
    if (second.ok) {
      second.rung = SizingRung::kGpRelaxed;
      second.message = util::strfmt(
          "%s (relaxed: slope/cap constraints dropped after %s)",
          second.message.c_str(), gp_failure.to_string().c_str());
      util::log_warn(util::strfmt("sizer: %s degraded to relaxed GP (%s)",
                                  nl.name().c_str(),
                                  gp_failure.to_string().c_str()));
      record_sizing(size_span, second);
      return second;
    }
  }

  // Rung 3: proportional baseline sizing. Always yields a functional (if
  // over-designed) sizing, so sweeps over many candidates keep moving; the
  // status preserves why the optimizer could not do better.
  if (opt.allow_baseline_fallback) {
    try {
      const BaselineSizer baseline(*tech_, opt.fallback_baseline);
      SizerResult third = measure(nl, baseline.size(nl));
      if (std::isfinite(third.measured_delay_ps) &&
          std::isfinite(third.total_width_um)) {
        third.rung = SizingRung::kBaseline;
        third.status = gp_failure;
        third.gp_newton_iterations = first.gp_newton_iterations;
        third.message = util::strfmt("degraded to baseline fallback (%s)",
                                     gp_failure.to_string().c_str());
        util::log_warn(util::strfmt("sizer: %s degraded to baseline (%s)",
                                    nl.name().c_str(),
                                    gp_failure.to_string().c_str()));
        record_sizing(size_span, third);
        return third;
      }
    } catch (const std::exception&) {
      // fall through to the failed first-rung result
    }
  }

  first.status = gp_failure;
  record_sizing(size_span, first);
  return first;
}

}  // namespace smart::core

#pragma once

/// \file experiment.h
/// The paper's §6.1 experiment protocol, packaged for reuse by benches,
/// tests and examples: "we extracted each macro from the design and
/// measured its loading. The delay through it was measured using PathMill.
/// We used the SMART sizer to produce a design with the same topology and
/// performance. We re-ran PathMill to verify."
///
/// Concretely: baseline-size the macro (the "original" hand design),
/// measure it with the reference timer, then ask SMART for a design with
/// the same measured delay/precharge, no more input pin capacitance, and
/// no worse internal slopes — and compare width / clock load / power.

#include "core/baseline.h"
#include "core/sizer.h"
#include "power/power.h"

namespace smart::core {

/// Result of one iso-performance comparison.
struct IsoDelayComparison {
  bool ok = false;             ///< SMART produced a spec-meeting design
  SizerResult baseline;        ///< measured original design
  SizerResult smart;           ///< SMART solution
  power::PowerReport baseline_power;
  power::PowerReport smart_power;

  double width_saving() const {
    return 1.0 - smart.total_width_um / baseline.total_width_um;
  }
  /// Clock load saving; 0 when the macro has no clocked devices.
  double clock_saving() const {
    return baseline.clock_width_um > 0.0
               ? 1.0 - smart.clock_width_um / baseline.clock_width_um
               : 0.0;
  }
  double power_saving() const {
    return 1.0 - smart_power.total_mw / baseline_power.total_mw;
  }
};

struct IsoDelayOptions {
  BaselineOptions baseline;
  /// Base sizer options; delay/precharge specs, input cap limits and the
  /// slope budget are derived from the baseline design and overwritten.
  SizerOptions sizer;
  power::PowerOptions activity;
};

/// Runs the full §6.1 protocol on one finalized macro netlist.
IsoDelayComparison run_iso_delay(const netlist::Netlist& nl,
                                 const tech::Tech& tech,
                                 const models::ModelLibrary& lib,
                                 const IsoDelayOptions& opt = {});

}  // namespace smart::core

#pragma once

/// \file advisor.h
/// The SMART design advisor (paper Fig 1): given a macro instance with its
/// local constraints, searches the design database, sizes every applicable
/// topology for the designer's spec, and ranks the sized solutions by the
/// chosen cost metric — or hands the whole comparison to the designer
/// (Fig 7's topology exploration). Also produces area-delay trade-off
/// curves (Fig 6) by sweeping the delay specification.

#include <optional>

#include "core/baseline.h"
#include "core/database.h"
#include "core/sizer.h"

namespace smart::core {

/// Compact critical-path view of a sized candidate, extracted from the
/// reference timer's backtrace — the advise report's one-line answer to
/// "where does this topology's delay go and what limits it".
struct CriticalSummary {
  std::string startpoint;   ///< "<net> (R|F)" at the path source
  std::string endpoint;     ///< "<net> (R|F)" at the latest output
  double arrival_ps = 0.0;  ///< reference-timer arrival at the endpoint
  size_t stages = 0;        ///< arcs on the critical path
  std::string limited_by;   ///< first binding GP constraint tag, if any
};

/// One sized candidate from the advisor.
struct Solution {
  std::string topology;  ///< registered topology name
  netlist::Netlist netlist;
  SizerResult sizing;
  double cost_value = 0.0;  ///< value of the requested cost metric
  bool meets_spec = false;
  /// Wall-clock time spent generating + sizing + verifying this candidate.
  /// Always measured (not gated on tracing) so topology-comparison reports
  /// can show where a sweep's time went.
  double wall_ms = 0.0;
  /// Critical-path summary of the sized candidate; absent when the sizing
  /// failed or the backtrace could not be extracted.
  std::optional<CriticalSummary> critical;
};

struct AdvisorRequest {
  MacroSpec spec;
  double delay_spec_ps = 0.0;       ///< <= 0: derive from baseline sizing
  double precharge_spec_ps = -1.0;
  CostMetric cost = CostMetric::kTotalWidth;
  SizerOptions sizer;  ///< delay/precharge/cost fields are overwritten
  BaselineOptions baseline;
  /// Size candidate topologies concurrently (they are independent). The
  /// result is deterministic either way.
  bool parallel = true;
};

/// A candidate topology that could not be sized by the optimizer: either
/// the sizer failed outright or it degraded to the baseline fallback. The
/// status carries the structured FailureReason so sweep drivers can react
/// mechanically (skip, retry, or alert) per reason.
struct FailedCandidate {
  std::string topology;
  util::Status status;
  SizingRung rung = SizingRung::kGp;  ///< rung of the reported result
  std::string message;                ///< sizer's human-readable message
  double wall_ms = 0.0;               ///< time burned before giving up
};

/// Result of advising one macro instance. A poisoned or unsizable
/// candidate never aborts the sweep: it is recorded in `failures` and the
/// remaining topologies are ranked as usual.
struct Advice {
  std::vector<Solution> solutions;  ///< ranked, best first
  std::vector<FailedCandidate> failures;  ///< skipped candidates + reasons
  double derived_delay_spec_ps = 0.0;
  std::string message;

  const Solution* best() const {
    return solutions.empty() ? nullptr : &solutions.front();
  }
};

/// One point of an area-delay trade-off curve.
struct TradeoffPoint {
  double delay_spec_ps = 0.0;
  double measured_delay_ps = 0.0;
  double total_width_um = 0.0;
  bool feasible = false;
};

class DesignAdvisor {
 public:
  DesignAdvisor(const MacroDatabase& db, const tech::Tech& tech,
                const models::ModelLibrary& lib)
      : db_(&db), tech_(&tech), lib_(&lib) {}

  /// Sizes every applicable topology and ranks by cost. When the request
  /// has no explicit delay spec, the spec is derived by baseline-sizing the
  /// *first* applicable topology and measuring it — the §6.1 protocol
  /// ("produce a design with the same topology and performance").
  Advice advise(const AdvisorRequest& request) const;

  /// Sizes one named topology at a sweep of delay specs (Fig 6).
  std::vector<TradeoffPoint> tradeoff_curve(
      const netlist::Netlist& nl, const std::vector<double>& delay_specs,
      const SizerOptions& base_options) const;

 private:
  const MacroDatabase* db_;
  const tech::Tech* tech_;
  const models::ModelLibrary* lib_;
};

}  // namespace smart::core

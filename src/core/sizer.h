#pragma once

/// \file sizer.h
/// The SMART sizing engine (paper Fig 4). Fully automated loop:
///   1. generate posynomial constraints for the current delay specification,
///   2. solve the geometric program,
///   3. verify the sized netlist with the reference static timing engine,
///   4. if measured timing differs from the target, re-target the model
///      specification by the mismatch ratio and iterate until convergence.
/// "Better model accuracy leads to faster convergence" — the iteration
/// count is reported so the ablation benches can show exactly that.

#include <memory>
#include <string>

#include "core/baseline.h"
#include "core/constraints.h"
#include "gp/solver.h"
#include "refsim/rc_timer.h"
#include "util/status.h"

namespace smart::core {

struct SizerOptions {
  /// Target delay measured by the reference timer at the macro outputs (ps).
  double delay_spec_ps = 0.0;
  /// Target precharge settle time; < 0 => same as delay_spec_ps.
  double precharge_spec_ps = -1.0;
  double slope_budget_ps = 120.0;
  bool enforce_slopes = true;
  bool otb = true;
  CostMetric cost = CostMetric::kTotalWidth;
  power::PowerOptions activity;
  timing::PruneOptions prune;
  gp::SolverOptions gp;

  /// Input pin capacitance limits (see ConstraintOptions).
  double input_cap_limit_ff = -1.0;
  std::vector<double> input_cap_limits_ff;
  /// Per-output required times (see ConstraintOptions). When set, the
  /// verification step measures each port against its own deadline.
  std::vector<double> output_required_ps;

  int max_respec_iters = 10;
  /// Convergence: |measured - target| <= tol * target.
  double converge_tol = 0.02;

  /// Legal width grid (um). > 0 snaps every free label UP to the nearest
  /// grid point after optimization (rounding up preserves timing at a tiny
  /// width cost — the practical answer to the NP-complete discrete-sizing
  /// problem the paper cites as [5]). <= 0 leaves widths continuous.
  double width_grid_um = -1.0;

  /// Degraded-mode ladder (see SizingRung). Rung 2 retries a failed GP with
  /// slope and input-cap constraints dropped; rung 3 falls back to the
  /// proportional baseline sizer so the caller always gets *a* sizing.
  bool allow_relaxed_retry = true;
  bool allow_baseline_fallback = true;
  /// Options of the rung-3 baseline fallback.
  BaselineOptions fallback_baseline;

  /// Keep the accepted iteration's generated problem + GP solve in
  /// SizerResult::snapshot so report layers (scope) can map binding
  /// constraints back to paths. Costs one extra generate_problem() after
  /// the loop; off by default.
  bool keep_solve_snapshot = false;

  /// Warm start: seed the first GP solve from this point instead of the
  /// box midpoint (GpSolver::solve_from). The vector must be a previous
  /// SizerResult::solution_x of the *same* netlist under compatible
  /// options — the variable table is a deterministic function of the
  /// netlist, so points transfer between near-identical requests (the
  /// serving layer's result cache feeds this from a solved neighbor).
  /// Ignored when the size mismatches the generated variable table or any
  /// entry is non-finite/non-positive; a bad warm start degrades to a cold
  /// solve, never to a failure.
  std::vector<double> warm_start;
};

/// Which rung of the degradation ladder produced a SizerResult.
enum class SizingRung {
  kGp = 0,       ///< the full GP sizing loop
  kGpRelaxed,    ///< GP with slope/input-cap constraints dropped (rung 2)
  kBaseline,     ///< proportional baseline fallback (rung 3)
};

const char* to_string(SizingRung rung);

/// The GP problem and solve behind an accepted sizing, kept only when
/// SizerOptions::keep_solve_snapshot is set. `gen` is regenerated at the
/// accepted iteration's model-facing specs after the loop finishes, so its
/// constraint order matches `gp.diag.constraints` index-for-index (both are
/// deterministic functions of the options).
struct SolveSnapshot {
  GeneratedProblem gen;
  gp::GpResult gp;                    ///< accepted solve incl. diagnostics
  double model_delay_spec_ps = 0.0;   ///< model-facing spec of the solve
  double model_precharge_spec_ps = 0.0;
  double slope_budget_ps = 0.0;
  double target_delay_ps = 0.0;       ///< designer-facing spec
  double target_precharge_ps = 0.0;
  std::vector<double> scaled_required_ps;  ///< per-output, model-facing
};

/// One iteration of the model-vs-STA re-specification loop, recorded for
/// every size_gp run (cheap: a dozen scalars per iteration). Iterations
/// whose GP solve failed outright carry the status and zeroed measurements.
struct RespecIteration {
  int iter = 0;                     ///< 0-based loop iteration
  double model_spec_ps = 0.0;       ///< model-facing spec the GP sized to
  double model_pre_spec_ps = 0.0;
  double measured_delay_ps = 0.0;   ///< reference-timer verification
  double measured_precharge_ps = 0.0;
  double mismatch = 0.0;            ///< |measured/model_spec - 1|
  double total_width_um = 0.0;
  size_t binding_count = 0;         ///< binding constraints of the solve
  gp::SolveStatus gp_status = gp::SolveStatus::kMaxIter;
  bool meets = false;               ///< measured within converge_tol of spec
  bool accepted = false;            ///< became the returned best solution
};

struct SizerResult {
  bool ok = false;
  netlist::Sizing sizing;
  double measured_delay_ps = 0.0;      ///< reference-timer delay at outputs
  double measured_precharge_ps = 0.0;  ///< reference-timer precharge settle
  double total_width_um = 0.0;
  double clock_width_um = 0.0;
  double modeled_cost = 0.0;  ///< GP objective at the solution
  int respec_iterations = 0;       ///< iteration of the returned solution
  int converged_iteration = -1;    ///< first iteration that met the spec
  int gp_newton_iterations = 0;
  timing::PathStats path_stats;
  size_t constraint_count = 0;
  /// Constraints active at the GP solution ("what limits this design"):
  /// eval/pre path tags, slope_<net>, incap_<net>, stage<k> deadlines.
  std::vector<std::string> binding_constraints;
  std::string message;
  /// Which ladder rung produced the sizing. kGp/kGpRelaxed results came
  /// from the optimizer; kBaseline means the GP failed and the result is
  /// the proportional fallback (status then records why the GP failed).
  SizingRung rung = SizingRung::kGp;
  /// ok() for healthy GP results; carries the structured FailureReason of
  /// the GP failure for degraded (kBaseline) or failed (!ok) results.
  util::Status status;
  /// Model-vs-STA retargeting trace of the GP respec loop (empty for
  /// baseline-only results). Always recorded; at most max_respec_iters
  /// entries.
  std::vector<RespecIteration> respec_trace;
  /// Set only with SizerOptions::keep_solve_snapshot on a GP-rung result.
  /// shared_ptr keeps SizerResult copyable (GeneratedProblem is move-only).
  std::shared_ptr<SolveSnapshot> snapshot;
  /// GP solution point of the accepted solve (variable-table order);
  /// empty for baseline-rung and failed results. Feeding it back through
  /// SizerOptions::warm_start on a near-identical request skips phase I
  /// and most of the barrier schedule — the result cache's warm-start
  /// currency.
  std::vector<double> solution_x;
};

/// Sizes macros against a technology and calibrated model library.
class Sizer {
 public:
  Sizer(const tech::Tech& tech, const models::ModelLibrary& lib)
      : tech_(&tech), lib_(&lib) {}

  /// Runs the full sizing loop on a finalized netlist. Never throws: GP
  /// failures walk the degradation ladder (relaxed constraints, then the
  /// proportional baseline) and the returned result's rung/status/message
  /// say which rung produced it and why degradation was needed.
  SizerResult size(const netlist::Netlist& nl,
                   const SizerOptions& opt) const;

  /// Measures a sizing with the reference timer (delay, precharge, widths).
  SizerResult measure(const netlist::Netlist& nl,
                      const netlist::Sizing& sizing) const;

  /// Capacitance presented at each input port under a sizing (fF), in
  /// Netlist::inputs() order — used to carry a baseline design's pin loads
  /// into the SMART run as load constraints (drop-in replacement).
  std::vector<double> input_caps(const netlist::Netlist& nl,
                                 const netlist::Sizing& sizing) const;

 private:
  /// Rung 1/2 worker: the GP respec loop. Reports failure through the
  /// result's status instead of throwing.
  SizerResult size_gp(const netlist::Netlist& nl,
                      const SizerOptions& opt) const;

  const tech::Tech* tech_;
  const models::ModelLibrary* lib_;
};

}  // namespace smart::core

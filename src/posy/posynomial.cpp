#include "posy/posynomial.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/check.h"

namespace smart::posy {

Posynomial::Posynomial(double c) {
  SMART_CHECK(c >= 0.0, "posynomial constant must be non-negative");
  if (c > 0.0) terms_.push_back(Monomial(c));
}

Posynomial::Posynomial(const Monomial& m) { add_term(m); }

const Monomial& Posynomial::as_monomial() const {
  SMART_CHECK(terms_.size() == 1, "posynomial is not a single monomial");
  return terms_.front();
}

bool Posynomial::is_constant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_[0].is_constant());
}

double Posynomial::constant_value() const {
  SMART_CHECK(is_constant(), "posynomial is not constant");
  return terms_.empty() ? 0.0 : terms_[0].coeff();
}

void Posynomial::add_term(const Monomial& m) {
  SMART_CHECK(m.coeff() >= 0.0, "posynomial terms need non-negative coeffs");
  if (m.coeff() == 0.0) return;
  for (auto& t : terms_) {
    if (t.same_variables(m)) {
      t.set_coeff(t.coeff() + m.coeff());
      return;
    }
  }
  terms_.push_back(m);
}

Posynomial& Posynomial::operator+=(const Posynomial& rhs) {
  // Self-addition is safe because add_term only grows terms_ and we copy
  // rhs terms by value when &rhs == this.
  if (&rhs == this) {
    *this *= 2.0;
    return *this;
  }
  for (const auto& t : rhs.terms_) add_term(t);
  return *this;
}

Posynomial& Posynomial::operator+=(const Monomial& m) {
  add_term(m);
  return *this;
}

Posynomial& Posynomial::add_scaled(const Posynomial& rhs, double s) {
  SMART_CHECK(s >= 0.0, "posynomial scaling must be non-negative");
  if (s == 0.0) return *this;
  for (const auto& t : rhs.terms_) {
    Monomial m = t;
    m *= s;
    add_term(m);
  }
  return *this;
}

Posynomial& Posynomial::operator*=(const Monomial& m) {
  if (m.coeff() == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& t : terms_) t *= m;
  return *this;
}

Posynomial& Posynomial::operator*=(double s) {
  SMART_CHECK(s >= 0.0, "posynomial scaling must be non-negative");
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& t : terms_) t *= s;
  return *this;
}

Posynomial& Posynomial::operator*=(const Posynomial& rhs) {
  const std::vector<Monomial> lhs_terms = std::move(terms_);
  const std::vector<Monomial> rhs_terms =
      (&rhs == this) ? lhs_terms : rhs.terms_;
  terms_.clear();
  for (const auto& a : lhs_terms)
    for (const auto& b : rhs_terms) add_term(a * b);
  return *this;
}

double Posynomial::eval(const util::Vec& x) const {
  double v = 0.0;
  for (const auto& t : terms_) v += t.eval(x);
  return v;
}

double Posynomial::eval_log(const util::Vec& y) const {
  SMART_CHECK(!terms_.empty(), "eval_log of zero posynomial");
  // Numerically stable log-sum-exp.
  double zmax = -1e300;
  std::vector<double> z(terms_.size());
  for (size_t k = 0; k < terms_.size(); ++k) {
    z[k] = terms_[k].eval_log(y);
    zmax = std::max(zmax, z[k]);
  }
  double acc = 0.0;
  for (double zk : z) acc += std::exp(zk - zmax);
  return zmax + std::log(acc);
}

namespace {

uint64_t factor_hash(const Monomial& m) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& f : m.factors()) {
    uint64_t v = static_cast<uint64_t>(f.var);
    uint64_t e;
    static_assert(sizeof(e) == sizeof(f.exp));
    std::memcpy(&e, &f.exp, sizeof(e));
    v = (v ^ (e * 0xff51afd7ed558ccdULL)) * 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    h = (h ^ v) * 0x2545f4914f6cdd1dULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

void PosyAccum::add(const Monomial& m) {
  SMART_CHECK(m.coeff() >= 0.0, "posynomial terms need non-negative coeffs");
  if (m.coeff() == 0.0) return;
  if ((terms_.size() + 1) * 2 > slots_.size()) grow();
  const uint64_t h = factor_hash(m);
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  for (;;) {
    const uint32_t slot = slots_[i];
    if (slot == 0) {
      slots_[i] = static_cast<uint32_t>(terms_.size()) + 1;
      hashes_.push_back(h);
      terms_.push_back(m);
      return;
    }
    Monomial& t = terms_[slot - 1];
    if (hashes_[slot - 1] == h && t.same_variables(m)) {
      t.set_coeff(t.coeff() + m.coeff());
      return;
    }
    i = (i + 1) & mask;
  }
}

void PosyAccum::grow() {
  const size_t want = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(want, 0);
  const size_t mask = want - 1;
  for (size_t k = 0; k < terms_.size(); ++k) {
    size_t i = static_cast<size_t>(hashes_[k]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(k) + 1;
  }
}

Posynomial PosyAccum::snapshot() const {
  Posynomial p;
  p.terms_ = terms_;
  return p;
}

Posynomial PosyAccum::take() {
  Posynomial p;
  p.terms_ = std::move(terms_);
  terms_.clear();
  hashes_.clear();
  slots_.clear();
  return p;
}

std::string Posynomial::to_string(const VarTable& vars) const {
  if (terms_.empty()) return "0";
  std::ostringstream out;
  for (size_t k = 0; k < terms_.size(); ++k) {
    if (k) out << " + ";
    out << terms_[k].to_string(vars);
  }
  return out.str();
}

}  // namespace smart::posy

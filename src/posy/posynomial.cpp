#include "posy/posynomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace smart::posy {

Posynomial::Posynomial(double c) {
  SMART_CHECK(c >= 0.0, "posynomial constant must be non-negative");
  if (c > 0.0) terms_.push_back(Monomial(c));
}

Posynomial::Posynomial(const Monomial& m) { add_term(m); }

const Monomial& Posynomial::as_monomial() const {
  SMART_CHECK(terms_.size() == 1, "posynomial is not a single monomial");
  return terms_.front();
}

bool Posynomial::is_constant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_[0].is_constant());
}

double Posynomial::constant_value() const {
  SMART_CHECK(is_constant(), "posynomial is not constant");
  return terms_.empty() ? 0.0 : terms_[0].coeff();
}

void Posynomial::add_term(const Monomial& m) {
  SMART_CHECK(m.coeff() >= 0.0, "posynomial terms need non-negative coeffs");
  if (m.coeff() == 0.0) return;
  for (auto& t : terms_) {
    if (t.same_variables(m)) {
      t.set_coeff(t.coeff() + m.coeff());
      return;
    }
  }
  terms_.push_back(m);
}

Posynomial& Posynomial::operator+=(const Posynomial& rhs) {
  // Self-addition is safe because add_term only grows terms_ and we copy
  // rhs terms by value when &rhs == this.
  if (&rhs == this) {
    *this *= 2.0;
    return *this;
  }
  for (const auto& t : rhs.terms_) add_term(t);
  return *this;
}

Posynomial& Posynomial::operator+=(const Monomial& m) {
  add_term(m);
  return *this;
}

Posynomial& Posynomial::operator*=(const Monomial& m) {
  if (m.coeff() == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& t : terms_) t *= m;
  return *this;
}

Posynomial& Posynomial::operator*=(double s) {
  SMART_CHECK(s >= 0.0, "posynomial scaling must be non-negative");
  if (s == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& t : terms_) t *= s;
  return *this;
}

Posynomial& Posynomial::operator*=(const Posynomial& rhs) {
  const std::vector<Monomial> lhs_terms = std::move(terms_);
  const std::vector<Monomial> rhs_terms =
      (&rhs == this) ? lhs_terms : rhs.terms_;
  terms_.clear();
  for (const auto& a : lhs_terms)
    for (const auto& b : rhs_terms) add_term(a * b);
  return *this;
}

double Posynomial::eval(const util::Vec& x) const {
  double v = 0.0;
  for (const auto& t : terms_) v += t.eval(x);
  return v;
}

double Posynomial::eval_log(const util::Vec& y) const {
  SMART_CHECK(!terms_.empty(), "eval_log of zero posynomial");
  // Numerically stable log-sum-exp.
  double zmax = -1e300;
  std::vector<double> z(terms_.size());
  for (size_t k = 0; k < terms_.size(); ++k) {
    z[k] = terms_[k].eval_log(y);
    zmax = std::max(zmax, z[k]);
  }
  double acc = 0.0;
  for (double zk : z) acc += std::exp(zk - zmax);
  return zmax + std::log(acc);
}

std::string Posynomial::to_string(const VarTable& vars) const {
  if (terms_.empty()) return "0";
  std::ostringstream out;
  for (size_t k = 0; k < terms_.size(); ++k) {
    if (k) out << " + ";
    out << terms_[k].to_string(vars);
  }
  return out.str();
}

}  // namespace smart::posy

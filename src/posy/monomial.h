#pragma once

/// \file monomial.h
/// Monomial c * prod_i x_i^{a_i} with c > 0 and real exponents — the atom of
/// geometric programming (paper §5: posynomial component models).

#include <string>
#include <vector>

#include "posy/variable.h"
#include "util/linalg.h"

namespace smart::posy {

/// One (variable, exponent) factor of a monomial.
struct ExpFactor {
  VarId var = -1;
  double exp = 0.0;

  friend bool operator==(const ExpFactor&, const ExpFactor&) = default;
};

/// Monomial with positive coefficient. Exponent factors are kept sorted by
/// variable id with zero exponents removed, so structural equality of the
/// factor vectors means mathematical equality of the variable parts.
class Monomial {
 public:
  /// The constant monomial 1.
  Monomial() = default;

  /// Constant monomial c (c > 0 required; c == 0 is representable so that
  /// posynomial arithmetic can drop it, but it never reaches the solver).
  explicit Monomial(double coeff) : coeff_(coeff) {}

  /// The monomial x_v^e.
  static Monomial variable(VarId v, double e = 1.0);

  double coeff() const { return coeff_; }
  void set_coeff(double c) { coeff_ = c; }
  const std::vector<ExpFactor>& factors() const { return factors_; }

  bool is_constant() const { return factors_.empty(); }
  /// True when the variable part matches (coefficients may differ).
  bool same_variables(const Monomial& other) const {
    return factors_ == other.factors_;
  }

  /// Multiplies in x_v^e.
  Monomial& mul_var(VarId v, double e);

  Monomial& operator*=(const Monomial& rhs);
  friend Monomial operator*(Monomial lhs, const Monomial& rhs) {
    lhs *= rhs;
    return lhs;
  }
  Monomial& operator*=(double s) {
    coeff_ *= s;
    return *this;
  }
  friend Monomial operator*(Monomial lhs, double s) {
    lhs *= s;
    return lhs;
  }
  friend Monomial operator*(double s, Monomial rhs) {
    rhs *= s;
    return rhs;
  }

  /// Raises the monomial to a real power (coefficient must be > 0).
  Monomial pow(double e) const;

  /// Returns 1 / m.
  Monomial inverse() const { return pow(-1.0); }

  /// Evaluates at x (values of all variables, indexed by VarId).
  double eval(const util::Vec& x) const;

  /// Evaluates log(m) at y = log x; requires coeff > 0.
  double eval_log(const util::Vec& y) const;

  /// Human-readable form, e.g. "2.5*Wp^-1*Cl".
  std::string to_string(const VarTable& vars) const;

 private:
  double coeff_ = 1.0;
  std::vector<ExpFactor> factors_;
};

}  // namespace smart::posy

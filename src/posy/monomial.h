#pragma once

/// \file monomial.h
/// Monomial c * prod_i x_i^{a_i} with c > 0 and real exponents — the atom of
/// geometric programming (paper §5: posynomial component models).

#include <cstddef>
#include <cstdint>
#include <string>

#include "posy/variable.h"
#include "util/linalg.h"

namespace smart::posy {

/// One (variable, exponent) factor of a monomial.
struct ExpFactor {
  VarId var = -1;
  double exp = 0.0;

  friend bool operator==(const ExpFactor&, const ExpFactor&) = default;
};

/// Factor storage with inline capacity for the common short monomial
/// (delay/cap terms have 1-4 factors); heap allocation only beyond that.
/// Monomials are copied constantly during posynomial arithmetic, and the
/// per-copy heap round-trip of std::vector dominated constraint-generation
/// profiles.
class FactorVec {
 public:
  using value_type = ExpFactor;
  using iterator = ExpFactor*;
  using const_iterator = const ExpFactor*;

  FactorVec() = default;
  FactorVec(const FactorVec& o) { assign(o); }
  FactorVec(FactorVec&& o) noexcept { steal(o); }
  FactorVec& operator=(const FactorVec& o) {
    if (this != &o) {
      clear_storage();
      assign(o);
    }
    return *this;
  }
  FactorVec& operator=(FactorVec&& o) noexcept {
    if (this != &o) {
      clear_storage();
      steal(o);
    }
    return *this;
  }
  ~FactorVec() { delete[] heap_; }

  ExpFactor* begin() { return data(); }
  ExpFactor* end() { return data() + size_; }
  const ExpFactor* begin() const { return data(); }
  const ExpFactor* end() const { return data() + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ExpFactor& operator[](size_t i) { return data()[i]; }
  const ExpFactor& operator[](size_t i) const { return data()[i]; }

  void insert(ExpFactor* pos, const ExpFactor& f) {
    const size_t idx = static_cast<size_t>(pos - data());
    if (size_ == cap_) grow(cap_ * 2);
    ExpFactor* d = data();
    for (size_t k = size_; k > idx; --k) d[k] = d[k - 1];
    d[idx] = f;
    ++size_;
  }
  void erase(ExpFactor* pos) {
    ExpFactor* d = data();
    for (size_t k = static_cast<size_t>(pos - d); k + 1 < size_; ++k)
      d[k] = d[k + 1];
    --size_;
  }

  friend bool operator==(const FactorVec& a, const FactorVec& b) {
    if (a.size_ != b.size_) return false;
    const ExpFactor* pa = a.data();
    const ExpFactor* pb = b.data();
    for (size_t k = 0; k < a.size_; ++k)
      if (!(pa[k] == pb[k])) return false;
    return true;
  }

 private:
  static constexpr uint32_t kInline = 4;

  ExpFactor* data() { return heap_ ? heap_ : inline_; }
  const ExpFactor* data() const { return heap_ ? heap_ : inline_; }

  void assign(const FactorVec& o) {
    size_ = o.size_;
    if (size_ > kInline) {
      cap_ = size_;
      heap_ = new ExpFactor[cap_];
    }
    const ExpFactor* s = o.data();
    ExpFactor* d = data();
    for (size_t k = 0; k < size_; ++k) d[k] = s[k];
  }
  void steal(FactorVec& o) {
    size_ = o.size_;
    cap_ = o.cap_;
    heap_ = o.heap_;
    if (!heap_)
      for (size_t k = 0; k < size_; ++k) inline_[k] = o.inline_[k];
    o.heap_ = nullptr;
    o.size_ = 0;
    o.cap_ = kInline;
  }
  void clear_storage() {
    delete[] heap_;
    heap_ = nullptr;
    size_ = 0;
    cap_ = kInline;
  }
  void grow(uint32_t want) {
    auto* bigger = new ExpFactor[want];
    const ExpFactor* d = data();
    for (size_t k = 0; k < size_; ++k) bigger[k] = d[k];
    delete[] heap_;
    heap_ = bigger;
    cap_ = want;
  }

  uint32_t size_ = 0;
  uint32_t cap_ = kInline;
  ExpFactor* heap_ = nullptr;
  ExpFactor inline_[kInline];
};

/// Monomial with positive coefficient. Exponent factors are kept sorted by
/// variable id with zero exponents removed, so structural equality of the
/// factor vectors means mathematical equality of the variable parts.
class Monomial {
 public:
  /// The constant monomial 1.
  Monomial() = default;

  /// Constant monomial c (c > 0 required; c == 0 is representable so that
  /// posynomial arithmetic can drop it, but it never reaches the solver).
  explicit Monomial(double coeff) : coeff_(coeff) {}

  /// The monomial x_v^e.
  static Monomial variable(VarId v, double e = 1.0);

  double coeff() const { return coeff_; }
  void set_coeff(double c) { coeff_ = c; }
  const FactorVec& factors() const { return factors_; }

  bool is_constant() const { return factors_.empty(); }
  /// True when the variable part matches (coefficients may differ).
  bool same_variables(const Monomial& other) const {
    return factors_ == other.factors_;
  }

  /// Multiplies in x_v^e.
  Monomial& mul_var(VarId v, double e);

  Monomial& operator*=(const Monomial& rhs);
  friend Monomial operator*(Monomial lhs, const Monomial& rhs) {
    lhs *= rhs;
    return lhs;
  }
  Monomial& operator*=(double s) {
    coeff_ *= s;
    return *this;
  }
  friend Monomial operator*(Monomial lhs, double s) {
    lhs *= s;
    return lhs;
  }
  friend Monomial operator*(double s, Monomial rhs) {
    rhs *= s;
    return rhs;
  }

  /// Raises the monomial to a real power (coefficient must be > 0).
  Monomial pow(double e) const;

  /// Returns 1 / m.
  Monomial inverse() const { return pow(-1.0); }

  /// Evaluates at x (values of all variables, indexed by VarId).
  double eval(const util::Vec& x) const;

  /// Evaluates log(m) at y = log x; requires coeff > 0.
  double eval_log(const util::Vec& y) const;

  /// Human-readable form, e.g. "2.5*Wp^-1*Cl".
  std::string to_string(const VarTable& vars) const;

 private:
  double coeff_ = 1.0;
  FactorVec factors_;
};

}  // namespace smart::posy

#pragma once

/// \file variable.h
/// Optimization-variable registry. Each transistor size label in a macro
/// schematic maps to one positive variable; the table owns the id -> name
/// mapping and box bounds used by the GP solver.

#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace smart::posy {

/// Index of an optimization variable inside a VarTable.
using VarId = int;

/// Per-variable data: name plus positive box bounds (lo <= x <= hi).
struct VarInfo {
  std::string name;
  double lower = 1e-3;
  double upper = 1e6;
};

/// Registry of named positive variables.
class VarTable {
 public:
  /// Adds a variable with a unique name; returns its id.
  VarId add(const std::string& name, double lower = 1e-3,
            double upper = 1e6) {
    SMART_CHECK(by_name_.find(name) == by_name_.end(),
                "duplicate variable name: " + name);
    SMART_CHECK(lower > 0.0 && upper >= lower,
                "variable bounds must satisfy 0 < lower <= upper: " + name);
    const VarId id = static_cast<VarId>(vars_.size());
    vars_.push_back(VarInfo{name, lower, upper});
    by_name_.emplace(name, id);
    return id;
  }

  /// Returns the id for a name, or -1 if absent.
  VarId find(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? -1 : it->second;
  }

  size_t size() const { return vars_.size(); }
  const VarInfo& info(VarId id) const { return vars_.at(static_cast<size_t>(id)); }
  const std::string& name(VarId id) const { return info(id).name; }

  void set_bounds(VarId id, double lower, double upper) {
    SMART_CHECK(lower > 0.0 && upper >= lower, "invalid bounds");
    vars_.at(static_cast<size_t>(id)).lower = lower;
    vars_.at(static_cast<size_t>(id)).upper = upper;
  }

 private:
  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, VarId> by_name_;
};

}  // namespace smart::posy

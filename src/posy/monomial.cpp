#include "posy/monomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace smart::posy {

Monomial Monomial::variable(VarId v, double e) {
  Monomial m;
  m.mul_var(v, e);
  return m;
}

Monomial& Monomial::mul_var(VarId v, double e) {
  SMART_CHECK(v >= 0, "invalid variable id");
  if (e == 0.0) return *this;
  auto it = std::lower_bound(
      factors_.begin(), factors_.end(), v,
      [](const ExpFactor& f, VarId id) { return f.var < id; });
  if (it != factors_.end() && it->var == v) {
    it->exp += e;
    if (it->exp == 0.0) factors_.erase(it);
  } else {
    factors_.insert(it, ExpFactor{v, e});
  }
  return *this;
}

Monomial& Monomial::operator*=(const Monomial& rhs) {
  coeff_ *= rhs.coeff_;
  for (const auto& f : rhs.factors_) mul_var(f.var, f.exp);
  return *this;
}

Monomial Monomial::pow(double e) const {
  SMART_CHECK(coeff_ > 0.0, "pow requires positive coefficient");
  Monomial out(std::pow(coeff_, e));
  if (e != 0.0) {
    out.factors_ = factors_;
    for (auto& f : out.factors_) f.exp *= e;
  }
  return out;
}

double Monomial::eval(const util::Vec& x) const {
  double v = coeff_;
  for (const auto& f : factors_) {
    const double xv = x.at(static_cast<size_t>(f.var));
    v *= std::pow(xv, f.exp);
  }
  return v;
}

double Monomial::eval_log(const util::Vec& y) const {
  SMART_CHECK(coeff_ > 0.0, "eval_log requires positive coefficient");
  double v = std::log(coeff_);
  for (const auto& f : factors_) v += f.exp * y.at(static_cast<size_t>(f.var));
  return v;
}

std::string Monomial::to_string(const VarTable& vars) const {
  std::ostringstream out;
  out << coeff_;
  for (const auto& f : factors_) {
    out << "*" << vars.name(f.var);
    if (f.exp != 1.0) out << "^" << f.exp;
  }
  return out.str();
}

}  // namespace smart::posy

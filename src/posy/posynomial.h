#pragma once

/// \file posynomial.h
/// Posynomial (sum of positive-coefficient monomials). SMART's delay, slope,
/// load, and noise constraints are all posynomial (paper §5.1), which makes
/// the sizing problem a geometric program.

#include <string>
#include <vector>

#include "posy/monomial.h"

namespace smart::posy {

/// Sum of monomials with positive coefficients. The empty posynomial is 0
/// (allowed during construction; the GP layer rejects it in constraints).
/// Terms with equal variable parts are merged on every mutation, so term
/// count reflects distinct monomial shapes.
class Posynomial {
 public:
  Posynomial() = default;

  /// Constant posynomial (c >= 0; c == 0 gives the zero posynomial).
  explicit Posynomial(double c);

  /// Posynomial with a single monomial term (coeff 0 gives zero posynomial).
  Posynomial(const Monomial& m);  // NOLINT(google-explicit-constructor)

  static Posynomial variable(VarId v, double e = 1.0) {
    return Posynomial(Monomial::variable(v, e));
  }

  const std::vector<Monomial>& terms() const { return terms_; }
  size_t num_terms() const { return terms_.size(); }
  bool is_zero() const { return terms_.empty(); }
  bool is_monomial() const { return terms_.size() == 1; }
  /// Returns the single term; requires is_monomial().
  const Monomial& as_monomial() const;
  /// True when the posynomial is a single constant term (or zero).
  bool is_constant() const;
  /// Value of a constant posynomial.
  double constant_value() const;

  Posynomial& operator+=(const Posynomial& rhs);
  Posynomial& operator+=(const Monomial& m);
  /// Adds s-scaled copies of rhs's terms: identical to `*this += rhs * s`
  /// without materializing the intermediate posynomial.
  Posynomial& add_scaled(const Posynomial& rhs, double s);
  Posynomial& operator+=(double c) { return *this += Monomial(c); }
  Posynomial& operator*=(const Monomial& m);
  Posynomial& operator*=(double s);
  /// Full posynomial product (term count multiplies; used sparingly).
  Posynomial& operator*=(const Posynomial& rhs);
  /// Divides by a monomial (the only division closed over posynomials).
  Posynomial& operator/=(const Monomial& m) { return *this *= m.inverse(); }

  friend Posynomial operator+(Posynomial a, const Posynomial& b) {
    a += b;
    return a;
  }
  friend Posynomial operator*(Posynomial a, const Monomial& m) {
    a *= m;
    return a;
  }
  friend Posynomial operator*(Posynomial a, double s) {
    a *= s;
    return a;
  }
  friend Posynomial operator*(double s, Posynomial a) {
    a *= s;
    return a;
  }
  friend Posynomial operator*(Posynomial a, const Posynomial& b) {
    a *= b;
    return a;
  }
  friend Posynomial operator/(Posynomial a, const Monomial& m) {
    a /= m;
    return a;
  }

  double eval(const util::Vec& x) const;

  /// log(p(exp(y))) — the convex log-sum-exp form used by the solver.
  double eval_log(const util::Vec& y) const;

  std::string to_string(const VarTable& vars) const;

 private:
  friend class PosyAccum;

  void add_term(const Monomial& m);

  std::vector<Monomial> terms_;
};

/// Hash-indexed monomial accumulator. Produces exactly the posynomial the
/// naive `p += term` sequence would — same term order (first appearance),
/// same per-term coefficient addition order, hence bit-identical doubles —
/// but each add is O(1) amortized instead of a linear scan over all terms.
/// Use it when summing many posynomials (path delay totals, cost
/// objectives); the quadratic merge in Posynomial::add_term is fine for the
/// small per-arc models but dominates at constraint-generation scale.
class PosyAccum {
 public:
  PosyAccum() = default;

  void add(const Monomial& m);
  void add(const Posynomial& p) {
    for (const auto& t : p.terms()) add(t);
  }
  void add(double c) { add(Monomial(c)); }

  size_t num_terms() const { return terms_.size(); }

  /// The accumulated posynomial so far (copy; accumulation continues).
  Posynomial snapshot() const;

  /// Moves the accumulated posynomial out and resets the accumulator.
  Posynomial take();

 private:
  void grow();

  std::vector<Monomial> terms_;
  /// Open-addressing probe table of term indices (+1; 0 = empty).
  std::vector<uint32_t> slots_;
  std::vector<uint64_t> hashes_;  ///< factor hash per term, for probing
};

}  // namespace smart::posy

#pragma once

/// \file posynomial.h
/// Posynomial (sum of positive-coefficient monomials). SMART's delay, slope,
/// load, and noise constraints are all posynomial (paper §5.1), which makes
/// the sizing problem a geometric program.

#include <string>
#include <vector>

#include "posy/monomial.h"

namespace smart::posy {

/// Sum of monomials with positive coefficients. The empty posynomial is 0
/// (allowed during construction; the GP layer rejects it in constraints).
/// Terms with equal variable parts are merged on every mutation, so term
/// count reflects distinct monomial shapes.
class Posynomial {
 public:
  Posynomial() = default;

  /// Constant posynomial (c >= 0; c == 0 gives the zero posynomial).
  explicit Posynomial(double c);

  /// Posynomial with a single monomial term (coeff 0 gives zero posynomial).
  Posynomial(const Monomial& m);  // NOLINT(google-explicit-constructor)

  static Posynomial variable(VarId v, double e = 1.0) {
    return Posynomial(Monomial::variable(v, e));
  }

  const std::vector<Monomial>& terms() const { return terms_; }
  size_t num_terms() const { return terms_.size(); }
  bool is_zero() const { return terms_.empty(); }
  bool is_monomial() const { return terms_.size() == 1; }
  /// Returns the single term; requires is_monomial().
  const Monomial& as_monomial() const;
  /// True when the posynomial is a single constant term (or zero).
  bool is_constant() const;
  /// Value of a constant posynomial.
  double constant_value() const;

  Posynomial& operator+=(const Posynomial& rhs);
  Posynomial& operator+=(const Monomial& m);
  Posynomial& operator+=(double c) { return *this += Monomial(c); }
  Posynomial& operator*=(const Monomial& m);
  Posynomial& operator*=(double s);
  /// Full posynomial product (term count multiplies; used sparingly).
  Posynomial& operator*=(const Posynomial& rhs);
  /// Divides by a monomial (the only division closed over posynomials).
  Posynomial& operator/=(const Monomial& m) { return *this *= m.inverse(); }

  friend Posynomial operator+(Posynomial a, const Posynomial& b) {
    a += b;
    return a;
  }
  friend Posynomial operator*(Posynomial a, const Monomial& m) {
    a *= m;
    return a;
  }
  friend Posynomial operator*(Posynomial a, double s) {
    a *= s;
    return a;
  }
  friend Posynomial operator*(double s, Posynomial a) {
    a *= s;
    return a;
  }
  friend Posynomial operator*(Posynomial a, const Posynomial& b) {
    a *= b;
    return a;
  }
  friend Posynomial operator/(Posynomial a, const Monomial& m) {
    a /= m;
    return a;
  }

  double eval(const util::Vec& x) const;

  /// log(p(exp(y))) — the convex log-sum-exp form used by the solver.
  double eval_log(const util::Vec& y) const;

  std::string to_string(const VarTable& vars) const;

 private:
  void add_term(const Monomial& m);

  std::vector<Monomial> terms_;
};

}  // namespace smart::posy

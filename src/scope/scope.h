#pragma once

/// \file scope.h
/// SMART-Scope: the introspection and reporting layer over the solve path.
/// Takes a sizing result that carries its solve snapshot
/// (SizerOptions::keep_solve_snapshot) and produces a PrimeTime-style
/// report_timing view of it: top-K critical paths mapped from binding GP
/// constraints back to concrete netlist arcs, with per-stage delay/slope/
/// borrow breakdown (model vs reference-STA), a slack histogram, the
/// solver's binding set with log-barrier dual estimates, per-size-label
/// sensitivity ("what limits this width"), the barrier convergence trace
/// and the sizer's model-vs-STA retargeting trace — in text and JSON.
///
/// The mapping relies on the constraint-generation invariant that path i of
/// GeneratedProblem::paths produced template i and constraint tags
/// "eval_path<i>" / "pre_path<i>" / "stage<k>_of_path<i>".

#include <string>
#include <vector>

#include "core/sizer.h"
#include "obs/obs.h"

namespace smart::scope {

struct ScopeOptions {
  /// Critical paths reported (ranked by reference-STA slack, worst first).
  size_t top_k = 5;
  /// Sensitivity drivers listed per size label.
  size_t max_drivers = 3;
  /// Report-level binding cut on the normalized GP slack |1 - lhs(x)|.
  /// Much tighter than SolverOptions::binding_tol (the designer-facing
  /// set): with the solver run at tolerance <= this value, constraints
  /// under the cut are active at the KKT point to working precision.
  double binding_slack_tol = 1e-6;
};

/// One arc of a reported path, replayed through the reference timer at the
/// accepted sizing.
struct StageReport {
  std::string from;        ///< source net name
  std::string to;          ///< destination net name
  std::string comp;        ///< component instance name
  std::string kind;        ///< arc kind (static_data, domino_eval, ...)
  bool out_rise = false;
  double delay_ps = 0.0;   ///< reference-STA arc delay
  double slope_ps = 0.0;   ///< output slope of the transition
  double arrival_ps = 0.0; ///< cumulative arrival after the arc
  /// Time borrowed past the stage's even phase share when entering this
  /// domino stage (OTB view, paper §5.3); 0 for non-stage-entry arcs.
  double borrow_ps = 0.0;
  int domino_stage = 0;    ///< 1-based stage index entered; 0 = none
};

/// One reported timing path: the GP's model view (template posynomial at
/// the solved point, normalized slack/dual) next to the reference timer's
/// replay of the same arcs at the accepted sizing.
struct PathReport {
  size_t path_index = 0;      ///< index into GeneratedProblem::paths
  std::string tag;            ///< "eval_path<i>" or "pre_path<i>"
  std::string phase;          ///< "evaluate" | "precharge"
  std::string startpoint;     ///< "<net> (R|F)"
  std::string endpoint;
  double spec_ps = 0.0;       ///< model-facing spec the GP normalized by
  double target_ps = 0.0;     ///< designer-facing spec for the phase
  double model_delay_ps = 0.0;///< template posynomial at the solved point
  double model_slack_ps = 0.0;///< spec_ps - model_delay_ps
  double gp_slack = 0.0;      ///< 1 - lhs(x), normalized
  double gp_dual = 0.0;       ///< log-barrier dual estimate
  bool binding = false;       ///< |gp_slack| <= binding_slack_tol
  double sta_arrival_ps = 0.0;///< reference-STA replay of the path
  double sta_slack_ps = 0.0;  ///< target_ps - sta_arrival_ps
  std::vector<StageReport> stages;
};

/// One binding constraint of the solved GP (report-level tight cut).
struct BindingReport {
  std::string tag;
  double lhs = 0.0;
  double slack = 0.0;  ///< 1 - lhs(x); |slack| <= binding_slack_tol
  double dual = 0.0;
};

struct SensitivityDriver {
  std::string tag;     ///< constraint doing the limiting
  double score = 0.0;  ///< dual-weighted log-sensitivity d(lhs)/d(log w)
};

/// "What limits this width": for each free size label, the binding
/// constraints with the largest dual-weighted sensitivity to it. A
/// positive score means the constraint pushes the width down (growing the
/// device moves the constraint toward violation); negative means it holds
/// the width up.
struct LabelSensitivity {
  std::string label;
  double width_um = 0.0;
  bool at_lower = false;  ///< pinned at its box lower bound
  bool at_upper = false;
  std::vector<SensitivityDriver> drivers;
};

/// The full introspection report.
struct ScopeReport {
  std::string macro;
  std::string message;       ///< "ok" or why the report is empty
  std::string solve_status;  ///< gp::to_string of the accepted solve
  double objective = 0.0;
  double target_delay_ps = 0.0;
  double target_precharge_ps = 0.0;
  double model_delay_spec_ps = 0.0;
  double model_precharge_spec_ps = 0.0;
  double measured_delay_ps = 0.0;
  double measured_precharge_ps = 0.0;
  size_t total_paths = 0;        ///< representative paths in the GP
  size_t total_constraints = 0;  ///< constraints in the solved problem
  double final_t = 0.0;          ///< barrier weight at solver exit
  double duality_gap = -1.0;
  std::vector<PathReport> paths;       ///< top-K, worst STA slack first
  obs::HistogramSummary slack_hist;    ///< STA slack (ps) over all paths
  std::vector<BindingReport> binding;  ///< tight binding set
  std::vector<LabelSensitivity> sensitivities;
  std::vector<gp::StageTrace> trace;          ///< barrier convergence
  std::vector<core::RespecIteration> respec;  ///< model-vs-STA retargeting
};

/// Builds the report from a sizing result. Requires result.snapshot
/// (SizerOptions::keep_solve_snapshot); without one, returns a stub report
/// whose message says so. Never throws.
ScopeReport build_report(const netlist::Netlist& nl,
                         const core::SizerResult& result,
                         const tech::Tech& tech,
                         const ScopeOptions& opt = {});

/// PrimeTime-style multi-line text rendering.
std::string render_text(const ScopeReport& report);

/// JSON rendering (parses back with util::json).
std::string render_json(const ScopeReport& report);

}  // namespace smart::scope

#include "scope/scope.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "refsim/rc_timer.h"
#include "util/strfmt.h"
#include "util/table.h"

namespace smart::scope {

namespace {

using core::RespecIteration;
using core::SolveSnapshot;

const char* arc_kind_name(netlist::ArcKind kind) {
  switch (kind) {
    case netlist::ArcKind::kStaticData: return "static_data";
    case netlist::ArcKind::kPassData: return "pass_data";
    case netlist::ArcKind::kPassControl: return "pass_control";
    case netlist::ArcKind::kTristateData: return "tristate_data";
    case netlist::ArcKind::kTristateEnable: return "tristate_enable";
    case netlist::ArcKind::kDominoEval: return "domino_eval";
    case netlist::ArcKind::kDominoClkEval: return "domino_clk_eval";
    case netlist::ArcKind::kDominoPrecharge: return "domino_precharge";
  }
  return "unknown";
}

/// Replays one representative path through the reference timer at the
/// accepted sizing, producing the per-stage delay/slope/borrow breakdown.
/// Mirrors the model's path composition (slope chains through the arcs)
/// but with the richer non-posynomial STA delays, so the replayed arrival
/// is the reference view of exactly the arcs the GP constrained.
std::vector<StageReport> replay_path(const netlist::Netlist& nl,
                                     const netlist::Sizing& sizing,
                                     const timing::Path& path,
                                     const tech::Tech& tech,
                                     double target_ps) {
  const refsim::RcTimer timer(tech);
  std::vector<StageReport> stages;
  stages.reserve(path.steps.size());
  double arrival = path.start_arrival;
  double slope =
      path.start_slope >= 0.0 ? path.start_slope : tech.default_input_slope;
  const int stages_total = path.domino_stages();
  int stages_seen = 0;
  for (const auto& step : path.steps) {
    StageReport sr;
    sr.from = nl.net(step.arc.from).name;
    sr.to = nl.net(step.arc.to).name;
    sr.comp = nl.comp(step.arc.comp).name;
    sr.kind = arc_kind_name(step.arc.kind);
    sr.out_rise = step.out_rise;
    const bool enters_domino =
        step.arc.kind == netlist::ArcKind::kDominoEval ||
        step.arc.kind == netlist::ArcKind::kDominoClkEval;
    if (enters_domino) {
      ++stages_seen;
      sr.domino_stage = stages_seen;
      // OTB view (paper §5.3): how far past its even phase share the data
      // arrives at this stage's entry — the time the stage borrows.
      if (stages_seen >= 2 && stages_total > 0 && target_ps > 0.0 &&
          path.phase == netlist::Phase::kEvaluate) {
        const double share = target_ps *
                             static_cast<double>(stages_seen - 1) /
                             static_cast<double>(stages_total);
        sr.borrow_ps = std::max(0.0, arrival - share);
      }
    }
    const auto ed = timer.arc_delay(nl, sizing, step.arc, step.out_rise,
                                    slope, path.phase);
    arrival += ed.delay_ps;
    slope = ed.out_slope_ps;
    sr.delay_ps = ed.delay_ps;
    sr.slope_ps = ed.out_slope_ps;
    sr.arrival_ps = arrival;
    stages.push_back(std::move(sr));
  }
  return stages;
}

std::string edge_name(const netlist::Netlist& nl, netlist::NetId net,
                      bool rise) {
  return util::strfmt("%s (%s)", nl.net(net).name.c_str(), rise ? "R" : "F");
}

/// Dual-weighted log-domain sensitivities: for binding constraint j with
/// normalized lhs g_j and dual estimate lambda_j, the score of variable v
/// is lambda_j * dlog g_j / dlog x_v (the softmax-weighted exponent of v
/// in g_j). Positive => growing the device pushes g_j toward violation.
std::vector<LabelSensitivity> sensitivities(
    const netlist::Netlist& nl, const SolveSnapshot& snap,
    const ScopeOptions& opt) {
  const auto& gen = snap.gen;
  const auto& diag = snap.gp.diag;
  const auto& x = snap.gp.x;
  const auto& constraints = gen.problem->constraints();

  // Per-variable driver lists over the loose binding set (the designer's
  // binding_tol); dual weighting already discounts marginal members.
  std::unordered_map<int, std::vector<SensitivityDriver>> by_var;
  const size_t nc = std::min(constraints.size(), diag.constraints.size());
  for (size_t j = 0; j < nc; ++j) {
    const auto& cd = diag.constraints[j];
    if (!cd.binding || cd.lhs <= 0.0) continue;
    std::unordered_map<int, double> exps;
    for (const auto& term : constraints[j].lhs.terms()) {
      const double val = term.eval(x);
      for (const auto& fac : term.factors())
        exps[fac.var] += val * fac.exp;
    }
    for (const auto& [var, weighted] : exps) {
      const double score = cd.dual * weighted / cd.lhs;
      if (score == 0.0) continue;
      by_var[var].push_back({cd.tag, score});
    }
  }

  std::vector<LabelSensitivity> out;
  for (size_t li = 0; li < nl.label_count(); ++li) {
    const auto& label = nl.label(static_cast<netlist::LabelId>(li));
    if (label.fixed) continue;
    const posy::Monomial& m = gen.labels.at(li);
    if (m.factors().size() != 1) continue;
    const int var = m.factors()[0].var;
    LabelSensitivity ls;
    ls.label = label.name;
    const auto& info = gen.vars->info(var);
    const double w = var < static_cast<int>(x.size())
                         ? x[static_cast<size_t>(var)]
                         : 0.0;
    ls.width_um = w;
    ls.at_lower = w <= info.lower * 1.001;
    ls.at_upper = w >= info.upper * 0.999;
    auto it = by_var.find(var);
    if (it != by_var.end()) {
      auto drivers = it->second;
      std::stable_sort(drivers.begin(), drivers.end(),
                       [](const SensitivityDriver& a,
                          const SensitivityDriver& b) {
                         return std::fabs(a.score) > std::fabs(b.score);
                       });
      if (drivers.size() > opt.max_drivers)
        drivers.resize(opt.max_drivers);
      ls.drivers = std::move(drivers);
    }
    out.push_back(std::move(ls));
  }
  return out;
}

// ---- JSON helpers (same conventions as the obs exporter) ----

std::string jesc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

ScopeReport build_report(const netlist::Netlist& nl,
                         const core::SizerResult& result,
                         const tech::Tech& tech, const ScopeOptions& opt) {
  ScopeReport report;
  report.macro = nl.name();
  report.measured_delay_ps = result.measured_delay_ps;
  report.measured_precharge_ps = result.measured_precharge_ps;
  report.respec = result.respec_trace;
  if (!result.snapshot) {
    report.message =
        "no solve snapshot (set SizerOptions::keep_solve_snapshot)";
    return report;
  }
  try {
    const SolveSnapshot& snap = *result.snapshot;
    const auto& gen = snap.gen;
    const auto& diag = snap.gp.diag;
    report.message = "ok";
    report.solve_status = gp::to_string(snap.gp.status);
    report.objective = snap.gp.objective;
    report.target_delay_ps = snap.target_delay_ps;
    report.target_precharge_ps = snap.target_precharge_ps;
    report.model_delay_spec_ps = snap.model_delay_spec_ps;
    report.model_precharge_spec_ps = snap.model_precharge_spec_ps;
    report.total_paths = gen.paths.size();
    report.total_constraints = gen.problem->constraints().size();
    report.final_t = diag.final_t;
    report.duality_gap = diag.duality_gap;
    report.trace = diag.trace;

    std::unordered_map<std::string, size_t> diag_by_tag;
    diag_by_tag.reserve(diag.constraints.size());
    for (size_t j = 0; j < diag.constraints.size(); ++j)
      diag_by_tag.emplace(diag.constraints[j].tag, j);

    // ---- per-path reports: model view + reference-STA replay ----
    std::vector<PathReport> all;
    all.reserve(gen.paths.size());
    for (size_t pi = 0; pi < gen.paths.size(); ++pi) {
      if (pi >= gen.path_templates.size()) break;
      const auto& path = gen.paths[pi];
      const auto& tmpl = gen.path_templates[pi];
      PathReport pr;
      pr.path_index = pi;
      const bool eval = tmpl.phase == netlist::Phase::kEvaluate;
      pr.tag = util::strfmt("%s_path%zu", eval ? "eval" : "pre", pi);
      pr.phase = eval ? "evaluate" : "precharge";
      pr.startpoint = edge_name(nl, path.start, path.start_rise);
      pr.endpoint =
          edge_name(nl, path.end(), path.steps.back().out_rise);
      pr.spec_ps =
          pi < gen.path_specs.size() ? gen.path_specs[pi] : 0.0;
      pr.target_ps =
          eval ? snap.target_delay_ps : snap.target_precharge_ps;
      pr.model_delay_ps = tmpl.total.eval(snap.gp.x);
      pr.model_slack_ps = pr.spec_ps - pr.model_delay_ps;
      if (auto it = diag_by_tag.find(pr.tag); it != diag_by_tag.end()) {
        const auto& cd = diag.constraints[it->second];
        pr.gp_slack = cd.slack;
        pr.gp_dual = cd.dual;
        pr.binding = std::fabs(cd.slack) <= opt.binding_slack_tol;
      }
      pr.stages =
          replay_path(nl, result.sizing, path, tech, pr.target_ps);
      pr.sta_arrival_ps =
          pr.stages.empty() ? path.start_arrival
                            : pr.stages.back().arrival_ps;
      pr.sta_slack_ps = pr.target_ps - pr.sta_arrival_ps;
      all.push_back(std::move(pr));
    }

    // Slack histogram over every representative path (before truncation).
    std::vector<double> slacks;
    slacks.reserve(all.size());
    for (const auto& pr : all) slacks.push_back(pr.sta_slack_ps);
    report.slack_hist = obs::summarize_samples(slacks);

    // Worst STA slack first; deterministic tie-break on the path index.
    std::stable_sort(all.begin(), all.end(),
                     [](const PathReport& a, const PathReport& b) {
                       if (a.sta_slack_ps != b.sta_slack_ps)
                         return a.sta_slack_ps < b.sta_slack_ps;
                       return a.path_index < b.path_index;
                     });
    if (all.size() > opt.top_k) all.resize(opt.top_k);
    report.paths = std::move(all);

    // ---- tight binding set over every constraint family ----
    for (const auto& cd : diag.constraints) {
      if (!(std::fabs(cd.slack) <= opt.binding_slack_tol)) continue;
      report.binding.push_back({cd.tag, cd.lhs, cd.slack, cd.dual});
    }
    std::stable_sort(report.binding.begin(), report.binding.end(),
                     [](const BindingReport& a, const BindingReport& b) {
                       return a.dual > b.dual;
                     });

    report.sensitivities = sensitivities(nl, snap, opt);
  } catch (const std::exception& e) {
    report.message = util::strfmt("report failed: %s", e.what());
  }
  return report;
}

std::string render_text(const ScopeReport& r) {
  std::ostringstream out;
  out << "SMART-Scope timing report — " << r.macro << "\n";
  if (r.message != "ok") {
    out << "  " << r.message << "\n";
    return out.str();
  }
  out << util::strfmt(
      "  solve %s | objective %.4g | gap %.3g (t %.3g)\n",
      r.solve_status.c_str(), r.objective, r.duality_gap, r.final_t);
  out << util::strfmt(
      "  target %.1f ps (precharge %.1f ps) | model spec %.1f ps "
      "(pre %.1f ps)\n",
      r.target_delay_ps, r.target_precharge_ps, r.model_delay_spec_ps,
      r.model_precharge_spec_ps);
  out << util::strfmt(
      "  measured: delay %.1f ps, precharge %.1f ps\n",
      r.measured_delay_ps, r.measured_precharge_ps);
  out << util::strfmt(
      "  %zu representative paths, %zu constraints, %zu binding "
      "(|slack| <= 1e-6)\n",
      r.total_paths, r.total_constraints, r.binding.size());

  size_t rank = 0;
  for (const auto& p : r.paths) {
    ++rank;
    out << util::strfmt(
        "\nPath #%zu  %s  (%s)%s\n", rank, p.tag.c_str(), p.phase.c_str(),
        p.binding ? util::strfmt("  [binding, dual %.3g]", p.gp_dual)
                      .c_str()
                  : "");
    out << "  Startpoint: " << p.startpoint
        << "   Endpoint: " << p.endpoint << "\n";
    out << util::strfmt(
        "  model %.2f ps vs spec %.2f ps (slack %.2f) | STA %.2f ps vs "
        "target %.2f ps (slack %.2f)\n",
        p.model_delay_ps, p.spec_ps, p.model_slack_ps, p.sta_arrival_ps,
        p.target_ps, p.sta_slack_ps);
    util::Table table(
        {"from", "to", "comp", "kind", "edge", "delay", "slope", "arrival",
         "borrow"});
    for (const auto& s : p.stages) {
      table.add_row(
          {s.from, s.to, s.comp, s.kind, s.out_rise ? "R" : "F",
           util::strfmt("%.2f", s.delay_ps),
           util::strfmt("%.2f", s.slope_ps),
           util::strfmt("%.2f", s.arrival_ps),
           s.domino_stage > 0
               ? util::strfmt("%.2f@s%d", s.borrow_ps, s.domino_stage)
               : std::string("-")});
    }
    out << table.render();
  }

  if (r.slack_hist.count > 0) {
    out << util::strfmt(
        "\nSlack histogram (ps): %zu paths, min %.2f, p50 %.2f, max %.2f\n",
        r.slack_hist.count, r.slack_hist.min, r.slack_hist.p50,
        r.slack_hist.max);
    out << "  counts:";
    for (size_t c : r.slack_hist.bucket_counts)
      out << util::strfmt(" %zu", c);
    out << "\n";
  }

  if (!r.binding.empty()) {
    out << "\nBinding constraints (|slack| <= 1e-6):\n";
    util::Table table({"tag", "lhs", "slack", "dual"});
    for (const auto& b : r.binding)
      table.add_row({b.tag, util::strfmt("%.9f", b.lhs),
                     util::strfmt("%.3g", b.slack),
                     util::strfmt("%.3g", b.dual)});
    out << table.render();
  }

  if (!r.sensitivities.empty()) {
    out << "\nWidth sensitivity (\"what limits this width\"):\n";
    for (const auto& ls : r.sensitivities) {
      out << util::strfmt("  %-12s %7.2f um%s%s", ls.label.c_str(),
                          ls.width_um, ls.at_lower ? " [at w_min]" : "",
                          ls.at_upper ? " [at w_max]" : "");
      if (!ls.drivers.empty()) {
        out << "  <-";
        for (const auto& d : ls.drivers)
          out << util::strfmt(" %s (%+.3g)", d.tag.c_str(), d.score);
      }
      out << "\n";
    }
  }

  if (!r.trace.empty()) {
    size_t p1 = 0;
    for (const auto& t : r.trace) p1 += t.phase1 ? 1u : 0u;
    const auto& last = r.trace.back();
    out << util::strfmt(
        "\nSolver: %zu barrier stages (%zu phase-I), final t %.3g, "
        "gap %.3g\n",
        r.trace.size(), p1, last.t, last.gap);
  }
  if (!r.respec.empty()) {
    out << "Respec trace (model spec -> measured):\n";
    for (const auto& it : r.respec) {
      out << util::strfmt(
          "  iter %d: spec %.1f -> measured %.1f ps (mismatch %.1f%%), "
          "width %.1f um, %zu binding, gp %s%s%s\n",
          it.iter, it.model_spec_ps, it.measured_delay_ps,
          it.mismatch * 100.0, it.total_width_um, it.binding_count,
          gp::to_string(it.gp_status), it.meets ? ", meets" : "",
          it.accepted ? " [accepted]" : "");
    }
  }
  return out.str();
}

std::string render_json(const ScopeReport& r) {
  std::string out = "{\n";
  out += "  \"macro\": \"" + jesc(r.macro) + "\",\n";
  out += "  \"message\": \"" + jesc(r.message) + "\",\n";
  out += "  \"status\": \"" + jesc(r.solve_status) + "\",\n";
  out += "  \"objective\": " + jnum(r.objective) + ",\n";
  out += "  \"specs\": {\"target_delay_ps\": " + jnum(r.target_delay_ps) +
         ", \"target_precharge_ps\": " + jnum(r.target_precharge_ps) +
         ", \"model_delay_spec_ps\": " + jnum(r.model_delay_spec_ps) +
         ", \"model_precharge_spec_ps\": " +
         jnum(r.model_precharge_spec_ps) + "},\n";
  out += "  \"measured\": {\"delay_ps\": " + jnum(r.measured_delay_ps) +
         ", \"precharge_ps\": " + jnum(r.measured_precharge_ps) + "},\n";
  out += "  \"summary\": {\"total_paths\": " +
         jnum(static_cast<double>(r.total_paths)) +
         ", \"total_constraints\": " +
         jnum(static_cast<double>(r.total_constraints)) +
         ", \"binding_count\": " +
         jnum(static_cast<double>(r.binding.size())) +
         ", \"final_t\": " + jnum(r.final_t) +
         ", \"duality_gap\": " + jnum(r.duality_gap) + "},\n";

  out += "  \"paths\": [";
  for (size_t i = 0; i < r.paths.size(); ++i) {
    const auto& p = r.paths[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"rank\": " + jnum(static_cast<double>(i + 1)) +
           ", \"index\": " + jnum(static_cast<double>(p.path_index)) +
           ", \"tag\": \"" + jesc(p.tag) + "\", \"phase\": \"" +
           jesc(p.phase) + "\", \"startpoint\": \"" + jesc(p.startpoint) +
           "\", \"endpoint\": \"" + jesc(p.endpoint) +
           "\", \"spec_ps\": " + jnum(p.spec_ps) +
           ", \"target_ps\": " + jnum(p.target_ps) +
           ", \"model_delay_ps\": " + jnum(p.model_delay_ps) +
           ", \"model_slack_ps\": " + jnum(p.model_slack_ps) +
           ", \"gp_slack\": " + jnum(p.gp_slack) +
           ", \"gp_dual\": " + jnum(p.gp_dual) +
           ", \"binding\": " + (p.binding ? "true" : "false") +
           ", \"sta_arrival_ps\": " + jnum(p.sta_arrival_ps) +
           ", \"sta_slack_ps\": " + jnum(p.sta_slack_ps) +
           ", \"stages\": [";
    for (size_t si = 0; si < p.stages.size(); ++si) {
      const auto& s = p.stages[si];
      out += si ? ", " : "";
      out += "{\"from\": \"" + jesc(s.from) + "\", \"to\": \"" +
             jesc(s.to) + "\", \"comp\": \"" + jesc(s.comp) +
             "\", \"kind\": \"" + jesc(s.kind) + "\", \"edge\": \"" +
             (s.out_rise ? "R" : "F") +
             "\", \"delay_ps\": " + jnum(s.delay_ps) +
             ", \"slope_ps\": " + jnum(s.slope_ps) +
             ", \"arrival_ps\": " + jnum(s.arrival_ps) +
             ", \"borrow_ps\": " + jnum(s.borrow_ps) +
             ", \"stage\": " + jnum(static_cast<double>(s.domino_stage)) +
             "}";
    }
    out += "]}";
  }
  out += r.paths.empty() ? "],\n" : "\n  ],\n";

  out += "  \"slack_histogram\": {\"count\": " +
         jnum(static_cast<double>(r.slack_hist.count)) +
         ", \"min\": " + jnum(r.slack_hist.min) +
         ", \"max\": " + jnum(r.slack_hist.max) +
         ", \"p50\": " + jnum(r.slack_hist.p50) +
         ", \"buckets\": {\"bounds\": [";
  for (size_t b = 0; b < r.slack_hist.bucket_bounds.size(); ++b)
    out += (b ? ", " : "") + jnum(r.slack_hist.bucket_bounds[b]);
  out += "], \"counts\": [";
  for (size_t b = 0; b < r.slack_hist.bucket_counts.size(); ++b)
    out += (b ? ", " : "") +
           jnum(static_cast<double>(r.slack_hist.bucket_counts[b]));
  out += "]}},\n";

  out += "  \"binding\": [";
  for (size_t i = 0; i < r.binding.size(); ++i) {
    const auto& b = r.binding[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"tag\": \"" + jesc(b.tag) + "\", \"lhs\": " + jnum(b.lhs) +
           ", \"slack\": " + jnum(b.slack) +
           ", \"dual\": " + jnum(b.dual) + "}";
  }
  out += r.binding.empty() ? "],\n" : "\n  ],\n";

  out += "  \"sensitivity\": [";
  for (size_t i = 0; i < r.sensitivities.size(); ++i) {
    const auto& ls = r.sensitivities[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"label\": \"" + jesc(ls.label) +
           "\", \"width_um\": " + jnum(ls.width_um) +
           ", \"at_lower\": " + (ls.at_lower ? "true" : "false") +
           ", \"at_upper\": " + (ls.at_upper ? "true" : "false") +
           ", \"drivers\": [";
    for (size_t di = 0; di < ls.drivers.size(); ++di) {
      out += di ? ", " : "";
      out += "{\"tag\": \"" + jesc(ls.drivers[di].tag) +
             "\", \"score\": " + jnum(ls.drivers[di].score) + "}";
    }
    out += "]}";
  }
  out += r.sensitivities.empty() ? "],\n" : "\n  ],\n";

  out += "  \"solver_trace\": [";
  for (size_t i = 0; i < r.trace.size(); ++i) {
    const auto& t = r.trace[i];
    out += i ? ", " : "";
    out += "{\"stage\": " + jnum(static_cast<double>(t.stage)) +
           ", \"phase1\": " + (t.phase1 ? "true" : "false") +
           ", \"t\": " + jnum(t.t) +
           ", \"newton_iters\": " + jnum(t.newton_iters) +
           ", \"converged\": " + (t.converged ? "true" : "false") +
           ", \"gap\": " + jnum(t.gap) + "}";
  }
  out += "],\n";

  out += "  \"respec\": [";
  for (size_t i = 0; i < r.respec.size(); ++i) {
    const auto& it = r.respec[i];
    out += i ? ", " : "";
    out += "{\"iter\": " + jnum(it.iter) +
           ", \"model_spec_ps\": " + jnum(it.model_spec_ps) +
           ", \"model_pre_spec_ps\": " + jnum(it.model_pre_spec_ps) +
           ", \"measured_delay_ps\": " + jnum(it.measured_delay_ps) +
           ", \"measured_precharge_ps\": " +
           jnum(it.measured_precharge_ps) +
           ", \"mismatch\": " + jnum(it.mismatch) +
           ", \"total_width_um\": " + jnum(it.total_width_um) +
           ", \"binding_count\": " +
           jnum(static_cast<double>(it.binding_count)) +
           ", \"gp_status\": \"" + jesc(gp::to_string(it.gp_status)) +
           "\", \"meets\": " + (it.meets ? "true" : "false") +
           ", \"accepted\": " + (it.accepted ? "true" : "false") + "}";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace scope

#include "lint/erc.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/obs.h"
#include "util/check.h"
#include "util/strfmt.h"

namespace smart::lint {

namespace {

using netlist::CompId;
using netlist::Component;
using netlist::DominoGate;
using netlist::FlatNetlist;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Stack;
using netlist::StaticGate;
using netlist::TransGate;
using netlist::Tristate;
using util::strfmt;

// ---------------------------------------------------------------------------
// Flattened-netlist rules (ERC001-ERC003)
// ---------------------------------------------------------------------------

void flat_rules(const FlatNetlist& flat, const std::vector<int>& external,
                const std::string& macro, Report& rep) {
  const size_t nodes = flat.node_names.size();
  std::vector<char> is_source(nodes, 0);  // externally driven / supply
  if (flat.vdd >= 0) is_source[static_cast<size_t>(flat.vdd)] = 1;
  if (flat.gnd >= 0) is_source[static_cast<size_t>(flat.gnd)] = 1;
  for (int n : external)
    if (n >= 0 && static_cast<size_t>(n) < nodes)
      is_source[static_cast<size_t>(n)] = 1;

  // Terminal usage per node: which devices gate on it, whether any device
  // channel (drain/source) touches it.
  std::vector<int> gate_dev(nodes, -1);
  std::vector<char> channel(nodes, 0);
  std::vector<std::vector<int>> adj(nodes);  // channel graph
  for (size_t d = 0; d < flat.devices.size(); ++d) {
    const auto& dev = flat.devices[d];
    // ERC003: a device whose drain and source land on one node conducts
    // nothing and usually indicates a miswired instance.
    if (dev.drain == dev.source) {
      rep.add("ERC003", Severity::kError, macro, dev.name,
              strfmt("source and drain are both node '%s'",
                     flat.node_names.at(static_cast<size_t>(dev.drain))
                         .c_str()));
    }
    if (dev.gate >= 0 && gate_dev[static_cast<size_t>(dev.gate)] < 0)
      gate_dev[static_cast<size_t>(dev.gate)] = static_cast<int>(d);
    for (int t : {dev.drain, dev.source}) {
      if (t < 0 || static_cast<size_t>(t) >= nodes) continue;
      channel[static_cast<size_t>(t)] = 1;
    }
    if (dev.drain >= 0 && dev.source >= 0 && dev.drain != dev.source) {
      adj[static_cast<size_t>(dev.drain)].push_back(dev.source);
      adj[static_cast<size_t>(dev.source)].push_back(dev.drain);
    }
  }

  // ERC001: a node that only gates devices — never a channel terminal, not
  // a supply, not externally driven — has no defined voltage.
  for (size_t n = 0; n < nodes; ++n) {
    if (gate_dev[n] < 0 || channel[n] || is_source[n]) continue;
    rep.add("ERC001", Severity::kError, macro, flat.node_names[n],
            strfmt("gate of device '%s' is floating (no driver, port, or "
                   "supply)",
                   flat.devices[static_cast<size_t>(gate_dev[n])]
                       .name.c_str()));
  }

  // ERC002: every channel-connected node must reach a DC source (VDD, GND,
  // or an externally driven node) through device channels.
  std::vector<char> reached(nodes, 0);
  std::vector<int> queue;
  for (size_t n = 0; n < nodes; ++n) {
    if (!is_source[n]) continue;
    reached[n] = 1;
    queue.push_back(static_cast<int>(n));
  }
  while (!queue.empty()) {
    const int n = queue.back();
    queue.pop_back();
    for (int m : adj[static_cast<size_t>(n)]) {
      if (reached[static_cast<size_t>(m)]) continue;
      reached[static_cast<size_t>(m)] = 1;
      queue.push_back(m);
    }
  }
  for (size_t n = 0; n < nodes; ++n) {
    if (!channel[n] || reached[n]) continue;
    rep.add("ERC002", Severity::kError, macro, flat.node_names[n],
            "no DC path to VDD/GND or an input through device channels");
  }
}

// ---------------------------------------------------------------------------
// Component-level rules (ERC004-ERC012)
// ---------------------------------------------------------------------------

/// Structural position of one label use, e.g. "static.pd" (static
/// pull-down leaf) or "domino.precharge". Two uses of one size label
/// should agree — that is the regularity the shared variable expresses
/// across bit slices. Series depth within one position is deliberately
/// NOT distinguished: sizing a whole stack with one variable is the
/// uniform-stack idiom the database uses throughout.
void collect_signatures(const Netlist& nl,
                        std::map<LabelId, std::set<std::string>>& sig,
                        std::map<LabelId, std::vector<CompId>>& users) {
  for (size_t ci = 0; ci < nl.comp_count(); ++ci) {
    const auto c = static_cast<CompId>(ci);
    const Component& comp = nl.comp(c);
    auto use = [&](LabelId label, std::string position) {
      if (label < 0) return;
      sig[label].insert(std::move(position));
      users[label].push_back(c);
    };
    std::vector<std::pair<NetId, LabelId>> leaves;
    if (const auto* g = comp.as_static()) {
      g->pulldown.collect_leaves(leaves);
      for (const auto& [in, label] : leaves) use(label, "static.pd");
      use(g->pmos_label, "static.pu");
    } else if (const auto* t = comp.as_transgate()) {
      use(t->label, "pass.gate");
    } else if (const auto* t3 = comp.as_tristate()) {
      use(t3->nmos_label, "tristate.n");
      use(t3->pmos_label, "tristate.p");
    } else if (const auto* d = comp.as_domino()) {
      d->pulldown.collect_leaves(leaves);
      for (const auto& [in, label] : leaves) use(label, "domino.pd");
      use(d->precharge_label, "domino.precharge");
      use(d->evaluate_label, "domino.foot");
    }
  }
}

void component_rules(const Netlist& nl, const Options& opt, Report& rep) {
  const std::string& macro = nl.name();

  // Per-net pass-gate structure for ERC004/ERC005.
  struct PassUse {
    CompId comp;
    NetId sel;
    NetId data;
  };
  std::map<NetId, std::vector<PassUse>> pass_drivers;  // out -> pass gates
  std::map<NetId, std::vector<CompId>> pass_data_of;   // data -> pass gates
  for (size_t ci = 0; ci < nl.comp_count(); ++ci) {
    const auto c = static_cast<CompId>(ci);
    const Component& comp = nl.comp(c);
    if (const auto* t = comp.as_transgate()) {
      pass_drivers[comp.out].push_back(PassUse{c, t->sel, t->data});
      pass_data_of[t->data].push_back(c);
    } else if (const auto* t3 = comp.as_tristate()) {
      pass_drivers[comp.out].push_back(PassUse{c, t3->en, t3->data});
    }
  }

  // ERC004: two pass structures sharing one select but carrying different
  // data onto one net are simultaneously on — a driver fight, not a mux.
  for (const auto& [net, uses] : pass_drivers) {
    std::map<NetId, std::set<NetId>> data_by_sel;
    for (const auto& u : uses) data_by_sel[u.sel].insert(u.data);
    for (const auto& [sel, datas] : data_by_sel) {
      if (datas.size() < 2) continue;
      rep.add("ERC004", Severity::kError, macro, nl.net(net).name,
              strfmt("select '%s' turns on %zu pass gates with different "
                     "data inputs at once",
                     nl.net(sel).name.c_str(), datas.size()));
    }
  }

  // ERC005: a net merged from several pass gates that itself feeds the
  // data side of another pass gate forms a bidirectional chain; charge can
  // sneak between branches while selects overlap.
  for (const auto& [net, uses] : pass_drivers) {
    if (uses.size() < 2) continue;
    auto it = pass_data_of.find(net);
    if (it == pass_data_of.end()) continue;
    rep.add("ERC005", Severity::kWarn, macro, nl.net(net).name,
            strfmt("driven by %zu pass gates and feeding pass gate '%s' — "
                   "possible sneak path",
                   uses.size(),
                   nl.comp(it->second.front()).name.c_str()));
  }

  for (size_t ci = 0; ci < nl.comp_count(); ++ci) {
    const auto c = static_cast<CompId>(ci);
    const Component& comp = nl.comp(c);

    // ERC006: series stacks beyond the family limit lose too much drive to
    // body effect and self-loading to size their way out.
    if (const auto* g = comp.as_static()) {
      const int depth = g->pulldown.max_depth();
      if (depth > opt.max_static_stack) {
        rep.add("ERC006", Severity::kWarn, macro, comp.name,
                strfmt("static series stack of %d exceeds the limit of %d",
                       depth, opt.max_static_stack));
      }
    }
    const auto* d = comp.as_domino();
    if (d == nullptr) continue;
    const bool footed = d->evaluate_label >= 0;
    const int depth = d->pulldown.max_depth() + (footed ? 1 : 0);
    if (depth > opt.max_domino_stack) {
      rep.add("ERC006", Severity::kWarn, macro, comp.name,
              strfmt("domino series stack of %d (incl. foot) exceeds the "
                     "limit of %d",
                     depth, opt.max_domino_stack));
    }

    // ERC007: the keeper is what holds a dynamic node against leakage and
    // noise. An unfooted (D2) stage without one is a hard error — its
    // inputs may be high at the end of precharge.
    if (d->keeper_ratio <= 0.0) {
      rep.add("ERC007", footed ? Severity::kWarn : Severity::kError, macro,
              comp.name,
              footed ? "footed domino stage has no keeper"
                     : "unfooted (D2) domino stage has no keeper");
    } else if (d->keeper_ratio < opt.weak_keeper_ratio) {
      rep.add("ERC007", Severity::kWarn, macro, comp.name,
              strfmt("keeper ratio %.3f below the %.3f floor",
                     d->keeper_ratio, opt.weak_keeper_ratio));
    } else if (d->keeper_ratio > opt.strong_keeper_ratio) {
      rep.add("ERC007", Severity::kWarn, macro, comp.name,
              strfmt("keeper ratio %.2f fights evaluation (limit %.2f)",
                     d->keeper_ratio, opt.strong_keeper_ratio));
    }

    // ERC008: domino inputs must rise monotonically during evaluation; a
    // dynamic node *falls*, so feeding one into the next stage without the
    // static output inverter can falsely discharge it.
    std::vector<std::pair<NetId, LabelId>> leaves;
    d->pulldown.collect_leaves(leaves);
    std::set<NetId> seen;
    for (const auto& [in, label] : leaves) {
      if (!seen.insert(in).second) continue;
      for (CompId drv : nl.drivers_of(in)) {
        if (nl.comp(drv).as_domino() == nullptr) continue;
        rep.add("ERC008", Severity::kError, macro, comp.name,
                strfmt("input '%s' is the dynamic node of '%s' — "
                       "non-monotonic without an output inverter",
                       nl.net(in).name.c_str(),
                       nl.comp(drv).name.c_str()));
      }
    }

    // ERC009: many internal diffusion nodes against one keeper: charge
    // sharing can droop the dynamic node when a deep path is mostly on.
    if (d->pulldown.device_count() >= opt.charge_share_devices &&
        d->pulldown.max_depth() >= 2 &&
        d->keeper_ratio < opt.charge_share_keeper) {
      rep.add("ERC009", Severity::kWarn, macro, comp.name,
              strfmt("%d-device pulldown with keeper ratio %.2f (< %.2f) "
                     "risks charge sharing",
                     d->pulldown.device_count(), d->keeper_ratio,
                     opt.charge_share_keeper));
    }
  }

  // ERC010/ERC011: size-label regularity and dead labels.
  std::map<LabelId, std::set<std::string>> sig;
  std::map<LabelId, std::vector<CompId>> users;
  collect_signatures(nl, sig, users);
  for (size_t li = 0; li < nl.label_count(); ++li) {
    const auto l = static_cast<LabelId>(li);
    auto it = sig.find(l);
    if (it == sig.end()) {
      rep.add("ERC011", Severity::kInfo, macro, nl.label(l).name,
              "size label is never used by a device");
      continue;
    }
    if (it->second.size() < 2) continue;
    std::string positions;
    for (const auto& s : it->second) {
      if (!positions.empty()) positions += ", ";
      positions += s;
    }
    rep.add("ERC010", Severity::kWarn, macro, nl.label(l).name,
            strfmt("one size variable labels inequivalent positions: %s",
                   positions.c_str()));
  }

  // ERC012: nets nothing references — stale edits waiting to confuse a
  // later composition.
  std::vector<char> used(nl.net_count(), 0);
  for (const auto& p : nl.inputs()) used[static_cast<size_t>(p.net)] = 1;
  for (const auto& p : nl.outputs()) used[static_cast<size_t>(p.net)] = 1;
  for (size_t ci = 0; ci < nl.comp_count(); ++ci)
    for (NetId n : nl.touched_nets(static_cast<CompId>(ci)))
      used[static_cast<size_t>(n)] = 1;
  for (size_t n = 0; n < nl.net_count(); ++n) {
    if (used[n]) continue;
    rep.add("ERC012", Severity::kInfo, macro,
            nl.net(static_cast<NetId>(n)).name,
            "net is connected to nothing");
  }
}

void record_metrics(const Report& rep) {
  auto& tel = obs::Telemetry::instance();
  if (!tel.enabled()) return;
  if (rep.errors() > 0)
    tel.counter_add("lint.findings.error",
                    static_cast<double>(rep.errors()));
  if (rep.warnings() > 0)
    tel.counter_add("lint.findings.warn",
                    static_cast<double>(rep.warnings()));
}

}  // namespace

Report run_erc_flat(const FlatNetlist& flat,
                    const std::vector<int>& external_nodes,
                    const std::string& macro_name, const Options& options) {
  Report rep(options);
  flat_rules(flat, external_nodes, macro_name, rep);
  record_metrics(rep);
  return rep;
}

Report run_erc(const Netlist& nl, const Options& options) {
  SMART_CHECK(nl.finalized(), "ERC needs a finalized netlist");
  Report rep(options);

  const auto flat = netlist::flatten(nl, nl.min_sizing());
  std::vector<int> external;
  for (const auto& p : nl.inputs()) external.push_back(p.net);
  for (size_t n = 0; n < nl.net_count(); ++n)
    if (nl.net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock)
      external.push_back(static_cast<int>(n));
  flat_rules(flat, external, nl.name(), rep);

  component_rules(nl, rep.options(), rep);
  record_metrics(rep);
  return rep;
}

}  // namespace smart::lint

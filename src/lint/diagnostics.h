#pragma once

/// \file diagnostics.h
/// Diagnostics model shared by SMART's static analyzers: the electrical
/// rule checker over macro netlists (lint/erc.h) and the GP well-formedness
/// verifier (gp/verify.h). Every finding carries a stable rule id
/// (ERC0xx / GPV1xx), a severity, and a location, so reports are machine
/// readable, per-rule suppressible, and diffable across runs — the same
/// contract the paper's database assumes implicitly ("clean transistor-level
/// schematics") made checkable.

#include <set>
#include <string>
#include <vector>

namespace smart::lint {

enum class Severity { kInfo = 0, kWarn = 1, kError = 2 };

/// Stable lowercase identifier ("info", "warn", "error").
const char* to_string(Severity severity);

/// One static-analysis finding.
struct Finding {
  std::string rule;      ///< stable id, e.g. "ERC001" or "GPV104"
  Severity severity = Severity::kWarn;
  std::string macro;     ///< netlist / GP problem the finding is about
  std::string location;  ///< component, net, label, or constraint tag
  std::string message;   ///< human-readable explanation
};

/// Registry entry of one rule: id, default severity, one-line summary.
/// Some rules escalate or demote per finding (e.g. a missing keeper is an
/// error on unfooted stages, a warning on footed ones); the registry lists
/// the default.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The electrical-rule-check rules (ERC0xx), in id order.
const std::vector<RuleInfo>& erc_rules();
/// The GP well-formedness rules (GPV1xx), in id order.
const std::vector<RuleInfo>& gp_rules();
/// Looks a rule up by id across both registries; nullptr if unknown.
const RuleInfo* find_rule(const std::string& id);

/// Analyzer knobs: per-rule suppression plus the numeric thresholds of the
/// family rules. Thresholds default to the values the shipped macro
/// database is clean against.
struct Options {
  /// Rule ids whose findings are dropped entirely (e.g. {"ERC010"}).
  std::set<std::string> suppress;

  // ---- ERC thresholds ----
  int max_static_stack = 4;     ///< ERC006: series NMOS limit, static gates
  int max_domino_stack = 5;     ///< ERC006: series limit incl. evaluate foot
  double weak_keeper_ratio = 0.02;    ///< ERC007: keeper below this is weak
  double strong_keeper_ratio = 0.5;   ///< ERC007: keeper above this fights
  int charge_share_devices = 8;       ///< ERC009: pulldown device threshold
  double charge_share_keeper = 0.08;  ///< ERC009: keeper needed at high fanin

  bool suppressed(const std::string& rule) const {
    return suppress.count(rule) > 0;
  }
};

/// Ordered collection of findings with severity counts. Suppressed rules
/// are dropped at add() time so counts always reflect the report's content.
class Report {
 public:
  explicit Report(Options options = {}) : options_(std::move(options)) {}

  const Options& options() const { return options_; }

  /// Records a finding unless its rule is suppressed.
  void add(const std::string& rule, Severity severity,
           const std::string& macro, const std::string& location,
           const std::string& message);

  /// Appends every finding of `other` (suppression already applied there).
  void merge(const Report& other);

  const std::vector<Finding>& findings() const { return findings_; }
  size_t count(Severity severity) const;
  size_t errors() const { return count(Severity::kError); }
  size_t warnings() const { return count(Severity::kWarn); }
  bool clean() const { return errors() == 0; }

  /// First finding of the given severity; nullptr if none.
  const Finding* first(Severity severity) const;

  /// Plain-text rendering, one line per finding plus a summary line.
  std::string to_text() const;
  /// JSON rendering: {"findings":[...],"counts":{"error":..,"warn":..,
  /// "info":..}}.
  std::string to_json() const;

 private:
  Options options_;
  std::vector<Finding> findings_;
  size_t counts_[3] = {0, 0, 0};
};

}  // namespace smart::lint

#include "lint/diagnostics.h"

#include "util/strfmt.h"

namespace smart::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const std::vector<RuleInfo>& erc_rules() {
  static const std::vector<RuleInfo> rules = {
      {"ERC001", Severity::kError,
       "floating transistor gate (no driver, port, or supply)"},
      {"ERC002", Severity::kError,
       "node has no DC path to VDD/GND through device channels"},
      {"ERC003", Severity::kError, "device source and drain are shorted"},
      {"ERC004", Severity::kError,
       "pass gates with a shared select drive one net from different data"},
      {"ERC005", Severity::kWarn,
       "sneak-path risk: multi-driven pass net feeds another pass stage"},
      {"ERC006", Severity::kWarn, "series stack exceeds the family limit"},
      {"ERC007", Severity::kError,
       "domino keeper missing (error on unfooted), weak, or fighting"},
      {"ERC008", Severity::kError,
       "non-monotonic input: dynamic node feeds a domino stage directly"},
      {"ERC009", Severity::kWarn,
       "charge-sharing risk on a high-fanin dynamic node"},
      {"ERC010", Severity::kWarn,
       "shared size label used in structurally inequivalent positions"},
      {"ERC011", Severity::kInfo, "size label is never used by a device"},
      {"ERC012", Severity::kInfo, "net is connected to nothing"},
  };
  return rules;
}

const std::vector<RuleInfo>& gp_rules() {
  static const std::vector<RuleInfo> rules = {
      {"GPV100", Severity::kError,
       "malformed problem: no variables or objective not set"},
      {"GPV101", Severity::kError,
       "degenerate monomial: non-finite or non-positive coefficient/exponent"},
      {"GPV102", Severity::kError,
       "objective unbounded below in a variable (certificate from the "
       "exponent matrix)"},
      {"GPV103", Severity::kWarn,
       "variable appears in no objective or constraint term"},
      {"GPV104", Severity::kError,
       "constraint is infeasible everywhere in the variable box"},
      {"GPV105", Severity::kError, "variable box is empty or non-positive"},
  };
  return rules;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& r : erc_rules())
    if (id == r.id) return &r;
  for (const auto& r : gp_rules())
    if (id == r.id) return &r;
  return nullptr;
}

void Report::add(const std::string& rule, Severity severity,
                 const std::string& macro, const std::string& location,
                 const std::string& message) {
  if (options_.suppressed(rule)) return;
  counts_[static_cast<size_t>(severity)]++;
  findings_.push_back(Finding{rule, severity, macro, location, message});
}

void Report::merge(const Report& other) {
  for (const auto& f : other.findings_) {
    counts_[static_cast<size_t>(f.severity)]++;
    findings_.push_back(f);
  }
}

size_t Report::count(Severity severity) const {
  return counts_[static_cast<size_t>(severity)];
}

const Finding* Report::first(Severity severity) const {
  for (const auto& f : findings_)
    if (f.severity == severity) return &f;
  return nullptr;
}

std::string Report::to_text() const {
  std::string out;
  for (const auto& f : findings_) {
    out += util::strfmt("%s %s %s: %s: %s\n", f.rule.c_str(),
                        to_string(f.severity), f.macro.c_str(),
                        f.location.c_str(), f.message.c_str());
  }
  out += util::strfmt("%zu error(s), %zu warning(s), %zu info\n", errors(),
                      warnings(), count(Severity::kInfo));
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::strfmt("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::string out = "{\"findings\":[";
  for (size_t i = 0; i < findings_.size(); ++i) {
    const auto& f = findings_[i];
    if (i) out += ",";
    out += util::strfmt(
        "{\"rule\":\"%s\",\"severity\":\"%s\",\"macro\":\"%s\","
        "\"location\":\"%s\",\"message\":\"%s\"}",
        json_escape(f.rule).c_str(), to_string(f.severity),
        json_escape(f.macro).c_str(), json_escape(f.location).c_str(),
        json_escape(f.message).c_str());
  }
  out += util::strfmt(
      "],\"counts\":{\"error\":%zu,\"warn\":%zu,\"info\":%zu}}\n", errors(),
      warnings(), count(Severity::kInfo));
  return out;
}

}  // namespace smart::lint

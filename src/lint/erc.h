#pragma once

/// \file erc.h
/// Electrical rule check over macro schematics. Two layers of rules:
///
///   * flattened-netlist rules (ERC001-ERC003) run over explicit MOS
///     devices — floating gates, nodes with no DC path to a supply,
///     source/drain shorts;
///   * component-level rules (ERC004-ERC012) use the structural families
///     the database stores — pass-gate contention and sneak paths, series
///     stack limits per family, domino keeper/monotonicity/charge-sharing
///     checks, and size-label regularity.
///
/// Rule ids, severities, and thresholds live in lint/diagnostics.h; any
/// rule can be suppressed per run via Options::suppress.

#include "lint/diagnostics.h"
#include "netlist/flatten.h"
#include "netlist/netlist.h"

namespace smart::lint {

/// Runs every ERC rule on a finalized netlist (flattening it internally at
/// the minimum sizing). Findings are counted into the `lint.findings.*`
/// telemetry counters when telemetry is enabled.
Report run_erc(const netlist::Netlist& nl, const Options& options = {});

/// Flattened-netlist rules only (ERC001-ERC003), for device lists that do
/// not come from a component netlist (imports, hand-written fixtures).
/// `external_nodes` lists nodes driven from outside the device list
/// (primary inputs, clocks) — they count as DC sources.
Report run_erc_flat(const netlist::FlatNetlist& flat,
                    const std::vector<int>& external_nodes,
                    const std::string& macro_name,
                    const Options& options = {});

}  // namespace smart::lint

#pragma once

/// \file power.h
/// Activity-based power estimation (the reproduction's stand-in for
/// PowerMill, see DESIGN.md). Dynamic power is switched capacitance:
/// P = sum_nets toggles/cycle * C_net * Vdd^2/2 * f. The same per-net
/// activity model is used by the GP power objective (core::Sizer with
/// CostMetric::kPower), so the optimizer minimizes the quantity this
/// estimator reports.

#include "netlist/netlist.h"
#include "tech/tech.h"

namespace smart::power {

struct PowerOptions {
  /// Toggles per cycle of data nets (primary inputs and static logic).
  double data_activity = 0.25;
  /// Toggles per cycle of domino dynamic nodes and their output inverters
  /// (discharge + precharge whenever the input pattern evaluates true).
  double domino_activity = 1.0;
  /// Clock nets toggle twice per cycle.
  double clock_activity = 2.0;
  /// Frequency in GHz; < 0 uses the technology default.
  double freq_ghz = -1.0;
};

struct PowerReport {
  double total_mw = 0.0;         ///< total dynamic power
  double clock_mw = 0.0;         ///< portion switched by clock nets
  double switched_cap_ff = 0.0;  ///< activity-weighted capacitance
  double clock_cap_ff = 0.0;     ///< capacitance on clock nets
};

/// Toggle rates (transitions per cycle) for every net under the activity
/// model: clock nets use clock_activity; domino dynamic nodes and nets
/// transitively downstream of them use domino_activity; everything else is
/// a data net. Also used by the GP power objective.
std::vector<double> net_activities(const netlist::Netlist& nl,
                                   const PowerOptions& opt);

/// Toggle rate of one net (convenience wrapper over net_activities).
double net_activity(const netlist::Netlist& nl, netlist::NetId n,
                    const PowerOptions& opt);

class PowerEstimator {
 public:
  explicit PowerEstimator(const tech::Tech& tech) : tech_(&tech) {}

  PowerReport estimate(const netlist::Netlist& nl,
                       const netlist::Sizing& sizing,
                       const PowerOptions& opt = {}) const;

 private:
  const tech::Tech* tech_;
};

}  // namespace smart::power

#include "power/power.h"

#include <queue>

#include "refsim/rc_timer.h"
#include "util/check.h"

namespace smart::power {

using netlist::NetId;
using netlist::Netlist;

/// Per-net toggle rates: clock nets, then the domino domain (dynamic nodes
/// and everything downstream of them), then plain data nets.
std::vector<double> net_activities(const Netlist& nl,
                                   const PowerOptions& opt) {
  std::vector<double> act(nl.net_count(), opt.data_activity);
  std::vector<bool> domino_domain(nl.net_count(), false);

  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto& comp = nl.comp(static_cast<int>(c));
    if (comp.as_domino() != nullptr)
      domino_domain[static_cast<size_t>(comp.out)] = true;
  }
  // Forward closure: a net driven by a component reading a domino-domain
  // net toggles at the domino rate too (e.g. the output inverter).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& arc : nl.arcs()) {
      if (arc.kind == netlist::ArcKind::kDominoPrecharge ||
          arc.kind == netlist::ArcKind::kDominoClkEval)
        continue;
      if (domino_domain[static_cast<size_t>(arc.from)] &&
          !domino_domain[static_cast<size_t>(arc.to)]) {
        domino_domain[static_cast<size_t>(arc.to)] = true;
        changed = true;
      }
    }
  }
  for (size_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock) {
      act[n] = opt.clock_activity;
    } else if (domino_domain[n]) {
      act[n] = opt.domino_activity;
    }
  }
  return act;
}

double net_activity(const Netlist& nl, NetId n, const PowerOptions& opt) {
  return net_activities(nl, opt).at(static_cast<size_t>(n));
}

PowerReport PowerEstimator::estimate(const Netlist& nl,
                                     const netlist::Sizing& sizing,
                                     const PowerOptions& opt) const {
  SMART_CHECK(nl.finalized(), "netlist must be finalized");
  const refsim::RcTimer timer(*tech_);
  const auto act = net_activities(nl, opt);
  const auto caps = timer.all_net_caps(nl, sizing);
  const double freq = opt.freq_ghz > 0.0 ? opt.freq_ghz : tech_->clock_ghz;
  const double vdd2 = tech_->vdd * tech_->vdd;

  PowerReport rep;
  for (size_t n = 0; n < nl.net_count(); ++n) {
    const double cap = caps[n];
    const bool is_clk =
        nl.net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock;
    rep.switched_cap_ff += act[n] * cap;
    // fF * V^2 * GHz = uW; /1000 -> mW; /2 for energy per transition.
    const double mw = act[n] * cap * vdd2 * freq / 2000.0;
    rep.total_mw += mw;
    if (is_clk) {
      rep.clock_mw += mw;
      rep.clock_cap_ff += cap;
    }
  }
  return rep;
}

}  // namespace smart::power

#include "models/fitter.h"

#include <cmath>
#include <memory>
#include <vector>

#include "refsim/rc_timer.h"
#include "util/check.h"
#include "util/linalg.h"

namespace smart::models {

using netlist::Arc;
using netlist::ArcKind;
using netlist::DominoGate;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sizing;
using netlist::Stack;

namespace {

/// An archetype circuit for one arc class: the netlist, the arc to measure,
/// and which output transitions are observable on it.
struct Archetype {
  std::unique_ptr<Netlist> nl;
  size_t arc_index = 0;
  std::vector<bool> out_rises;  ///< transitions to sample
};

/// Finds the first arc with the requested class whose source is `from`.
size_t find_arc(const Netlist& nl, ArcClass cls, NetId from) {
  for (size_t i = 0; i < nl.arcs().size(); ++i) {
    const Arc& a = nl.arcs()[i];
    if (a.from == from && classify_arc(nl, a) == cls) return i;
  }
  SMART_FAIL("archetype arc not found");
}

Archetype make_archetype(ArcClass cls, double load_ff) {
  auto nl = std::make_unique<Netlist>("fit");
  Archetype arch;
  switch (cls) {
    case ArcClass::kStatic: {
      // 3-high NAND stack: exercises both single-device pull-up paths and a
      // deep pull-down, pooling rise and fall samples.
      NetId a = nl->add_net("a"), b = nl->add_net("b"), c = nl->add_net("c");
      NetId out = nl->add_net("out");
      LabelId n1 = nl->add_label("N1"), p1 = nl->add_label("P1");
      nl->add_component("g", out,
                        netlist::StaticGate{
                            Stack::series({Stack::leaf(a, n1),
                                           Stack::leaf(b, n1),
                                           Stack::leaf(c, n1)}),
                            p1});
      nl->add_input(a);
      nl->add_input(b);
      nl->add_input(c);
      nl->add_output(out, load_ff);
      nl->finalize();
      arch.arc_index = find_arc(*nl, cls, c);  // deepest pin
      arch.out_rises = {false, true};
      break;
    }
    case ArcClass::kPassData:
    case ArcClass::kPassControl: {
      NetId d = nl->add_net("d"), s = nl->add_net("s");
      NetId out = nl->add_net("out");
      LabelId n2 = nl->add_label("N2");
      nl->add_component("tg", out, netlist::TransGate{d, s, n2});
      nl->add_input(d);
      nl->add_input(s);
      nl->add_output(out, load_ff);
      nl->finalize();
      arch.arc_index =
          find_arc(*nl, cls, cls == ArcClass::kPassData ? d : s);
      arch.out_rises = cls == ArcClass::kPassData
                           ? std::vector<bool>{false, true}
                           : std::vector<bool>{false, true};
      break;
    }
    case ArcClass::kTristateData:
    case ArcClass::kTristateEnable: {
      NetId d = nl->add_net("d"), e = nl->add_net("e");
      NetId out = nl->add_net("out");
      LabelId n1 = nl->add_label("N1"), p1 = nl->add_label("P1");
      nl->add_component("ts", out, netlist::Tristate{d, e, n1, p1});
      nl->add_input(d);
      nl->add_input(e);
      nl->add_output(out, load_ff);
      nl->finalize();
      arch.arc_index =
          find_arc(*nl, cls, cls == ArcClass::kTristateData ? d : e);
      arch.out_rises = {false, true};
      break;
    }
    case ArcClass::kDominoFooted:
    case ArcClass::kDominoUnfooted:
    case ArcClass::kDominoClkEval:
    case ArcClass::kDominoPrecharge: {
      const bool footed = cls != ArcClass::kDominoUnfooted;
      NetId clk = nl->add_net("clk", netlist::NetKind::kClock);
      NetId s = nl->add_net("s"), d = nl->add_net("d");
      NetId dyn = nl->add_net("dyn");
      LabelId n1 = nl->add_label("N1"), p1 = nl->add_label("P1");
      LabelId n2 = footed ? nl->add_label("N2") : -1;
      nl->add_component(
          "dg", dyn,
          DominoGate{Stack::series({Stack::leaf(s, n1), Stack::leaf(d, n1)}),
                     p1, n2, clk, 0.1});
      nl->add_input(s);
      nl->add_input(d);
      nl->add_output(dyn, load_ff);
      nl->finalize();
      if (cls == ArcClass::kDominoClkEval || cls == ArcClass::kDominoPrecharge) {
        arch.arc_index = find_arc(*nl, cls, clk);
      } else {
        arch.arc_index = find_arc(*nl, cls, d);
      }
      arch.out_rises =
          cls == ArcClass::kDominoPrecharge ? std::vector<bool>{true}
                                            : std::vector<bool>{false};
      break;
    }
    case ArcClass::kCount:
      SMART_FAIL("invalid arc class");
  }
  arch.nl = std::move(nl);
  return arch;
}

/// Numeric RC sum of the arc at a concrete sizing, evaluated through the
/// same posynomial builder the constraint generator uses.
double rc_numeric(const Netlist& nl, const Arc& arc, bool out_rising,
                  const Sizing& sizing, const tech::Tech& tech) {
  LabelVarMap consts;
  for (size_t i = 0; i < nl.label_count(); ++i)
    consts.push_back(posy::Monomial(nl.label_width(
        static_cast<LabelId>(i), sizing)));
  const posy::Posynomial c_out =
      net_cap_posy(nl, arc.to, consts, tech);
  const posy::Posynomial rc =
      arc_rc_posy(nl, arc, out_rising, c_out, consts, tech);
  return rc.eval({});
}

}  // namespace

ModelLibrary calibrate(const tech::Tech& tech, FitReport* report,
                       const FitOptions& options) {
  ModelLibrary lib;
  const refsim::RcTimer timer(tech);

  const std::vector<double> widths = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  const std::vector<double> loads = {2.0, 8.0, 30.0, 90.0};
  const std::vector<double> slopes = {10.0, 40.0, 100.0, 200.0};

  for (size_t ci = 0; ci < static_cast<size_t>(ArcClass::kCount); ++ci) {
    const auto cls = static_cast<ArcClass>(ci);
    std::vector<double> rc_col, slope_col, delay_obs, oslope_obs;

    for (double load : loads) {
      Archetype arch = make_archetype(cls, load);
      const Netlist& nl = *arch.nl;
      const Arc& arc = nl.arcs()[arch.arc_index];
      for (double w : widths) {
        Sizing sizing(nl.label_count(), w);
        // PMOS labels get 2x to stay near balanced drive.
        for (size_t li = 0; li < nl.label_count(); ++li)
          if (nl.label(static_cast<LabelId>(li)).name[0] == 'P')
            sizing[li] = 2.0 * w;
        for (bool out_rise : arch.out_rises) {
          const double rc = rc_numeric(nl, arc, out_rise, sizing, tech);
          for (double s : slopes) {
            const auto ed =
                timer.arc_delay(nl, sizing, arc, out_rise, s,
                                cls == ArcClass::kDominoPrecharge
                                    ? refsim::Phase::kPrecharge
                                    : refsim::Phase::kEvaluate);
            rc_col.push_back(rc);
            slope_col.push_back(s);
            delay_obs.push_back(ed.delay_ps);
            oslope_obs.push_back(ed.out_slope_ps);
          }
        }
      }
    }

    const size_t n = rc_col.size();
    auto slope_basis = [&](double s) {
      return options.saturating_slope_basis ? tech.saturate_slope(s) : s;
    };
    util::Matrix basis(n, 3);
    util::Matrix basis_lin(n, 3);
    for (size_t r = 0; r < n; ++r) {
      basis(r, 0) = 1.0;
      basis(r, 1) = rc_col[r];
      basis(r, 2) = slope_basis(slope_col[r]);
      basis_lin(r, 0) = 1.0;
      basis_lin(r, 1) = rc_col[r];
      basis_lin(r, 2) = slope_col[r];
    }
    const util::Vec fit_d = util::nnls(basis, delay_obs);
    // Output slope is linear in input slope in the reference timer.
    const util::Vec fit_s = util::nnls(basis_lin, oslope_obs);

    ModelCoeffs m;
    m.a_int = fit_d[0];
    m.a_rc = fit_d[1];
    m.a_slope = fit_d[2];
    m.b_int = fit_s[0];
    m.b_rc = fit_s[1];
    m.b_slope = fit_s[2];
    m.saturating_slope = options.saturating_slope_basis;
    lib.set_coeffs(cls, m);

    if (report) {
      double se_d = 0.0, se_s = 0.0;
      for (size_t r = 0; r < n; ++r) {
        const double pd =
            m.a_int + m.a_rc * rc_col[r] + m.a_slope * slope_basis(slope_col[r]);
        const double ps = m.b_int + m.b_rc * rc_col[r] + m.b_slope * slope_col[r];
        se_d += std::pow((pd - delay_obs[r]) / std::max(delay_obs[r], 1.0), 2);
        se_s += std::pow((ps - oslope_obs[r]) / std::max(oslope_obs[r], 1.0), 2);
      }
      auto& cf = report->per_class[ci];
      cf.samples = static_cast<int>(n);
      cf.delay_rms_rel = std::sqrt(se_d / static_cast<double>(n));
      cf.slope_rms_rel = std::sqrt(se_s / static_cast<double>(n));
    }
  }
  return lib;
}

const ModelLibrary& default_library() {
  static const ModelLibrary lib = calibrate(tech::default_tech());
  return lib;
}

}  // namespace smart::models

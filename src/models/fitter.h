#pragma once

/// \file fitter.h
/// Model calibration (paper Fig 3, "Model building for sizing"): per arc
/// class, builds a small archetype circuit, sweeps widths / loads / input
/// slopes, measures pin-to-pin delay and output slope with the reference
/// timer, and fits the posynomial template coefficients by non-negative
/// least squares (coefficients must stay positive to remain posynomial).

#include "models/arc_model.h"

namespace smart::models {

/// Fit quality per arc class (relative RMS errors vs the reference timer).
struct ClassFit {
  int samples = 0;
  double delay_rms_rel = 0.0;
  double slope_rms_rel = 0.0;
};

struct FitReport {
  ClassFit per_class[static_cast<size_t>(ArcClass::kCount)];
};

struct FitOptions {
  /// Fit the delay slope term in the saturating-transform basis (exact for
  /// the reference timer). Disable for the lower-accuracy linear-basis
  /// library used by the model-accuracy/convergence ablation.
  bool saturating_slope_basis = true;
};

/// Calibrates a ModelLibrary against the reference timer for a technology.
/// Deterministic; takes a few milliseconds.
ModelLibrary calibrate(const tech::Tech& tech, FitReport* report = nullptr,
                       const FitOptions& options = {});

/// Returns a process-wide library calibrated for default_tech().
const ModelLibrary& default_library();

}  // namespace smart::models

#pragma once

/// \file arc_model.h
/// Posynomial delay/slope models for component timing arcs (paper §5.1).
/// The model templates mirror the Elmore RC structure of the reference
/// timer: delay = a_int + a_rc * RCsum(W) + a_slope * s_in, where RCsum is a
/// posynomial in the size-label variables (terms C_load/W, W_i/W_j, ...).
/// Coefficients come from a ModelLibrary calibrated against the reference
/// timer by the fitter. Deliberately simpler than the reference timer
/// (linear slope term, no keeper contention): "These timing models need not
/// be exact, since they are only used within the inner optimization loop."

#include <vector>

#include "netlist/netlist.h"
#include "posy/posynomial.h"
#include "posy/variable.h"
#include "tech/tech.h"

namespace smart::models {

/// Model class of a timing arc; each class has its own fitted coefficients.
enum class ArcClass {
  kStatic = 0,
  kPassData,
  kPassControl,
  kTristateData,
  kTristateEnable,
  kDominoFooted,    ///< D1 evaluate (clocked foot in the stack)
  kDominoUnfooted,  ///< D2 evaluate
  kDominoClkEval,   ///< clock-to-output through the foot
  kDominoPrecharge,
  kCount
};

/// Classifies an arc of a netlist into its model class. Phase matters for
/// domino data arcs: in the precharge phase they behave as precharge RC.
ArcClass classify_arc(const netlist::Netlist& nl, const netlist::Arc& arc,
                      netlist::Phase phase = netlist::Phase::kEvaluate);

/// Fitted coefficients of one model class.
/// delay = a_int + a_rc * RC + a_slope * f(s_in)
/// slope = b_int + b_rc * RC + b_slope * s_in
/// where f is the saturating slope transform when saturating_slope is set
/// (possible because the constraint generator evaluates models at constant
/// slope budgets) and identity otherwise — the lower-accuracy variant used
/// by the model-accuracy ablation (paper §5.1: "Better model accuracy
/// leads to faster convergence").
struct ModelCoeffs {
  double a_int = 0.0;
  double a_rc = 0.69;
  double a_slope = 0.2;
  double b_int = 0.0;
  double b_rc = 2.2;
  double b_slope = 0.1;
  bool saturating_slope = false;
};

/// Coefficient sets per arc class. Obtain a calibrated instance from
/// models::calibrate() (fitter.h); default-constructed values are the
/// analytic RC constants and work, just with larger sizing-loop mismatch.
class ModelLibrary {
 public:
  const ModelCoeffs& coeffs(ArcClass c) const {
    return coeffs_[static_cast<size_t>(c)];
  }
  void set_coeffs(ArcClass c, const ModelCoeffs& m) {
    coeffs_[static_cast<size_t>(c)] = m;
  }

 private:
  ModelCoeffs coeffs_[static_cast<size_t>(ArcClass::kCount)];
};

/// Width of each size label as a monomial: an optimization variable for
/// free labels, a constant for designer-fixed labels.
using LabelVarMap = std::vector<posy::Monomial>;

/// Builds the label -> monomial map, creating one variable per free label in
/// `vars` (named after the label, with the label's box bounds).
LabelVarMap make_label_vars(const netlist::Netlist& nl,
                            posy::VarTable& vars);

/// Total capacitance on a net as a posynomial of the size variables:
/// gate + diffusion + wire + external port load (fF).
posy::Posynomial net_cap_posy(const netlist::Netlist& nl, netlist::NetId n,
                              const LabelVarMap& labels,
                              const tech::Tech& tech);

/// Capacitance posynomials of every net at once, bit-identical to calling
/// net_cap_posy per net. One scatter pass over the components collects each
/// net's width refs (instead of every net scanning every component), then
/// the per-net posynomials build in parallel — O(total pins) rather than
/// O(nets * components).
std::vector<posy::Posynomial> net_cap_posy_all(const netlist::Netlist& nl,
                                               const LabelVarMap& labels,
                                               const tech::Tech& tech);

/// The Elmore RC sum of an arc as a posynomial (kOhm * fF = ps units):
/// R_path * C_out + internal stack-node terms. `c_out` is the destination
/// net capacitance (posynomial, typically from net_cap_posy). In the
/// precharge phase, unfooted-domino data arcs charge through the precharge
/// device (the reset ripple), not the pull-down stack.
posy::Posynomial arc_rc_posy(const netlist::Netlist& nl,
                             const netlist::Arc& arc, bool out_rising,
                             const posy::Posynomial& c_out,
                             const LabelVarMap& labels,
                             const tech::Tech& tech,
                             netlist::Phase phase = netlist::Phase::kEvaluate);

/// Delay and output-slope posynomials of one arc transition.
struct ArcPosy {
  posy::Posynomial delay;
  posy::Posynomial out_slope;
};

/// Evaluates the model templates for an arc: picks the class coefficients
/// and composes them with arc_rc_posy. `in_slope` is a posynomial (usually
/// a constant slope budget; see core::ConstraintGenerator).
ArcPosy arc_model_posy(const netlist::Netlist& nl, const netlist::Arc& arc,
                       bool out_rising, const posy::Posynomial& in_slope,
                       const posy::Posynomial& c_out,
                       const LabelVarMap& labels, const ModelLibrary& lib,
                       const tech::Tech& tech,
                       netlist::Phase phase = netlist::Phase::kEvaluate);

/// Output-slope posynomial only, bit-identical to arc_model_posy(...)
/// .out_slope but without composing the delay model. The slope-constraint
/// generator evaluates every arc transition and discards the delay, so
/// skipping the delay composition roughly halves its model cost. The
/// fault-injection sites and coefficient guards of the full build are kept
/// so chaos-test firing sequences and failure behavior are unchanged.
posy::Posynomial arc_out_slope_posy(
    const netlist::Netlist& nl, const netlist::Arc& arc, bool out_rising,
    const posy::Posynomial& in_slope, const posy::Posynomial& c_out,
    const LabelVarMap& labels, const ModelLibrary& lib,
    const tech::Tech& tech, netlist::Phase phase = netlist::Phase::kEvaluate);

}  // namespace smart::models

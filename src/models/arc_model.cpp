#include "models/arc_model.h"

#include <algorithm>

#include "par/par.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/strfmt.h"

namespace smart::models {

using netlist::Arc;
using netlist::ArcKind;
using netlist::Component;
using netlist::LabelId;
using netlist::NetId;
using netlist::Netlist;
using posy::Monomial;
using posy::Posynomial;

ArcClass classify_arc(const Netlist& nl, const Arc& arc,
                      netlist::Phase phase) {
  switch (arc.kind) {
    case ArcKind::kStaticData:
      return ArcClass::kStatic;
    case ArcKind::kPassData:
      return ArcClass::kPassData;
    case ArcKind::kPassControl:
      return ArcClass::kPassControl;
    case ArcKind::kTristateData:
      return ArcClass::kTristateData;
    case ArcKind::kTristateEnable:
      return ArcClass::kTristateEnable;
    case ArcKind::kDominoClkEval:
      return ArcClass::kDominoClkEval;
    case ArcKind::kDominoPrecharge:
      return ArcClass::kDominoPrecharge;
    case ArcKind::kDominoEval: {
      const auto* d = nl.comp(arc.comp).as_domino();
      SMART_CHECK(d != nullptr, "eval arc on non-domino component");
      if (phase == netlist::Phase::kPrecharge)
        return ArcClass::kDominoPrecharge;  // D2 reset ripple
      return d->evaluate_label >= 0 ? ArcClass::kDominoFooted
                                    : ArcClass::kDominoUnfooted;
    }
  }
  SMART_FAIL("unreachable arc kind");
}

LabelVarMap make_label_vars(const Netlist& nl, posy::VarTable& vars) {
  LabelVarMap map;
  map.reserve(nl.label_count());
  for (size_t i = 0; i < nl.label_count(); ++i) {
    const auto& label = nl.label(static_cast<LabelId>(i));
    if (label.fixed) {
      map.push_back(Monomial(label.fixed_width));
      continue;
    }
    std::string name = nl.name() + "/" + label.name;
    if (vars.find(name) >= 0)
      name += util::strfmt("#%zu", i);  // disambiguate duplicate label names
    const posy::VarId v = vars.add(name, label.w_min, label.w_max);
    map.push_back(Monomial::variable(v));
  }
  return map;
}

Posynomial net_cap_posy(const Netlist& nl, NetId n, const LabelVarMap& labels,
                        const tech::Tech& tech) {
  Posynomial cap;
  auto add_refs = [&](const std::vector<netlist::WidthRef>& refs,
                      double per_um) {
    for (const auto& r : refs) {
      Monomial m = labels.at(static_cast<size_t>(r.label));
      m *= r.scale * per_um;
      cap += m;
    }
  };
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto id = static_cast<netlist::CompId>(c);
    add_refs(nl.gate_width_on_net(id, n), tech.c_gate);
    add_refs(nl.diffusion_width_on_net(id, n), tech.c_diff);
  }
  double fixed = tech.c_wire + nl.net(n).extra_wire_ff +
                 tech.c_wire_per_fanout *
                     static_cast<double>(nl.arcs_from(n).size());
  for (const auto& port : nl.outputs())
    if (port.net == n) fixed += port.load_ff;
  cap += Monomial(fixed);
  return cap;
}

std::vector<Posynomial> net_cap_posy_all(const Netlist& nl,
                                         const LabelVarMap& labels,
                                         const tech::Tech& tech) {
  const size_t n_nets = nl.net_count();
  // Scatter pass: for each component (ascending, gate refs before diffusion
  // refs — the same visit order net_cap_posy uses within one net), append
  // its width refs to the nets it actually touches.
  struct CapRef {
    netlist::WidthRef ref;
    double per_um;
  };
  std::vector<std::vector<CapRef>> refs(n_nets);
  std::vector<NetId> gate_nets, diff_nets;
  std::vector<std::pair<NetId, LabelId>> leaves;
  auto push_unique = [](std::vector<NetId>& v, NetId n) {
    if (n >= 0 && std::find(v.begin(), v.end(), n) == v.end())
      v.push_back(n);
  };
  for (size_t c = 0; c < nl.comp_count(); ++c) {
    const auto id = static_cast<netlist::CompId>(c);
    const Component& comp = nl.comp(id);
    gate_nets.clear();
    diff_nets.clear();
    if (const auto* g = comp.as_static()) {
      leaves.clear();
      g->pulldown.collect_leaves(leaves);
      for (const auto& [in, label] : leaves) push_unique(gate_nets, in);
      push_unique(diff_nets, comp.out);
    } else if (const auto* t = comp.as_transgate()) {
      push_unique(gate_nets, t->sel);
      push_unique(diff_nets, comp.out);
      push_unique(diff_nets, t->data);
    } else if (const auto* t3 = comp.as_tristate()) {
      push_unique(gate_nets, t3->data);
      push_unique(gate_nets, t3->en);
      push_unique(diff_nets, comp.out);
    } else if (const auto* d = comp.as_domino()) {
      leaves.clear();
      d->pulldown.collect_leaves(leaves);
      for (const auto& [in, label] : leaves) push_unique(gate_nets, in);
      push_unique(gate_nets, d->clk);
      push_unique(diff_nets, comp.out);
    }
    for (const NetId n : gate_nets)
      for (const auto& r : nl.gate_width_on_net(id, n))
        refs[static_cast<size_t>(n)].push_back(CapRef{r, tech.c_gate});
    for (const NetId n : diff_nets)
      for (const auto& r : nl.diffusion_width_on_net(id, n))
        refs[static_cast<size_t>(n)].push_back(CapRef{r, tech.c_diff});
  }
  std::vector<Posynomial> caps(n_nets);
  par::parallel_for(
      n_nets,
      [&](size_t begin, size_t end) {
        for (size_t n = begin; n < end; ++n) {
          Posynomial cap;
          for (const auto& [r, per_um] : refs[n]) {
            Monomial m = labels.at(static_cast<size_t>(r.label));
            m *= r.scale * per_um;
            cap += m;
          }
          const auto net = static_cast<NetId>(n);
          double fixed = tech.c_wire + nl.net(net).extra_wire_ff +
                         tech.c_wire_per_fanout *
                             static_cast<double>(nl.arcs_from(net).size());
          for (const auto& port : nl.outputs())
            if (port.net == net) fixed += port.load_ff;
          cap += Monomial(fixed);
          caps[n] = std::move(cap);
        }
      },
      "models.net_caps", 32);
  return caps;
}

namespace {

/// Builds RCsum = sum_j (r_j / W_j) * C_out + internal stack-node terms for
/// a series path given as (resistance-per-um, width-monomial) from the
/// output node down to the supply.
Posynomial path_rc_posy(
    const std::vector<std::pair<double, Monomial>>& path_from_out,
    const Posynomial& c_out, const tech::Tech& tech) {
  SMART_CHECK(!path_from_out.empty(), "empty RC path");
  // R_total * C_out
  Posynomial r_total;
  for (const auto& [r, w] : path_from_out)
    r_total += w.inverse() * r;
  Posynomial rc = r_total * c_out;
  // Internal node between devices k and k+1: cap c_diff*(W_k + W_{k+1}),
  // resistance to supply = sum of device resistances below the node.
  for (size_t k = 0; k + 1 < path_from_out.size(); ++k) {
    Posynomial r_below;
    for (size_t j = k + 1; j < path_from_out.size(); ++j)
      r_below += path_from_out[j].second.inverse() * path_from_out[j].first;
    Posynomial c_node(path_from_out[k].second * tech.c_diff);
    c_node += path_from_out[k + 1].second * tech.c_diff;
    rc += r_below * c_node;
  }
  return rc;
}

}  // namespace

Posynomial arc_rc_posy(const Netlist& nl, const Arc& arc, bool out_rising,
                       const Posynomial& c_out, const LabelVarMap& labels,
                       const tech::Tech& tech, netlist::Phase phase) {
  const Component& comp = nl.comp(arc.comp);
  auto width = [&](LabelId l) { return labels.at(static_cast<size_t>(l)); };

  // Reused per-thread scratch: arc models are evaluated for every arc
  // transition of the netlist, and the per-call vector churn showed up in
  // constraint-generation profiles.
  static thread_local std::vector<std::pair<NetId, LabelId>> path;
  static thread_local std::vector<std::pair<double, Monomial>> rw;
  path.clear();
  rw.clear();

  if (const auto* g = comp.as_static()) {
    if (out_rising) {
      // Every pull-up device shares one resistance and label, so only the
      // worst dual-path length matters — computed without copying the tree.
      const int len = g->pulldown.dual_worst_len_through(arc.from);
      SMART_CHECK(len >= 0, "static arc input not in pull-up network");
      rw.assign(static_cast<size_t>(len), {tech.r_pmos, width(g->pmos_label)});
    } else {
      const bool found = g->pulldown.worst_path_through(arc.from, path);
      SMART_CHECK(found, "static arc input not in pull-down network");
      for (const auto& [net, label] : path)
        rw.emplace_back(tech.r_nmos, width(label));
    }
    return path_rc_posy(rw, c_out, tech);
  }

  if (const auto* tg = comp.as_transgate()) {
    const double r_eff =
        (tech.r_nmos * tech.r_pmos) / (tech.r_nmos + tech.r_pmos);
    // Data and control arcs share the conduction RC; the control arc's
    // local-inverter delay is near width-independent and is absorbed into
    // the class's fitted intrinsic term.
    return path_rc_posy({{r_eff, width(tg->label)}}, c_out, tech);
  }

  if (const auto* t3 = comp.as_tristate()) {
    const double r = out_rising ? tech.r_pmos : tech.r_nmos;
    const Monomial w =
        out_rising ? width(t3->pmos_label) : width(t3->nmos_label);
    return path_rc_posy({{r, w}, {r, w}}, c_out, tech);
  }

  const auto* d = comp.as_domino();
  SMART_CHECK(d != nullptr, "unknown component kind");

  if (arc.kind == ArcKind::kDominoPrecharge ||
      (phase == netlist::Phase::kPrecharge &&
       arc.kind == ArcKind::kDominoEval)) {
    // Precharge through P1 — including the unfooted reset ripple, where
    // the gating event is the input falling but the RC is the precharge
    // device charging the dynamic node.
    return path_rc_posy({{tech.r_pmos, width(d->precharge_label)}}, c_out,
                        tech);
  }

  if (arc.kind == ArcKind::kDominoClkEval) {
    path = d->pulldown.worst_path();
  } else {
    const bool found = d->pulldown.worst_path_through(arc.from, path);
    SMART_CHECK(found, "domino arc input not in pull-down network");
  }
  for (const auto& [net, label] : path)
    rw.emplace_back(tech.r_nmos, width(label));
  if (d->evaluate_label >= 0)
    rw.emplace_back(tech.r_nmos, width(d->evaluate_label));
  return path_rc_posy(rw, c_out, tech);
}

ArcPosy arc_model_posy(const Netlist& nl, const Arc& arc, bool out_rising,
                       const Posynomial& in_slope, const Posynomial& c_out,
                       const LabelVarMap& labels, const ModelLibrary& lib,
                       const tech::Tech& tech, netlist::Phase phase) {
  ModelCoeffs m = lib.coeffs(classify_arc(nl, arc, phase));
  // Fault-injection sites: chaos tests corrupt the calibrated coefficients
  // here — a perturbation models a bad fit, NaN models a poisoned library —
  // and the solve path must degrade instead of crashing.
  m.a_rc = util::fault_corrupt(util::FaultClass::kModelCoeffPerturb,
                               "model.coeff.a_rc", m.a_rc);
  m.a_int = util::fault_corrupt(util::FaultClass::kModelNonFinite,
                                "model.coeff.a_int", m.a_int);
  const Posynomial rc =
      arc_rc_posy(nl, arc, out_rising, c_out, labels, tech, phase);
  ArcPosy out;
  out.delay = Posynomial(m.a_int);
  out.delay.add_scaled(rc, m.a_rc);
  if (m.saturating_slope && in_slope.is_constant()) {
    out.delay += Posynomial(
        m.a_slope * tech.saturate_slope(in_slope.constant_value()));
  } else {
    out.delay.add_scaled(in_slope, m.a_slope);
  }
  out.out_slope = Posynomial(m.b_int);
  out.out_slope.add_scaled(rc, m.b_rc);
  out.out_slope.add_scaled(in_slope, m.b_slope);
  return out;
}

Posynomial arc_out_slope_posy(const Netlist& nl, const Arc& arc,
                              bool out_rising, const Posynomial& in_slope,
                              const Posynomial& c_out,
                              const LabelVarMap& labels,
                              const ModelLibrary& lib, const tech::Tech& tech,
                              netlist::Phase phase) {
  ModelCoeffs m = lib.coeffs(classify_arc(nl, arc, phase));
  // Same fault sites as arc_model_posy so chaos-test hit/fire sequences are
  // unchanged; the delay coefficients feed the same validity guards the
  // delay composition would apply, then go unused.
  m.a_rc = util::fault_corrupt(util::FaultClass::kModelCoeffPerturb,
                               "model.coeff.a_rc", m.a_rc);
  m.a_int = util::fault_corrupt(util::FaultClass::kModelNonFinite,
                                "model.coeff.a_int", m.a_int);
  SMART_CHECK(m.a_int >= 0.0, "posynomial constant must be non-negative");
  SMART_CHECK(m.a_rc >= 0.0, "posynomial scaling must be non-negative");
  const Posynomial rc =
      arc_rc_posy(nl, arc, out_rising, c_out, labels, tech, phase);
  Posynomial out(m.b_int);
  out.add_scaled(rc, m.b_rc);
  out.add_scaled(in_slope, m.b_slope);
  return out;
}

}  // namespace smart::models

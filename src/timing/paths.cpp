#include "timing/paths.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "obs/obs.h"
#include "par/par.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::timing {

using netlist::Arc;
using netlist::ArcKind;
using netlist::Component;
using netlist::EdgeMap;
using netlist::NetId;
using netlist::Netlist;
using netlist::Phase;
using netlist::Stack;

namespace {

// ---- 64-bit mixing over small integer streams ----
// Only digest equality is ever consulted (class dedup, prune buckets), so
// the mixers just need good avalanche; murmur-style finalization per word
// replaces the original byte-at-a-time FNV loop on the extraction hot path.

struct Hash {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  void mix(uint64_t v) {
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    h = (h ^ v) * 0x2545f4914f6cdd1dULL;
    h ^= h >> 29;
  }
  void mix_double(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
};

/// Non-commutative combine of two already-mixed digests; the workhorse of
/// suffix-chain hashing (called once per stored signature per class).
inline uint64_t mix2(uint64_t x, uint64_t y) {
  uint64_t v = x ^ (y + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2));
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  return v;
}

void hash_stack(const Stack& s, Hash& h) {
  h.mix(static_cast<uint64_t>(s.op()) + 101);
  if (s.is_leaf()) {
    h.mix(static_cast<uint64_t>(s.label()) + 7);
    return;
  }
  h.mix(s.children().size());
  for (const auto& c : s.children()) hash_stack(c, h);
}

/// Structure+label signature of a component — identical for the regular
/// repetitions of a bit-sliced macro (same topology, same size labels).
uint64_t component_signature(const Component& comp) {
  Hash h;
  h.mix(comp.impl.index());
  if (const auto* g = comp.as_static()) {
    hash_stack(g->pulldown, h);
    h.mix(static_cast<uint64_t>(g->pmos_label));
  } else if (const auto* t = comp.as_transgate()) {
    h.mix(static_cast<uint64_t>(t->label));
  } else if (const auto* t3 = comp.as_tristate()) {
    h.mix(static_cast<uint64_t>(t3->nmos_label));
    h.mix(static_cast<uint64_t>(t3->pmos_label));
  } else if (const auto* d = comp.as_domino()) {
    hash_stack(d->pulldown, h);
    h.mix(static_cast<uint64_t>(d->precharge_label));
    h.mix(static_cast<uint64_t>(d->evaluate_label) + 3);
    h.mix_double(d->keeper_ratio);
  }
  return h.h;
}

/// Labels-only signature: components with the same size-label multiset are
/// interchangeable for constraint purposes once each node is modeled by its
/// worst-case pin-to-pin delay (paper §5.2); the pruning passes collapse
/// them, keeping the structurally worst representative.
uint64_t component_label_signature(const Component& comp) {
  Hash h;
  h.mix(comp.impl.index());
  std::vector<int> labels;
  auto add_stack = [&](const Stack& st) {
    std::vector<std::pair<NetId, netlist::LabelId>> leaves;
    st.collect_leaves(leaves);
    for (const auto& [n, l] : leaves) labels.push_back(l);
  };
  if (const auto* g = comp.as_static()) {
    add_stack(g->pulldown);
    labels.push_back(g->pmos_label);
  } else if (const auto* t = comp.as_transgate()) {
    labels.push_back(t->label);
  } else if (const auto* t3 = comp.as_tristate()) {
    labels.push_back(t3->nmos_label);
    labels.push_back(t3->pmos_label);
  } else if (const auto* d = comp.as_domino()) {
    add_stack(d->pulldown);
    labels.push_back(d->precharge_label);
    labels.push_back(d->evaluate_label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  for (int l : labels) h.mix(static_cast<uint64_t>(l) + 13);
  return h.h;
}

/// Structural worst-case weight of a component (deepest stack), used to
/// pick the binding representative within a label-equivalence class.
int component_depth(const Component& comp) {
  if (const auto* g = comp.as_static()) return g->pulldown.max_depth();
  if (const auto* d = comp.as_domino())
    return d->pulldown.max_depth() + (d->evaluate_label >= 0 ? 1 : 0);
  return 1;
}

/// Structural depth of the pin `input` inside a component (0 = adjacent to
/// the output, larger = deeper in the stack => slower pin class).
int pin_depth_of(const Component& comp, NetId input) {
  const Stack* stack = nullptr;
  if (const auto* g = comp.as_static()) stack = &g->pulldown;
  if (const auto* d = comp.as_domino()) stack = &d->pulldown;
  if (stack != nullptr) {
    std::vector<std::pair<NetId, netlist::LabelId>> path;
    if (stack->worst_path_through(input, path)) {
      for (size_t i = 0; i < path.size(); ++i)
        if (path[i].first == input) return static_cast<int>(i);
    }
    return 0;
  }
  if (const auto* t = comp.as_transgate())
    return input == t->sel ? 1 : 0;
  if (const auto* t3 = comp.as_tristate())
    return input == t3->en ? 1 : 0;
  return 0;
}

/// Which hash variants a step contributes to; see PruneOptions.
struct StepSigs {
  uint64_t reg;       ///< full: structure + labels + depth + fanout
  uint64_t no_depth;  ///< precedence granularity
  uint64_t no_fan;    ///< dominance granularity (depth kept)
  uint64_t coarse;    ///< neither depth nor fanout
};

/// The chain-level signatures kept per suffix class. `no_fan` is omitted:
/// it is only consulted when precedence pruning is disabled, and is then
/// recomputed by walking the (short) chains of the surviving candidates
/// instead of being hashed into every one of the ~100k stored classes.
struct ChainSigs {
  uint64_t reg;
  uint64_t no_depth;
  uint64_t coarse;
};

/// A suffix equivalence class from some (net, edge) node toward the output
/// ports. Classes chain: one step plus a reference to a class of the step's
/// destination node, so creating a class is O(1) regardless of suffix
/// length — full step vectors are materialized only for the paths that
/// survive every pruning stage.
struct Suffix {
  ChainSigs sigs;  // combined over all steps
  PathStep step;   // first step of the chain (unset for the terminal class)
  uint32_t child_node = 0;   ///< (net, edge) key of the rest of the suffix
  int32_t child_index = -1;  ///< class index at child_node; -1 => terminal
  int32_t len = 0;           ///< number of steps in the chain
  long sum_depth = 0;
  long sum_fanout = 0;
};

/// Open-addressing digest set with generation-stamped clearing, so one
/// scratch table serves every node of a wavefront chunk without per-node
/// allocation. Sized ahead of time from the exact attempt bound.
class DedupTable {
 public:
  /// Prepares the table for up to `expect` insertions.
  void begin(size_t expect) {
    size_t want = 16;
    while (want < expect * 2) want <<= 1;
    if (want > sigs_.size()) {
      sigs_.assign(want, 0);
      gens_.assign(want, 0);
      gen_ = 1;
    } else if (++gen_ == 0) {
      std::fill(gens_.begin(), gens_.end(), 0u);
      gen_ = 1;
    }
    mask_ = sigs_.size() - 1;
  }

  /// True when `sig` was not present (and inserts it).
  bool insert(uint64_t sig) {
    size_t i = static_cast<size_t>(sig) & mask_;
    for (;;) {
      if (gens_[i] != gen_) {
        gens_[i] = gen_;
        sigs_[i] = sig;
        return true;
      }
      if (sigs_[i] == sig) return false;
      i = (i + 1) & mask_;
    }
  }

  /// Maps `sig` to a dense id: existing id on repeat, `next_id` on first
  /// sight (and reports the insertion through `inserted`).
  uint32_t id_of(uint64_t sig, uint32_t next_id, bool* inserted) {
    size_t i = static_cast<size_t>(sig) & mask_;
    for (;;) {
      if (gens_[i] != gen_) {
        gens_[i] = gen_;
        sigs_[i] = sig;
        ids_[i] = next_id;
        *inserted = true;
        return next_id;
      }
      if (sigs_[i] == sig) {
        *inserted = false;
        return ids_[i];
      }
      i = (i + 1) & mask_;
    }
  }

  /// Enables id_of for the current generation (begin() first).
  void with_ids() {
    if (ids_.size() < sigs_.size()) ids_.resize(sigs_.size());
  }

 private:
  std::vector<uint64_t> sigs_;
  std::vector<uint32_t> ids_;
  std::vector<uint32_t> gens_;
  uint32_t gen_ = 0;
  size_t mask_ = 0;
};

}  // namespace

int Path::domino_stages() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.arc.kind == ArcKind::kDominoEval ||
        s.arc.kind == ArcKind::kDominoClkEval)
      ++n;
  return n;
}

namespace {

/// Sources of a phase: (net, rise?, arrival, slope) tuples.
struct Source {
  NetId net;
  bool rise;
  double arrival;
  double slope;
};

std::vector<Source> phase_sources(const Netlist& nl, Phase phase) {
  std::vector<Source> sources;
  for (const auto& p : nl.inputs()) {
    const double arr = phase == Phase::kEvaluate ? p.arrival_ps : 0.0;
    sources.push_back(Source{p.net, true, arr, p.slope_ps});
    sources.push_back(Source{p.net, false, arr, p.slope_ps});
  }
  for (size_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(static_cast<NetId>(n)).kind != netlist::NetKind::kClock)
      continue;
    sources.push_back(Source{static_cast<NetId>(n),
                             phase == Phase::kEvaluate, 0.0, -1.0});
  }
  return sources;
}

constexpr uint64_t kTerminalSeed = 0x7e34a1ULL;

class Extractor {
 public:
  /// `count_universe` additionally tracks, per node, the regularity
  /// signatures of the *unpruned* class universe, so PathStats can report
  /// the paper's after-regularity count even though node-level precedence
  /// pruning (below) never materializes most of those classes.
  Extractor(const Netlist& nl, const PruneOptions& opt, bool count_universe)
      : nl_(nl), opt_(opt), count_universe_(count_universe) {
    Hash th;
    th.mix(kTerminalSeed);
    terminal_sig_ = th.h;
    const size_t n_comps = nl.comp_count();
    comp_sigs_.resize(n_comps);
    comp_label_sigs_.resize(n_comps);
    comp_depth_.resize(n_comps);
    par::parallel_for(
        n_comps,
        [&](size_t begin, size_t end) {
          for (size_t c = begin; c < end; ++c) {
            const Component& comp = nl_.comp(static_cast<int>(c));
            comp_sigs_[c] = component_signature(comp);
            comp_label_sigs_[c] = component_label_signature(comp);
            comp_depth_[c] = component_depth(comp);
          }
        },
        "timing.extract.comp_sigs", 64);
    // Pin depths per (net, arc) slot, so the wavefront never re-walks a
    // component stack. Each net owns its slot: race-free and order-free.
    pin_depth_.resize(nl.net_count());
    par::parallel_for(
        nl.net_count(),
        [&](size_t begin, size_t end) {
          for (size_t n = begin; n < end; ++n) {
            const auto& arcs = nl_.arcs_from(static_cast<NetId>(n));
            auto& depths = pin_depth_[n];
            depths.resize(arcs.size());
            for (size_t ai = 0; ai < arcs.size(); ++ai)
              depths[ai] =
                  pin_depth_of(nl_.comp(arcs[ai].comp), arcs[ai].from);
          }
        },
        "timing.extract.pin_depths", 64);
    output_load_.assign(nl.net_count(), -1.0);
    for (const auto& p : nl.outputs())
      output_load_[static_cast<size_t>(p.net)] = p.load_ff;
  }

  static uint32_t node_key(NetId net, bool rise) {
    return static_cast<uint32_t>(net) * 2 + (rise ? 1u : 0u);
  }

  /// Builds the suffix-class memo of a phase bottom-up: topological levels
  /// over the subgraph reachable from the phase's sources, each level's
  /// nodes computed in parallel (a node only reads its children's finished
  /// slots and writes its own, so the memo content is independent of
  /// scheduling and thread count).
  void build(Phase phase) {
    auto& memo = memo_of(phase);
    if (!memo.empty()) return;
    const size_t n_nodes = nl_.net_count() * 2;
    memo.assign(n_nodes, {});
    if (count_universe_) sig_memo_of(phase).assign(n_nodes, {});

    // Iterative DFS post-order from the phase sources: children precede
    // parents, bounding the build to the subgraph the sources can see.
    std::vector<uint8_t> state(n_nodes, 0);
    std::vector<uint32_t> order;
    std::vector<uint32_t> stack;
    std::vector<EdgeMap> maps;
    std::vector<uint32_t> kids;
    auto children = [&](uint32_t node, std::vector<uint32_t>& out) {
      out.clear();
      const NetId net = static_cast<NetId>(node / 2);
      const bool rise = (node & 1u) != 0;
      for (const Arc& a : nl_.arcs_from(net)) {
        bool footed = true;
        if (const auto* dg = nl_.comp(a.comp).as_domino())
          footed = dg->evaluate_label >= 0;
        netlist::arc_edge_maps(a.kind, phase, footed, maps);
        for (const EdgeMap& em : maps) {
          if (em.in_rise != rise) continue;
          out.push_back(node_key(a.to, em.out_rise));
        }
      }
    };
    for (const Source& src : phase_sources(nl_, phase)) {
      const uint32_t root = node_key(src.net, src.rise);
      if (state[root] != 0) continue;
      stack.push_back(root);
      while (!stack.empty()) {
        const uint32_t n = stack.back();
        if (state[n] == 0) {
          state[n] = 1;
          children(n, kids);
          for (uint32_t k : kids)
            if (state[k] == 0) stack.push_back(k);
        } else {
          if (state[n] == 1) {
            state[n] = 2;
            order.push_back(n);
          }
          stack.pop_back();
        }
      }
    }

    // Level = longest edge distance to a sink; nodes of one level never
    // depend on each other, so each level is a parallel wavefront.
    std::vector<int32_t> level(n_nodes, 0);
    int32_t max_level = 0;
    for (const uint32_t n : order) {
      children(n, kids);
      int32_t lvl = 0;
      for (uint32_t k : kids) lvl = std::max(lvl, level[k] + 1);
      level[n] = lvl;
      max_level = std::max(max_level, lvl);
    }
    std::vector<std::vector<uint32_t>> buckets(
        static_cast<size_t>(max_level) + 1);
    for (const uint32_t n : order)
      buckets[static_cast<size_t>(level[n])].push_back(n);

    for (auto& bucket : buckets) {
      // Deadline poll between wavefront levels: a served request with an
      // exhausted budget must stop extracting, not finish the build. The
      // poll sits between parallel_for calls, so chunk boundaries (and
      // therefore the deterministic output) are untouched.
      if (util::deadline_expired(opt_.deadline))
        throw util::TimeoutError(
            "path extraction deadline exceeded (wavefront)");
      par::parallel_for(
          bucket.size(),
          [&](size_t begin, size_t end) {
            // Reused across wavefront levels and extractions: the dedup
            // tables and buffers are generation-cleared / assigned at each
            // use, so retained capacity cannot affect results — it only
            // avoids reallocating multi-hundred-KB tables per level.
            static thread_local BuildScratch sc;
            for (size_t i = begin; i < end; ++i)
              build_node(phase, bucket[i], sc);
          },
          "timing.extract.wave");
    }
  }

  const std::vector<Suffix>& classes(Phase phase, uint32_t node) const {
    return memo_of(phase)[node];
  }

  /// Regularity signatures of the unpruned universe at a node (requires
  /// count_universe). When the node is an output sink, index 0 is the
  /// terminal (length-0) class.
  const std::vector<uint64_t>& universe_sigs(Phase phase,
                                             uint32_t node) const {
    return sig_memo_of(phase)[node];
  }

  bool node_has_terminal(uint32_t node) const {
    return output_load_[static_cast<size_t>(node / 2)] >= 0.0;
  }

  const Suffix* suffix_at(Phase phase, uint32_t node, size_t index) const {
    return &memo_of(phase)[node][index];
  }

  const Suffix* next_suffix(Phase phase, const Suffix* s) const {
    return &memo_of(phase)[s->child_node][static_cast<size_t>(s->child_index)];
  }

  /// Appends the chained steps of class (node, index) to `out`.
  void materialize(Phase phase, uint32_t node, size_t index,
                   std::vector<PathStep>* out) const {
    const Suffix* s = suffix_at(phase, node, index);
    out->reserve(out->size() + static_cast<size_t>(s->len));
    while (s->len > 0) {
      out->push_back(s->step);
      s = next_suffix(phase, s);
    }
  }

  /// Chain fold of the dominance-granularity (`no_fan`) signature; only
  /// evaluated for surviving candidates when precedence pruning is off.
  uint64_t chain_no_fan_sig(Phase phase, uint32_t node, size_t index) const {
    std::vector<const PathStep*> chain;
    const Suffix* s = suffix_at(phase, node, index);
    chain.reserve(static_cast<size_t>(s->len));
    while (s->len > 0) {
      chain.push_back(&s->step);
      s = next_suffix(phase, s);
    }
    uint64_t sig = terminal_sig_;
    for (size_t i = chain.size(); i-- > 0;)
      sig = mix2(step_sigs(*chain[i]).no_fan, sig);
    return sig;
  }

  bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  long class_attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }
  long classes_stored() const {
    return stored_.load(std::memory_order_relaxed);
  }

  StepSigs step_sigs(const PathStep& step) const {
    // Full-structure base: exact stack shape + labels (regularity level).
    Hash fine;
    fine.mix(comp_sigs_[static_cast<size_t>(step.arc.comp)]);
    // Labels-only base: worst-case node model level (precedence/dominance).
    Hash label_base;
    label_base.mix(comp_label_sigs_[static_cast<size_t>(step.arc.comp)]);
    for (Hash* h : {&fine, &label_base}) {
      h->mix(static_cast<uint64_t>(step.arc.kind) + 17);
      h->mix(static_cast<uint64_t>(step.in_rise) * 2 +
             static_cast<uint64_t>(step.out_rise));
      const double load = output_load_[static_cast<size_t>(step.arc.to)];
      if (load >= 0.0) h->mix_double(load);  // port loads differentiate
      if (!opt_.regularity) {
        // Without regularity every net identity is distinct: no collapsing.
        h->mix(static_cast<uint64_t>(step.arc.from) + 0x9e3779b9ULL);
        h->mix(static_cast<uint64_t>(step.arc.to) + 0x85ebca6bULL);
      }
    }
    StepSigs s;
    Hash h_reg = fine;
    h_reg.mix(static_cast<uint64_t>(step.pin_depth) + 29);
    h_reg.mix(static_cast<uint64_t>(step.fanout) + 31);
    s.reg = h_reg.h;
    Hash h_nd = label_base;
    h_nd.mix(static_cast<uint64_t>(step.fanout) + 31);
    s.no_depth = h_nd.h;
    Hash h_nf = fine;
    h_nf.mix(static_cast<uint64_t>(step.pin_depth) + 29);
    s.no_fan = h_nf.h;
    s.coarse = label_base.h;
    return s;
  }

 private:
  /// Per-worker scratch reused across the nodes of a wavefront chunk.
  struct BuildScratch {
    std::vector<EdgeMap> maps;
    DedupTable dedup;        ///< reg-sig dedup of the stored classes
    DedupTable count_dedup;  ///< reg-sig dedup of the unpruned universe
    std::vector<int32_t> prev;  ///< node-prune: previous class in bucket
    std::vector<int32_t> last;  ///< node-prune: last class per bucket
    std::vector<uint8_t> dead;
  };

  /// Stepwise domination of two suffix classes of the same node (see the
  /// candidate-level `dominates` in extract(): a may replace b only when a
  /// is at least as slow at every step).
  bool suffix_dominates(Phase phase, const Suffix& a, const Suffix& b) const {
    if (a.len != b.len) return false;
    if (a.sum_depth < b.sum_depth || a.sum_fanout < b.sum_fanout)
      return false;
    const Suffix* sa = &a;
    const Suffix* sb = &b;
    while (sa->len > 0) {
      if (sa->step.comp_depth < sb->step.comp_depth ||
          sa->step.pin_depth < sb->step.pin_depth ||
          sa->step.fanout < sb->step.fanout)
        return false;
      sa = next_suffix(phase, sa);
      sb = next_suffix(phase, sb);
    }
    return true;
  }

  /// Node-level precedence prune: collapse this node's classes to the
  /// per-bucket (no-depth signature) Pareto fronts before any parent
  /// extends them. Sound because stepwise domination is transitive and
  /// preserved under prefix extension — a class dominated here would have
  /// produced only globally-dominated candidates — so the global stages see
  /// exactly the same survivors while the per-node class lists (and every
  /// downstream stage) stay near the final-front size instead of the full
  /// regularity universe.
  void prune_node(Phase phase, std::vector<Suffix>& classes,
                  BuildScratch& sc) {
    const size_t n = classes.size();
    sc.dedup.begin(n);
    sc.dedup.with_ids();
    sc.prev.assign(n, -1);
    sc.dead.assign(n, 0);
    sc.last.clear();
    uint32_t n_buckets = 0;
    for (size_t i = 0; i < n; ++i) {
      bool inserted = false;
      const uint32_t b =
          sc.dedup.id_of(classes[i].sigs.no_depth, n_buckets, &inserted);
      if (inserted) {
        ++n_buckets;
        sc.last.push_back(-1);
      }
      sc.prev[i] = sc.last[b];
      sc.last[b] = static_cast<int32_t>(i);
    }
    for (size_t i = 0; i < n; ++i) {
      bool drop = false;
      for (int32_t j = sc.prev[i]; j >= 0; j = sc.prev[j]) {
        if (!sc.dead[j] && suffix_dominates(phase, classes[j], classes[i])) {
          drop = true;
          break;
        }
      }
      if (drop) {
        sc.dead[i] = 1;
        continue;
      }
      for (int32_t j = sc.prev[i]; j >= 0; j = sc.prev[j])
        if (!sc.dead[j] && suffix_dominates(phase, classes[i], classes[j]))
          sc.dead[j] = 1;
    }
    size_t w = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!sc.dead[i]) {
        if (w != i) classes[w] = std::move(classes[i]);
        ++w;
      }
    }
    classes.resize(w);
  }

  /// Computes the suffix classes of one (net, edge) node. Children are
  /// finished (lower wavefront level); only this node's slot is written.
  void build_node(Phase phase, uint32_t node, BuildScratch& sc) {
    auto& memo = memo_of(phase);
    auto& classes = memo[node];
    auto& maps = sc.maps;
    const NetId net = static_cast<NetId>(node / 2);
    const bool rise = (node & 1u) != 0;
    const bool is_output = output_load_[static_cast<size_t>(net)] >= 0.0;
    const auto& arcs = nl_.arcs_from(net);
    auto& sig_memo = sig_memo_of(phase);

    // Exact attempt bounds: one terminal class plus one attempt per
    // (arc, edge-map, child class) triple — size the dedup tables and the
    // class vectors in one shot.
    size_t bound = is_output ? 1 : 0;
    size_t count_bound = count_universe_ ? bound : 0;
    for (const Arc& a : arcs) {
      bool footed = true;
      if (const auto* dg = nl_.comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, phase, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.in_rise != rise) continue;
        const uint32_t child = node_key(a.to, em.out_rise);
        bound += memo[child].size();
        if (count_universe_) count_bound += sig_memo[child].size();
      }
    }
    if (bound == 0 && count_bound == 0) return;
    sc.dedup.begin(bound);
    classes.reserve(std::min(bound, opt_.max_classes_per_node));
    std::vector<uint64_t>* all_sigs = nullptr;
    if (count_universe_) {
      all_sigs = &sig_memo[node];
      sc.count_dedup.begin(count_bound);
      all_sigs->reserve(std::min(count_bound, opt_.max_classes_per_node));
    }

    long attempts = 0;
    auto add_class = [&](Suffix&& s) {
      ++attempts;
      if (sc.dedup.insert(s.sigs.reg)) {
        if (classes.size() >= opt_.max_classes_per_node) {
          overflowed_.store(true, std::memory_order_relaxed);
          return;
        }
        classes.push_back(std::move(s));
      }
    };
    auto add_count_sig = [&](uint64_t sig) {
      if (sc.count_dedup.insert(sig)) {
        if (all_sigs->size() >= opt_.max_classes_per_node) {
          overflowed_.store(true, std::memory_order_relaxed);
          return;
        }
        all_sigs->push_back(sig);
      }
    };

    if (is_output) {
      Suffix terminal;
      terminal.sigs = ChainSigs{terminal_sig_, terminal_sig_, terminal_sig_};
      add_class(std::move(terminal));
      if (count_universe_) add_count_sig(terminal_sig_);
    }

    for (size_t ai = 0; ai < arcs.size(); ++ai) {
      const Arc& a = arcs[ai];
      bool footed = true;
      if (const auto* dg = nl_.comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, phase, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.in_rise != rise) continue;
        const uint32_t child_node = node_key(a.to, em.out_rise);
        const auto& child = memo[child_node];
        PathStep step;
        step.arc = a;
        step.in_rise = em.in_rise;
        step.out_rise = em.out_rise;
        step.pin_depth = pin_depth_[static_cast<size_t>(net)][ai];
        step.comp_depth = comp_depth_[static_cast<size_t>(a.comp)];
        step.fanout = static_cast<int>(nl_.arcs_from(a.to).size());
        const StepSigs ssig = step_sigs(step);
        const long depth_add = step.pin_depth + 16L * step.comp_depth;
        for (size_t ci = 0; ci < child.size(); ++ci) {
          const Suffix& cs = child[ci];
          Suffix s;
          s.sigs = ChainSigs{mix2(ssig.reg, cs.sigs.reg),
                             mix2(ssig.no_depth, cs.sigs.no_depth),
                             mix2(ssig.coarse, cs.sigs.coarse)};
          s.step = step;
          s.child_node = child_node;
          s.child_index = static_cast<int32_t>(ci);
          s.len = cs.len + 1;
          s.sum_depth = cs.sum_depth + depth_add;
          s.sum_fanout = cs.sum_fanout + step.fanout;
          add_class(std::move(s));
        }
        if (count_universe_)
          for (const uint64_t csig : sig_memo[child_node])
            add_count_sig(mix2(ssig.reg, csig));
      }
    }
    attempts_.fetch_add(attempts, std::memory_order_relaxed);
    stored_.fetch_add(static_cast<long>(classes.size()),
                      std::memory_order_relaxed);
    if (opt_.precedence && classes.size() > 1)
      prune_node(phase, classes, sc);
  }

  std::vector<std::vector<Suffix>>& memo_of(Phase phase) {
    return phase == Phase::kEvaluate ? memo_eval_ : memo_pre_;
  }
  const std::vector<std::vector<Suffix>>& memo_of(Phase phase) const {
    return phase == Phase::kEvaluate ? memo_eval_ : memo_pre_;
  }
  std::vector<std::vector<uint64_t>>& sig_memo_of(Phase phase) {
    return phase == Phase::kEvaluate ? sig_memo_eval_ : sig_memo_pre_;
  }
  const std::vector<std::vector<uint64_t>>& sig_memo_of(Phase phase) const {
    return phase == Phase::kEvaluate ? sig_memo_eval_ : sig_memo_pre_;
  }

  const Netlist& nl_;
  const PruneOptions& opt_;
  bool count_universe_ = false;
  uint64_t terminal_sig_ = 0;
  std::vector<uint64_t> comp_sigs_;
  std::vector<uint64_t> comp_label_sigs_;
  std::vector<int> comp_depth_;
  std::vector<std::vector<int>> pin_depth_;
  std::vector<double> output_load_;
  std::vector<std::vector<Suffix>> memo_eval_;
  std::vector<std::vector<Suffix>> memo_pre_;
  std::vector<std::vector<uint64_t>> sig_memo_eval_;
  std::vector<std::vector<uint64_t>> sig_memo_pre_;
  std::atomic<bool> overflowed_{false};
  std::atomic<long> attempts_{0};
  std::atomic<long> stored_{0};
};

}  // namespace

std::vector<Path> PathExtractor::extract(const PruneOptions& opt,
                                         PathStats* stats) const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  obs::Span span("timing.extract");
  auto& tel = obs::Telemetry::instance();
  // With tracing on, the §5.2 statistics are always collected so the
  // per-stage reduction factors land in the metrics export even when the
  // caller did not ask for them.
  PathStats local_stats;
  if (stats == nullptr && tel.enabled()) stats = &local_stats;
  // Node-level precedence pruning collapses the class memo as it builds, so
  // the regularity-universe size must be tracked on the side when stats ask
  // for it.
  const bool count_universe = stats != nullptr && opt.precedence;
  std::optional<obs::Span> prep_span;
  if (tel.enabled()) prep_span.emplace("timing.extract.prepare");
  Extractor ex(*nl_, opt, count_universe);
  prep_span.reset();

  // Stage 1: regularity classes (always computed; with regularity disabled
  // the signatures include net identities, so nothing collapses). A
  // candidate is pure metadata — a (source, suffix class) reference plus
  // its prune signatures; Path objects with step vectors exist only for
  // the final survivors.
  struct Candidate {
    uint64_t no_depth_sig;
    uint64_t coarse_sig;
    long sum_depth;
    long sum_fanout;
    uint32_t node;  ///< suffix-class reference
    uint32_t cls;
    int32_t len;
    uint32_t source;  ///< index into the phase's source list
    Phase phase;
  };
  /// A candidate before regularity dedup, as produced per source.
  struct Stub {
    uint64_t reg_sig;
    uint64_t no_depth_sig;
    uint64_t coarse_sig;
    long sum_depth;
    long sum_fanout;
    uint32_t index;
    int32_t len;
  };
  std::vector<Candidate> candidates;
  std::vector<Source> sources_by_phase[2];
  auto src_hash = [&](const Source& src, Phase phase) {
    Hash src_h;
    src_h.mix(static_cast<uint64_t>(src.rise));
    src_h.mix(static_cast<uint64_t>(phase));
    src_h.mix_double(src.arrival);
    src_h.mix_double(src.slope);
    return src_h.h;
  };
  // Reused across extract() calls on this thread; begin() generation-clears
  // it, so retained capacity only saves the repeated large allocation.
  static thread_local DedupTable seen;
  bool has_domino = false;
  for (const auto& comp : nl_->comps())
    if (comp.as_domino() != nullptr) has_domino = true;
  for (Phase phase : {Phase::kEvaluate, Phase::kPrecharge}) {
    // The precharge phase only exists for dynamic logic.
    if (phase == Phase::kPrecharge && !has_domino) continue;
    if (util::deadline_expired(opt.deadline))
      throw util::TimeoutError("path extraction deadline exceeded (phase)");
    {
      obs::Span build_span("timing.extract.build");
      ex.build(phase);
    }
    obs::Span collect_span("timing.extract.collect");
    const size_t phase_idx = phase == Phase::kEvaluate ? 0 : 1;
    sources_by_phase[phase_idx] = phase_sources(*nl_, phase);
    const auto& sources = sources_by_phase[phase_idx];
    // Per-source fan-out over the finished (read-only) memo. Each source's
    // stub list lands in its own slot; the merge below walks slots in
    // source order, so candidate order and dedup winners are identical to
    // the sequential nested loop at any thread count.
    const auto stubs = par::parallel_map<std::vector<Stub>>(
        sources.size(),
        [&](size_t si) {
          const Source& src = sources[si];
          // Source attributes (edge, phase, arrival, slope) distinguish
          // classes at every granularity.
          const uint64_t sh = src_hash(src, phase);
          const uint32_t node = Extractor::node_key(src.net, src.rise);
          const auto& classes = ex.classes(phase, node);
          std::vector<Stub> out;
          out.reserve(classes.size());
          for (size_t ci = 0; ci < classes.size(); ++ci) {
            const Suffix& s = classes[ci];
            if (s.len == 0) continue;  // input wired straight to output
            out.push_back(Stub{mix2(s.sigs.reg, sh),
                               mix2(s.sigs.no_depth, sh),
                               mix2(s.sigs.coarse, sh), s.sum_depth,
                               s.sum_fanout, static_cast<uint32_t>(ci),
                               s.len});
          }
          return out;
        },
        "timing.extract.sources");
    size_t total = 0;
    for (const auto& src_stubs : stubs) total += src_stubs.size();
    candidates.reserve(candidates.size() + total);
    seen.begin(candidates.size() + total);
    // Re-seed the dedup set with earlier phases' winners (begin() clears).
    for (const auto& c : candidates) {
      const auto& src =
          sources_by_phase[c.phase == Phase::kEvaluate ? 0 : 1][c.source];
      seen.insert(mix2(ex.suffix_at(c.phase, c.node, c.cls)->sigs.reg,
                       src_hash(src, c.phase)));
    }
    for (size_t si = 0; si < sources.size(); ++si) {
      for (const Stub& st : stubs[si]) {
        if (!seen.insert(st.reg_sig)) continue;
        candidates.push_back(Candidate{
            st.no_depth_sig, st.coarse_sig, st.sum_depth, st.sum_fanout,
            Extractor::node_key(sources[si].net, sources[si].rise), st.index,
            st.len, static_cast<uint32_t>(si), phase});
      }
    }
  }
  if (ex.overflowed())
    util::log_warn("path extraction hit the per-node class cap; "
                   "constraint set is a subset");

  if (stats) {
    obs::Span stats_span("timing.extract.stats");
    stats->raw_topological = count_topological_paths();
    stats->raw_edge_paths =
        count_edge_paths(Phase::kEvaluate) +
        (has_domino ? count_edge_paths(Phase::kPrecharge) : 0.0);
    if (count_universe) {
      // Distinct (source, regularity class) pairs of the unpruned universe:
      // the same dedup the candidate merge applies, replayed over the
      // side-tracked signature memo. A set's size is insertion-order
      // independent, so one pass over both phases matches the per-phase
      // interleaved merge above.
      size_t total = 0;
      for (Phase phase : {Phase::kEvaluate, Phase::kPrecharge}) {
        const auto& sources =
            sources_by_phase[phase == Phase::kEvaluate ? 0 : 1];
        for (const Source& src : sources)
          total += ex.universe_sigs(phase,
                                    Extractor::node_key(src.net, src.rise))
                       .size();
      }
      seen.begin(total);
      size_t reg_count = 0;
      for (Phase phase : {Phase::kEvaluate, Phase::kPrecharge}) {
        const size_t phase_idx = phase == Phase::kEvaluate ? 0 : 1;
        for (const Source& src : sources_by_phase[phase_idx]) {
          const uint64_t sh = src_hash(src, phase);
          const uint32_t node = Extractor::node_key(src.net, src.rise);
          const auto& sigs = ex.universe_sigs(phase, node);
          // Skip the terminal (length-0) class, as the stub collection does.
          const size_t k0 = ex.node_has_terminal(node) ? 1 : 0;
          for (size_t k = k0; k < sigs.size(); ++k)
            if (seen.insert(mix2(sigs[k], sh))) ++reg_count;
        }
      }
      stats->after_regularity = reg_count;
    } else {
      stats->after_regularity = candidates.size();
    }
  }

  // Pairwise domination (paper §5.2: "compare the fanout space of two
  // nodes when determining the dominance relationship"): path A may replace
  // path B only when A is at least as slow at *every* step — deeper stack,
  // deeper pin, and at least as much fanout — so dropping B cannot lose
  // the binding constraint. Walks the suffix chains directly; the summed
  // aggregates give an exact O(1) pre-filter (per-step >= implies
  // summed >=).
  auto dominates = [&ex](const Candidate& a, const Candidate& b) {
    if (a.len != b.len) return false;
    if (a.sum_depth < b.sum_depth || a.sum_fanout < b.sum_fanout)
      return false;
    const Suffix* sa = ex.suffix_at(a.phase, a.node, a.cls);
    const Suffix* sb = ex.suffix_at(b.phase, b.node, b.cls);
    while (sa->len > 0) {
      if (sa->step.comp_depth < sb->step.comp_depth ||
          sa->step.pin_depth < sb->step.pin_depth ||
          sa->step.fanout < sb->step.fanout)
        return false;
      sa = ex.next_suffix(a.phase, sa);
      sb = ex.next_suffix(b.phase, sb);
    }
    return true;
  };
  // One prune stage: group candidates by signature, prune each bucket to
  // its Pareto front independently (buckets never interact), and compact
  // survivors in arrival order. Bucket processing order inside the
  // parallel_for cannot change the outcome: the per-bucket front scan is
  // sequential in arrival order, exactly like the original single loop.
  auto pareto_stage = [&](uint64_t Candidate::*key) {
    if (util::deadline_expired(opt.deadline))
      throw util::TimeoutError("path pruning deadline exceeded");
    // CSR bucket grouping: one open-addressing pass assigns dense bucket
    // ids in first-sight order, a counting pass lays buckets out in a flat
    // member array — no per-bucket vectors, no rehashing node allocations.
    const size_t n = candidates.size();
    std::vector<uint32_t> bucket_id(n);
    std::vector<uint32_t> counts;
    seen.begin(n);
    seen.with_ids();
    uint32_t n_buckets = 0;
    for (size_t i = 0; i < n; ++i) {
      bool inserted = false;
      bucket_id[i] = seen.id_of(candidates[i].*key, n_buckets, &inserted);
      if (inserted) {
        ++n_buckets;
        counts.push_back(1);
      } else {
        ++counts[bucket_id[i]];
      }
    }
    std::vector<uint32_t> offsets(n_buckets + 1, 0);
    for (uint32_t b = 0; b < n_buckets; ++b)
      offsets[b + 1] = offsets[b] + counts[b];
    std::vector<uint32_t> members(n);
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i)
        members[cursor[bucket_id[i]]++] = static_cast<uint32_t>(i);
    }
    std::vector<uint8_t> dead(n, 0);
    par::parallel_for(
        n_buckets,
        [&](size_t begin, size_t end) {
          std::vector<uint32_t> front;
          for (size_t bi = begin; bi < end; ++bi) {
            front.clear();
            for (uint32_t m = offsets[bi]; m < offsets[bi + 1]; ++m) {
              const uint32_t ci = members[m];
              const Candidate& c = candidates[ci];
              bool drop = false;
              for (const uint32_t k : front) {
                if (!dead[k] && dominates(candidates[k], c)) {
                  drop = true;
                  break;
                }
              }
              if (drop) {
                dead[ci] = 1;
                continue;
              }
              for (const uint32_t k : front)
                if (!dead[k] && dominates(c, candidates[k])) dead[k] = 1;
              front.push_back(ci);
            }
          }
        },
        "timing.extract.prune");
    size_t w = 0;
    for (size_t i = 0; i < n; ++i)
      if (!dead[i]) candidates[w++] = candidates[i];
    candidates.resize(w);
  };

  // Stage 2: precedence — collapse pin classes within label-equivalent
  // structures, keeping the slow-pin Pareto front.
  if (opt.precedence) {
    obs::Span prune_span("timing.extract.prune_precedence");
    pareto_stage(&Candidate::no_depth_sig);
  }
  if (stats) stats->after_precedence = candidates.size();

  // Stage 3: dominance — collapse fanout variants, keeping the
  // heaviest-loaded Pareto front. Without a preceding precedence stage the
  // depth-preserving (`no_fan`) granularity applies; its signatures are
  // folded lazily over the surviving chains here.
  if (opt.dominance) {
    obs::Span prune_span("timing.extract.prune_dominance");
    if (!opt.precedence) {
      par::parallel_for(
          candidates.size(),
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
              Candidate& c = candidates[i];
              const auto& src =
                  sources_by_phase[c.phase == Phase::kEvaluate ? 0 : 1]
                                  [c.source];
              // Reuse the coarse slot: precedence is off, so the stored
              // coarse signature has no further consumer.
              c.coarse_sig =
                  mix2(ex.chain_no_fan_sig(c.phase, c.node, c.cls),
                       src_hash(src, c.phase));
            }
          },
          "timing.extract.no_fan_sigs");
    }
    pareto_stage(&Candidate::coarse_sig);
  }
  if (stats) stats->after_dominance = candidates.size();

  // Materialize Path objects (with exact-length step vectors) for the
  // survivors only, each written into its own slot.
  std::vector<Path> paths(candidates.size());
  par::parallel_for(
      candidates.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const Candidate& c = candidates[i];
          const auto& src =
              sources_by_phase[c.phase == Phase::kEvaluate ? 0 : 1][c.source];
          Path& p = paths[i];
          p.start = src.net;
          p.start_rise = src.rise;
          p.start_arrival = src.arrival;
          p.start_slope = src.slope;
          p.phase = c.phase;
          ex.materialize(c.phase, c.node, c.cls, &p.steps);
        }
      },
      "timing.extract.materialize");
  if (stats) stats->final_paths = paths.size();

  if (stats != nullptr && tel.enabled()) {
    // Per-stage reduction factors of the three §5.2 pruning techniques.
    // Stages chain raw -> regularity -> precedence -> dominance; a disabled
    // stage passes its input through, so its factor reports as 1.
    auto ratio = [](double from, double to) {
      return to > 0.0 ? from / to : 0.0;
    };
    const double raw = stats->raw_topological;
    const double reg = static_cast<double>(stats->after_regularity);
    const double pre = static_cast<double>(stats->after_precedence);
    const double dom = static_cast<double>(stats->after_dominance);
    const double fin = static_cast<double>(stats->final_paths);
    tel.gauge_set("timing.paths.raw_topological", raw);
    tel.gauge_set("timing.paths.raw_edge", stats->raw_edge_paths);
    tel.gauge_set("timing.paths.after_regularity", reg);
    tel.gauge_set("timing.paths.after_precedence", pre);
    tel.gauge_set("timing.paths.after_dominance", dom);
    tel.gauge_set("timing.paths.final", fin);
    tel.gauge_set("timing.prune.regularity.reduction", ratio(raw, reg));
    tel.gauge_set("timing.prune.precedence.reduction", ratio(reg, pre));
    tel.gauge_set("timing.prune.dominance.reduction", ratio(pre, dom));
    tel.gauge_set("timing.prune.reduction", ratio(raw, fin));
    tel.counter_add("timing.extract.calls");
    tel.gauge_set("timing.extract.class_attempts",
                  static_cast<double>(ex.class_attempts()));
    tel.gauge_set("timing.extract.classes_stored",
                  static_cast<double>(ex.classes_stored()));
    span.arg("raw_topological", raw);
    span.arg("final_paths", fin);
  }
  return paths;
}

double PathExtractor::count_topological_paths() const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  const size_t n_nets = nl_->net_count();
  // count[n] = number of distinct net paths from n to any output port,
  // computed in reverse topological order via memoized recursion.
  std::vector<double> count(n_nets, -1.0);
  std::vector<bool> is_output(n_nets, false);
  for (const auto& p : nl_->outputs())
    is_output[static_cast<size_t>(p.net)] = true;

  // Iterative DFS-based memoization (netlist is a DAG).
  std::vector<int> state(n_nets, 0);
  std::vector<NetId> order;
  std::vector<NetId> stack;
  for (size_t s = 0; s < n_nets; ++s) {
    if (state[s] != 0) continue;
    stack.push_back(static_cast<NetId>(s));
    while (!stack.empty()) {
      const NetId n = stack.back();
      if (state[static_cast<size_t>(n)] == 0) {
        state[static_cast<size_t>(n)] = 1;
        for (const Arc& a : nl_->arcs_from(n))
          if (state[static_cast<size_t>(a.to)] == 0) stack.push_back(a.to);
      } else {
        if (state[static_cast<size_t>(n)] == 1) {
          state[static_cast<size_t>(n)] = 2;
          order.push_back(n);
        }
        stack.pop_back();
      }
    }
  }
  for (const NetId n : order) {
    double c = is_output[static_cast<size_t>(n)] ? 1.0 : 0.0;
    for (const Arc& a : nl_->arcs_from(n)) {
      if (count[static_cast<size_t>(a.to)] > 0.0)
        c += count[static_cast<size_t>(a.to)];
    }
    count[static_cast<size_t>(n)] = c;
  }

  double total = 0.0;
  std::vector<bool> counted(n_nets, false);
  for (const auto& p : nl_->inputs()) {
    if (counted[static_cast<size_t>(p.net)]) continue;
    counted[static_cast<size_t>(p.net)] = true;
    total += count[static_cast<size_t>(p.net)];
  }
  for (size_t n = 0; n < n_nets; ++n) {
    if (nl_->net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock &&
        !counted[n])
      total += count[n];
  }
  return total;
}

double PathExtractor::count_edge_paths(Phase phase) const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  const size_t n_nodes = nl_->net_count() * 2;
  std::vector<double> count(n_nodes, -1.0);
  std::vector<bool> is_output(nl_->net_count(), false);
  for (const auto& p : nl_->outputs())
    is_output[static_cast<size_t>(p.net)] = true;

  std::vector<EdgeMap> maps;
  // Memoized recursion (explicit stack) over (net, edge) nodes.
  struct Frame {
    size_t node;
    bool expanded;
  };
  std::vector<Frame> stack;
  auto children = [&](size_t node, std::vector<size_t>& out) {
    out.clear();
    const NetId net = static_cast<NetId>(node / 2);
    const bool rise = (node % 2) == 1;
    for (const Arc& a : nl_->arcs_from(net)) {
      bool footed = true;
      if (const auto* dg = nl_->comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, phase, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.in_rise != rise) continue;
        out.push_back(static_cast<size_t>(a.to) * 2 + (em.out_rise ? 1 : 0));
      }
    }
  };
  std::vector<size_t> kids;
  for (size_t start = 0; start < n_nodes; ++start) {
    if (count[start] >= 0.0) continue;
    stack.push_back(Frame{start, false});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (count[f.node] >= 0.0) continue;
      children(f.node, kids);
      if (!f.expanded) {
        stack.push_back(Frame{f.node, true});
        for (size_t k : kids)
          if (count[k] < 0.0) stack.push_back(Frame{k, false});
        continue;
      }
      double c = is_output[f.node / 2] ? 1.0 : 0.0;
      for (size_t k : kids) c += std::max(count[k], 0.0);
      count[f.node] = c;
    }
  }

  double total = 0.0;
  for (const Source& src : phase_sources(*nl_, phase)) {
    const size_t node =
        static_cast<size_t>(src.net) * 2 + (src.rise ? 1 : 0);
    total += std::max(count[node], 0.0);
  }
  return total;
}

}  // namespace smart::timing

#include "timing/paths.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "obs/obs.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strfmt.h"

namespace smart::timing {

using netlist::Arc;
using netlist::ArcKind;
using netlist::Component;
using netlist::EdgeMap;
using netlist::NetId;
using netlist::Netlist;
using netlist::Phase;
using netlist::Stack;

namespace {

// ---- FNV-1a hashing over small integer streams ----

struct Hash {
  uint64_t h = 1469598103934665603ULL;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  void mix_double(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
};

void hash_stack(const Stack& s, Hash& h) {
  h.mix(static_cast<uint64_t>(s.op()) + 101);
  if (s.is_leaf()) {
    h.mix(static_cast<uint64_t>(s.label()) + 7);
    return;
  }
  h.mix(s.children().size());
  for (const auto& c : s.children()) hash_stack(c, h);
}

/// Structure+label signature of a component — identical for the regular
/// repetitions of a bit-sliced macro (same topology, same size labels).
uint64_t component_signature(const Component& comp) {
  Hash h;
  h.mix(comp.impl.index());
  if (const auto* g = comp.as_static()) {
    hash_stack(g->pulldown, h);
    h.mix(static_cast<uint64_t>(g->pmos_label));
  } else if (const auto* t = comp.as_transgate()) {
    h.mix(static_cast<uint64_t>(t->label));
  } else if (const auto* t3 = comp.as_tristate()) {
    h.mix(static_cast<uint64_t>(t3->nmos_label));
    h.mix(static_cast<uint64_t>(t3->pmos_label));
  } else if (const auto* d = comp.as_domino()) {
    hash_stack(d->pulldown, h);
    h.mix(static_cast<uint64_t>(d->precharge_label));
    h.mix(static_cast<uint64_t>(d->evaluate_label) + 3);
    h.mix_double(d->keeper_ratio);
  }
  return h.h;
}

/// Labels-only signature: components with the same size-label multiset are
/// interchangeable for constraint purposes once each node is modeled by its
/// worst-case pin-to-pin delay (paper §5.2); the pruning passes collapse
/// them, keeping the structurally worst representative.
uint64_t component_label_signature(const Component& comp) {
  Hash h;
  h.mix(comp.impl.index());
  std::vector<int> labels;
  auto add_stack = [&](const Stack& st) {
    std::vector<std::pair<NetId, netlist::LabelId>> leaves;
    st.collect_leaves(leaves);
    for (const auto& [n, l] : leaves) labels.push_back(l);
  };
  if (const auto* g = comp.as_static()) {
    add_stack(g->pulldown);
    labels.push_back(g->pmos_label);
  } else if (const auto* t = comp.as_transgate()) {
    labels.push_back(t->label);
  } else if (const auto* t3 = comp.as_tristate()) {
    labels.push_back(t3->nmos_label);
    labels.push_back(t3->pmos_label);
  } else if (const auto* d = comp.as_domino()) {
    add_stack(d->pulldown);
    labels.push_back(d->precharge_label);
    labels.push_back(d->evaluate_label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  for (int l : labels) h.mix(static_cast<uint64_t>(l) + 13);
  return h.h;
}

/// Structural worst-case weight of a component (deepest stack), used to
/// pick the binding representative within a label-equivalence class.
int component_depth(const Component& comp) {
  if (const auto* g = comp.as_static()) return g->pulldown.max_depth();
  if (const auto* d = comp.as_domino())
    return d->pulldown.max_depth() + (d->evaluate_label >= 0 ? 1 : 0);
  return 1;
}

/// Structural depth of the pin `input` inside a component (0 = adjacent to
/// the output, larger = deeper in the stack => slower pin class).
int pin_depth_of(const Component& comp, NetId input) {
  const Stack* stack = nullptr;
  if (const auto* g = comp.as_static()) stack = &g->pulldown;
  if (const auto* d = comp.as_domino()) stack = &d->pulldown;
  if (stack != nullptr) {
    std::vector<std::pair<NetId, netlist::LabelId>> path;
    if (stack->worst_path_through(input, path)) {
      for (size_t i = 0; i < path.size(); ++i)
        if (path[i].first == input) return static_cast<int>(i);
    }
    return 0;
  }
  if (const auto* t = comp.as_transgate())
    return input == t->sel ? 1 : 0;
  if (const auto* t3 = comp.as_tristate())
    return input == t3->en ? 1 : 0;
  return 0;
}

/// Which hash variants a step contributes to; see PruneOptions.
struct StepSigs {
  uint64_t reg;       ///< full: structure + labels + depth + fanout
  uint64_t no_depth;  ///< precedence granularity
  uint64_t no_fan;    ///< dominance granularity (depth kept)
  uint64_t coarse;    ///< neither depth nor fanout
};

/// A suffix equivalence class from some (net, edge) to an output port.
struct Suffix {
  StepSigs sigs;  // combined over all steps
  std::vector<PathStep> steps;
  long sum_depth = 0;
  long sum_fanout = 0;
};

StepSigs combine(const StepSigs& a, const StepSigs& b) {
  auto mix2 = [](uint64_t x, uint64_t y) {
    Hash h;
    h.mix(x);
    h.mix(y);
    return h.h;
  };
  return StepSigs{mix2(a.reg, b.reg), mix2(a.no_depth, b.no_depth),
                  mix2(a.no_fan, b.no_fan), mix2(a.coarse, b.coarse)};
}

}  // namespace

int Path::domino_stages() const {
  int n = 0;
  for (const auto& s : steps)
    if (s.arc.kind == ArcKind::kDominoEval ||
        s.arc.kind == ArcKind::kDominoClkEval)
      ++n;
  return n;
}

namespace {

class Extractor {
 public:
  Extractor(const Netlist& nl, const PruneOptions& opt)
      : nl_(nl), opt_(opt) {
    comp_sigs_.resize(nl.comp_count());
    comp_label_sigs_.resize(nl.comp_count());
    comp_depth_.resize(nl.comp_count());
    for (size_t c = 0; c < nl.comp_count(); ++c) {
      comp_sigs_[c] = component_signature(nl.comp(static_cast<int>(c)));
      comp_label_sigs_[c] =
          component_label_signature(nl.comp(static_cast<int>(c)));
      comp_depth_[c] = component_depth(nl.comp(static_cast<int>(c)));
    }
    output_load_.assign(nl.net_count(), -1.0);
    for (const auto& p : nl.outputs())
      output_load_[static_cast<size_t>(p.net)] = p.load_ff;
  }

  /// Suffix classes from (net, edge) to any output, for a phase.
  const std::vector<Suffix>& suffixes(Phase phase, NetId net, bool rise) {
    auto& memo = phase == Phase::kEvaluate ? memo_eval_ : memo_pre_;
    const size_t key = static_cast<size_t>(net) * 2 + (rise ? 1 : 0);
    if (memo.size() < nl_.net_count() * 2) memo.resize(nl_.net_count() * 2);
    auto& slot = memo[key];
    if (slot.computed) return slot.classes;
    slot.computed = true;  // set first; DAG guaranteed by netlist validation

    std::unordered_map<uint64_t, size_t> index;
    auto add_class = [&](Suffix s) {
      auto [it, inserted] = index.emplace(s.sigs.reg, slot.classes.size());
      if (inserted) {
        if (slot.classes.size() >= opt_.max_classes_per_node) {
          overflowed_ = true;
          return;
        }
        slot.classes.push_back(std::move(s));
      }
    };

    if (output_load_[static_cast<size_t>(net)] >= 0.0) {
      Suffix terminal;
      Hash h;
      h.mix(0x7e34a1ULL);
      terminal.sigs = StepSigs{h.h, h.h, h.h, h.h};
      add_class(std::move(terminal));
    }

    std::vector<EdgeMap> maps;
    for (const Arc& a : nl_.arcs_from(net)) {
      bool footed = true;
      if (const auto* dg = nl_.comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, phase, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.in_rise != rise) continue;
        const auto& child = suffixes(phase, a.to, em.out_rise);
        PathStep step;
        step.arc = a;
        step.in_rise = em.in_rise;
        step.out_rise = em.out_rise;
        step.pin_depth = pin_depth_of(nl_.comp(a.comp), a.from);
        step.comp_depth = comp_depth(a.comp);
        step.fanout =
            static_cast<int>(nl_.arcs_from(a.to).size());
        const StepSigs ssig = step_sigs(step);
        for (const Suffix& cs : child) {
          Suffix s;
          s.sigs = combine(ssig, cs.sigs);
          s.steps.reserve(cs.steps.size() + 1);
          s.steps.push_back(step);
          s.steps.insert(s.steps.end(), cs.steps.begin(), cs.steps.end());
          s.sum_depth = cs.sum_depth + step.pin_depth +
                        16 * comp_depth(a.comp);
          s.sum_fanout = cs.sum_fanout + step.fanout;
          add_class(std::move(s));
        }
      }
    }
    return slot.classes;
  }

  bool overflowed() const { return overflowed_; }

  StepSigs step_sigs(const PathStep& step) const {
    // Full-structure base: exact stack shape + labels (regularity level).
    Hash fine;
    fine.mix(comp_sigs_[static_cast<size_t>(step.arc.comp)]);
    // Labels-only base: worst-case node model level (precedence/dominance).
    Hash label_base;
    label_base.mix(comp_label_sigs_[static_cast<size_t>(step.arc.comp)]);
    for (Hash* h : {&fine, &label_base}) {
      h->mix(static_cast<uint64_t>(step.arc.kind) + 17);
      h->mix(static_cast<uint64_t>(step.in_rise) * 2 +
             static_cast<uint64_t>(step.out_rise));
      const double load = output_load_[static_cast<size_t>(step.arc.to)];
      if (load >= 0.0) h->mix_double(load);  // port loads differentiate
      if (!opt_.regularity) {
        // Without regularity every net identity is distinct: no collapsing.
        h->mix(static_cast<uint64_t>(step.arc.from) + 0x9e3779b9ULL);
        h->mix(static_cast<uint64_t>(step.arc.to) + 0x85ebca6bULL);
      }
    }
    StepSigs s;
    Hash h_reg = fine;
    h_reg.mix(static_cast<uint64_t>(step.pin_depth) + 29);
    h_reg.mix(static_cast<uint64_t>(step.fanout) + 31);
    s.reg = h_reg.h;
    Hash h_nd = label_base;
    h_nd.mix(static_cast<uint64_t>(step.fanout) + 31);
    s.no_depth = h_nd.h;
    Hash h_nf = fine;
    h_nf.mix(static_cast<uint64_t>(step.pin_depth) + 29);
    s.no_fan = h_nf.h;
    s.coarse = label_base.h;
    return s;
  }

  int comp_depth(netlist::CompId c) const {
    return comp_depth_[static_cast<size_t>(c)];
  }

 private:
  struct MemoSlot {
    bool computed = false;
    std::vector<Suffix> classes;
  };

  const Netlist& nl_;
  const PruneOptions& opt_;
  std::vector<uint64_t> comp_sigs_;
  std::vector<uint64_t> comp_label_sigs_;
  std::vector<int> comp_depth_;
  std::vector<double> output_load_;
  std::vector<MemoSlot> memo_eval_;
  std::vector<MemoSlot> memo_pre_;
  bool overflowed_ = false;
};

/// Sources of a phase: (net, rise?, arrival, slope) tuples.
struct Source {
  NetId net;
  bool rise;
  double arrival;
  double slope;
};

std::vector<Source> phase_sources(const Netlist& nl, Phase phase) {
  std::vector<Source> sources;
  for (const auto& p : nl.inputs()) {
    const double arr = phase == Phase::kEvaluate ? p.arrival_ps : 0.0;
    sources.push_back(Source{p.net, true, arr, p.slope_ps});
    sources.push_back(Source{p.net, false, arr, p.slope_ps});
  }
  for (size_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(static_cast<NetId>(n)).kind != netlist::NetKind::kClock)
      continue;
    sources.push_back(Source{static_cast<NetId>(n),
                             phase == Phase::kEvaluate, 0.0, -1.0});
  }
  return sources;
}

}  // namespace

std::vector<Path> PathExtractor::extract(const PruneOptions& opt,
                                         PathStats* stats) const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  obs::Span span("timing.extract");
  auto& tel = obs::Telemetry::instance();
  // With tracing on, the §5.2 statistics are always collected so the
  // per-stage reduction factors land in the metrics export even when the
  // caller did not ask for them.
  PathStats local_stats;
  if (stats == nullptr && tel.enabled()) stats = &local_stats;
  Extractor ex(*nl_, opt);

  // Stage 1: regularity classes (always computed; with regularity disabled
  // the signatures include net identities, so nothing collapses).
  struct Candidate {
    Path path;
    StepSigs sigs;
    long sum_depth;
    long sum_fanout;
    bool dead = false;
  };
  std::vector<Candidate> candidates;
  std::unordered_map<uint64_t, size_t> seen;
  bool has_domino = false;
  for (const auto& comp : nl_->comps())
    if (comp.as_domino() != nullptr) has_domino = true;
  for (Phase phase : {Phase::kEvaluate, Phase::kPrecharge}) {
    // The precharge phase only exists for dynamic logic.
    if (phase == Phase::kPrecharge && !has_domino) continue;
    for (const Source& src : phase_sources(*nl_, phase)) {
      for (const Suffix& s :
           ex.suffixes(phase, src.net, src.rise)) {
        if (s.steps.empty()) continue;  // input wired straight to output
        // Source attributes (edge, phase, arrival, slope) distinguish
        // classes at every granularity; the per-stage structure hashes
        // differ per granularity.
        Hash src_h;
        src_h.mix(static_cast<uint64_t>(src.rise));
        src_h.mix(static_cast<uint64_t>(phase));
        src_h.mix_double(src.arrival);
        src_h.mix_double(src.slope);
        Hash h;
        h.mix(s.sigs.reg);
        h.mix(src_h.h);
        if (!seen.emplace(h.h, candidates.size()).second) continue;
        Candidate c;
        c.path.start = src.net;
        c.path.start_rise = src.rise;
        c.path.start_arrival = src.arrival;
        c.path.start_slope = src.slope;
        c.path.phase = phase;
        c.path.steps = s.steps;
        Hash hn;
        hn.mix(s.sigs.no_depth);
        hn.mix(src_h.h);
        Hash hf;
        hf.mix(s.sigs.no_fan);
        hf.mix(src_h.h);
        Hash hc;
        hc.mix(s.sigs.coarse);
        hc.mix(src_h.h);
        c.sigs = StepSigs{h.h, hn.h, hf.h, hc.h};
        c.sum_depth = s.sum_depth;
        c.sum_fanout = s.sum_fanout;
        candidates.push_back(std::move(c));
      }
    }
  }
  if (ex.overflowed())
    util::log_warn("path extraction hit the per-node class cap; "
                   "constraint set is a subset");

  if (stats) {
    stats->raw_topological = count_topological_paths();
    stats->raw_edge_paths =
        count_edge_paths(Phase::kEvaluate) +
        (has_domino ? count_edge_paths(Phase::kPrecharge) : 0.0);
    stats->after_regularity = candidates.size();
  }

  // Pairwise domination (paper §5.2: "compare the fanout space of two
  // nodes when determining the dominance relationship"): path A may replace
  // path B only when A is at least as slow at *every* step — deeper stack,
  // deeper pin, and at least as much fanout — so dropping B cannot lose
  // the binding constraint.
  auto dominates = [](const Candidate& a, const Candidate& b) {
    if (a.path.steps.size() != b.path.steps.size()) return false;
    for (size_t i = 0; i < a.path.steps.size(); ++i) {
      const auto& sa = a.path.steps[i];
      const auto& sb = b.path.steps[i];
      if (sa.comp_depth < sb.comp_depth || sa.pin_depth < sb.pin_depth ||
          sa.fanout < sb.fanout)
        return false;
    }
    return true;
  };
  auto pareto_stage = [&](uint64_t StepSigs::*key) {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    std::vector<Candidate> kept;
    for (auto& c : candidates) {
      auto& bucket = buckets[c.sigs.*key];
      bool drop = false;
      for (size_t k = 0; k < bucket.size() && !drop; ++k)
        if (dominates(kept[bucket[k]], c)) drop = true;
      if (drop) continue;
      // Remove bucket members the new candidate dominates.
      std::vector<size_t> survivors;
      for (size_t idx : bucket) {
        if (!dominates(c, kept[idx])) {
          survivors.push_back(idx);
        } else {
          kept[idx].dead = true;
        }
      }
      survivors.push_back(kept.size());
      kept.push_back(std::move(c));
      bucket = std::move(survivors);
    }
    candidates.clear();
    for (auto& c : kept)
      if (!c.dead) candidates.push_back(std::move(c));
  };

  // Stage 2: precedence — collapse pin classes within label-equivalent
  // structures, keeping the slow-pin Pareto front.
  if (opt.precedence) pareto_stage(&StepSigs::no_depth);
  if (stats) stats->after_precedence = candidates.size();

  // Stage 3: dominance — collapse fanout variants, keeping the
  // heaviest-loaded Pareto front.
  if (opt.dominance)
    pareto_stage(opt.precedence ? &StepSigs::coarse : &StepSigs::no_fan);
  if (stats) stats->after_dominance = candidates.size();

  std::vector<Path> paths;
  paths.reserve(candidates.size());
  for (auto& c : candidates) paths.push_back(std::move(c.path));
  if (stats) stats->final_paths = paths.size();

  if (stats != nullptr && tel.enabled()) {
    // Per-stage reduction factors of the three §5.2 pruning techniques.
    // Stages chain raw -> regularity -> precedence -> dominance; a disabled
    // stage passes its input through, so its factor reports as 1.
    auto ratio = [](double from, double to) {
      return to > 0.0 ? from / to : 0.0;
    };
    const double raw = stats->raw_topological;
    const double reg = static_cast<double>(stats->after_regularity);
    const double pre = static_cast<double>(stats->after_precedence);
    const double dom = static_cast<double>(stats->after_dominance);
    const double fin = static_cast<double>(stats->final_paths);
    tel.gauge_set("timing.paths.raw_topological", raw);
    tel.gauge_set("timing.paths.raw_edge", stats->raw_edge_paths);
    tel.gauge_set("timing.paths.after_regularity", reg);
    tel.gauge_set("timing.paths.after_precedence", pre);
    tel.gauge_set("timing.paths.after_dominance", dom);
    tel.gauge_set("timing.paths.final", fin);
    tel.gauge_set("timing.prune.regularity.reduction", ratio(raw, reg));
    tel.gauge_set("timing.prune.precedence.reduction", ratio(reg, pre));
    tel.gauge_set("timing.prune.dominance.reduction", ratio(pre, dom));
    tel.gauge_set("timing.prune.reduction", ratio(raw, fin));
    tel.counter_add("timing.extract.calls");
    span.arg("raw_topological", raw);
    span.arg("final_paths", fin);
  }
  return paths;
}

double PathExtractor::count_topological_paths() const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  const size_t n_nets = nl_->net_count();
  // count[n] = number of distinct net paths from n to any output port,
  // computed in reverse topological order via memoized recursion.
  std::vector<double> count(n_nets, -1.0);
  std::vector<bool> is_output(n_nets, false);
  for (const auto& p : nl_->outputs())
    is_output[static_cast<size_t>(p.net)] = true;

  // Iterative DFS-based memoization (netlist is a DAG).
  std::vector<int> state(n_nets, 0);
  std::vector<NetId> order;
  std::vector<NetId> stack;
  for (size_t s = 0; s < n_nets; ++s) {
    if (state[s] != 0) continue;
    stack.push_back(static_cast<NetId>(s));
    while (!stack.empty()) {
      const NetId n = stack.back();
      if (state[static_cast<size_t>(n)] == 0) {
        state[static_cast<size_t>(n)] = 1;
        for (const Arc& a : nl_->arcs_from(n))
          if (state[static_cast<size_t>(a.to)] == 0) stack.push_back(a.to);
      } else {
        if (state[static_cast<size_t>(n)] == 1) {
          state[static_cast<size_t>(n)] = 2;
          order.push_back(n);
        }
        stack.pop_back();
      }
    }
  }
  for (const NetId n : order) {
    double c = is_output[static_cast<size_t>(n)] ? 1.0 : 0.0;
    for (const Arc& a : nl_->arcs_from(n)) {
      if (count[static_cast<size_t>(a.to)] > 0.0)
        c += count[static_cast<size_t>(a.to)];
    }
    count[static_cast<size_t>(n)] = c;
  }

  double total = 0.0;
  std::vector<bool> counted(n_nets, false);
  for (const auto& p : nl_->inputs()) {
    if (counted[static_cast<size_t>(p.net)]) continue;
    counted[static_cast<size_t>(p.net)] = true;
    total += count[static_cast<size_t>(p.net)];
  }
  for (size_t n = 0; n < n_nets; ++n) {
    if (nl_->net(static_cast<NetId>(n)).kind == netlist::NetKind::kClock &&
        !counted[n])
      total += count[n];
  }
  return total;
}

double PathExtractor::count_edge_paths(Phase phase) const {
  SMART_CHECK(nl_->finalized(), "netlist must be finalized");
  const size_t n_nodes = nl_->net_count() * 2;
  std::vector<double> count(n_nodes, -1.0);
  std::vector<bool> is_output(nl_->net_count(), false);
  for (const auto& p : nl_->outputs())
    is_output[static_cast<size_t>(p.net)] = true;

  std::vector<EdgeMap> maps;
  // Memoized recursion (explicit stack) over (net, edge) nodes.
  struct Frame {
    size_t node;
    bool expanded;
  };
  std::vector<Frame> stack;
  auto children = [&](size_t node, std::vector<size_t>& out) {
    out.clear();
    const NetId net = static_cast<NetId>(node / 2);
    const bool rise = (node % 2) == 1;
    for (const Arc& a : nl_->arcs_from(net)) {
      bool footed = true;
      if (const auto* dg = nl_->comp(a.comp).as_domino())
        footed = dg->evaluate_label >= 0;
      netlist::arc_edge_maps(a.kind, phase, footed, maps);
      for (const EdgeMap& em : maps) {
        if (em.in_rise != rise) continue;
        out.push_back(static_cast<size_t>(a.to) * 2 + (em.out_rise ? 1 : 0));
      }
    }
  };
  std::vector<size_t> kids;
  for (size_t start = 0; start < n_nodes; ++start) {
    if (count[start] >= 0.0) continue;
    stack.push_back(Frame{start, false});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (count[f.node] >= 0.0) continue;
      children(f.node, kids);
      if (!f.expanded) {
        stack.push_back(Frame{f.node, true});
        for (size_t k : kids)
          if (count[k] < 0.0) stack.push_back(Frame{k, false});
        continue;
      }
      double c = is_output[f.node / 2] ? 1.0 : 0.0;
      for (size_t k : kids) c += std::max(count[k], 0.0);
      count[f.node] = c;
    }
  }

  double total = 0.0;
  for (const Source& src : phase_sources(*nl_, phase)) {
    const size_t node =
        static_cast<size_t>(src.net) * 2 + (src.rise ? 1 : 0);
    total += std::max(count[node], 0.0);
  }
  return total;
}

}  // namespace smart::timing

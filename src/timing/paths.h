#pragma once

/// \file paths.h
/// Topological path extraction and complexity reduction (paper §5.2).
/// A combinational macro can have an enormous number of pin-to-pin paths
/// (the paper's 64-bit dynamic adder: >32,000). SMART reduces the set used
/// for constraint generation with three techniques:
///   * regularity   — identically-labeled structures produce identical
///                    constraints; one representative path per equivalence
///                    class suffices,
///   * precedence   — input pins of a gate are statically classified
///                    fast/slow (by stack position); fast-pin paths are
///                    dropped when an equivalent slow-pin path exists,
///   * dominance    — among identical nodes driving different fanout, the
///                    heaviest-loaded representative dominates.
/// The extractor computes suffix equivalence classes bottom-up (memoized on
/// (net, edge)), so regularity is exploited *during* extraction rather than
/// after a full enumeration.

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "util/deadline.h"

namespace smart::timing {

/// One arc traversal within a path, with its transition edges and the
/// static pin/fanout attributes used by the pruning passes.
struct PathStep {
  netlist::Arc arc;
  bool in_rise = false;
  bool out_rise = false;
  int pin_depth = 0;   ///< structural depth of the pin in the stack (0 = top)
  int comp_depth = 0;  ///< deepest series stack of the component
  int fanout = 0;      ///< arcs leaving the destination net
};

/// A source-to-sink timing path in one phase.
struct Path {
  netlist::NetId start = -1;
  bool start_rise = false;
  double start_arrival = 0.0;  ///< arrival at the source (from the port)
  double start_slope = -1.0;   ///< input slope (< 0 => technology default)
  netlist::Phase phase = netlist::Phase::kEvaluate;
  std::vector<PathStep> steps;

  netlist::NetId end() const { return steps.back().arc.to; }
  /// Number of domino stages crossed (for per-stage deadlines / OTB).
  int domino_stages() const;
};

struct PruneOptions {
  bool regularity = true;
  bool precedence = true;
  bool dominance = true;
  /// Safety bound on equivalence classes kept per (net, edge) node.
  size_t max_classes_per_node = 65536;
  /// Optional wall-clock budget, polled between parallel wavefront levels
  /// and pruning stages (not inside a chunk, so the check itself cannot
  /// perturb determinism). Expiry throws util::TimeoutError, which the
  /// sizer maps to FailureReason::kTimeout. Non-owning; may be nullptr.
  const util::Deadline* deadline = nullptr;
};

/// Problem-size statistics; reproduces the paper's §5.2 numbers.
struct PathStats {
  double raw_topological = 0.0;  ///< DP-counted net paths (no edges)
  double raw_edge_paths = 0.0;   ///< DP-counted edge-annotated paths
  size_t after_regularity = 0;
  size_t after_precedence = 0;
  size_t after_dominance = 0;
  /// Paths actually returned (== last enabled pruning stage).
  size_t final_paths = 0;
};

/// Extracts representative timing paths of a finalized netlist.
class PathExtractor {
 public:
  explicit PathExtractor(const netlist::Netlist& nl) : nl_(&nl) {}

  /// Extracts evaluate- and precharge-phase paths from every primary input
  /// and clock source to every output port, applying the enabled prunes.
  std::vector<Path> extract(const PruneOptions& opt = {},
                            PathStats* stats = nullptr) const;

  /// DP count of source-to-output net paths (the "exhaustive timing
  /// analysis" number), evaluate phase, ignoring transition edges.
  double count_topological_paths() const;

  /// DP count of edge-annotated paths in a phase.
  double count_edge_paths(netlist::Phase phase) const;

 private:
  const netlist::Netlist* nl_;
};

}  // namespace smart::timing

// Topology selection scenario: the same 8:1 mux instantiated at three very
// different sites of a datapath — lightly loaded, heavily loaded (long
// interconnect), and power-critical — showing how the advisor's
// recommendation shifts with the constraints, as the paper's §4 notes
// (tri-state "when the load to be driven is very large", split domino
// "better in area and power when the size of the mux is large").

#include <cstdio>

#include "core/advisor.h"
#include "macros/registry.h"
#include "models/fitter.h"

using namespace smart;

namespace {

void advise_site(core::DesignAdvisor& advisor, const char* site,
                 double load_ff, double delay_ps, core::CostMetric cost) {
  core::AdvisorRequest request;
  request.spec.type = "mux";
  request.spec.n = 8;
  request.spec.params["bits"] = 8;
  request.spec.load_ff = load_ff;
  request.delay_spec_ps = delay_ps;
  request.cost = cost;

  const auto advice = advisor.advise(request);
  std::printf("%s (load %.0f fF, spec %.0f ps, cost %s):\n", site, load_ff,
              delay_ps,
              cost == core::CostMetric::kTotalWidth ? "area" : "power");
  int rank = 1;
  for (const auto& sol : advice.solutions) {
    std::printf("  %d. %-16s cost %8.2f  delay %6.1f ps  %s\n", rank++,
                sol.topology.c_str(), sol.cost_value,
                sol.sizing.measured_delay_ps,
                sol.meets_spec ? "ok" : "misses spec");
  }
  if (advice.solutions.empty())
    std::printf("  (no feasible topology: %s)\n", advice.message.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  core::DesignAdvisor advisor(macros::builtin_database(),
                              tech::default_tech(),
                              models::default_library());
  // A fast local bypass mux: light load, tight timing, area-cost.
  advise_site(advisor, "site A: local bypass", 8.0, 95.0,
              core::CostMetric::kTotalWidth);
  // A result bus driver: the mux output crosses the datapath.
  advise_site(advisor, "site B: long interconnect", 90.0, 140.0,
              core::CostMetric::kTotalWidth);
  // A clock-power-critical operand select in a domino pipeline.
  advise_site(advisor, "site C: power critical", 15.0, 110.0,
              core::CostMetric::kPower);
  return 0;
}

// Editing a database macro to match RTL, then re-sizing — the paper's §2
// workflow: "a macro may not always be realized in exactly the same way it
// exists in the database. A few structural changes to the schematic (e.g.,
// merging in of a few gates of condition logic) may have to be performed
// to match RTL … A macro-based design environment should therefore support
// editing of macros in the design database."
//
// Here the RTL wants a 4:1 operand mux whose select 3 is qualified by a
// kill signal (sel3_eff = s3 AND !kill). We pull the stock mux from the
// database, merge the condition gate in front of its select, lock the
// condition gate's widths by hand (it sits in a noisy region), and let
// SMART re-size everything else.

#include <cstdio>
#include <map>

#include "core/report.h"
#include "core/sizer.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "netlist/compose.h"
#include "util/strfmt.h"

using namespace smart;
using util::strfmt;

int main() {
  const auto& db = macros::builtin_database();
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 8;
  const auto stock = db.find("mux", "strong_pass")->generate(spec);

  // Rebuild the instance with the condition logic merged in front of s3.
  netlist::Netlist edited("mux4_with_kill");
  std::map<std::string, netlist::NetId> bind;
  for (int b = 0; b < 8; ++b)
    for (int i = 0; i < 4; ++i) {
      const auto d = edited.add_net(strfmt("d%d_%d", b, i));
      edited.add_input(d);
      bind[strfmt("d%d_%d", b, i)] = d;
    }
  for (int i = 0; i < 3; ++i) {
    const auto s = edited.add_net(strfmt("s%d", i));
    edited.add_input(s);
    bind[strfmt("s%d", i)] = s;
  }
  // Condition logic: sel3_eff = s3 AND !kill  (inverter + NAND2 + inverter).
  const auto s3 = edited.add_net("s3");
  const auto kill = edited.add_net("kill");
  edited.add_input(s3);
  edited.add_input(kill);
  const auto nk = edited.add_label("NK"), pk = edited.add_label("PK");
  const auto killb = edited.add_net("kill_b");
  edited.add_inverter("kill_inv", kill, killb, nk, pk);
  const auto na = edited.add_label("NA"), pa = edited.add_label("PA");
  const auto x = edited.add_net("s3_and_n");
  edited.add_component(
      "qual_nand", x,
      netlist::StaticGate{
          netlist::Stack::series({netlist::Stack::leaf(s3, na),
                                  netlist::Stack::leaf(killb, na)}),
          pa});
  const auto ni = edited.add_label("NI"), pi = edited.add_label("PI");
  const auto s3_eff = edited.add_net("s3_eff");
  edited.add_inverter("qual_inv", x, s3_eff, ni, pi);
  bind["s3"] = s3_eff;  // the stock mux's s3 is now the qualified select

  netlist::instantiate(edited, stock, "mux", bind);
  for (int b = 0; b < 8; ++b)
    edited.add_output(edited.find_net(strfmt("mux/o%d", b)), 15.0);
  edited.finalize();

  // The condition gate sits in a noisy region: the designer locks its
  // sizes by hand and SMART sizes the rest around them (§2).
  edited.fix_label(na, 2.0);
  edited.fix_label(pa, 4.0);

  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 110.0;
  const auto r = sizer.size(edited, opt);
  if (!r.ok) {
    std::printf("sizing failed: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("edited macro (stock 4:1 mux + merged kill-qualification), "
              "sized around 2 hand-locked labels:\n\n%s",
              core::describe_solution(edited, r, tech::default_tech())
                  .c_str());
  return 0;
}

// Composing database macros into a datapath slice and sizing it as one
// unit: an operand-select mux feeds an incrementor whose result drives a
// zero-detect — the bypass/increment/flag pattern of an address datapath.
// Because the composite is one netlist, the GP trades transistor width
// across the macro boundaries (the mux output drivers and the incrementor
// input stages negotiate automatically) and the critical path is timed end
// to end.

#include <cstdio>
#include <map>

#include "core/experiment.h"
#include "core/report.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "netlist/compose.h"
#include "refsim/critical_path.h"
#include "util/strfmt.h"

using namespace smart;
using util::strfmt;

namespace {

netlist::Netlist build_slice(int bits) {
  const auto& db = macros::builtin_database();
  core::MacroSpec mux_spec;
  mux_spec.type = "mux";
  mux_spec.n = 2;
  mux_spec.params["bits"] = bits;
  const auto mux = db.find("mux", "encoded2")->generate(mux_spec);
  core::MacroSpec inc_spec;
  inc_spec.type = "incrementor";
  inc_spec.n = bits;
  const auto inc = db.find("incrementor", "ks_prefix")->generate(inc_spec);
  core::MacroSpec zd_spec;
  zd_spec.type = "zero_detect";
  zd_spec.n = bits;
  const auto zd = db.find("zero_detect", "static_tree")->generate(zd_spec);

  netlist::Netlist top(strfmt("slice%d", bits));
  std::map<std::string, netlist::NetId> mux_bind;
  for (int b = 0; b < bits; ++b) {
    for (int i = 0; i < 2; ++i) {
      const auto d = top.add_net(strfmt("d%d_%d", b, i));
      top.add_input(d);
      mux_bind[strfmt("d%d_%d", b, i)] = d;
    }
  }
  const auto sel = top.add_net("sel");
  top.add_input(sel);
  mux_bind["s0"] = sel;
  const auto mmap = netlist::instantiate(top, mux, "mux", mux_bind);

  std::map<std::string, netlist::NetId> inc_bind;
  for (int b = 0; b < bits; ++b)
    inc_bind[strfmt("in%d", b)] =
        mmap.nets.at(mux.find_net(strfmt("o%d", b)));
  const auto imap = netlist::instantiate(top, inc, "inc", inc_bind);

  std::map<std::string, netlist::NetId> zd_bind;
  for (int b = 0; b < bits; ++b)
    zd_bind[strfmt("in%d", b)] =
        imap.nets.at(inc.find_net(strfmt("out%d", b)));
  netlist::instantiate(top, zd, "zd", zd_bind);

  for (int b = 0; b < bits; ++b)
    top.add_output(top.find_net(strfmt("inc/out%d", b)), 12.0);
  top.add_output(top.find_net("zd/zero"), 8.0);
  top.finalize();
  return top;
}

}  // namespace

int main() {
  const int bits = 8;
  const auto slice = build_slice(bits);
  std::printf("composed datapath slice: %zu nets, %zu components, "
              "%zu size labels\n\n",
              slice.net_count(), slice.comp_count(), slice.label_count());

  const auto cmp = core::run_iso_delay(slice, tech::default_tech(),
                                       models::default_library());
  if (!cmp.ok) {
    std::printf("sizing failed: %s\n", cmp.smart.message.c_str());
    return 1;
  }
  std::printf("hand baseline: %.1f ps, %.1f um\n",
              cmp.baseline.measured_delay_ps, cmp.baseline.total_width_um);
  std::printf("SMART:         %.1f ps, %.1f um  (%.0f%% width saving, "
              "%.0f%% power saving)\n\n",
              cmp.smart.measured_delay_ps, cmp.smart.total_width_um,
              100.0 * cmp.width_saving(), 100.0 * cmp.power_saving());

  const auto path = refsim::critical_path(slice, cmp.smart.sizing,
                                          tech::default_tech());
  std::printf("%s", refsim::describe_critical_path(slice, path).c_str());
  return 0;
}

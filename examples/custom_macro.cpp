// Extending the design database with a project-specific topology — the
// paper's key expandability property (§3: "Whenever a designer comes up
// with an implementation not available in the database, it can be
// incorporated into the database"). We register a NAND-mux (select-AND-OR
// in static CMOS) as a new mux topology, verify its function with the
// switch-level simulator, and let the advisor rank it against the
// built-in topologies.

#include <cstdio>
#include <map>

#include "core/advisor.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "refsim/logic_sim.h"
#include "util/strfmt.h"

using namespace smart;
using util::strfmt;

namespace {

// A static NAND-NAND mux: per input a NAND2(data, select), merged by an
// n-input NAND. One label pair per stage, shared across all slices.
netlist::Netlist nand_mux(const core::MacroSpec& spec) {
  using netlist::Stack;
  const int n = spec.n;
  const int bits = static_cast<int>(spec.param("bits", 8));
  netlist::Netlist nl(strfmt("mux%d_nand_x%d", n, bits));
  std::vector<netlist::NetId> sel;
  for (int i = 0; i < n; ++i) {
    sel.push_back(nl.add_net(strfmt("s%d", i)));
    nl.add_input(sel.back(), spec.input_arrival_ps, spec.input_slope_ps);
  }
  const auto n1 = nl.add_label("N1"), p1 = nl.add_label("P1");
  const auto n2 = nl.add_label("N2"), p2 = nl.add_label("P2");
  for (int b = 0; b < bits; ++b) {
    std::vector<Stack> merge;
    for (int i = 0; i < n; ++i) {
      const auto d = nl.add_net(strfmt("d%d_%d", b, i));
      nl.add_input(d, spec.input_arrival_ps, spec.input_slope_ps);
      const auto x = nl.add_net(strfmt("x%d_%d", b, i));
      nl.add_component(
          strfmt("and%d_%d", b, i), x,
          netlist::StaticGate{Stack::series({Stack::leaf(d, n1),
                                             Stack::leaf(sel[static_cast<size_t>(i)], n1)}),
                              p1});
      merge.push_back(Stack::leaf(x, n2));
    }
    const auto out = nl.add_net(strfmt("o%d", b));
    // All first-stage NANDs not selected output 1; the selected one carries
    // the inverted data, so an n-input NAND restores the value.
    nl.add_component(strfmt("merge%d", b), out,
                     netlist::StaticGate{Stack::series(std::move(merge)), p2});
    nl.add_output(out, spec.load_ff);
  }
  nl.finalize();
  return nl;
}

}  // namespace

int main() {
  // Clone the built-in database and register the custom topology.
  core::MacroDatabase db;
  macros::register_all(db);
  db.register_topology(
      "mux", {"nand_static", "project-specific NAND-NAND static mux",
              nand_mux,
              [](const core::MacroSpec& s) { return s.n >= 2 && s.n <= 4; }});

  // Verify the new macro's function at the transistor level first —
  // entries in the database are "tried and tested" (§3).
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 2;
  const auto nl = nand_mux(spec);
  refsim::LogicSim sim(nl);
  int checks = 0, failures = 0;
  for (int sel = 0; sel < 4; ++sel) {
    for (int pattern = 0; pattern < 256; pattern += 17) {
      std::map<netlist::NetId, bool> in;
      for (int i = 0; i < 4; ++i) {
        in[nl.find_net(strfmt("s%d", i))] = i == sel;
        for (int b = 0; b < 2; ++b)
          in[nl.find_net(strfmt("d%d_%d", b, i))] =
              (pattern >> (b * 4 + i)) & 1;
      }
      const auto st = sim.evaluate(in);
      for (int b = 0; b < 2; ++b) {
        ++checks;
        const bool want = (pattern >> (b * 4 + sel)) & 1;
        if (st[static_cast<size_t>(nl.find_net(strfmt("o%d", b)))] !=
            refsim::from_bool(want))
          ++failures;
      }
    }
  }
  std::printf("functional check: %d/%d vectors correct\n", checks - failures,
              checks);
  if (failures != 0) return 1;

  // Now let the advisor rank it against the stock topologies.
  core::AdvisorRequest request;
  request.spec = spec;
  request.spec.params["bits"] = 8;
  request.spec.load_ff = 15.0;
  request.delay_spec_ps = 100.0;
  core::DesignAdvisor advisor(db, tech::default_tech(),
                              models::default_library());
  const auto advice = advisor.advise(request);
  std::printf("\nadvisor ranking for a 4:1 x8 mux @ 100 ps:\n");
  int rank = 1;
  for (const auto& sol : advice.solutions) {
    std::printf("  %d. %-14s width %7.1f um  delay %6.1f ps  %s\n", rank++,
                sol.topology.c_str(), sol.sizing.total_width_um,
                sol.sizing.measured_delay_ps,
                sol.meets_spec ? "ok" : "misses spec");
  }
  return 0;
}

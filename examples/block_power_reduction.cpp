// Block-level power reduction pass (the paper's §6.4 deployment scenario:
// "We recently used SMART as a part of the power reduction effort on one
// of the steppings of a high-performance microprocessor"): build a
// functional block, apply SMART to its datapath macros only, and report
// before/after power with the timing check.

#include <cstdio>

#include "blocks/block.h"
#include "macros/registry.h"
#include "models/fitter.h"

using namespace smart;

int main() {
  blocks::BlockSpec spec;
  spec.name = "bypass_cluster";
  spec.seed = 2026;
  spec.filler_devices = 1200;

  auto add = [&](const char* type, const char* topo, int n, int bits) {
    blocks::MacroRequest req;
    req.type = type;
    req.topology = topo;
    req.spec.type = type;
    req.spec.n = n;
    if (bits > 0) req.spec.params["bits"] = bits;
    spec.macros.push_back(req);
  };
  add("mux", "domino_unsplit", 8, 8);
  add("mux", "strong_pass", 4, 16);
  add("comparator", "xorsum2_nor4", 32, -1);
  add("zero_detect", "static_tree", 32, -1);

  const auto block = blocks::build_block(spec, macros::builtin_database());

  core::IsoDelayOptions opt;
  opt.sizer.cost = core::CostMetric::kPower;
  const auto ex = blocks::run_block_experiment(
      block, tech::default_tech(), models::default_library(), opt);

  std::printf("block '%s': %d devices, %zu macros + control logic\n",
              block.name.c_str(), ex.before.devices, block.macros.size());
  std::printf("  macro share:      %.0f%% of width, %.0f%% of power\n",
              100.0 * ex.before.macro_width_um / ex.before.total_width_um,
              100.0 * ex.before.macro_power_mw / ex.before.total_power_mw);
  std::printf("  power:  %.3f mW -> %.3f mW  (%.1f%% saved)\n",
              ex.before.total_power_mw, ex.after.total_power_mw,
              100.0 * ex.power_saving());
  std::printf("  width:  %.1f um -> %.1f um  (%.1f%% saved)\n",
              ex.before.total_width_um, ex.after.total_width_um,
              100.0 * ex.width_saving());
  std::printf("  worst macro delay: %.1f ps -> %.1f ps (no penalty: %s)\n",
              ex.before.worst_macro_delay_ps, ex.after.worst_macro_delay_ps,
              ex.after.worst_macro_delay_ps <=
                      ex.before.worst_macro_delay_ps * 1.03
                  ? "yes"
                  : "NO");
  std::printf("  macros resized: %d/%d\n", ex.macros_converged,
              ex.macros_total);
  return 0;
}

// Area-delay exploration of a dual-rail domino CLA adder (a scaled-down
// interactive version of the paper's Fig 6 experiment): sweep the delay
// specification and print the achievable area at each point, then show
// what the designer-controlled sizing hook does — fixing a label by hand
// (paper §2: "the designer should be allowed to control transistor sizes
// of portions of the macro while letting the automatic sizer size the
// rest").

#include <cstdio>

#include "core/advisor.h"
#include "core/experiment.h"
#include "macros/registry.h"
#include "models/fitter.h"

using namespace smart;

int main() {
  const auto& tech = tech::default_tech();
  const auto& lib = models::default_library();

  core::MacroSpec spec;
  spec.type = "adder";
  spec.n = 16;  // 16-bit keeps this example interactive; Fig 6 uses 64
  spec.load_ff = 12.0;
  auto nl = macros::builtin_database()
                .find("adder", "domino_cla")
                ->generate(spec);

  // Anchor at the hand-design performance point.
  const auto anchor = core::run_iso_delay(nl, tech, lib);
  if (!anchor.ok) {
    std::printf("anchor sizing failed: %s\n", anchor.smart.message.c_str());
    return 1;
  }
  const double d0 = anchor.baseline.measured_delay_ps;
  std::printf("hand design: %.1f ps, %.1f um\n", d0,
              anchor.baseline.total_width_um);
  std::printf("SMART @ iso: %.1f ps, %.1f um (%.0f%% width saving)\n\n",
              anchor.smart.measured_delay_ps, anchor.smart.total_width_um,
              100.0 * anchor.width_saving());

  core::DesignAdvisor advisor(macros::builtin_database(), tech, lib);
  core::SizerOptions base;
  base.precharge_spec_ps = std::max(
      anchor.baseline.measured_precharge_ps, d0) * 1.2;
  std::printf("area-delay sweep:\n");
  std::printf("  %-12s %-14s %-12s\n", "spec (ps)", "delay (ps)",
              "width (um)");
  for (double rel : {0.9, 1.0, 1.1, 1.25, 1.4}) {
    const auto curve = advisor.tradeoff_curve(nl, {rel * d0}, base);
    const auto& p = curve.front();
    if (p.feasible) {
      std::printf("  %-12.1f %-14.1f %-12.1f\n", p.delay_spec_ps,
                  p.measured_delay_ps, p.total_width_um);
    } else {
      std::printf("  %-12.1f infeasible\n", p.delay_spec_ps);
    }
  }

  // Designer override: lock the stage-1 generate-gate stack to a generous
  // width (say, for noise immunity on a noisy region of the die) and
  // re-size everything else automatically around it.
  const netlist::LabelId lock = [&] {
    for (size_t i = 0; i < nl.label_count(); ++i)
      if (nl.label(static_cast<netlist::LabelId>(i)).name == "s1gt_N")
        return static_cast<netlist::LabelId>(i);
    return netlist::LabelId{-1};
  }();
  if (lock >= 0) {
    nl.fix_label(lock, 6.0);
    core::Sizer sizer(tech, lib);
    core::SizerOptions opt = base;
    opt.delay_spec_ps = d0;
    const auto r = sizer.size(nl, opt);
    std::printf(
        "\nwith s1gt_N hand-locked to 6.0 um: %s, delay %.1f ps, width "
        "%.1f um\n",
        r.message.c_str(), r.measured_delay_ps, r.total_width_um);
  }
  return 0;
}

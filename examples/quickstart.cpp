// Quickstart: ask the SMART design advisor for a 4:1, 8-bit datapath mux
// meeting a delay spec at minimum area, then inspect the solution.
//
//   build/examples/quickstart
//
// This walks the paper's Fig 1 flow end to end: the macro database offers
// topology choices, each is sized by the GP-based sizing engine against
// the constraints, the reference timer verifies, and the solutions come
// back ranked by the chosen cost metric.

#include <cstdio>

#include "core/advisor.h"
#include "core/report.h"
#include "macros/registry.h"
#include "models/fitter.h"

using namespace smart;

int main() {
  const auto& tech = tech::default_tech();
  const auto& models = models::default_library();
  const auto& database = macros::builtin_database();

  // Describe the macro instance and its local constraints (paper Fig 1:
  // "Given a macro instance with its local constraints like delays,
  // slopes and loads...").
  core::AdvisorRequest request;
  request.spec.type = "mux";
  request.spec.n = 4;                    // 4 data inputs
  request.spec.params["bits"] = 8;       // 8 identical slices
  request.spec.load_ff = 15.0;           // each output drives 15 fF
  request.spec.input_slope_ps = 35.0;
  request.delay_spec_ps = 90.0;          // must resolve within 90 ps
  request.cost = core::CostMetric::kTotalWidth;

  core::DesignAdvisor advisor(database, tech, models);
  const core::Advice advice = advisor.advise(request);

  std::printf("SMART advisor: %zu sized solutions (spec %.0f ps)\n\n",
              advice.solutions.size(), request.delay_spec_ps);
  for (const auto& sol : advice.solutions) {
    std::printf("  %-16s width %7.1f um  delay %6.1f ps  %s\n",
                sol.topology.c_str(), sol.sizing.total_width_um,
                sol.sizing.measured_delay_ps,
                sol.meets_spec ? "meets spec" : "best effort");
  }

  const core::Solution* best = advice.best();
  if (best == nullptr) {
    std::printf("no solution: %s\n", advice.message.c_str());
    return 1;
  }
  std::printf("\nrecommended: %s\n%s", best->topology.c_str(),
              core::describe_solution(best->netlist, best->sizing,
                                      tech).c_str());
  return 0;
}

# Empty compiler generated dependencies file for mux_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mux_selection.dir/mux_selection.cpp.o"
  "CMakeFiles/mux_selection.dir/mux_selection.cpp.o.d"
  "mux_selection"
  "mux_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mux_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adder_tradeoff.
# This may be replaced when dependencies are built.

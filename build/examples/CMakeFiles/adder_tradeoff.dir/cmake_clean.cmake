file(REMOVE_RECURSE
  "CMakeFiles/adder_tradeoff.dir/adder_tradeoff.cpp.o"
  "CMakeFiles/adder_tradeoff.dir/adder_tradeoff.cpp.o.d"
  "adder_tradeoff"
  "adder_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/block_power_reduction.dir/block_power_reduction.cpp.o"
  "CMakeFiles/block_power_reduction.dir/block_power_reduction.cpp.o.d"
  "block_power_reduction"
  "block_power_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_power_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

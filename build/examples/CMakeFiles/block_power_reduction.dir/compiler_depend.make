# Empty compiler generated dependencies file for block_power_reduction.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for edit_and_resize.
# This may be replaced when dependencies are built.

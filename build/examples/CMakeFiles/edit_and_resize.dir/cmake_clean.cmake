file(REMOVE_RECURSE
  "CMakeFiles/edit_and_resize.dir/edit_and_resize.cpp.o"
  "CMakeFiles/edit_and_resize.dir/edit_and_resize.cpp.o.d"
  "edit_and_resize"
  "edit_and_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_and_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/datapath_slice.dir/datapath_slice.cpp.o"
  "CMakeFiles/datapath_slice.dir/datapath_slice.cpp.o.d"
  "datapath_slice"
  "datapath_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for datapath_slice.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/selection_map.dir/selection_map.cpp.o"
  "CMakeFiles/selection_map.dir/selection_map.cpp.o.d"
  "selection_map"
  "selection_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for selection_map.
# This may be replaced when dependencies are built.

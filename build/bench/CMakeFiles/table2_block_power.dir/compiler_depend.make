# Empty compiler generated dependencies file for table2_block_power.
# This may be replaced when dependencies are built.

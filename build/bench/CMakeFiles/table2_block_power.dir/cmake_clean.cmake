file(REMOVE_RECURSE
  "CMakeFiles/table2_block_power.dir/table2_block_power.cpp.o"
  "CMakeFiles/table2_block_power.dir/table2_block_power.cpp.o.d"
  "table2_block_power"
  "table2_block_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_block_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5c_decoders.
# This may be replaced when dependencies are built.

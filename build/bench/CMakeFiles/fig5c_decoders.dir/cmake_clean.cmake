file(REMOVE_RECURSE
  "CMakeFiles/fig5c_decoders.dir/fig5c_decoders.cpp.o"
  "CMakeFiles/fig5c_decoders.dir/fig5c_decoders.cpp.o.d"
  "fig5c_decoders"
  "fig5c_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

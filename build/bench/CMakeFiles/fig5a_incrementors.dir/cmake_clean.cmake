file(REMOVE_RECURSE
  "CMakeFiles/fig5a_incrementors.dir/fig5a_incrementors.cpp.o"
  "CMakeFiles/fig5a_incrementors.dir/fig5a_incrementors.cpp.o.d"
  "fig5a_incrementors"
  "fig5a_incrementors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_incrementors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

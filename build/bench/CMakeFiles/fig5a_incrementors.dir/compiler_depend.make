# Empty compiler generated dependencies file for fig5a_incrementors.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig5b_zero_detects.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5b_zero_detects.dir/fig5b_zero_detects.cpp.o"
  "CMakeFiles/fig5b_zero_detects.dir/fig5b_zero_detects.cpp.o.d"
  "fig5b_zero_detects"
  "fig5b_zero_detects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_zero_detects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/composed_datapath.dir/composed_datapath.cpp.o"
  "CMakeFiles/composed_datapath.dir/composed_datapath.cpp.o.d"
  "composed_datapath"
  "composed_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composed_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for composed_datapath.
# This may be replaced when dependencies are built.

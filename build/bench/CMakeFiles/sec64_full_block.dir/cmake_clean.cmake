file(REMOVE_RECURSE
  "CMakeFiles/sec64_full_block.dir/sec64_full_block.cpp.o"
  "CMakeFiles/sec64_full_block.dir/sec64_full_block.cpp.o.d"
  "sec64_full_block"
  "sec64_full_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_full_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

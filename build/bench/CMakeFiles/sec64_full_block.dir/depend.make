# Empty dependencies file for sec64_full_block.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_comparator_explore.dir/fig7_comparator_explore.cpp.o"
  "CMakeFiles/fig7_comparator_explore.dir/fig7_comparator_explore.cpp.o.d"
  "fig7_comparator_explore"
  "fig7_comparator_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comparator_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

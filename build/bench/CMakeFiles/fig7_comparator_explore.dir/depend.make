# Empty dependencies file for fig7_comparator_explore.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_muxes.dir/table1_muxes.cpp.o"
  "CMakeFiles/table1_muxes.dir/table1_muxes.cpp.o.d"
  "table1_muxes"
  "table1_muxes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_muxes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_muxes.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_sizer.
# This may be replaced when dependencies are built.

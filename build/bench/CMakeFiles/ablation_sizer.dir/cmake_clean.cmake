file(REMOVE_RECURSE
  "CMakeFiles/ablation_sizer.dir/ablation_sizer.cpp.o"
  "CMakeFiles/ablation_sizer.dir/ablation_sizer.cpp.o.d"
  "ablation_sizer"
  "ablation_sizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig6_adder_tradeoff.dir/fig6_adder_tradeoff.cpp.o"
  "CMakeFiles/fig6_adder_tradeoff.dir/fig6_adder_tradeoff.cpp.o.d"
  "fig6_adder_tradeoff"
  "fig6_adder_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_adder_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

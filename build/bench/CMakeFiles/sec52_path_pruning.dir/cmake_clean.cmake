file(REMOVE_RECURSE
  "CMakeFiles/sec52_path_pruning.dir/sec52_path_pruning.cpp.o"
  "CMakeFiles/sec52_path_pruning.dir/sec52_path_pruning.cpp.o.d"
  "sec52_path_pruning"
  "sec52_path_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_path_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

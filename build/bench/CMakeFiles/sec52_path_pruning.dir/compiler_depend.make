# Empty compiler generated dependencies file for sec52_path_pruning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smart_cli.dir/smart_cli.cpp.o"
  "CMakeFiles/smart_cli.dir/smart_cli.cpp.o.d"
  "smart_cli"
  "smart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for refsim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/refsim_test.dir/refsim_test.cpp.o"
  "CMakeFiles/refsim_test.dir/refsim_test.cpp.o.d"
  "refsim_test"
  "refsim_test.pdb"
  "refsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

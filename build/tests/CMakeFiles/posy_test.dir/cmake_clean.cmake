file(REMOVE_RECURSE
  "CMakeFiles/posy_test.dir/posy_test.cpp.o"
  "CMakeFiles/posy_test.dir/posy_test.cpp.o.d"
  "posy_test"
  "posy_test.pdb"
  "posy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for posy_test.
# This may be replaced when dependencies are built.

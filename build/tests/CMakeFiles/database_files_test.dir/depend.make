# Empty dependencies file for database_files_test.
# This may be replaced when dependencies are built.

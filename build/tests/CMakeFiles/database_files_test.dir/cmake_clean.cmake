file(REMOVE_RECURSE
  "CMakeFiles/database_files_test.dir/database_files_test.cpp.o"
  "CMakeFiles/database_files_test.dir/database_files_test.cpp.o.d"
  "database_files_test"
  "database_files_test.pdb"
  "database_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

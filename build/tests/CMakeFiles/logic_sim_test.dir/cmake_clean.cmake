file(REMOVE_RECURSE
  "CMakeFiles/logic_sim_test.dir/logic_sim_test.cpp.o"
  "CMakeFiles/logic_sim_test.dir/logic_sim_test.cpp.o.d"
  "logic_sim_test"
  "logic_sim_test.pdb"
  "logic_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blocks_test.cpp" "tests/CMakeFiles/blocks_test.dir/blocks_test.cpp.o" "gcc" "tests/CMakeFiles/blocks_test.dir/blocks_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocks/CMakeFiles/smart_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/macros/CMakeFiles/smart_macros.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/smart_models.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/smart_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/smart_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/smart_power.dir/DependInfo.cmake"
  "/root/repo/build/src/refsim/CMakeFiles/smart_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/smart_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/posy/CMakeFiles/smart_posy.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/smart_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

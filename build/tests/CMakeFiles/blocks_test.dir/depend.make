# Empty dependencies file for blocks_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/macros_test.dir/macros_test.cpp.o"
  "CMakeFiles/macros_test.dir/macros_test.cpp.o.d"
  "macros_test"
  "macros_test.pdb"
  "macros_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macros_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

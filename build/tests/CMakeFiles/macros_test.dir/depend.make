# Empty dependencies file for macros_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsmart_tech.a"
)

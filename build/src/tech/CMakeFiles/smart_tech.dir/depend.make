# Empty dependencies file for smart_tech.
# This may be replaced when dependencies are built.

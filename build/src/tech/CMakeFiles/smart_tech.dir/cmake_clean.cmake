file(REMOVE_RECURSE
  "CMakeFiles/smart_tech.dir/tech.cpp.o"
  "CMakeFiles/smart_tech.dir/tech.cpp.o.d"
  "libsmart_tech.a"
  "libsmart_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

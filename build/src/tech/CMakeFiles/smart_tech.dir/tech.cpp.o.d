src/tech/CMakeFiles/smart_tech.dir/tech.cpp.o: \
 /root/repo/src/tech/tech.cpp /usr/include/stdc-predef.h \
 /root/repo/src/tech/tech.h

file(REMOVE_RECURSE
  "libsmart_blocks.a"
)

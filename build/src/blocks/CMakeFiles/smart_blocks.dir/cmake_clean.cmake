file(REMOVE_RECURSE
  "CMakeFiles/smart_blocks.dir/block.cpp.o"
  "CMakeFiles/smart_blocks.dir/block.cpp.o.d"
  "libsmart_blocks.a"
  "libsmart_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smart_blocks.
# This may be replaced when dependencies are built.

# Empty dependencies file for smart_models.
# This may be replaced when dependencies are built.

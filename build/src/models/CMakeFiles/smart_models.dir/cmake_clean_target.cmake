file(REMOVE_RECURSE
  "libsmart_models.a"
)

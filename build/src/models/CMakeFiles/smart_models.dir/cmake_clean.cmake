file(REMOVE_RECURSE
  "CMakeFiles/smart_models.dir/arc_model.cpp.o"
  "CMakeFiles/smart_models.dir/arc_model.cpp.o.d"
  "CMakeFiles/smart_models.dir/fitter.cpp.o"
  "CMakeFiles/smart_models.dir/fitter.cpp.o.d"
  "libsmart_models.a"
  "libsmart_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsmart_posy.a"
)

# Empty compiler generated dependencies file for smart_posy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smart_posy.dir/monomial.cpp.o"
  "CMakeFiles/smart_posy.dir/monomial.cpp.o.d"
  "CMakeFiles/smart_posy.dir/posynomial.cpp.o"
  "CMakeFiles/smart_posy.dir/posynomial.cpp.o.d"
  "libsmart_posy.a"
  "libsmart_posy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_posy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/macros/adder.cpp" "src/macros/CMakeFiles/smart_macros.dir/adder.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/adder.cpp.o.d"
  "/root/repo/src/macros/comparator.cpp" "src/macros/CMakeFiles/smart_macros.dir/comparator.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/comparator.cpp.o.d"
  "/root/repo/src/macros/decoder.cpp" "src/macros/CMakeFiles/smart_macros.dir/decoder.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/decoder.cpp.o.d"
  "/root/repo/src/macros/encoder.cpp" "src/macros/CMakeFiles/smart_macros.dir/encoder.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/encoder.cpp.o.d"
  "/root/repo/src/macros/incrementor.cpp" "src/macros/CMakeFiles/smart_macros.dir/incrementor.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/incrementor.cpp.o.d"
  "/root/repo/src/macros/mux.cpp" "src/macros/CMakeFiles/smart_macros.dir/mux.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/mux.cpp.o.d"
  "/root/repo/src/macros/register_file.cpp" "src/macros/CMakeFiles/smart_macros.dir/register_file.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/register_file.cpp.o.d"
  "/root/repo/src/macros/registry.cpp" "src/macros/CMakeFiles/smart_macros.dir/registry.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/registry.cpp.o.d"
  "/root/repo/src/macros/shifter.cpp" "src/macros/CMakeFiles/smart_macros.dir/shifter.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/shifter.cpp.o.d"
  "/root/repo/src/macros/zero_detect.cpp" "src/macros/CMakeFiles/smart_macros.dir/zero_detect.cpp.o" "gcc" "src/macros/CMakeFiles/smart_macros.dir/zero_detect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/smart_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/smart_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/smart_models.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/smart_power.dir/DependInfo.cmake"
  "/root/repo/build/src/refsim/CMakeFiles/smart_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/smart_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/posy/CMakeFiles/smart_posy.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/smart_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

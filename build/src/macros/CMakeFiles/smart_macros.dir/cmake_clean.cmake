file(REMOVE_RECURSE
  "CMakeFiles/smart_macros.dir/adder.cpp.o"
  "CMakeFiles/smart_macros.dir/adder.cpp.o.d"
  "CMakeFiles/smart_macros.dir/comparator.cpp.o"
  "CMakeFiles/smart_macros.dir/comparator.cpp.o.d"
  "CMakeFiles/smart_macros.dir/decoder.cpp.o"
  "CMakeFiles/smart_macros.dir/decoder.cpp.o.d"
  "CMakeFiles/smart_macros.dir/encoder.cpp.o"
  "CMakeFiles/smart_macros.dir/encoder.cpp.o.d"
  "CMakeFiles/smart_macros.dir/incrementor.cpp.o"
  "CMakeFiles/smart_macros.dir/incrementor.cpp.o.d"
  "CMakeFiles/smart_macros.dir/mux.cpp.o"
  "CMakeFiles/smart_macros.dir/mux.cpp.o.d"
  "CMakeFiles/smart_macros.dir/register_file.cpp.o"
  "CMakeFiles/smart_macros.dir/register_file.cpp.o.d"
  "CMakeFiles/smart_macros.dir/registry.cpp.o"
  "CMakeFiles/smart_macros.dir/registry.cpp.o.d"
  "CMakeFiles/smart_macros.dir/shifter.cpp.o"
  "CMakeFiles/smart_macros.dir/shifter.cpp.o.d"
  "CMakeFiles/smart_macros.dir/zero_detect.cpp.o"
  "CMakeFiles/smart_macros.dir/zero_detect.cpp.o.d"
  "libsmart_macros.a"
  "libsmart_macros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smart_macros.
# This may be replaced when dependencies are built.

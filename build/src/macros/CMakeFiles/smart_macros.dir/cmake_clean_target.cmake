file(REMOVE_RECURSE
  "libsmart_macros.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/problem.cpp" "src/gp/CMakeFiles/smart_gp.dir/problem.cpp.o" "gcc" "src/gp/CMakeFiles/smart_gp.dir/problem.cpp.o.d"
  "/root/repo/src/gp/solver.cpp" "src/gp/CMakeFiles/smart_gp.dir/solver.cpp.o" "gcc" "src/gp/CMakeFiles/smart_gp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/posy/CMakeFiles/smart_posy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for smart_gp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smart_gp.dir/problem.cpp.o"
  "CMakeFiles/smart_gp.dir/problem.cpp.o.d"
  "CMakeFiles/smart_gp.dir/solver.cpp.o"
  "CMakeFiles/smart_gp.dir/solver.cpp.o.d"
  "libsmart_gp.a"
  "libsmart_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsmart_gp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/smart_util.dir/linalg.cpp.o"
  "CMakeFiles/smart_util.dir/linalg.cpp.o.d"
  "CMakeFiles/smart_util.dir/logging.cpp.o"
  "CMakeFiles/smart_util.dir/logging.cpp.o.d"
  "CMakeFiles/smart_util.dir/table.cpp.o"
  "CMakeFiles/smart_util.dir/table.cpp.o.d"
  "libsmart_util.a"
  "libsmart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

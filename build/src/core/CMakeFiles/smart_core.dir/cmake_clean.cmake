file(REMOVE_RECURSE
  "CMakeFiles/smart_core.dir/advisor.cpp.o"
  "CMakeFiles/smart_core.dir/advisor.cpp.o.d"
  "CMakeFiles/smart_core.dir/baseline.cpp.o"
  "CMakeFiles/smart_core.dir/baseline.cpp.o.d"
  "CMakeFiles/smart_core.dir/constraints.cpp.o"
  "CMakeFiles/smart_core.dir/constraints.cpp.o.d"
  "CMakeFiles/smart_core.dir/corners.cpp.o"
  "CMakeFiles/smart_core.dir/corners.cpp.o.d"
  "CMakeFiles/smart_core.dir/database.cpp.o"
  "CMakeFiles/smart_core.dir/database.cpp.o.d"
  "CMakeFiles/smart_core.dir/experiment.cpp.o"
  "CMakeFiles/smart_core.dir/experiment.cpp.o.d"
  "CMakeFiles/smart_core.dir/report.cpp.o"
  "CMakeFiles/smart_core.dir/report.cpp.o.d"
  "CMakeFiles/smart_core.dir/sizer.cpp.o"
  "CMakeFiles/smart_core.dir/sizer.cpp.o.d"
  "libsmart_core.a"
  "libsmart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refsim/critical_path.cpp" "src/refsim/CMakeFiles/smart_refsim.dir/critical_path.cpp.o" "gcc" "src/refsim/CMakeFiles/smart_refsim.dir/critical_path.cpp.o.d"
  "/root/repo/src/refsim/logic_sim.cpp" "src/refsim/CMakeFiles/smart_refsim.dir/logic_sim.cpp.o" "gcc" "src/refsim/CMakeFiles/smart_refsim.dir/logic_sim.cpp.o.d"
  "/root/repo/src/refsim/noise.cpp" "src/refsim/CMakeFiles/smart_refsim.dir/noise.cpp.o" "gcc" "src/refsim/CMakeFiles/smart_refsim.dir/noise.cpp.o.d"
  "/root/repo/src/refsim/rc_timer.cpp" "src/refsim/CMakeFiles/smart_refsim.dir/rc_timer.cpp.o" "gcc" "src/refsim/CMakeFiles/smart_refsim.dir/rc_timer.cpp.o.d"
  "/root/repo/src/refsim/slack.cpp" "src/refsim/CMakeFiles/smart_refsim.dir/slack.cpp.o" "gcc" "src/refsim/CMakeFiles/smart_refsim.dir/slack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/smart_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/smart_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/smart_refsim.dir/critical_path.cpp.o"
  "CMakeFiles/smart_refsim.dir/critical_path.cpp.o.d"
  "CMakeFiles/smart_refsim.dir/logic_sim.cpp.o"
  "CMakeFiles/smart_refsim.dir/logic_sim.cpp.o.d"
  "CMakeFiles/smart_refsim.dir/noise.cpp.o"
  "CMakeFiles/smart_refsim.dir/noise.cpp.o.d"
  "CMakeFiles/smart_refsim.dir/rc_timer.cpp.o"
  "CMakeFiles/smart_refsim.dir/rc_timer.cpp.o.d"
  "CMakeFiles/smart_refsim.dir/slack.cpp.o"
  "CMakeFiles/smart_refsim.dir/slack.cpp.o.d"
  "libsmart_refsim.a"
  "libsmart_refsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_refsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

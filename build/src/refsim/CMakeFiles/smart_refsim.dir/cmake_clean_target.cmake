file(REMOVE_RECURSE
  "libsmart_refsim.a"
)

# Empty dependencies file for smart_refsim.
# This may be replaced when dependencies are built.

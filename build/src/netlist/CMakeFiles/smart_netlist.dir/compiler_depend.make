# Empty compiler generated dependencies file for smart_netlist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smart_netlist.dir/compose.cpp.o"
  "CMakeFiles/smart_netlist.dir/compose.cpp.o.d"
  "CMakeFiles/smart_netlist.dir/flatten.cpp.o"
  "CMakeFiles/smart_netlist.dir/flatten.cpp.o.d"
  "CMakeFiles/smart_netlist.dir/netlist.cpp.o"
  "CMakeFiles/smart_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/smart_netlist.dir/serialize.cpp.o"
  "CMakeFiles/smart_netlist.dir/serialize.cpp.o.d"
  "CMakeFiles/smart_netlist.dir/spice_export.cpp.o"
  "CMakeFiles/smart_netlist.dir/spice_export.cpp.o.d"
  "CMakeFiles/smart_netlist.dir/stack.cpp.o"
  "CMakeFiles/smart_netlist.dir/stack.cpp.o.d"
  "libsmart_netlist.a"
  "libsmart_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

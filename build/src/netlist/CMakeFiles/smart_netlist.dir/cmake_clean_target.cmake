file(REMOVE_RECURSE
  "libsmart_netlist.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/compose.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/compose.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/compose.cpp.o.d"
  "/root/repo/src/netlist/flatten.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/flatten.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/flatten.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/serialize.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/serialize.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/serialize.cpp.o.d"
  "/root/repo/src/netlist/spice_export.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/spice_export.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/spice_export.cpp.o.d"
  "/root/repo/src/netlist/stack.cpp" "src/netlist/CMakeFiles/smart_netlist.dir/stack.cpp.o" "gcc" "src/netlist/CMakeFiles/smart_netlist.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/smart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

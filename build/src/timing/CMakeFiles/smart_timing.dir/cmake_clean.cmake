file(REMOVE_RECURSE
  "CMakeFiles/smart_timing.dir/paths.cpp.o"
  "CMakeFiles/smart_timing.dir/paths.cpp.o.d"
  "libsmart_timing.a"
  "libsmart_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

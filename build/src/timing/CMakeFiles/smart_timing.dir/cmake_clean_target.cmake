file(REMOVE_RECURSE
  "libsmart_timing.a"
)

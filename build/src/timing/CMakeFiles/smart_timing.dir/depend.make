# Empty dependencies file for smart_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsmart_power.a"
)

# Empty dependencies file for smart_power.
# This may be replaced when dependencies are built.

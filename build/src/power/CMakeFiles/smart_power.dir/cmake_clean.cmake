file(REMOVE_RECURSE
  "CMakeFiles/smart_power.dir/power.cpp.o"
  "CMakeFiles/smart_power.dir/power.cpp.o.d"
  "libsmart_power.a"
  "libsmart_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation bench for the design decisions DESIGN.md §5 calls out:
//   - model accuracy vs sizing-loop behaviour (§5.1 of the paper),
//   - opportunistic time borrowing (OTB) on/off for multi-stage domino,
//   - cost metric (width vs power vs clock load) on a domino mux.

#include "common.h"

using namespace smart;

int main() {
  // ---- model accuracy (saturating vs linear slope basis vs unfitted) ----
  {
    core::MacroSpec spec;
    spec.type = "incrementor";
    spec.n = 13;
    const auto nl = bench::generate("incrementor", "ks_prefix", spec);
    util::Table table({"model library", "fit RMS (static delay)",
                       "converged at iter", "final width (um)", "status"});
    struct LibCase {
      const char* name;
      models::ModelLibrary lib;
      double rms;
    };
    models::FitReport rep_sat, rep_lin;
    std::vector<LibCase> cases;
    cases.push_back(
        {"calibrated, saturating slope",
         models::calibrate(bench::tech(), &rep_sat, {true}),
         rep_sat.per_class[0].delay_rms_rel});
    cases.push_back(
        {"calibrated, linear slope",
         models::calibrate(bench::tech(), &rep_lin, {false}),
         rep_lin.per_class[0].delay_rms_rel});
    cases.push_back({"unfitted analytic defaults", models::ModelLibrary{},
                     -1.0});
    for (auto& c : cases) {
      core::IsoDelayOptions opt;
      opt.sizer.max_respec_iters = 20;
      const auto cmp = core::run_iso_delay(nl, bench::tech(), c.lib, opt);
      table.add_row({c.name,
                     c.rms >= 0 ? util::strfmt("%.1f%%", 100 * c.rms) : "-",
                     cmp.smart.converged_iteration > 0
                         ? util::strfmt("%d", cmp.smart.converged_iteration)
                         : "never",
                     cmp.smart.ok ? bench::num(cmp.smart.total_width_um, 1)
                                  : "-",
                     cmp.smart.message});
    }
    std::printf("%s", table.render(
        "Ablation 1 - model accuracy vs sizing loop (13-bit incrementor, "
        "iso-delay)").c_str());
    bench::paper_note(
        "§5.1: \"Better model accuracy leads to faster convergence\" — "
        "degraded models need more STA-respec iterations or fail to "
        "converge within the budget.");
  }

  // ---- OTB on/off ----
  {
    // The canonical time-borrowing scenario ([12]): an intrinsically slow
    // D1 stage (wide 8-way OR of 2-high stacks) followed by a light D2
    // stage. Without borrowing, the D1 stage must finish inside its own
    // half of the budget; with OTB it may eat into the D2 stage's share.
    netlist::Netlist nl("otb_pair");
    using netlist::Stack;
    const auto clk = nl.add_net("clk", netlist::NetKind::kClock);
    std::vector<Stack> branches;
    for (int i = 0; i < 8; ++i) {
      const auto a = nl.add_net(util::strfmt("a%d", i));
      const auto b = nl.add_net(util::strfmt("b%d", i));
      nl.add_input(a);
      nl.add_input(b);
      branches.push_back(Stack::series(
          {Stack::leaf(a, 0), Stack::leaf(b, 0)}));
    }
    const auto n1 = nl.add_label("N1");
    SMART_CHECK(n1 == 0, "label order");
    const auto p1 = nl.add_label("P1");
    const auto nf = nl.add_label("NF");
    const auto dyn1 = nl.add_net("dyn1");
    nl.add_component("d1", dyn1,
                     netlist::DominoGate{Stack::parallel(std::move(branches)),
                                         p1, nf, clk, 0.1});
    const auto ni = nl.add_label("NI"), pi = nl.add_label("PI");
    const auto mid = nl.add_net("mid");
    nl.add_inverter("i1", dyn1, mid, ni, pi);
    const auto n2 = nl.add_label("N2"), p2 = nl.add_label("P2");
    const auto dyn2 = nl.add_net("dyn2");
    nl.add_component("d2", dyn2,
                     netlist::DominoGate{Stack::leaf(mid, n2), p2, -1, clk,
                                         0.1});
    const auto ni2 = nl.add_label("NI2"), pi2 = nl.add_label("PI2");
    const auto out = nl.add_net("out");
    nl.add_inverter("i2", dyn2, out, ni2, pi2);
    nl.add_output(out, 20.0);
    nl.finalize();

    util::Table table({"time borrowing", "width (um)", "delay (ps)",
                       "status"});
    for (bool otb : {true, false}) {
      core::Sizer sizer(bench::tech(), bench::library());
      core::SizerOptions opt;
      opt.delay_spec_ps = 72.0;
      opt.precharge_spec_ps = 120.0;
      opt.otb = otb;
      const auto r = sizer.size(nl, opt);
      table.add_row({otb ? "OTB on" : "OTB off (stage deadlines)",
                     r.ok ? bench::num(r.total_width_um, 1) : "-",
                     r.ok ? bench::num(r.measured_delay_ps, 1) : "-",
                     r.message});
    }
    std::printf("%s", table.render(
        "Ablation 2 - opportunistic time borrowing (slow-D1 / fast-D2 "
        "pair)").c_str());
    bench::paper_note(
        "§5.3/[12]: the formulation natively takes OTB into account, "
        "allowing application to the most critical circuits; without "
        "borrowing the slow D1 stage must meet its own phase deadline, "
        "costing width (or feasibility) at the same end-to-end spec.");
  }

  // ---- cost metric ----
  {
    core::MacroSpec spec;
    spec.type = "mux";
    spec.n = 8;
    spec.params["bits"] = 8;
    const auto nl = bench::generate("mux", "domino_unsplit", spec);
    const auto anchor = bench::iso(nl);
    util::Table table({"cost metric", "width (um)", "clock width (um)",
                       "power (mW)", "status"});
    for (auto cost : {core::CostMetric::kTotalWidth, core::CostMetric::kPower,
                      core::CostMetric::kClockLoad}) {
      core::Sizer sizer(bench::tech(), bench::library());
      core::SizerOptions opt;
      opt.delay_spec_ps = anchor.baseline.measured_delay_ps;
      opt.precharge_spec_ps = std::max(
          anchor.baseline.measured_precharge_ps,
          anchor.baseline.measured_delay_ps);
      opt.cost = cost;
      const auto r = sizer.size(nl, opt);
      double mw = 0.0;
      if (r.ok) {
        power::PowerEstimator est(bench::tech());
        mw = est.estimate(nl, r.sizing).total_mw;
      }
      const char* name = cost == core::CostMetric::kTotalWidth
                             ? "total width (area)"
                             : cost == core::CostMetric::kPower
                                   ? "power"
                                   : "clock load";
      table.add_row({name, r.ok ? bench::num(r.total_width_um, 1) : "-",
                     r.ok ? bench::num(r.clock_width_um, 1) : "-",
                     r.ok ? bench::num(mw, 3) : "-", r.message});
    }
    std::printf("%s", table.render(
        "Ablation 3 - designer cost metric (8:1 domino mux, iso-delay)")
        .c_str());
    bench::paper_note(
        "Fig 1: SMART picks the best solution per a designer cost function "
        "(area, power); each metric shifts width between data and clocked "
        "devices.");
  }
  return 0;
}

// Figure 5(a): normalized total transistor width, original vs SMART, for
// the paper's incrementor/decrementor instances (3bitinc, 3bitdec,
// 13bitinc x2, 27bitinc, 39bitinc, 47bitinc, 48bitinc, 64bitdec).
// Reproduction target: SMART bars well below 1.0 across all widths.

#include "common.h"

using namespace smart;

int main() {
  struct Row {
    const char* name;
    const char* type;
    int bits;
    double load;
  };
  // The paper lists two 13-bit instances; different loading contexts make
  // them distinct instances of the same macro, as in a real datapath.
  const std::vector<Row> rows = {
      {"3bitinc", "incrementor", 3, 12.0},
      {"3bitdec", "decrementor", 3, 12.0},
      {"13bitinc", "incrementor", 13, 12.0},
      {"13bitinc", "incrementor", 13, 30.0},
      {"27bitinc", "incrementor", 27, 12.0},
      {"39bitinc", "incrementor", 39, 12.0},
      {"47bitinc", "incrementor", 47, 12.0},
      {"48bitinc", "incrementor", 48, 20.0},
      {"64bitdec", "decrementor", 64, 12.0},
  };

  util::Table table({"circuit", "original", "SMART", "width saving",
                     "delay orig (ps)", "delay SMART (ps)"});
  for (const auto& row : rows) {
    core::MacroSpec spec;
    spec.type = row.type;
    spec.n = row.bits;
    spec.load_ff = row.load;
    const auto nl = bench::generate(row.type, "ks_prefix", spec);
    const auto cmp = bench::iso(nl);
    if (!cmp.ok) {
      table.add_row({row.name, "1.00", "n/a", cmp.smart.message, "", ""});
      continue;
    }
    table.add_row({row.name, "1.00",
                   bench::num(cmp.smart.total_width_um /
                              cmp.baseline.total_width_um),
                   bench::pct(cmp.width_saving()),
                   bench::num(cmp.baseline.measured_delay_ps, 1),
                   bench::num(cmp.smart.measured_delay_ps, 1)});
  }
  std::printf("%s", table.render(
      "Figure 5(a) - Incrementors: normalized total transistor width "
      "(original = 1.0), iso-delay").c_str());
  bench::paper_note(
      "Fig 5(a) shows SMART bars around 0.5-0.9 of the original across "
      "3..64-bit incrementors/decrementors; timing within a few ps.");
  return 0;
}

// §6.4 (first experiment): a complete functional block with over 13,800
// transistors where datapath macros account for 22% of total transistor
// width and 36% of total power; applying SMART to the macros yields ~8%
// reduction in both block width and block power with no timing penalty.

#include "common.h"

#include "blocks/block.h"

using namespace smart;

int main() {
  // Compose a block matching the paper's ratios: macro width share ~22%.
  blocks::BlockSpec spec;
  spec.name = "sec64_block";
  spec.seed = 64;
  spec.filler_devices = 10600;
  auto add_mux = [&](const char* topo, int n, int bits) {
    blocks::MacroRequest req;
    req.type = "mux";
    req.topology = topo;
    req.spec.type = "mux";
    req.spec.n = n;
    req.spec.params["bits"] = bits;
    spec.macros.push_back(req);
  };
  add_mux("domino_unsplit", 8, 8);
  add_mux("domino_unsplit", 4, 16);
  add_mux("domino_unsplit", 8, 16);
  add_mux("strong_pass", 4, 16);
  add_mux("strong_pass", 4, 32);
  add_mux("domino_split", 8, 8);
  add_mux("domino_split", 8, 16);
  {
    blocks::MacroRequest req;
    req.type = "incrementor";
    req.topology = "ks_prefix";
    req.spec.type = "incrementor";
    req.spec.n = 13;
    spec.macros.push_back(req);
  }
  {
    blocks::MacroRequest req;
    req.type = "comparator";
    req.topology = "xorsum2_nor4";
    req.spec.type = "comparator";
    req.spec.n = 32;
    spec.macros.push_back(req);
  }
  {
    blocks::MacroRequest req;
    req.type = "zero_detect";
    req.topology = "static_tree";
    req.spec.type = "zero_detect";
    req.spec.n = 32;
    spec.macros.push_back(req);
  }

  const auto block = blocks::build_block(spec, bench::database());
  core::IsoDelayOptions opt;
  opt.sizer.cost = core::CostMetric::kPower;
  const auto ex = blocks::run_block_experiment(block, bench::tech(),
                                               bench::library(), opt);

  util::Table table({"metric", "value"});
  table.add_row({"total devices", util::strfmt("%d", ex.before.devices)});
  table.add_row({"macro share of total width",
                 bench::pct(ex.before.macro_width_um /
                            ex.before.total_width_um)});
  table.add_row({"macro share of total power",
                 bench::pct(ex.before.macro_power_mw /
                            ex.before.total_power_mw)});
  table.add_row({"block width reduction", bench::pct(ex.width_saving())});
  table.add_row({"block power reduction", bench::pct(ex.power_saving())});
  table.add_row({"worst macro delay before (ps)",
                 bench::num(ex.before.worst_macro_delay_ps, 1)});
  table.add_row({"worst macro delay after (ps)",
                 bench::num(ex.after.worst_macro_delay_ps, 1)});
  table.add_row({"macros converged",
                 util::strfmt("%d/%d", ex.macros_converged,
                              ex.macros_total)});
  std::printf("%s", table.render(
      "Section 6.4 - complete functional block: SMART applied to the "
      "datapath macros only").c_str());
  bench::paper_note(
      "§6.4: a 13,800-transistor block, macros = 22% of width and 36% of "
      "power; SMART -> ~8% block width and ~8% block power reduction, no "
      "performance penalty. Reproduction target: matching composition and "
      "single-digit block-level savings bounded by the macro share.");
  return 0;
}

// Figure 5(c): normalized total transistor width, original vs SMART, for
// the paper's decoder instances (3:8 x2, 4:16 x3, 6:64 x2, 7:128).

#include "common.h"

using namespace smart;

int main() {
  struct Row {
    const char* name;
    int n;
    double load;
  };
  const std::vector<Row> rows = {
      {"3to8", 3, 10.0},  {"3to8", 3, 25.0},  {"4to16", 4, 10.0},
      {"4to16", 4, 18.0}, {"4to16", 4, 30.0}, {"6to64", 6, 10.0},
      {"6to64", 6, 20.0}, {"7to128", 7, 10.0},
  };

  util::Table table({"circuit", "original", "SMART", "width saving",
                     "delay orig (ps)", "delay SMART (ps)"});
  for (const auto& row : rows) {
    core::MacroSpec spec;
    spec.type = "decoder";
    spec.n = row.n;
    spec.load_ff = row.load;
    const auto nl = bench::generate("decoder", "predecode", spec);
    const auto cmp = bench::iso(nl);
    if (!cmp.ok) {
      table.add_row({row.name, "1.00", "n/a", cmp.smart.message, "", ""});
      continue;
    }
    table.add_row({row.name, "1.00",
                   bench::num(cmp.smart.total_width_um /
                              cmp.baseline.total_width_um),
                   bench::pct(cmp.width_saving()),
                   bench::num(cmp.baseline.measured_delay_ps, 1),
                   bench::num(cmp.smart.measured_delay_ps, 1)});
  }
  std::printf("%s", table.render(
      "Figure 5(c) - Decoders: normalized total transistor width "
      "(original = 1.0), iso-delay").c_str());
  bench::paper_note(
      "Fig 5(c) shows SMART bars around 0.5-0.9 of the original across "
      "3:8 .. 7:128 decoders.");
  return 0;
}

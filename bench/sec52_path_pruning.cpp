// §5.2: problem-size reduction from the three pruning techniques. The
// paper's example: a 64-bit dynamic adder where exhaustive timing analysis
// reveals over 32,000 paths, reduced to ~120 constraint paths — a factor
// of over 250. Also serves as the pruning ablation called out in
// DESIGN.md §5: each technique is toggled independently.

// Pass --metrics-out=FILE to export the pruning statistics (and the
// per-stage reduction gauges the instrumented extractor records) as the
// flat metrics JSON, BENCH_*.json style.

#include "common.h"

#include <cstring>
#include <ctime>

#include "obs/obs.h"
#include "timing/paths.h"

using namespace smart;

int main(int argc, char** argv) {
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
      metrics_out = argv[i] + 14;
  }
  auto& tel = obs::Telemetry::instance();
  if (!metrics_out.empty()) tel.enable(true);

  // The paper's number ("over 32,000 paths") matches a 32-bit dual-rail
  // instance of our adder almost exactly; the 64-bit instance is larger.
  for (int bits : {32, 64}) {
  core::MacroSpec spec;
  spec.type = "adder";
  spec.n = bits;
  const auto nl = bench::generate("adder", "domino_cla", spec);
  timing::PathExtractor extractor(nl);

  {
    timing::PathStats stats;
    const auto t0 = clock();
    const auto paths = extractor.extract({}, &stats);
    const double secs = double(clock() - t0) / CLOCKS_PER_SEC;
    util::Table table({"stage", "paths"});
    table.add_row({"exhaustive timing analysis (topological)",
                   util::strfmt("%.0f", stats.raw_topological)});
    table.add_row({"edge-annotated (rise/fall, both phases)",
                   util::strfmt("%.0f", stats.raw_edge_paths)});
    table.add_row({"after regularity",
                   util::strfmt("%zu", stats.after_regularity)});
    table.add_row({"after pin precedence",
                   util::strfmt("%zu", stats.after_precedence)});
    table.add_row({"after fanout dominance (final)",
                   util::strfmt("%zu", stats.after_dominance)});
    std::printf("%s", table.render(util::strfmt(
        "Section 5.2 - %d-bit dual-rail domino CLA adder: timing-constraint "
        "problem size", bits)).c_str());
    std::printf("reduction factor: %.0fx (extracted in %.2fs)\n\n",
                stats.raw_topological /
                    static_cast<double>(paths.size()),
                secs);
    // Per-instance gauges (the extractor's own timing.prune.* gauges are
    // last-write-wins across the bits loop; these keep both sizes).
    const std::string prefix = util::strfmt("sec52.adder%d.", bits);
    tel.gauge_set(prefix + "raw_topological", stats.raw_topological);
    tel.gauge_set(prefix + "final_paths",
                  static_cast<double>(paths.size()));
    tel.gauge_set(prefix + "reduction",
                  stats.raw_topological /
                      static_cast<double>(paths.size()));
    tel.gauge_set(prefix + "extract_secs", secs);
  }

  // Ablation: contribution of each §5.2 technique.
  util::Table ab({"regularity", "precedence", "dominance", "final paths"});
  const bool flags[4][3] = {
      {true, false, false}, {true, true, false}, {true, false, true},
      {true, true, true}};
  for (const auto& f : flags) {
    timing::PruneOptions opt;
    opt.regularity = f[0];
    opt.precedence = f[1];
    opt.dominance = f[2];
    timing::PathStats stats;
    const auto paths = extractor.extract(opt, &stats);
    ab.add_row({f[0] ? "on" : "off", f[1] ? "on" : "off",
                f[2] ? "on" : "off", util::strfmt("%zu", paths.size())});
  }
  std::printf("%s", ab.render(util::strfmt(
      "Pruning ablation (%d-bit adder)", bits)).c_str());
  }
  bench::paper_note(
      "§5.2: exhaustive analysis revealed over 32,000 paths; the pruning "
      "techniques reduced the problem to 120 paths — a factor of over 250. "
      "Reproduction target: the same orders-of-magnitude reduction.");
  if (!metrics_out.empty() && !tel.write_metrics(metrics_out)) {
    std::fprintf(stderr, "cannot write metrics to %s\n", metrics_out.c_str());
    return 1;
  }
  return 0;
}

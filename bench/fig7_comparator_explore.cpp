// Figure 7: topology exploration on a 32-bit two-phase dynamic (D1-D2)
// comparator. The paper compares the original (Xorsum2/Nor4) against two
// alternative topologies and a SMART resize of the original topology, at
// identical delay/precharge: resizing gives area 0.90 / clock 0.68; the
// Xorsum1/Nor8 alternative area 0.99 / clock 0.83; Xorsum4/Nor4 area 1.11
// / clock 0.755 — the original topology wins, resizing still saves 31%+
// clock without sacrificing performance.

#include "common.h"

using namespace smart;

int main() {
  core::MacroSpec spec;
  spec.type = "comparator";
  spec.n = 32;
  spec.load_ff = 12.0;

  // The "original" design: the paper's production topology, hand-sized.
  const auto original = bench::generate("comparator", "xorsum2_nor4", spec);
  core::BaselineSizer baseline(bench::tech());
  const auto orig_sizing = baseline.size(original);
  core::Sizer sizer(bench::tech(), bench::library());
  const auto orig = sizer.measure(original, orig_sizing);
  const auto orig_stats = original.device_stats(orig_sizing);

  util::Table table({"design", "Delay", "Pre", "Area", "Clock", "status"});
  table.add_row({"original: Xorsum2/Nor4 (hand)", "1.00", "1.00", "1.00",
                 "1.00", "reference"});

  // SMART runs optimize clock power at iso delay/precharge — the metric
  // the paper reports alongside area for this block.
  auto explore = [&](const char* label, const char* topo) {
    const auto nl = bench::generate("comparator", topo, spec);
    core::IsoDelayOptions opt;
    opt.sizer.cost = core::CostMetric::kPower;
    // Match the original's performance, not each topology's own baseline.
    core::SizerOptions sopt = opt.sizer;
    sopt.delay_spec_ps = orig.measured_delay_ps;
    sopt.precharge_spec_ps = orig.measured_precharge_ps;  // Pre = 1.00
    sopt.input_cap_limits_ff =
        sizer.input_caps(original, orig_sizing);  // same pin budget
    const auto r = sizer.size(nl, sopt);
    if (!r.ok || r.message != "converged") {
      table.add_row({label, "-", "-", "-", "-",
                     r.ok ? r.message : "failed"});
      return;
    }
    table.add_row(
        {label, bench::num(r.measured_delay_ps / orig.measured_delay_ps),
         bench::num(r.measured_precharge_ps /
                    std::max(orig.measured_precharge_ps, 1e-9)),
         bench::num(r.total_width_um / orig_stats.total_width),
         bench::num(r.clock_width_um / orig_stats.clock_gate_width),
         "converged"});
  };

  explore("SMART resize: same topology", "xorsum2_nor4");
  explore("SMART explore: Xorsum1/Nor8", "xorsum1_nor8");
  explore("SMART explore: Xorsum4/Nor4", "xorsum4_nor4");

  std::printf("%s", table.render(
      "Figure 7 - 32-bit domino comparator topology exploration "
      "(normalized to the original hand design; iso delay & precharge)")
      .c_str());
  bench::paper_note(
      "Fig 7: resize of the original topology -> area 0.90 / clock 0.68; "
      "Xorsum1+Nor8 -> area 0.99 / clock 0.83; Xorsum4+Nor4 -> area 1.11 / "
      "clock 0.755. Reproduction target: the original topology remains "
      "best, resizing alone cuts clock load ~31% at unchanged timing.");
  return 0;
}

// Table 1: average transistor-width savings (and clock-load savings for
// domino topologies) per mux topology, over multiple instances each.
// Paper values: strongly-mutexed pass 15%, 2-input encoded 25%, tri-state
// 16%, un-split domino 45%/39%, split domino 42%/28%.

#include "common.h"

using namespace smart;

namespace {

struct Instance {
  int n;
  int bits;
  double load;
};

struct TopoRow {
  const char* paper_name;
  const char* topo;
  std::vector<Instance> instances;
  bool domino;
};

}  // namespace

int main(int argc, char** argv) {
  bench::MetricsExport metrics(argc, argv);
  const std::vector<TopoRow> rows = {
      {"Strongly Mutex Passgate", "strong_pass",
       {{4, 8, 12.0}, {4, 16, 20.0}, {8, 8, 12.0}, {6, 8, 16.0}},
       false},
      {"2-Input Passgate Mux w/ encoded select", "encoded2",
       {{2, 8, 12.0}, {2, 16, 20.0}, {2, 32, 12.0}},
       false},
      {"Tri-state Mux", "tristate",
       {{4, 8, 40.0}, {4, 8, 80.0}, {8, 8, 60.0}},
       false},
      {"Un-split Domino", "domino_unsplit",
       {{4, 8, 12.0}, {8, 8, 12.0}, {8, 16, 16.0}},
       true},
      {"Split Domino", "domino_split",
       {{8, 8, 12.0}, {16, 8, 12.0}, {16, 16, 16.0}},
       true},
  };

  util::Table table({"Topology", "Xtor Width Savings", "Clock Load Savings",
                     "instances"});
  for (const auto& row : rows) {
    double width_sum = 0.0, clock_sum = 0.0;
    int ok = 0;
    for (const auto& inst : row.instances) {
      core::MacroSpec spec;
      spec.type = "mux";
      spec.n = inst.n;
      spec.params["bits"] = inst.bits;
      spec.load_ff = inst.load;
      const auto nl = bench::generate("mux", row.topo, spec);
      core::IsoDelayOptions opt;
      // Clock power drives the domino topology choice (paper §4); domino
      // instances are therefore optimized for power, static ones for width.
      if (row.domino) opt.sizer.cost = core::CostMetric::kPower;
      const auto cmp = bench::iso(nl, opt);
      if (!cmp.ok) continue;
      ++ok;
      width_sum += cmp.width_saving();
      clock_sum += cmp.clock_saving();
    }
    if (ok == 0) {
      table.add_row({row.paper_name, "n/a", "n/a", "0"});
      continue;
    }
    table.add_row({row.paper_name, bench::pct(width_sum / ok),
                   row.domino ? bench::pct(clock_sum / ok) : "n/a",
                   util::strfmt("%d", ok)});
  }
  std::printf("%s", table.render(
      "Table 1 - Mux topologies: average savings vs hand-sized original "
      "(iso-performance)").c_str());
  bench::paper_note(
      "Table 1: strongly-mutexed 15%, encoded-select 25%, tri-state 16%, "
      "un-split domino 45% width / 39% clock, split domino 42% / 28%. "
      "Reproduction target: all positive, domino largest, domino rows also "
      "save clock load.");
  return 0;
}

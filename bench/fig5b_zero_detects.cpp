// Figure 5(b): normalized total transistor width, original vs SMART, for
// the paper's zero-detect instances (6, 8, 8, 16, 16, 22, 32, 63 bit).

#include "common.h"

using namespace smart;

int main() {
  struct Row {
    const char* name;
    int bits;
    double load;
    int arity;
  };
  // The duplicated widths in the paper are distinct design instances; we
  // vary loading and tree arity the way different instantiation sites do.
  const std::vector<Row> rows = {
      {"6bit", 6, 12.0, 4},  {"8bit", 8, 12.0, 4},  {"8bit", 8, 30.0, 2},
      {"16bit", 16, 12.0, 4}, {"16bit", 16, 30.0, 2}, {"22bit", 22, 12.0, 4},
      {"32bit", 32, 12.0, 4}, {"63bit", 63, 12.0, 4},
  };

  util::Table table({"circuit", "original", "SMART", "width saving",
                     "delay orig (ps)", "delay SMART (ps)"});
  for (const auto& row : rows) {
    core::MacroSpec spec;
    spec.type = "zero_detect";
    spec.n = row.bits;
    spec.load_ff = row.load;
    spec.params["arity"] = row.arity;
    const auto nl = bench::generate("zero_detect", "static_tree", spec);
    const auto cmp = bench::iso(nl);
    if (!cmp.ok) {
      table.add_row({row.name, "1.00", "n/a", cmp.smart.message, "", ""});
      continue;
    }
    table.add_row({row.name, "1.00",
                   bench::num(cmp.smart.total_width_um /
                              cmp.baseline.total_width_um),
                   bench::pct(cmp.width_saving()),
                   bench::num(cmp.baseline.measured_delay_ps, 1),
                   bench::num(cmp.smart.measured_delay_ps, 1)});
  }
  std::printf("%s", table.render(
      "Figure 5(b) - Zero detects: normalized total transistor width "
      "(original = 1.0), iso-delay").c_str());
  bench::paper_note(
      "Fig 5(b) shows SMART bars around 0.5-0.9 of the original across "
      "6..63-bit zero-detects.");
  return 0;
}

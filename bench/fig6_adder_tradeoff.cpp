// Figure 6: area-delay trade-off curve for the 64-bit dual-rail domino
// carry-lookahead adder. The paper's curve spans normalized delay 0.9-1.3
// with normalized area (total transistor width) falling 1.27 -> 1.0.

#include "common.h"

#include "core/advisor.h"

using namespace smart;

int main(int argc, char** argv) {
  bench::MetricsExport metrics(argc, argv);
  core::MacroSpec spec;
  spec.type = "adder";
  spec.n = 64;
  spec.load_ff = 12.0;
  const auto nl = bench::generate("adder", "domino_cla", spec);

  // Normalized delay 1.0 is the design point. The paper's adder design
  // point sits in the moderate region of its trade-off (its whole 0.9-1.3
  // sweep spans only ~27% of area), not at the minimum-delay wall; our
  // hand-rule baseline is more aggressive, so we anchor the normalized
  // axis at 1.25x the baseline delay to sample the comparable regime and
  // note the wall separately.
  const auto anchor = bench::iso(nl);
  if (!anchor.ok) {
    std::printf("Figure 6: anchor sizing failed (%s)\n",
                anchor.smart.message.c_str());
    return 1;
  }
  const double d1 = anchor.baseline.measured_delay_ps * 1.25;

  core::DesignAdvisor advisor(bench::database(), bench::tech(),
                              bench::library());
  core::SizerOptions base;
  base.precharge_spec_ps =
      std::max(anchor.baseline.measured_precharge_ps, d1) * 1.2;
  base.slope_budget_ps = 240.0;
  const std::vector<double> rel = {0.90, 0.95, 1.00, 1.10, 1.20, 1.30};
  std::vector<double> specs;
  for (double r : rel) specs.push_back(r * d1);
  const auto curve = advisor.tradeoff_curve(nl, specs, base);

  // Normalize area to the most relaxed feasible point (the paper's 1.0).
  double area_ref = 0.0;
  for (const auto& p : curve)
    if (p.feasible) area_ref = p.total_width_um;
  util::Table table({"normalized delay", "measured delay (ps)",
                     "normalized area", "total width (um)", "feasible"});
  for (size_t i = 0; i < curve.size(); ++i) {
    const auto& p = curve[i];
    table.add_row({bench::num(rel[i]),
                   p.feasible ? bench::num(p.measured_delay_ps, 1) : "-",
                   p.feasible && area_ref > 0
                       ? bench::num(p.total_width_um / area_ref, 3)
                       : "-",
                   p.feasible ? bench::num(p.total_width_um, 1) : "-",
                   p.feasible ? "yes" : "no"});
  }
  std::printf("%s", table.render(
      "Figure 6 - 64-bit dual-rail domino CLA adder: area-delay curve "
      "(area normalized to the most relaxed point)").c_str());
  bench::paper_note(
      "Fig 6: normalized area falls ~1.27 -> 1.0 as normalized delay "
      "relaxes 0.9 -> 1.3; reproduction target is the same monotone convex "
      "shape with a ~1.2-1.4x area premium at the fast end.");
  return 0;
}

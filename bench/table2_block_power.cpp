// Table 2: post-layout power savings from applying SMART to the macros of
// four functional blocks of a high-performance microprocessor stepping:
// instruction alignment (41%), two execution bypass blocks (22%, 19%) and
// an instruction fetch block (7%). The savings track each block's datapath
// macro content; our synthetic blocks (see DESIGN.md substitutions) mix
// macro instances and random control logic to decreasing macro shares.

#include "common.h"

#include "blocks/block.h"

using namespace smart;

namespace {

blocks::BlockSpec block1() {
  // Instruction alignment: shifter-heavy, dominated by wide domino muxes.
  blocks::BlockSpec spec;
  spec.name = "Block1 (instruction align)";
  spec.seed = 11;
  spec.filler_devices = 120;
  for (int i = 0; i < 4; ++i) {
    blocks::MacroRequest req;
    req.type = "mux";
    req.topology = "domino_unsplit";
    req.spec.type = "mux";
    req.spec.n = 8;
    req.spec.params["bits"] = 8;
    spec.macros.push_back(req);
  }
  return spec;
}

blocks::BlockSpec block2() {
  // Execution bypass: pass-gate muxes plus a comparator, moderate control.
  blocks::BlockSpec spec;
  spec.name = "Block2 (exe bypass)";
  spec.seed = 22;
  spec.filler_devices = 700;
  for (int i = 0; i < 2; ++i) {
    blocks::MacroRequest req;
    req.type = "mux";
    req.topology = "domino_unsplit";
    req.spec.type = "mux";
    req.spec.n = 8;
    req.spec.params["bits"] = 8;
    spec.macros.push_back(req);
  }
  blocks::MacroRequest pass;
  pass.type = "mux";
  pass.topology = "strong_pass";
  pass.spec.type = "mux";
  pass.spec.n = 4;
  pass.spec.params["bits"] = 16;
  spec.macros.push_back(pass);
  blocks::MacroRequest cmp;
  cmp.type = "comparator";
  cmp.topology = "xorsum2_nor4";
  cmp.spec.type = "comparator";
  cmp.spec.n = 32;
  spec.macros.push_back(cmp);
  return spec;
}

blocks::BlockSpec block3() {
  // Second bypass block: similar content, more control logic.
  blocks::BlockSpec spec;
  spec.name = "Block3 (exe bypass)";
  spec.seed = 33;
  spec.filler_devices = 900;
  blocks::MacroRequest dom;
  dom.type = "mux";
  dom.topology = "domino_unsplit";
  dom.spec.type = "mux";
  dom.spec.n = 8;
  dom.spec.params["bits"] = 8;
  spec.macros.push_back(dom);
  blocks::MacroRequest pass;
  pass.type = "mux";
  pass.topology = "strong_pass";
  pass.spec.type = "mux";
  pass.spec.n = 4;
  pass.spec.params["bits"] = 16;
  spec.macros.push_back(pass);
  blocks::MacroRequest inc;
  inc.type = "incrementor";
  inc.topology = "ks_prefix";
  inc.spec.type = "incrementor";
  inc.spec.n = 13;
  spec.macros.push_back(inc);
  return spec;
}

blocks::BlockSpec block4() {
  // Instruction fetch: almost all random control logic, one small macro.
  blocks::BlockSpec spec;
  spec.name = "Block4 (ifetch)";
  spec.seed = 44;
  spec.filler_devices = 1500;
  blocks::MacroRequest dec;
  dec.type = "decoder";
  dec.topology = "predecode";
  dec.spec.type = "decoder";
  dec.spec.n = 4;
  spec.macros.push_back(dec);
  blocks::MacroRequest zd;
  zd.type = "zero_detect";
  zd.topology = "static_tree";
  zd.spec.type = "zero_detect";
  zd.spec.n = 16;
  spec.macros.push_back(zd);
  return spec;
}

}  // namespace

int main() {
  util::Table table({"Functional Block", "Power savings with SMART",
                     "macro power share", "devices", "macros converged"});
  for (const auto& spec : {block1(), block2(), block3(), block4()}) {
    const auto block = blocks::build_block(spec, bench::database());
    core::IsoDelayOptions opt;
    opt.sizer.cost = core::CostMetric::kPower;
    const auto ex = blocks::run_block_experiment(block, bench::tech(),
                                                 bench::library(), opt);
    table.add_row({spec.name, bench::pct(ex.power_saving()),
                   bench::pct(ex.before.macro_power_mw /
                              ex.before.total_power_mw),
                   util::strfmt("%d", ex.before.devices),
                   util::strfmt("%d/%d", ex.macros_converged,
                                ex.macros_total)});
  }
  std::printf("%s", table.render(
      "Table 2 - Power reduction from applying SMART to the datapath "
      "macros of four functional blocks (control logic untouched, no "
      "timing penalty)").c_str());
  bench::paper_note(
      "Table 2: Block1 41%, Block2 22%, Block3 19%, Block4 7%. "
      "Reproduction target: the same monotone ordering, driven by each "
      "block's macro power share.");
  return 0;
}

// Capstone scalability run: a realistic execution-unit bypass slice
// composed from database macros at the transistor level —
//
//   operand mux (2:1 x 32, encoded select)
//   -> 32-bit static CLA adder
//   -> zero-detect flag on the sum
//
// sized as ONE unit so the optimizer trades width across all macro
// boundaries, then verified (timing, function, corners). The paper sizes
// macros one at a time; composing them is the natural next step its §2
// editing discussion points at, and it exercises every subsystem of this
// reproduction in a single flow.

#include "common.h"

#include <ctime>
#include <map>

#include "core/corners.h"
#include "netlist/compose.h"
#include "refsim/critical_path.h"
#include "refsim/logic_sim.h"
#include "timing/paths.h"

using namespace smart;
using util::strfmt;

namespace {

netlist::Netlist build(int bits) {
  const auto& db = bench::database();
  core::MacroSpec mux_spec;
  mux_spec.type = "mux";
  mux_spec.n = 2;
  mux_spec.params["bits"] = bits;
  const auto mux = db.find("mux", "encoded2")->generate(mux_spec);
  core::MacroSpec add_spec;
  add_spec.type = "adder";
  add_spec.n = bits;
  const auto adder = db.find("adder", "static_cla")->generate(add_spec);
  core::MacroSpec zd_spec;
  zd_spec.type = "zero_detect";
  zd_spec.n = bits;
  const auto zd = db.find("zero_detect", "static_tree")->generate(zd_spec);

  netlist::Netlist top(strfmt("bypass%d", bits));
  std::map<std::string, netlist::NetId> mux_bind;
  for (int b = 0; b < bits; ++b)
    for (int i = 0; i < 2; ++i) {
      const auto d = top.add_net(strfmt("d%d_%d", b, i));
      top.add_input(d);
      mux_bind[strfmt("d%d_%d", b, i)] = d;
    }
  const auto sel = top.add_net("sel");
  top.add_input(sel);
  mux_bind["s0"] = sel;
  const auto mmap = netlist::instantiate(top, mux, "mux", mux_bind);

  std::map<std::string, netlist::NetId> add_bind;
  for (int b = 0; b < bits; ++b) {
    // Mux output is operand A; operand B and cin come from outside.
    add_bind[strfmt("a%d", b)] =
        mmap.nets.at(mux.find_net(strfmt("o%d", b)));
    const auto bb = top.add_net(strfmt("b%d", b));
    top.add_input(bb);
    add_bind[strfmt("b%d", b)] = bb;
  }
  const auto cin = top.add_net("cin");
  top.add_input(cin);
  add_bind["cin"] = cin;
  const auto amap = netlist::instantiate(top, adder, "add", add_bind);

  std::map<std::string, netlist::NetId> zd_bind;
  for (int b = 0; b < bits; ++b)
    zd_bind[strfmt("in%d", b)] =
        amap.nets.at(adder.find_net(strfmt("s%d", b)));
  netlist::instantiate(top, zd, "zd", zd_bind);

  for (int b = 0; b < bits; ++b)
    top.add_output(top.find_net(strfmt("add/s%d", b)), 12.0);
  top.add_output(top.find_net("add/cout"), 12.0);
  top.add_output(top.find_net("zd/zero"), 8.0);
  top.finalize();
  return top;
}

}  // namespace

int main() {
  const int bits = 32;
  const auto t0 = clock();
  const auto slice = build(bits);
  const auto stats = slice.device_stats(slice.min_sizing());
  std::printf("composed 32-bit bypass slice: %zu nets, %zu components, "
              "%d devices, %zu size labels\n",
              slice.net_count(), slice.comp_count(), stats.device_count,
              slice.label_count());

  timing::PathExtractor extractor(slice);
  timing::PathStats pstats;
  extractor.extract({}, &pstats);
  std::printf("paths: %.0f raw -> %zu constraints (%.0fx reduction)\n",
              pstats.raw_topological, pstats.after_dominance,
              pstats.raw_topological /
                  static_cast<double>(pstats.after_dominance));

  const auto cmp = bench::iso(slice);
  if (!cmp.ok) {
    std::printf("sizing failed: %s\n", cmp.smart.message.c_str());
    return 1;
  }
  const double secs = double(clock() - t0) / CLOCKS_PER_SEC;
  util::Table table({"metric", "hand baseline", "SMART"});
  table.add_row({"delay (ps)", bench::num(cmp.baseline.measured_delay_ps, 1),
                 bench::num(cmp.smart.measured_delay_ps, 1)});
  table.add_row({"total width (um)",
                 bench::num(cmp.baseline.total_width_um, 1),
                 bench::num(cmp.smart.total_width_um, 1)});
  table.add_row({"power (mW)", bench::num(cmp.baseline_power.total_mw, 3),
                 bench::num(cmp.smart_power.total_mw, 3)});
  std::printf("%s", table.render(
      "Cross-macro sizing at iso-delay (single GP over the whole slice)")
      .c_str());
  std::printf("savings: %.0f%% width, %.0f%% power; flow time %.1fs\n",
              100 * cmp.width_saving(), 100 * cmp.power_saving(), secs);

  // The critical path crosses all three macros.
  const auto path = refsim::critical_path(slice, cmp.smart.sizing,
                                          bench::tech());
  bool via_mux = false, via_add = false, via_zd = false;
  for (const auto& s : path.steps) {
    const auto& name = slice.comp(s.arc.comp).name;
    via_mux |= name.rfind("mux/", 0) == 0;
    via_add |= name.rfind("add/", 0) == 0;
    via_zd |= name.rfind("zd/", 0) == 0;
  }
  std::printf("critical path: %zu stages, crosses mux=%s adder=%s "
              "zero-detect=%s\n",
              path.steps.size(), via_mux ? "yes" : "no",
              via_add ? "yes" : "no", via_zd ? "yes" : "no");

  // Function survives sizing (spot vectors) and corners sign off.
  refsim::LogicSim sim(slice);
  int func_fails = 0;
  for (uint64_t a : {0ull, 0xdeadbeefull, 0xffffffffull}) {
    for (uint64_t b : {1ull, 0x12345678ull}) {
      std::map<netlist::NetId, bool> in;
      in[slice.find_net("sel")] = false;
      in[slice.find_net("cin")] = false;
      for (int i = 0; i < bits; ++i) {
        in[slice.find_net(strfmt("d%d_0", i))] = (a >> i) & 1;
        in[slice.find_net(strfmt("d%d_1", i))] = !((a >> i) & 1);
        in[slice.find_net(strfmt("b%d", i))] = (b >> i) & 1;
      }
      const auto st = sim.evaluate(in);
      const uint64_t sum = (a + b) & 0xffffffffull;
      for (int i = 0; i < bits; ++i)
        if (st[static_cast<size_t>(slice.find_net(strfmt("add/s%d", i)))] !=
            refsim::from_bool((sum >> i) & 1))
          ++func_fails;
    }
  }
  const auto sweep =
      core::measure_corners(slice, cmp.smart.sizing, bench::tech());
  std::printf("function after sizing: %s; corners typ/fast/slow = "
              "%.1f / %.1f / %.1f ps\n",
              func_fails == 0 ? "correct" : "BROKEN",
              sweep.typical.delay_ps, sweep.fast.delay_ps,
              sweep.slow.delay_ps);
  bench::paper_note(
      "Beyond the paper's per-macro scope: the composed slice is sized as "
      "one geometric program, the optimizer balances width across macro "
      "boundaries, and the drop-in protocol (timing / pin caps / edges) "
      "holds for the whole unit.");
  return func_fails == 0 ? 0 : 1;
}

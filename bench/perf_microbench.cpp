// Google-benchmark microbenchmarks of the tool itself: GP solve, path
// extraction, reference STA, constraint generation and functional
// simulation throughput. The paper's pitch is designer productivity —
// "exploration at a different design constraint is very easy" — which
// rests on the flow being fast; these benches track that.
//
// Pass --metrics-out=FILE to additionally export every benchmark's
// per-iteration real time (`bench.<name>.real_ns`), CPU time
// (`bench.<name>.cpu_ns`) and the process peak RSS
// (`bench.peak_rss_kb`) through the obs metrics registry as gauges,
// BENCH_*.json style, so the perf trajectory — including memory — is
// machine-readable across PRs (`bench_diff --record`).

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <string>
#include <utility>
#include <vector>

#include "core/constraints.h"
#include "core/sizer.h"
#include "gp/solver.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "obs/obs.h"
#include "prof/prof.h"
#include "prof/resource.h"
#include "refsim/logic_sim.h"
#include "refsim/rc_timer.h"
#include "timing/paths.h"
#include "util/fault.h"

namespace {

using namespace smart;

netlist::Netlist make_macro(const char* type, const char* topo, int n,
                            int bits = -1) {
  core::MacroSpec spec;
  spec.type = type;
  spec.n = n;
  if (bits > 0) spec.params["bits"] = bits;
  return macros::builtin_database().find(type, topo)->generate(spec);
}

void BM_GpSolveMux(benchmark::State& state) {
  const auto nl = make_macro("mux", "domino_unsplit",
                             static_cast<int>(state.range(0)), 8);
  core::ConstraintOptions opt;
  opt.delay_spec_ps = 150.0;
  opt.precharge_spec_ps = 200.0;
  const auto gen = core::generate_problem(nl, opt, models::default_library(),
                                          tech::default_tech());
  for (auto _ : state) {
    gp::GpSolver solver;
    benchmark::DoNotOptimize(solver.solve(*gen.problem));
  }
}
BENCHMARK(BM_GpSolveMux)->Arg(4)->Arg(8);

void BM_PathExtraction(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla",
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    timing::PathExtractor ex(nl);
    timing::PathStats stats;
    benchmark::DoNotOptimize(ex.extract({}, &stats));
  }
}
BENCHMARK(BM_PathExtraction)->Arg(16)->Arg(32)->Arg(64);

void BM_ReferenceSta(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla",
                             static_cast<int>(state.range(0)));
  const netlist::Sizing sizing(nl.label_count(), 2.0);
  const refsim::RcTimer timer(tech::default_tech());
  for (auto _ : state) {
    benchmark::DoNotOptimize(timer.analyze(nl, sizing));
  }
}
BENCHMARK(BM_ReferenceSta)->Arg(16)->Arg(64);

void BM_ConstraintGeneration(benchmark::State& state) {
  const auto nl = make_macro("incrementor", "ks_prefix",
                             static_cast<int>(state.range(0)));
  core::ConstraintOptions opt;
  opt.delay_spec_ps = 400.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_problem(
        nl, opt, models::default_library(), tech::default_tech()));
  }
}
BENCHMARK(BM_ConstraintGeneration)->Arg(13)->Arg(48);

void BM_LogicSim(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla", 32);
  const refsim::LogicSim sim(nl);
  std::map<netlist::NetId, bool> inputs;
  for (const auto& p : nl.inputs())
    inputs[p.net] = (p.net % 3) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.evaluate(inputs));
  }
}
BENCHMARK(BM_LogicSim);

void BM_ModelCalibration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::calibrate(tech::default_tech()));
  }
}
BENCHMARK(BM_ModelCalibration);

void BM_FullSizingLoop(benchmark::State& state) {
  const auto nl = make_macro("zero_detect", "static_tree", 32);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 180.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(nl, opt));
  }
}
BENCHMARK(BM_FullSizingLoop);

// The fault-injection hooks stay compiled into release builds; their
// disarmed fast path must stay at one relaxed atomic load per site.
void BM_FaultHookDisarmed(benchmark::State& state) {
  util::FaultInjector::instance().disarm();
  double v = 1.0;
  for (auto _ : state) {
    v = util::fault_corrupt(util::FaultClass::kModelCoeffPerturb,
                            "model.coeff.a_rc", v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FaultHookDisarmed);

// Worst-case cost of a sizing request that walks the whole degradation
// ladder (GP poisoned -> relaxed retry -> baseline fallback). A sizing
// service pays this per poisoned instance, so it must stay bounded.
void BM_SizerDegradationLadder(benchmark::State& state) {
  const auto nl = make_macro("zero_detect", "static_tree", 32);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 180.0;
  util::FaultInjector::instance().arm(util::FaultClass::kModelNonFinite,
                                      "model.coeff");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(nl, opt));
  }
  util::FaultInjector::instance().disarm();
}
BENCHMARK(BM_SizerDegradationLadder);

// The telemetry hooks stay compiled into release builds like the fault
// hooks; their disabled fast path must stay at one relaxed atomic load.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Telemetry::instance().enable(false);
  for (auto _ : state) {
    obs::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsCounterDisabled(benchmark::State& state) {
  obs::Telemetry::instance().enable(false);
  for (auto _ : state) {
    obs::Telemetry::instance().counter_add("bench.noop");
  }
}
BENCHMARK(BM_ObsCounterDisabled);

// The SMART-Prof span hooks, before any profiler ever starts: every span
// site pays one extra relaxed atomic load (nullptr hook check) on top of
// the telemetry check. This bench MUST run before the BM_ProfSpanHook*
// benches below — Profiler::start() installs the hooks process-wide and
// they cannot be uninstalled. Google-benchmark runs in registration
// order, and registration order here is file order.
void BM_ProfSpanNoHooks(benchmark::State& state) {
  obs::Telemetry::instance().enable(false);
  if (obs::span_hooks() != nullptr) {
    state.SkipWithError("span hooks already installed");
    return;
  }
  for (auto _ : state) {
    obs::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ProfSpanNoHooks);

// Resource-accounting scope with telemetry disabled: one relaxed atomic
// load, same budget as the obs hooks it rides along with.
void BM_ProfResourceScopeDisabled(benchmark::State& state) {
  obs::Telemetry::instance().enable(false);
  for (auto _ : state) {
    prof::ResourceScope scope("bench.noop");
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_ProfResourceScopeDisabled);

// Full sizing loop with tracing armed: what a traced production run pays
// over the disabled-path BM_FullSizingLoop number.
void BM_FullSizingLoopTraced(benchmark::State& state) {
  const auto nl = make_macro("zero_detect", "static_tree", 32);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 180.0;
  auto& tel = obs::Telemetry::instance();
  tel.enable(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(nl, opt));
    // Keep the buffers bounded: a long bench run would otherwise grow the
    // span buffer without limit and measure allocator behavior instead.
    tel.reset();
  }
  tel.enable(false);
  tel.reset();
}
BENCHMARK(BM_FullSizingLoopTraced);

// Span cost with the SMART-Prof hooks installed but no collection running:
// the hook maintains the interned span-path stack, so each span pays one
// path-table lookup. Profiler::start() installs the hooks process-wide and
// they cannot be uninstalled, so this bench (and anything registered after
// it) sees hooked spans — it must stay LAST in this file.
void BM_ProfSpanHooksIdle(benchmark::State& state) {
  obs::Telemetry::instance().enable(false);
  auto& profiler = prof::Profiler::instance();
  if (obs::span_hooks() == nullptr) {
    prof::ProfilerOptions popt;
    popt.hz = 97.0;
    if (profiler.start(popt).ok()) profiler.stop();
  }
  for (auto _ : state) {
    obs::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
  profiler.reset();
}
BENCHMARK(BM_ProfSpanHooksIdle);

/// Console reporter that also captures each benchmark's adjusted real and
/// CPU time so the run can be exported through the obs metrics registry.
class MetricsCapture : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
  };

  // Plain output: a hand-constructed ConsoleReporter bypasses the library's
  // isatty-based color detection, and ANSI codes in piped output would
  // corrupt downstream parsing.
  MetricsCapture() : benchmark::ConsoleReporter(OO_Tabular) {}

  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (run.error_occurred) continue;
      results_.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                          run.GetAdjustedCPUTime()});
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Captured>& results() const { return results_; }

 private:
  std::vector<Captured> results_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --metrics-out before google-benchmark sees the arguments.
  std::string metrics_out;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data()))
    return 1;

  MetricsCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!metrics_out.empty()) {
    // Telemetry is enabled only after the runs so the export reflects the
    // un-instrumented numbers.
    auto& tel = obs::Telemetry::instance();
    tel.enable(true);
    tel.reset();
    for (const auto& r : reporter.results()) {
      tel.gauge_set("bench." + r.name + ".real_ns", r.real_ns);
      tel.gauge_set("bench." + r.name + ".cpu_ns", r.cpu_ns);
    }
    // Memory trajectory: the process peak RSS after the full suite. Not a
    // per-bench number, but regressions (a leak, a bloated cache) move it.
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) == 0)
      tel.gauge_set("bench.peak_rss_kb", static_cast<double>(ru.ru_maxrss));
    if (!tel.write_metrics(metrics_out)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

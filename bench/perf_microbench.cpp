// Google-benchmark microbenchmarks of the tool itself: GP solve, path
// extraction, reference STA, constraint generation and functional
// simulation throughput. The paper's pitch is designer productivity —
// "exploration at a different design constraint is very easy" — which
// rests on the flow being fast; these benches track that.

#include <benchmark/benchmark.h>

#include "core/constraints.h"
#include "core/sizer.h"
#include "gp/solver.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "refsim/logic_sim.h"
#include "refsim/rc_timer.h"
#include "timing/paths.h"
#include "util/fault.h"

namespace {

using namespace smart;

netlist::Netlist make_macro(const char* type, const char* topo, int n,
                            int bits = -1) {
  core::MacroSpec spec;
  spec.type = type;
  spec.n = n;
  if (bits > 0) spec.params["bits"] = bits;
  return macros::builtin_database().find(type, topo)->generate(spec);
}

void BM_GpSolveMux(benchmark::State& state) {
  const auto nl = make_macro("mux", "domino_unsplit",
                             static_cast<int>(state.range(0)), 8);
  core::ConstraintOptions opt;
  opt.delay_spec_ps = 150.0;
  opt.precharge_spec_ps = 200.0;
  const auto gen = core::generate_problem(nl, opt, models::default_library(),
                                          tech::default_tech());
  for (auto _ : state) {
    gp::GpSolver solver;
    benchmark::DoNotOptimize(solver.solve(*gen.problem));
  }
}
BENCHMARK(BM_GpSolveMux)->Arg(4)->Arg(8);

void BM_PathExtraction(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla",
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    timing::PathExtractor ex(nl);
    timing::PathStats stats;
    benchmark::DoNotOptimize(ex.extract({}, &stats));
  }
}
BENCHMARK(BM_PathExtraction)->Arg(16)->Arg(32)->Arg(64);

void BM_ReferenceSta(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla",
                             static_cast<int>(state.range(0)));
  const netlist::Sizing sizing(nl.label_count(), 2.0);
  const refsim::RcTimer timer(tech::default_tech());
  for (auto _ : state) {
    benchmark::DoNotOptimize(timer.analyze(nl, sizing));
  }
}
BENCHMARK(BM_ReferenceSta)->Arg(16)->Arg(64);

void BM_ConstraintGeneration(benchmark::State& state) {
  const auto nl = make_macro("incrementor", "ks_prefix",
                             static_cast<int>(state.range(0)));
  core::ConstraintOptions opt;
  opt.delay_spec_ps = 400.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_problem(
        nl, opt, models::default_library(), tech::default_tech()));
  }
}
BENCHMARK(BM_ConstraintGeneration)->Arg(13)->Arg(48);

void BM_LogicSim(benchmark::State& state) {
  const auto nl = make_macro("adder", "domino_cla", 32);
  const refsim::LogicSim sim(nl);
  std::map<netlist::NetId, bool> inputs;
  for (const auto& p : nl.inputs())
    inputs[p.net] = (p.net % 3) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.evaluate(inputs));
  }
}
BENCHMARK(BM_LogicSim);

void BM_ModelCalibration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::calibrate(tech::default_tech()));
  }
}
BENCHMARK(BM_ModelCalibration);

void BM_FullSizingLoop(benchmark::State& state) {
  const auto nl = make_macro("zero_detect", "static_tree", 32);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 180.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(nl, opt));
  }
}
BENCHMARK(BM_FullSizingLoop);

// The fault-injection hooks stay compiled into release builds; their
// disarmed fast path must stay at one relaxed atomic load per site.
void BM_FaultHookDisarmed(benchmark::State& state) {
  util::FaultInjector::instance().disarm();
  double v = 1.0;
  for (auto _ : state) {
    v = util::fault_corrupt(util::FaultClass::kModelCoeffPerturb,
                            "model.coeff.a_rc", v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FaultHookDisarmed);

// Worst-case cost of a sizing request that walks the whole degradation
// ladder (GP poisoned -> relaxed retry -> baseline fallback). A sizing
// service pays this per poisoned instance, so it must stay bounded.
void BM_SizerDegradationLadder(benchmark::State& state) {
  const auto nl = make_macro("zero_detect", "static_tree", 32);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 180.0;
  util::FaultInjector::instance().arm(util::FaultClass::kModelNonFinite,
                                      "model.coeff");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(nl, opt));
  }
  util::FaultInjector::instance().disarm();
}
BENCHMARK(BM_SizerDegradationLadder);

}  // namespace

BENCHMARK_MAIN();

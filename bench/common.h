#pragma once

/// \file common.h
/// Shared scaffolding for the experiment harnesses in bench/. Each binary
/// regenerates one table or figure of the paper (see DESIGN.md §4) and
/// prints the same rows/series the paper reports, normalized the same way
/// (original design = 1.0). Absolute units are synthetic-technology ps/um;
/// the comparisons, ratios and crossovers are the reproduction targets.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "obs/obs.h"
#include "util/strfmt.h"
#include "util/table.h"

namespace smart::bench {

inline const tech::Tech& tech() { return tech::default_tech(); }
inline const models::ModelLibrary& library() {
  return models::default_library();
}
inline const core::MacroDatabase& database() {
  return macros::builtin_database();
}

/// Generates a macro by type/topology or aborts with a clear message.
inline netlist::Netlist generate(const std::string& type,
                                 const std::string& topo,
                                 const core::MacroSpec& spec) {
  const auto* entry = database().find(type, topo);
  SMART_CHECK(entry != nullptr, "unknown topology " + type + "/" + topo);
  return entry->generate(spec);
}

/// Runs the §6.1 iso-performance protocol on one macro.
inline core::IsoDelayComparison iso(const netlist::Netlist& nl,
                                    const core::IsoDelayOptions& opt = {}) {
  return core::run_iso_delay(nl, tech(), library(), opt);
}

inline std::string pct(double frac) {
  return util::strfmt("%.0f%%", 100.0 * frac);
}

inline std::string num(double v, int decimals = 2) {
  return util::strfmt("%.*f", decimals, v);
}

/// Prints a paper-reference line under a reproduced table.
inline void paper_note(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

/// Opt-in metrics export for the table/figure harnesses: construct at the
/// top of main. When the harness was invoked with `--metrics-out FILE` (or
/// `--metrics-out=FILE`), telemetry is enabled for the run and the whole
/// registry — spans recorded by the sizing pipeline become counters and
/// histograms — is written to FILE on destruction, the same flat metrics
/// JSON perf_microbench emits (BENCH_<name>.json convention, consumed by
/// tools/bench_diff). Without the flag the run stays un-instrumented.
class MetricsExport {
 public:
  MetricsExport(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--metrics-out=", 0) == 0) {
        path_ = arg.substr(14);
      } else if (arg == "--metrics-out" && i + 1 < argc) {
        path_ = argv[++i];
      }
    }
    if (!path_.empty()) {
      auto& tel = obs::Telemetry::instance();
      tel.reset();
      tel.enable(true);
    }
  }
  ~MetricsExport() {
    if (path_.empty()) return;
    auto& tel = obs::Telemetry::instance();
    if (!tel.write_metrics(path_))
      std::fprintf(stderr, "cannot write metrics to %s\n", path_.c_str());
    tel.enable(false);
  }

  MetricsExport(const MetricsExport&) = delete;
  MetricsExport& operator=(const MetricsExport&) = delete;

 private:
  std::string path_;
};

}  // namespace smart::bench

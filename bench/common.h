#pragma once

/// \file common.h
/// Shared scaffolding for the experiment harnesses in bench/. Each binary
/// regenerates one table or figure of the paper (see DESIGN.md §4) and
/// prints the same rows/series the paper reports, normalized the same way
/// (original design = 1.0). Absolute units are synthetic-technology ps/um;
/// the comparisons, ratios and crossovers are the reproduction targets.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "util/strfmt.h"
#include "util/table.h"

namespace smart::bench {

inline const tech::Tech& tech() { return tech::default_tech(); }
inline const models::ModelLibrary& library() {
  return models::default_library();
}
inline const core::MacroDatabase& database() {
  return macros::builtin_database();
}

/// Generates a macro by type/topology or aborts with a clear message.
inline netlist::Netlist generate(const std::string& type,
                                 const std::string& topo,
                                 const core::MacroSpec& spec) {
  const auto* entry = database().find(type, topo);
  SMART_CHECK(entry != nullptr, "unknown topology " + type + "/" + topo);
  return entry->generate(spec);
}

/// Runs the §6.1 iso-performance protocol on one macro.
inline core::IsoDelayComparison iso(const netlist::Netlist& nl,
                                    const core::IsoDelayOptions& opt = {}) {
  return core::run_iso_delay(nl, tech(), library(), opt);
}

inline std::string pct(double frac) {
  return util::strfmt("%.0f%%", 100.0 * frac);
}

inline std::string num(double v, int decimals = 2) {
  return util::strfmt("%.*f", decimals, v);
}

/// Prints a paper-reference line under a reproduced table.
inline void paper_note(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

}  // namespace smart::bench

// Topology selection map: which mux implementation the advisor recommends
// across the (fan-in, load) plane, for area and for power. This is the
// advisory value proposition in one table — the paper's §4 guidance
// ("tri-state … when the load to be driven is very large", split domino
// "better … when the size of the mux is large") should emerge from the
// optimizer rather than be hard-coded.

#include "common.h"

#include "core/advisor.h"

using namespace smart;

int main() {
  core::DesignAdvisor advisor(bench::database(), bench::tech(),
                              bench::library());
  const std::vector<int> fanins = {2, 4, 8, 16};
  const std::vector<double> loads = {8.0, 40.0, 160.0};

  // An aggressive site: 30% faster than the hand-sized pass-gate mux would
  // naturally run. Feasibility, not just cost, now differentiates the
  // topologies (the paper's selection guidance is about exactly these
  // pressured sites).
  for (const auto cost : {core::CostMetric::kTotalWidth,
                          core::CostMetric::kPower}) {
    util::Table table({"fan-in \\ load", "8 fF", "40 fF", "160 fF"});
    for (int n : fanins) {
      std::vector<std::string> row = {util::strfmt("%d:1", n)};
      for (double load : loads) {
        core::AdvisorRequest request;
        request.spec.type = "mux";
        request.spec.n = n;
        request.spec.params["bits"] = 8;
        request.spec.load_ff = load;
        request.cost = cost;
        // Derive the pressured spec from the first topology's baseline.
        const auto probe = advisor.advise(request);
        request.delay_spec_ps = probe.derived_delay_spec_ps * 0.70;
        const auto advice = advisor.advise(request);
        const auto* best = advice.best();
        row.push_back(best != nullptr && best->meets_spec ? best->topology
                                                          : "(none)");
      }
      table.add_row(row);
    }
    std::printf("%s", table.render(util::strfmt(
        "Mux topology recommended by the advisor (%s cost, 8-bit datapath, "
        "spec = 0.70x hand-design delay)",
        cost == core::CostMetric::kTotalWidth ? "area" : "power")).c_str());
    std::printf("\n");
  }
  bench::paper_note(
      "The paper's selection guidance emerges from optimization rather than "
      "rules: at relaxed specs the pass-gate mux wins everywhere (lightest "
      "structure); under the 30% speed-up pressure shown here the dynamic "
      "topologies take over — \"CPU designers heavily employ pass, dynamic "
      "logic in order to meet performance goals\" (§1) — and the "
      "partitioned domino replaces the un-split mux as fan-in grows, "
      "exactly the §4 Fig 2(f) recommendation. Cells marked (none) are "
      "infeasible for every topology at that spec.");
  return 0;
}

// Tests for SMART-Scope: GP solve diagnostics (binding set, dual
// estimates, convergence trace) and the report builder that maps binding
// constraints back to netlist paths (model vs reference-STA views, slack
// histogram, sensitivities) plus its text/JSON renderers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/sizer.h"
#include "gp/solver.h"
#include "helpers.h"
#include "refsim/critical_path.h"
#include "scope/scope.h"
#include "util/json.h"

namespace smart::scope {
namespace {

using posy::Monomial;
using posy::Posynomial;
using posy::VarTable;

// ---- solver diagnostics on a hand-built GP with a known KKT point ----

// min x1 + x2  s.t.  (x1*x2)^-1 <= 1, box [0.1, 10]^2.
// Optimum (1, 1), objective 2. In the log-domain formulation the solver
// works in, the KKT multiplier of the coupling constraint is 1/2: at
// y = (0, 0) the objective gradient is the softmax weights (1/2, 1/2) and
// the constraint gradient is (-1, -1) with u = -log lhs as the slack.
TEST(SolveDiagnosticsTest, TwoVariableKnownKktPoint) {
  VarTable vars;
  const auto x1 = vars.add("x1", 0.1, 10.0);
  const auto x2 = vars.add("x2", 0.1, 10.0);
  gp::GpProblem p(vars);
  p.set_objective(Posynomial::variable(x1) + Posynomial::variable(x2));
  p.add_constraint(
      Posynomial(Monomial::variable(x1, -1) * Monomial::variable(x2, -1)),
      "x1x2>=1");
  // A slack constraint that must NOT be reported binding: 0.2*x1 <= 1 sits
  // at lhs = 0.2 at the optimum.
  p.add_constraint(Posynomial(Monomial(0.2) * Monomial::variable(x1)),
                   "x1<=5");

  gp::SolverOptions opt;
  opt.tolerance = 1e-6;  // report-grade: active constraints to |slack|<=1e-6
  const auto r = gp::GpSolver(opt).solve(p);
  ASSERT_EQ(r.status, gp::SolveStatus::kOptimal) << r.message;
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);

  const auto& diag = r.diag;
  ASSERT_EQ(diag.constraints.size(), 2u);

  const auto& active = diag.constraints[0];
  EXPECT_EQ(active.tag, "x1x2>=1");
  EXPECT_TRUE(active.binding);
  EXPECT_LE(std::fabs(active.slack), 1e-6);
  // Log-barrier dual estimate converges to the KKT multiplier.
  EXPECT_NEAR(active.dual, 0.5, 0.05);

  const auto& inactive = diag.constraints[1];
  EXPECT_FALSE(inactive.binding);
  EXPECT_NEAR(inactive.lhs, 0.2, 1e-2);
  EXPECT_LT(inactive.dual, 1e-3);  // complementary slackness

  ASSERT_EQ(diag.binding_set.size(), 1u);
  EXPECT_EQ(diag.binding_set[0], 0u);

  // Convergence trace: at least one phase-II stage, gap within tolerance
  // at exit, and final_t consistent with gap = m_total / t.
  ASSERT_FALSE(diag.trace.empty());
  const auto& last = diag.trace.back();
  EXPECT_FALSE(last.phase1);
  EXPECT_TRUE(last.converged);
  EXPECT_GT(diag.final_t, 0.0);
  EXPECT_GT(diag.duality_gap, 0.0);
  EXPECT_LE(diag.duality_gap, 1e-6);
  const double m_total = 2.0 + 2.0 * 2.0;  // constraints + box walls
  EXPECT_NEAR(diag.duality_gap, m_total / diag.final_t,
              1e-9 * m_total / diag.final_t + 1e-12);
}

// Diagnostics must not perturb the solve: same problem, same point with
// and without anyone reading the diagnostics (they are always computed
// from the values finish() already evaluates).
TEST(SolveDiagnosticsTest, DiagnosticsAreFreeOfSideEffects) {
  VarTable vars;
  const auto x = vars.add("x", 0.5, 50.0);
  const auto y = vars.add("y", 0.5, 50.0);
  gp::GpProblem p(vars);
  p.set_objective(Posynomial::variable(x) + 2.0 * Posynomial::variable(y));
  p.add_constraint(
      Posynomial(Monomial::variable(x, -1) * Monomial::variable(y, -1)),
      "xy>=1");
  const auto a = gp::GpSolver().solve(p);
  const auto b = gp::GpSolver().solve(p);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.x[0], b.x[0]);
  EXPECT_EQ(a.x[1], b.x[1]);
  EXPECT_EQ(a.diag.constraints.size(), b.diag.constraints.size());
}

// ---- report builder over real macros ----

class ScopeReportTest : public ::testing::Test {
 protected:
  static netlist::Netlist make(const char* type, const char* topo, int n,
                               int bits) {
    core::MacroSpec spec;
    spec.type = type;
    spec.n = n;
    if (bits > 0) spec.params["bits"] = bits;
    const auto* entry = macros::builtin_database().find(type, topo);
    EXPECT_NE(entry, nullptr);
    return entry->generate(spec);
  }

  core::SizerResult size_with_snapshot(const netlist::Netlist& nl,
                                       double delay_ps,
                                       double precharge_ps = -1.0) const {
    core::Sizer sizer(tech_, lib_);
    core::SizerOptions opt;
    opt.delay_spec_ps = delay_ps;
    opt.precharge_spec_ps = precharge_ps;
    opt.keep_solve_snapshot = true;
    opt.gp.tolerance = 1e-6;
    return sizer.size(nl, opt);
  }

  const tech::Tech& tech_ = tech::default_tech();
  const models::ModelLibrary& lib_ = models::default_library();
};

TEST_F(ScopeReportTest, WorstPathAgreesWithReferenceCriticalPath) {
  const auto nl = make("mux", "encoded2", 2, 8);
  const auto result = size_with_snapshot(nl, 120.0);
  ASSERT_TRUE(result.ok) << result.message;
  ASSERT_NE(result.snapshot, nullptr);

  ScopeOptions opt;
  opt.top_k = 100;  // keep every path so the worst is definitely present
  const auto report = build_report(nl, result, tech_, opt);
  ASSERT_EQ(report.message, "ok");
  ASSERT_FALSE(report.paths.empty());
  EXPECT_EQ(report.macro, nl.name());
  EXPECT_EQ(report.solve_status, "optimal");

  // The worst evaluate-phase path of the report is the reference timer's
  // critical path: same endpoint, same arrival (the report replays the
  // same arcs through the same timer).
  const auto cp = refsim::critical_path(nl, result.sizing, tech_);
  ASSERT_FALSE(cp.steps.empty());
  const PathReport* worst_eval = nullptr;
  for (const auto& pr : report.paths) {
    if (pr.phase == "evaluate") {
      worst_eval = &pr;
      break;
    }
  }
  ASSERT_NE(worst_eval, nullptr);
  EXPECT_NE(worst_eval->endpoint.find(nl.net(cp.end).name),
            std::string::npos);
  EXPECT_NEAR(worst_eval->sta_arrival_ps, cp.arrival_ps,
              0.05 * cp.arrival_ps);

  // Paths are ranked worst STA slack first.
  for (size_t i = 1; i < report.paths.size(); ++i)
    EXPECT_LE(report.paths[i - 1].sta_slack_ps, report.paths[i].sta_slack_ps);

  // Per-stage breakdown sums to the replayed arrival.
  const auto& stages = worst_eval->stages;
  ASSERT_FALSE(stages.empty());
  double sum = 0.0;
  for (const auto& s : stages) sum += s.delay_ps;
  EXPECT_NEAR(sum, worst_eval->sta_arrival_ps, 1e-6);

  // Binding set: report-level cut is |slack| <= 1e-6, duals positive.
  EXPECT_FALSE(report.binding.empty());
  for (const auto& b : report.binding) {
    EXPECT_LE(std::fabs(b.slack), 1e-6) << b.tag;
    EXPECT_GT(b.dual, 0.0) << b.tag;
  }

  // Slack histogram covers every representative path, not just top-K.
  EXPECT_EQ(report.slack_hist.count, report.total_paths);
  size_t hist_total = 0;
  for (size_t c : report.slack_hist.bucket_counts) hist_total += c;
  EXPECT_EQ(hist_total, report.slack_hist.count);

  // Sensitivities: every free label appears, drivers sorted by |score|.
  EXPECT_FALSE(report.sensitivities.empty());
  for (const auto& ls : report.sensitivities) {
    EXPECT_FALSE(ls.label.empty());
    for (size_t d = 1; d < ls.drivers.size(); ++d)
      EXPECT_GE(std::fabs(ls.drivers[d - 1].score),
                std::fabs(ls.drivers[d].score));
  }

  // Respec + solver traces made it through.
  EXPECT_FALSE(report.respec.empty());
  EXPECT_FALSE(report.trace.empty());
  const bool any_accepted =
      std::any_of(report.respec.begin(), report.respec.end(),
                  [](const core::RespecIteration& it) { return it.accepted; });
  EXPECT_TRUE(any_accepted);
}

TEST_F(ScopeReportTest, DominoReportJsonRoundTrips) {
  const auto nl = make("mux", "domino_unsplit", 8, 8);
  const auto result = size_with_snapshot(nl, 150.0, 200.0);
  ASSERT_TRUE(result.ok) << result.message;

  const auto report = build_report(nl, result, tech_, {});
  ASSERT_EQ(report.message, "ok");

  const std::string json = render_json(report);
  util::JsonValue root;
  ASSERT_TRUE(util::json_parse(json, &root)) << json;

  EXPECT_EQ(root.find("message")->str, "ok");
  EXPECT_EQ(root.find("status")->str, "optimal");

  const auto* paths = root.find("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_FALSE(paths->array.empty());
  // Domino eval paths report 1-based stage entries; borrow is only ever
  // non-negative and only on stage >= 2 entries.
  bool saw_stage = false;
  for (const auto& pv : paths->array) {
    for (const auto& sv : pv.find("stages")->array) {
      const double stage = sv.find("stage")->number;
      const double borrow = sv.find("borrow_ps")->number;
      EXPECT_GE(borrow, 0.0);
      if (stage < 2) {
        EXPECT_EQ(borrow, 0.0);
      }
      if (stage >= 1) saw_stage = true;
    }
  }
  EXPECT_TRUE(saw_stage) << "domino macro reported no stage entries";

  // Acceptance: every reported binding constraint sits at |slack| <= 1e-6
  // in the solved GP.
  const auto* binding = root.find("binding");
  ASSERT_NE(binding, nullptr);
  ASSERT_FALSE(binding->array.empty());
  for (const auto& b : binding->array)
    EXPECT_LE(std::fabs(b.find("slack")->number), 1e-6)
        << b.find("tag")->str;

  // Histogram buckets survive the round trip: bounds = counts + 1, counts
  // sum to the path population.
  const auto* hist = root.find("slack_histogram");
  ASSERT_NE(hist, nullptr);
  const auto& bounds = hist->find("buckets")->find("bounds")->array;
  const auto& counts = hist->find("buckets")->find("counts")->array;
  ASSERT_EQ(bounds.size(), counts.size() + 1);
  double total = 0.0;
  for (const auto& c : counts) total += c.number;
  EXPECT_EQ(total, hist->find("count")->number);

  EXPECT_FALSE(root.find("sensitivity")->array.empty());
  EXPECT_FALSE(root.find("solver_trace")->array.empty());
  EXPECT_FALSE(root.find("respec")->array.empty());
}

TEST_F(ScopeReportTest, TextRenderingCarriesTheHeadlines) {
  const auto nl = make("mux", "encoded2", 2, 8);
  const auto result = size_with_snapshot(nl, 120.0);
  ASSERT_TRUE(result.ok) << result.message;
  const auto report = build_report(nl, result, tech_, {});
  const std::string text = render_text(report);
  EXPECT_NE(text.find(nl.name()), std::string::npos);
  EXPECT_NE(text.find("Startpoint:"), std::string::npos);
  EXPECT_NE(text.find("Binding constraints"), std::string::npos);
  EXPECT_NE(text.find("Respec trace"), std::string::npos);
}

TEST_F(ScopeReportTest, StubReportWithoutSnapshot) {
  const auto nl = test::inverter_chain(4);
  core::Sizer sizer(tech_, lib_);
  core::SizerOptions opt;
  opt.delay_spec_ps = 200.0;
  const auto result = sizer.size(nl, opt);  // no keep_solve_snapshot
  ASSERT_TRUE(result.ok) << result.message;
  ASSERT_EQ(result.snapshot, nullptr);

  const auto report = build_report(nl, result, tech_, {});
  EXPECT_NE(report.message.find("snapshot"), std::string::npos);
  EXPECT_TRUE(report.paths.empty());
  // Renderers must still produce well-formed output for the stub.
  EXPECT_FALSE(render_text(report).empty());
  util::JsonValue root;
  EXPECT_TRUE(util::json_parse(render_json(report), &root));
}

}  // namespace
}  // namespace smart::scope

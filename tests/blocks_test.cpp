// Tests for the synthetic functional-block builder and the §6.4 block
// experiment machinery.

#include <gtest/gtest.h>

#include "blocks/block.h"
#include "helpers.h"
#include "models/fitter.h"

namespace smart::blocks {
namespace {

TEST(RandomLogicTest, HitsDeviceTargetRoughly) {
  util::Rng rng(3);
  const auto nl = random_logic("rl", 600, rng);
  const auto stats = nl.device_stats(nl.min_sizing());
  EXPECT_GE(stats.device_count, 600);
  EXPECT_LE(stats.device_count, 700);
  EXPECT_TRUE(nl.finalized());
  EXPECT_FALSE(nl.outputs().empty());
}

TEST(RandomLogicTest, DeterministicPerSeed) {
  util::Rng a(7), b(7), c(8);
  const auto n1 = random_logic("x", 300, a);
  const auto n2 = random_logic("x", 300, b);
  const auto n3 = random_logic("x", 300, c);
  EXPECT_EQ(n1.comp_count(), n2.comp_count());
  EXPECT_EQ(n1.net_count(), n2.net_count());
  EXPECT_NE(n1.comp_count(), n3.comp_count());
}

TEST(BlockBuilderTest, BuildsMacrosAndFiller) {
  BlockSpec spec;
  spec.name = "b";
  spec.filler_devices = 400;
  MacroRequest req;
  req.type = "zero_detect";
  req.topology = "static_tree";
  req.spec.type = "zero_detect";
  req.spec.n = 16;
  spec.macros.push_back(req);
  req.type = "decoder";
  req.topology = "predecode";
  req.spec.type = "decoder";
  req.spec.n = 4;
  spec.macros.push_back(req);
  const auto block = build_block(spec, macros::builtin_database());
  EXPECT_EQ(block.macros.size(), 2u);
  EXPECT_GT(block.filler.comp_count(), 0u);
}

TEST(BlockBuilderTest, RejectsUnknownMacro) {
  BlockSpec spec;
  MacroRequest req;
  req.type = "mux";
  req.topology = "no_such_topology";
  spec.macros.push_back(req);
  EXPECT_THROW(build_block(spec, macros::builtin_database()), util::Error);
}

TEST(BlockExperimentTest, SavesAtBlockLevelWithoutTimingLoss) {
  BlockSpec spec;
  spec.filler_devices = 300;
  MacroRequest req;
  req.type = "decoder";
  req.topology = "predecode";
  req.spec.type = "decoder";
  req.spec.n = 4;
  spec.macros.push_back(req);
  const auto block = build_block(spec, macros::builtin_database());
  const auto ex = run_block_experiment(block, tech::default_tech(),
                                       models::default_library());
  EXPECT_EQ(ex.macros_total, 1);
  EXPECT_GE(ex.macros_converged, 1);
  EXPECT_GT(ex.width_saving(), 0.0);
  EXPECT_GT(ex.power_saving(), 0.0);
  // No performance penalty (§6.4).
  EXPECT_LE(ex.after.worst_macro_delay_ps,
            ex.before.worst_macro_delay_ps * 1.03);
  // Filler is untouched: savings cannot exceed the macro share.
  EXPECT_LT(ex.after.total_width_um, ex.before.total_width_um);
  EXPECT_GT(ex.after.total_width_um,
            ex.before.total_width_um - ex.before.macro_width_um);
}

TEST(BlockExperimentTest, MacroShareBoundsSavings) {
  // A block with tiny macro content can only save a tiny fraction.
  BlockSpec spec;
  spec.filler_devices = 2000;
  MacroRequest req;
  req.type = "zero_detect";
  req.topology = "static_tree";
  req.spec.type = "zero_detect";
  req.spec.n = 8;
  spec.macros.push_back(req);
  const auto block = build_block(spec, macros::builtin_database());
  const auto ex = run_block_experiment(block, tech::default_tech(),
                                       models::default_library());
  const double macro_share =
      ex.before.macro_width_um / ex.before.total_width_um;
  EXPECT_LE(ex.width_saving(), macro_share + 1e-9);
}

}  // namespace
}  // namespace smart::blocks

// Tests for the observability subsystem: span nesting and ordering,
// histogram percentile math, disabled-mode zero cost, thread-safe
// concurrent emission, and well-formedness of both JSON exports (parsed
// back with a minimal JSON reader below — the exported traces must load in
// chrome://tracing, so syntactic validity is part of the contract).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/sizer.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "obs/obs.h"
#include "util/json.h"

namespace smart::obs {
namespace {

// JSON exports are parsed back with the in-tree minimal reader
// (util/json.h); syntactic validity is part of the contract since the
// traces must load in chrome://tracing.

using util::JsonValue;

/// Adapter keeping the historical test spelling `JsonParser(text).parse(&v)`.
struct JsonParser {
  explicit JsonParser(const std::string& text) : text_(text) {}
  bool parse(JsonValue* out) { return util::json_parse(text_, out); }
  const std::string& text_;
};

/// Enables telemetry on a clean buffer; restores the disabled default so
/// test order cannot leak state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tel = Telemetry::instance();
    tel.enable(true);
    tel.reset();
  }
  void TearDown() override {
    auto& tel = Telemetry::instance();
    tel.enable(false);
    tel.reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOrdering) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      Span sibling("sibling");
    }
  }
  auto& tel = Telemetry::instance();
  ASSERT_EQ(tel.span_count(), 3u);
  const auto spans = tel.spans();
  // Completion order: children end before their parent.
  EXPECT_EQ(spans[2].name, "outer");
  const auto& outer = spans[2];
  for (size_t i = 0; i < 2; ++i) {
    const auto& child = spans[i];
    EXPECT_GE(child.ts_us, outer.ts_us);
    EXPECT_LE(child.ts_us + child.dur_us,
              outer.ts_us + outer.dur_us + 1e-6);
    EXPECT_GE(child.dur_us, 0.0);
  }
}

TEST_F(ObsTest, SpanArgsAndElapsed) {
  Span span("with_args");
  span.arg("k", 42.0);
  EXPECT_GE(span.elapsed_ms(), 0.0);
  // Destruction records the args.
  {
    Span s2("s2");
    s2.arg("x", 1.0);
    s2.arg("y", 2.5);
  }
  const auto spans = Telemetry::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[1].first, "y");
  EXPECT_DOUBLE_EQ(spans[0].args[1].second, 2.5);
}

TEST_F(ObsTest, CountersAndGauges) {
  auto& tel = Telemetry::instance();
  tel.counter_add("c.calls");
  tel.counter_add("c.calls", 2.0);
  tel.gauge_set("g.value", 3.0);
  tel.gauge_set("g.value", 7.0);  // last write wins
  EXPECT_DOUBLE_EQ(tel.counter("c.calls"), 3.0);
  EXPECT_DOUBLE_EQ(tel.gauge("g.value"), 7.0);
  EXPECT_DOUBLE_EQ(tel.counter("absent"), 0.0);
  EXPECT_DOUBLE_EQ(tel.gauge("absent"), 0.0);
}

TEST_F(ObsTest, HistogramPercentiles) {
  auto& tel = Telemetry::instance();
  for (int i = 100; i >= 1; --i)  // insertion order must not matter
    tel.hist_record("h", static_cast<double>(i));
  const HistogramSummary s = tel.hist_summary("h");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  // Nearest-rank percentiles on 1..100.
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);

  // Single-sample histogram: every statistic collapses to the sample.
  tel.hist_record("one", 4.25);
  const HistogramSummary o = tel.hist_summary("one");
  EXPECT_EQ(o.count, 1u);
  EXPECT_DOUBLE_EQ(o.p50, 4.25);
  EXPECT_DOUBLE_EQ(o.p99, 4.25);

  EXPECT_EQ(tel.hist_summary("absent").count, 0u);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  auto& tel = Telemetry::instance();
  tel.enable(false);
  {
    Span span("invisible");
    span.arg("k", 1.0);
    EXPECT_DOUBLE_EQ(span.elapsed_ms(), 0.0);
  }
  tel.counter_add("invisible.counter");
  tel.gauge_set("invisible.gauge", 1.0);
  tel.hist_record("invisible.hist", 1.0);
  EXPECT_EQ(tel.span_count(), 0u);
  EXPECT_DOUBLE_EQ(tel.counter("invisible.counter"), 0.0);
  EXPECT_EQ(tel.hist_summary("invisible.hist").count, 0u);
  // The exports are valid JSON even when empty.
  JsonValue trace, metrics;
  EXPECT_TRUE(JsonParser(tel.chrome_trace_json()).parse(&trace));
  EXPECT_TRUE(JsonParser(tel.metrics_json()).parse(&metrics));
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_TRUE(trace.find("traceEvents")->array.empty());
}

TEST_F(ObsTest, ConcurrentEmissionFromManyThreads) {
  auto& tel = Telemetry::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tel, t] {
      for (int i = 0; i < kIters; ++i) {
        Span span("worker");
        span.arg("thread", t);
        tel.counter_add("mt.count");
        tel.hist_record("mt.hist", static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tel.span_count(), static_cast<size_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(tel.counter("mt.count"), kThreads * kIters);
  EXPECT_EQ(tel.hist_summary("mt.hist").count,
            static_cast<size_t>(kThreads * kIters));
  // Each thread got its own stable tid.
  std::map<uint32_t, int> by_tid;
  for (const auto& ev : tel.spans()) by_tid[ev.tid]++;
  EXPECT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : by_tid) EXPECT_EQ(count, kIters);
}

TEST_F(ObsTest, ChromeTraceExportParsesBack) {
  auto& tel = Telemetry::instance();
  {
    Span span("outer \"quoted\"\nname");  // exercises escaping
    span.arg("newton_iters", 12.0);
    Span inner("inner");
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.chrome_trace_json()).parse(&root));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);
  for (const auto& ev : events->array) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ph"), nullptr);
    EXPECT_EQ(ev.find("ph")->str, "X");
    ASSERT_NE(ev.find("ts"), nullptr);
    EXPECT_EQ(ev.find("ts")->kind, JsonValue::Kind::kNumber);
    ASSERT_NE(ev.find("dur"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
  }
  // The quoted name round-trips through the escaper.
  EXPECT_EQ(events->array[1].find("name")->str, "outer \"quoted\"\nname");
  const JsonValue* args = events->array[1].find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("newton_iters"), nullptr);
  EXPECT_DOUBLE_EQ(args->find("newton_iters")->number, 12.0);
}

TEST_F(ObsTest, MetricsExportParsesBack) {
  auto& tel = Telemetry::instance();
  tel.counter_add("gp.solve.calls", 3.0);
  tel.gauge_set("timing.prune.reduction", 267.5);
  for (int i = 1; i <= 10; ++i)
    tel.hist_record("gp.solve.newton_iters", 10.0 * i);
  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.metrics_json()).parse(&root));
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("gp.solve.calls"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("gp.solve.calls")->number, 3.0);
  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("timing.prune.reduction")->number, 267.5);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("gp.solve.newton_iters");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 10.0);
  EXPECT_DOUBLE_EQ(h->find("min")->number, 10.0);
  EXPECT_DOUBLE_EQ(h->find("max")->number, 100.0);
  EXPECT_DOUBLE_EQ(h->find("p50")->number, 50.0);
}

TEST_F(ObsTest, HistogramBucketsRoundTripThroughMetricsJson) {
  auto& tel = Telemetry::instance();
  for (int i = 0; i < 120; ++i)
    tel.hist_record("h.buckets", static_cast<double>(i % 60));
  const HistogramSummary direct = tel.hist_summary("h.buckets");
  ASSERT_EQ(direct.bucket_counts.size(), HistogramSummary::kHistogramBuckets);
  ASSERT_EQ(direct.bucket_bounds.size(), direct.bucket_counts.size() + 1);
  EXPECT_DOUBLE_EQ(direct.bucket_bounds.front(), direct.min);
  EXPECT_DOUBLE_EQ(direct.bucket_bounds.back(), direct.max);

  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.metrics_json()).parse(&root));
  const JsonValue* h = root.find("histograms")->find("h.buckets");
  ASSERT_NE(h, nullptr);
  const JsonValue* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  const auto& bounds = buckets->find("bounds")->array;
  const auto& counts = buckets->find("counts")->array;
  ASSERT_EQ(bounds.size(), direct.bucket_bounds.size());
  ASSERT_EQ(counts.size(), direct.bucket_counts.size());
  size_t total = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    // The exporter prints %.10g; bounds round-trip to 10 significant
    // digits, counts are small integers and round-trip exactly.
    EXPECT_NEAR(bounds[b].number, direct.bucket_bounds[b],
                1e-8 * std::max(1.0, std::fabs(direct.bucket_bounds[b])));
    EXPECT_DOUBLE_EQ(counts[b].number,
                     static_cast<double>(direct.bucket_counts[b]));
    total += direct.bucket_counts[b];
  }
  EXPECT_EQ(total, direct.count);

  // summarize_samples uses the same math as the registry exporter, so an
  // ad-hoc sample set (e.g. scope's slack histogram) round-trips
  // identically.
  std::vector<double> samples;
  for (int i = 0; i < 120; ++i) samples.push_back(static_cast<double>(i % 60));
  const HistogramSummary adhoc = summarize_samples(samples);
  EXPECT_EQ(adhoc.bucket_counts, direct.bucket_counts);
  EXPECT_EQ(adhoc.bucket_bounds, direct.bucket_bounds);
}

TEST_F(ObsTest, DegenerateHistogramCollapsesToOneBucket) {
  auto& tel = Telemetry::instance();
  for (int i = 0; i < 5; ++i) tel.hist_record("h.flat", 4.25);
  const HistogramSummary s = tel.hist_summary("h.flat");
  ASSERT_EQ(s.bucket_counts.size(), 1u);
  EXPECT_EQ(s.bucket_counts[0], 5u);
  ASSERT_EQ(s.bucket_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(s.bucket_bounds[0], 4.25);
  EXPECT_DOUBLE_EQ(s.bucket_bounds[1], 4.25);
  // Empty histogram: no buckets at all.
  EXPECT_TRUE(summarize_samples({}).bucket_counts.empty());
}

TEST_F(ObsTest, NonFiniteValuesExportAsValidJson) {
  auto& tel = Telemetry::instance();
  tel.gauge_set("bad", std::nan(""));
  tel.hist_record("badh", std::numeric_limits<double>::infinity());
  JsonValue root;
  EXPECT_TRUE(JsonParser(tel.metrics_json()).parse(&root));
}

TEST_F(ObsTest, ResetClearsEverything) {
  auto& tel = Telemetry::instance();
  { Span span("s"); }
  tel.counter_add("c");
  tel.reset();
  EXPECT_EQ(tel.span_count(), 0u);
  EXPECT_DOUBLE_EQ(tel.counter("c"), 0.0);
  EXPECT_TRUE(tel.enabled());  // reset keeps the flag
}

TEST_F(ObsTest, ScopedTraceIdNestsAndRestores) {
  EXPECT_EQ(current_trace_id(), 0u);
  {
    ScopedTraceId outer(0x111);
    EXPECT_EQ(current_trace_id(), 0x111u);
    {
      ScopedTraceId inner(0x222);
      EXPECT_EQ(current_trace_id(), 0x222u);
    }
    EXPECT_EQ(current_trace_id(), 0x111u);
  }
  EXPECT_EQ(current_trace_id(), 0u);
}

TEST_F(ObsTest, SpansInheritTheActiveTraceId) {
  {
    Span before("before");  // no trace context
    ScopedTraceId scope(0xABC);
    Span tagged("tagged");
    { Span nested("nested"); }
  }
  const auto spans = Telemetry::instance().spans();
  ASSERT_EQ(spans.size(), 3u);
  std::map<std::string, uint64_t> by_name;
  for (const auto& ev : spans) by_name[ev.name] = ev.trace_id;
  EXPECT_EQ(by_name["before"], 0u);
  EXPECT_EQ(by_name["tagged"], 0xABCu);
  EXPECT_EQ(by_name["nested"], 0xABCu);

  // The trace export carries the id as an integer arg; untagged spans
  // omit it (zero is "no trace").
  JsonValue root;
  ASSERT_TRUE(JsonParser(Telemetry::instance().chrome_trace_json())
                  .parse(&root));
  for (const auto& ev : root.find("traceEvents")->array) {
    const JsonValue* args = ev.find("args");
    const JsonValue* tid = args != nullptr ? args->find("trace_id") : nullptr;
    if (ev.find("name")->str == "before") {
      EXPECT_EQ(tid, nullptr);
    } else {
      ASSERT_NE(tid, nullptr) << ev.find("name")->str;
      EXPECT_DOUBLE_EQ(tid->number, static_cast<double>(0xABC));
    }
  }
}

TEST_F(ObsTest, TraceIdSurvivesDisabledTelemetry) {
  // The propagation context is orthogonal to the recording flag: a
  // disabled client must still stamp trace ids into its request frames.
  Telemetry::instance().enable(false);
  ScopedTraceId scope(0x42);
  EXPECT_EQ(current_trace_id(), 0x42u);
}

TEST_F(ObsTest, ProcessLabelEmitsMetadataEvent) {
  auto& tel = Telemetry::instance();
  tel.set_process_label("test_proc");
  { Span span("s"); }
  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.chrome_trace_json()).parse(&root));
  const auto& events = root.find("traceEvents")->array;
  ASSERT_GE(events.size(), 2u);
  const JsonValue& meta = events.front();
  EXPECT_EQ(meta.find("ph")->str, "M");
  EXPECT_EQ(meta.find("name")->str, "process_name");
  ASSERT_NE(meta.find("args"), nullptr);
  EXPECT_EQ(meta.find("args")->find("name")->str, "test_proc");
  tel.set_process_label("");
}

TEST(BoundedHistogramTest, WindowsSamplesButCountsAll) {
  BoundedHistogram hist(4);
  for (int i = 1; i <= 10; ++i) hist.record(static_cast<double>(i));
  EXPECT_EQ(hist.total_count(), 10u);
  const HistogramSummary s = hist.summary();
  // Only the newest 4 samples (7..10) remain in the window.
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(BoundedHistogramTest, EmptyAndPartialWindows) {
  BoundedHistogram hist(8);
  EXPECT_EQ(hist.total_count(), 0u);
  EXPECT_EQ(hist.summary().count, 0u);
  hist.record(2.5);
  const HistogramSummary s = hist.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
}

TEST(BoundedHistogramTest, ConcurrentRecordsStayBounded) {
  BoundedHistogram hist(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 1000; ++i) hist.record(static_cast<double>(i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.total_count(), 4000u);
  EXPECT_EQ(hist.summary().count, 64u);
}

// End-to-end: one real sizing run emits the pipeline's span tree and the
// headline metrics the CLI exports (prune reduction, per-solve Newton
// iterations, respec mismatch, rung taken).
TEST_F(ObsTest, SizingRunEmitsPipelineTelemetry) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 2;
  spec.params["bits"] = 4;
  const auto* entry =
      macros::builtin_database().find("mux", "domino_unsplit");
  ASSERT_NE(entry, nullptr);
  const auto nl = entry->generate(spec);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 200.0;
  const auto result = sizer.size(nl, opt);
  ASSERT_TRUE(result.ok);

  auto& tel = Telemetry::instance();
  EXPECT_GE(tel.counter("gp.solve.calls"), 1.0);
  EXPECT_GE(tel.counter("sizer.size.calls"), 1.0);
  EXPECT_GE(tel.counter("sizer.rung.gp"), 1.0);
  EXPECT_GE(tel.hist_summary("gp.solve.newton_iters").count, 1u);
  EXPECT_GE(tel.hist_summary("sizer.respec.mismatch").count, 1u);
  EXPECT_GT(tel.gauge("timing.prune.reduction"), 1.0);

  // The span tree contains the full prune -> constraint-gen -> solve ->
  // verify chain, each nested inside a sizer.respec_iter.
  std::map<std::string, int> names;
  for (const auto& ev : tel.spans()) names[ev.name]++;
  EXPECT_GE(names["sizer.size"], 1);
  EXPECT_GE(names["sizer.respec_iter"], 1);
  EXPECT_GE(names["sizer.constraints"], 1);
  EXPECT_GE(names["timing.extract"], 1);
  EXPECT_GE(names["gp.solve"], 1);
  EXPECT_GE(names["sizer.verify"], 1);
}

}  // namespace
}  // namespace smart::obs

// Tests for the observability subsystem: span nesting and ordering,
// histogram percentile math, disabled-mode zero cost, thread-safe
// concurrent emission, and well-formedness of both JSON exports (parsed
// back with a minimal JSON reader below — the exported traces must load in
// chrome://tracing, so syntactic validity is part of the contract).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/sizer.h"
#include "macros/registry.h"
#include "models/fitter.h"
#include "obs/obs.h"

namespace smart::obs {
namespace {

// ---- minimal recursive-descent JSON reader (test-only) ----

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) return true;
    return number(out);
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            pos_ += 4;  // keep the reader simple: skip the code point
            break;
          default: return false;
        }
        ++pos_;
      } else {
        *out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Enables telemetry on a clean buffer; restores the disabled default so
/// test order cannot leak state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tel = Telemetry::instance();
    tel.enable(true);
    tel.reset();
  }
  void TearDown() override {
    auto& tel = Telemetry::instance();
    tel.enable(false);
    tel.reset();
  }
};

TEST_F(ObsTest, SpanNestingAndOrdering) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      Span sibling("sibling");
    }
  }
  auto& tel = Telemetry::instance();
  ASSERT_EQ(tel.span_count(), 3u);
  const auto spans = tel.spans();
  // Completion order: children end before their parent.
  EXPECT_EQ(spans[2].name, "outer");
  const auto& outer = spans[2];
  for (size_t i = 0; i < 2; ++i) {
    const auto& child = spans[i];
    EXPECT_GE(child.ts_us, outer.ts_us);
    EXPECT_LE(child.ts_us + child.dur_us,
              outer.ts_us + outer.dur_us + 1e-6);
    EXPECT_GE(child.dur_us, 0.0);
  }
}

TEST_F(ObsTest, SpanArgsAndElapsed) {
  Span span("with_args");
  span.arg("k", 42.0);
  EXPECT_GE(span.elapsed_ms(), 0.0);
  // Destruction records the args.
  {
    Span s2("s2");
    s2.arg("x", 1.0);
    s2.arg("y", 2.5);
  }
  const auto spans = Telemetry::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[1].first, "y");
  EXPECT_DOUBLE_EQ(spans[0].args[1].second, 2.5);
}

TEST_F(ObsTest, CountersAndGauges) {
  auto& tel = Telemetry::instance();
  tel.counter_add("c.calls");
  tel.counter_add("c.calls", 2.0);
  tel.gauge_set("g.value", 3.0);
  tel.gauge_set("g.value", 7.0);  // last write wins
  EXPECT_DOUBLE_EQ(tel.counter("c.calls"), 3.0);
  EXPECT_DOUBLE_EQ(tel.gauge("g.value"), 7.0);
  EXPECT_DOUBLE_EQ(tel.counter("absent"), 0.0);
  EXPECT_DOUBLE_EQ(tel.gauge("absent"), 0.0);
}

TEST_F(ObsTest, HistogramPercentiles) {
  auto& tel = Telemetry::instance();
  for (int i = 100; i >= 1; --i)  // insertion order must not matter
    tel.hist_record("h", static_cast<double>(i));
  const HistogramSummary s = tel.hist_summary("h");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  // Nearest-rank percentiles on 1..100.
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);

  // Single-sample histogram: every statistic collapses to the sample.
  tel.hist_record("one", 4.25);
  const HistogramSummary o = tel.hist_summary("one");
  EXPECT_EQ(o.count, 1u);
  EXPECT_DOUBLE_EQ(o.p50, 4.25);
  EXPECT_DOUBLE_EQ(o.p99, 4.25);

  EXPECT_EQ(tel.hist_summary("absent").count, 0u);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  auto& tel = Telemetry::instance();
  tel.enable(false);
  {
    Span span("invisible");
    span.arg("k", 1.0);
    EXPECT_DOUBLE_EQ(span.elapsed_ms(), 0.0);
  }
  tel.counter_add("invisible.counter");
  tel.gauge_set("invisible.gauge", 1.0);
  tel.hist_record("invisible.hist", 1.0);
  EXPECT_EQ(tel.span_count(), 0u);
  EXPECT_DOUBLE_EQ(tel.counter("invisible.counter"), 0.0);
  EXPECT_EQ(tel.hist_summary("invisible.hist").count, 0u);
  // The exports are valid JSON even when empty.
  JsonValue trace, metrics;
  EXPECT_TRUE(JsonParser(tel.chrome_trace_json()).parse(&trace));
  EXPECT_TRUE(JsonParser(tel.metrics_json()).parse(&metrics));
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_TRUE(trace.find("traceEvents")->array.empty());
}

TEST_F(ObsTest, ConcurrentEmissionFromManyThreads) {
  auto& tel = Telemetry::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tel, t] {
      for (int i = 0; i < kIters; ++i) {
        Span span("worker");
        span.arg("thread", t);
        tel.counter_add("mt.count");
        tel.hist_record("mt.hist", static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tel.span_count(), static_cast<size_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(tel.counter("mt.count"), kThreads * kIters);
  EXPECT_EQ(tel.hist_summary("mt.hist").count,
            static_cast<size_t>(kThreads * kIters));
  // Each thread got its own stable tid.
  std::map<uint32_t, int> by_tid;
  for (const auto& ev : tel.spans()) by_tid[ev.tid]++;
  EXPECT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, count] : by_tid) EXPECT_EQ(count, kIters);
}

TEST_F(ObsTest, ChromeTraceExportParsesBack) {
  auto& tel = Telemetry::instance();
  {
    Span span("outer \"quoted\"\nname");  // exercises escaping
    span.arg("newton_iters", 12.0);
    Span inner("inner");
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.chrome_trace_json()).parse(&root));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);
  for (const auto& ev : events->array) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ph"), nullptr);
    EXPECT_EQ(ev.find("ph")->str, "X");
    ASSERT_NE(ev.find("ts"), nullptr);
    EXPECT_EQ(ev.find("ts")->kind, JsonValue::Kind::kNumber);
    ASSERT_NE(ev.find("dur"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
  }
  // The quoted name round-trips through the escaper.
  EXPECT_EQ(events->array[1].find("name")->str, "outer \"quoted\"\nname");
  const JsonValue* args = events->array[1].find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("newton_iters"), nullptr);
  EXPECT_DOUBLE_EQ(args->find("newton_iters")->number, 12.0);
}

TEST_F(ObsTest, MetricsExportParsesBack) {
  auto& tel = Telemetry::instance();
  tel.counter_add("gp.solve.calls", 3.0);
  tel.gauge_set("timing.prune.reduction", 267.5);
  for (int i = 1; i <= 10; ++i)
    tel.hist_record("gp.solve.newton_iters", 10.0 * i);
  JsonValue root;
  ASSERT_TRUE(JsonParser(tel.metrics_json()).parse(&root));
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("gp.solve.calls"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("gp.solve.calls")->number, 3.0);
  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("timing.prune.reduction")->number, 267.5);
  const JsonValue* hists = root.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("gp.solve.newton_iters");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 10.0);
  EXPECT_DOUBLE_EQ(h->find("min")->number, 10.0);
  EXPECT_DOUBLE_EQ(h->find("max")->number, 100.0);
  EXPECT_DOUBLE_EQ(h->find("p50")->number, 50.0);
}

TEST_F(ObsTest, NonFiniteValuesExportAsValidJson) {
  auto& tel = Telemetry::instance();
  tel.gauge_set("bad", std::nan(""));
  tel.hist_record("badh", std::numeric_limits<double>::infinity());
  JsonValue root;
  EXPECT_TRUE(JsonParser(tel.metrics_json()).parse(&root));
}

TEST_F(ObsTest, ResetClearsEverything) {
  auto& tel = Telemetry::instance();
  { Span span("s"); }
  tel.counter_add("c");
  tel.reset();
  EXPECT_EQ(tel.span_count(), 0u);
  EXPECT_DOUBLE_EQ(tel.counter("c"), 0.0);
  EXPECT_TRUE(tel.enabled());  // reset keeps the flag
}

// End-to-end: one real sizing run emits the pipeline's span tree and the
// headline metrics the CLI exports (prune reduction, per-solve Newton
// iterations, respec mismatch, rung taken).
TEST_F(ObsTest, SizingRunEmitsPipelineTelemetry) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 2;
  spec.params["bits"] = 4;
  const auto* entry =
      macros::builtin_database().find("mux", "domino_unsplit");
  ASSERT_NE(entry, nullptr);
  const auto nl = entry->generate(spec);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  core::SizerOptions opt;
  opt.delay_spec_ps = 200.0;
  const auto result = sizer.size(nl, opt);
  ASSERT_TRUE(result.ok);

  auto& tel = Telemetry::instance();
  EXPECT_GE(tel.counter("gp.solve.calls"), 1.0);
  EXPECT_GE(tel.counter("sizer.size.calls"), 1.0);
  EXPECT_GE(tel.counter("sizer.rung.gp"), 1.0);
  EXPECT_GE(tel.hist_summary("gp.solve.newton_iters").count, 1u);
  EXPECT_GE(tel.hist_summary("sizer.respec.mismatch").count, 1u);
  EXPECT_GT(tel.gauge("timing.prune.reduction"), 1.0);

  // The span tree contains the full prune -> constraint-gen -> solve ->
  // verify chain, each nested inside a sizer.respec_iter.
  std::map<std::string, int> names;
  for (const auto& ev : tel.spans()) names[ev.name]++;
  EXPECT_GE(names["sizer.size"], 1);
  EXPECT_GE(names["sizer.respec_iter"], 1);
  EXPECT_GE(names["sizer.constraints"], 1);
  EXPECT_GE(names["timing.extract"], 1);
  EXPECT_GE(names["gp.solve"], 1);
  EXPECT_GE(names["sizer.verify"], 1);
}

}  // namespace
}  // namespace smart::obs

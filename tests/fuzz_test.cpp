// Robustness sweeps: randomly generated netlists and macro specs pushed
// through the complete pipeline (validation, STA, logic simulation, path
// extraction, flattening, serialization, constraint generation, sizing).
// Nothing here checks specific numbers — these tests check that no input
// in the supported space crashes, violates an invariant, or produces
// self-inconsistent results across the independent engines.

#include <gtest/gtest.h>

#include <map>

#include "blocks/block.h"
#include "core/experiment.h"
#include "helpers.h"
#include "models/fitter.h"
#include "netlist/flatten.h"
#include "netlist/serialize.h"
#include "netlist/spice_export.h"
#include "refsim/critical_path.h"
#include "refsim/logic_sim.h"
#include "refsim/rc_timer.h"
#include "timing/paths.h"
#include "util/rng.h"

namespace smart {
namespace {

class RandomLogicPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomLogicPipeline, EveryEngineAgreesOnStructure) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const auto nl =
      blocks::random_logic("fuzz", 150 + GetParam() * 37, rng);
  const netlist::Sizing sizing(nl.label_count(), 1.5);

  // STA runs and produces finite results.
  const refsim::RcTimer timer(tech::default_tech());
  const auto report = timer.analyze(nl, sizing);
  EXPECT_GT(report.worst_delay, 0.0);
  EXPECT_LT(report.worst_delay, 1e7);

  // Batch and per-net capacitance agree.
  const auto caps = timer.all_net_caps(nl, sizing);
  for (size_t n = 0; n < nl.net_count(); n += 7) {
    EXPECT_NEAR(caps[n],
                timer.net_cap(nl, sizing, static_cast<netlist::NetId>(n)),
                1e-9);
  }

  // Critical path reproduces the reported worst delay.
  const auto cp = refsim::critical_path(nl, sizing, tech::default_tech());
  EXPECT_NEAR(cp.arrival_ps, report.worst_delay, 1e-6);

  // Flattening conserves devices and width.
  const auto flat = netlist::flatten(nl, sizing);
  const auto stats = nl.device_stats(sizing);
  EXPECT_EQ(flat.devices.size(), static_cast<size_t>(stats.device_count));
  EXPECT_NEAR(flat.total_width(), stats.total_width,
              1e-6 * stats.total_width);

  // Serialization round-trips.
  const auto restored = netlist::from_text(netlist::to_text(nl));
  EXPECT_EQ(restored.comp_count(), nl.comp_count());
  const auto report2 = timer.analyze(restored, sizing);
  EXPECT_NEAR(report2.worst_delay, report.worst_delay, 1e-9);

  // Logic simulation settles with all-known inputs.
  refsim::LogicSim sim(nl);
  std::map<netlist::NetId, bool> inputs;
  for (const auto& p : nl.inputs()) inputs[p.net] = rng.chance(0.5);
  const auto st = sim.evaluate(inputs);
  for (const auto& port : nl.outputs()) {
    EXPECT_TRUE(refsim::is_known(st[static_cast<size_t>(port.net)]))
        << "output " << nl.net(port.net).name;
  }

  // Path extraction terminates and its coarsest set is non-empty.
  timing::PathExtractor extractor(nl);
  timing::PathStats pstats;
  const auto paths = extractor.extract({}, &pstats);
  EXPECT_GT(paths.size(), 0u);
  EXPECT_GE(pstats.raw_topological, 1.0);

  // SPICE export emits one device line per flattened device.
  const auto spice = netlist::to_spice(nl, sizing);
  size_t mlines = 0;
  for (size_t pos = 0; (pos = spice.find("\nM", pos)) != std::string::npos;
       ++pos)
    ++mlines;
  EXPECT_EQ(mlines, flat.devices.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLogicPipeline,
                         ::testing::Range(1, 13));

class RandomMacroIso : public ::testing::TestWithParam<int> {};

TEST_P(RandomMacroIso, IsoDelayProtocolHoldsInvariants) {
  // Random (type, topology, size) draws; the iso-delay protocol must
  // either converge with a drop-in-compatible design, or report cleanly.
  util::Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const auto& db = macros::builtin_database();
  const auto types = db.macro_types();
  const auto& type = types[static_cast<size_t>(
      rng.uniform_int(0, static_cast<int>(types.size()) - 1))];
  core::MacroSpec spec;
  spec.type = type;
  const int pow2[] = {4, 8, 16};
  spec.n = pow2[rng.uniform_int(0, 2)];
  if (type == "decoder") spec.n = rng.uniform_int(2, 5);
  if (type == "adder" && spec.n == 4) spec.n = 8;
  spec.params["bits"] = 4;
  spec.load_ff = rng.uniform(6.0, 40.0);
  const auto topos = db.topologies(type, &spec);
  if (topos.empty()) GTEST_SKIP() << "no topology for " << type << " n=" << spec.n;
  const auto* entry = topos[static_cast<size_t>(
      rng.uniform_int(0, static_cast<int>(topos.size()) - 1))];
  const auto nl = entry->generate(spec);

  const auto cmp = core::run_iso_delay(nl, tech::default_tech(),
                                       models::default_library());
  ASSERT_TRUE(cmp.baseline.ok);
  EXPECT_GT(cmp.baseline.measured_delay_ps, 0.0);
  if (!cmp.ok) {
    // A clean miss is allowed (e.g. slope-infeasible wide domino): the
    // result must say so rather than return garbage.
    EXPECT_FALSE(cmp.smart.message.empty());
    return;
  }
  // Drop-in invariants: no slower, no more pin cap, positive savings cap.
  EXPECT_LE(cmp.smart.measured_delay_ps,
            cmp.baseline.measured_delay_ps * 1.03)
      << type << "/" << entry->name;
  EXPECT_LT(cmp.width_saving(), 1.0);
  core::Sizer sizer(tech::default_tech(), models::default_library());
  const auto base_caps = sizer.input_caps(nl, cmp.baseline.sizing);
  const auto smart_caps = sizer.input_caps(nl, cmp.smart.sizing);
  for (size_t i = 0; i < base_caps.size(); ++i)
    EXPECT_LE(smart_caps[i], base_caps[i] * 1.06)
        << type << "/" << entry->name << " port " << i;
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomMacroIso, ::testing::Range(1, 9));

}  // namespace
}  // namespace smart

// Tests for device-level flattening and SPICE export: device-count and
// total-width parity with the accounting layer, structural properties of
// the expansion, and well-formedness of the SPICE output.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "helpers.h"
#include "netlist/flatten.h"
#include "netlist/spice_export.h"
#include "util/check.h"

namespace smart::netlist {
namespace {

TEST(FlattenTest, InverterChainDeviceParity) {
  const auto nl = test::inverter_chain(3);
  const Sizing sizing = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto flat = flatten(nl, sizing);
  const auto stats = nl.device_stats(sizing);
  EXPECT_EQ(flat.devices.size(), static_cast<size_t>(stats.device_count));
  EXPECT_NEAR(flat.total_width(), stats.total_width, 1e-9);
}

TEST(FlattenTest, ParityAcrossAllMacroFamilies) {
  struct Case {
    const char* type;
    const char* topo;
    int n;
  };
  const Case cases[] = {
      {"mux", "strong_pass", 4},      {"mux", "tristate", 4},
      {"mux", "domino_unsplit", 4},   {"mux", "domino_split", 8},
      {"incrementor", "ks_prefix", 8}, {"decoder", "predecode", 4},
      {"zero_detect", "static_tree", 16},
      {"comparator", "xorsum2_nor4", 16},
      {"adder", "domino_cla", 16},    {"shifter", "barrel_rotate", 8},
      {"register_file", "pass_read", 8},
      {"register_file", "domino_read", 8},
  };
  for (const auto& c : cases) {
    core::MacroSpec spec;
    spec.type = c.type;
    spec.n = c.n;
    const auto nl = test::generate(c.type, c.topo, spec);
    const Sizing sizing(nl.label_count(), 2.0);
    const auto flat = flatten(nl, sizing);
    const auto stats = nl.device_stats(sizing);
    EXPECT_EQ(flat.devices.size(), static_cast<size_t>(stats.device_count))
        << c.type << "/" << c.topo;
    EXPECT_NEAR(flat.total_width(), stats.total_width,
                1e-6 * stats.total_width)
        << c.type << "/" << c.topo;
  }
}

TEST(FlattenTest, SeriesStackCreatesInternalNodes) {
  Netlist nl("nand3");
  const NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  const NetId o = nl.add_net("o");
  const LabelId n = nl.add_label("N"), p = nl.add_label("P");
  nl.add_component("g", o,
                   StaticGate{Stack::series({Stack::leaf(a, n),
                                             Stack::leaf(b, n),
                                             Stack::leaf(c, n)}),
                              p});
  nl.add_input(a);
  nl.add_input(b);
  nl.add_input(c);
  nl.add_output(o);
  nl.finalize();
  const auto flat = flatten(nl, {2.0, 4.0});
  // 3 NMOS + 3 PMOS devices; 2 internal pull-down nodes.
  EXPECT_EQ(flat.devices.size(), 6u);
  EXPECT_EQ(flat.node_names.size(), nl.net_count() + 2u /*supplies*/ + 2u);
  // Every device terminal must be a valid node.
  for (const auto& d : flat.devices) {
    EXPECT_GE(d.gate, 0);
    EXPECT_LT(static_cast<size_t>(d.gate), flat.node_names.size());
    EXPECT_GE(d.drain, 0);
    EXPECT_GE(d.source, 0);
  }
}

TEST(FlattenTest, DominoKeeperAlwaysOn) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 1;
  const auto nl = test::generate("mux", "domino_unsplit", spec);
  const auto flat = flatten(nl, Sizing(nl.label_count(), 2.0));
  bool keeper_found = false;
  for (const auto& d : flat.devices) {
    if (d.name.find("_keep") != std::string::npos) {
      keeper_found = true;
      EXPECT_TRUE(d.is_pmos);
      EXPECT_EQ(d.gate, flat.gnd);
    }
  }
  EXPECT_TRUE(keeper_found);
}

TEST(FlattenTest, RejectsUnfinalizedNetlist) {
  Netlist nl("unfin");
  const NetId a = nl.add_net("a"), out = nl.add_net("out");
  const LabelId n = nl.add_label("n"), p = nl.add_label("p");
  nl.add_inverter("inv", a, out, n, p);
  EXPECT_THROW(flatten(nl, Sizing(2, 1.0)), util::Error);
  FlatNetlist flat;
  const auto status = try_flatten(nl, Sizing(2, 1.0), &flat);
  EXPECT_EQ(status.reason, util::FailureReason::kInvalidInput);
  EXPECT_NE(status.detail.find("finalized"), std::string::npos)
      << status.detail;
}

TEST(FlattenTest, RejectsSizingArityMismatch) {
  const auto nl = test::inverter_chain(2);  // 4 labels
  EXPECT_THROW(flatten(nl, Sizing(1, 1.0)), util::Error);
  const auto status = try_flatten(nl, Sizing(1, 1.0), nullptr);
  EXPECT_EQ(status.reason, util::FailureReason::kInvalidInput);
  EXPECT_NE(status.detail.find("arity"), std::string::npos) << status.detail;
}

TEST(FlattenTest, RejectsNonPositiveWidth) {
  const auto nl = test::inverter_chain(1);
  Sizing sizing(nl.label_count(), 1.0);
  sizing[0] = 0.0;
  const auto status = try_flatten(nl, sizing, nullptr);
  EXPECT_EQ(status.reason, util::FailureReason::kInvalidInput);
  EXPECT_NE(status.detail.find("width"), std::string::npos) << status.detail;
}

TEST(FlattenTest, TryFlattenSucceedsOnValidInput) {
  const auto nl = test::inverter_chain(1);
  FlatNetlist flat;
  const auto status = try_flatten(nl, Sizing(nl.label_count(), 1.0), &flat);
  EXPECT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(flat.devices.size(), 2u);
}

TEST(SpiceExportTest, WellFormedSubckt) {
  const auto nl = test::inverter_chain(2, 10.0);
  const std::string spice = to_spice(nl, {1.0, 2.0, 3.0, 4.0});
  EXPECT_NE(spice.find(".subckt chain2 in n1 vdd! gnd!"), std::string::npos)
      << spice;
  EXPECT_NE(spice.find(".ends chain2"), std::string::npos);
  // One M-line per device, with width annotations.
  size_t mlines = 0;
  std::istringstream stream(spice);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == 'M') {
      ++mlines;
      EXPECT_NE(line.find("w="), std::string::npos);
      EXPECT_NE(line.find("l=0.180u"), std::string::npos);
    }
  }
  EXPECT_EQ(mlines, 4u);
}

TEST(SpiceExportTest, ClockAppearsInPortList) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 1;
  const auto nl = test::generate("mux", "domino_unsplit", spec);
  const std::string spice = to_spice(nl, Sizing(nl.label_count(), 2.0));
  const auto header_end = spice.find("\nM");
  const std::string header = spice.substr(0, header_end);
  EXPECT_NE(header.find(" clk"), std::string::npos);
  EXPECT_NE(spice.find("pch"), std::string::npos);  // PMOS devices present
}

TEST(SpiceExportTest, ModelNamesConfigurable) {
  const auto nl = test::inverter_chain(1);
  SpiceOptions opt;
  opt.nmos_model = "nmos_rvt";
  opt.pmos_model = "pmos_rvt";
  opt.length_um = 0.13;
  const std::string spice = to_spice(nl, {1.0, 2.0}, opt);
  EXPECT_NE(spice.find("nmos_rvt"), std::string::npos);
  EXPECT_NE(spice.find("pmos_rvt"), std::string::npos);
  EXPECT_NE(spice.find("l=0.130u"), std::string::npos);
}

}  // namespace
}  // namespace smart::netlist

// Tests for the SMART sizing loop (Fig 4): convergence, monotone area-delay
// behaviour, infeasibility handling, OTB and cost-metric effects, and the
// iso-delay experiment protocol.

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "core/report.h"
#include "helpers.h"
#include "models/fitter.h"
#include "refsim/rc_timer.h"

namespace smart::core {
namespace {

class SizerTest : public ::testing::Test {
 protected:
  const tech::Tech& tech_ = tech::default_tech();
  const models::ModelLibrary& lib_ = models::default_library();
  Sizer sizer_{tech_, lib_};
};

TEST_F(SizerTest, ConvergesOnChainAtModerateSpec) {
  const auto nl = test::inverter_chain(3, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 120.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.message, "converged");
  EXPECT_LE(r.measured_delay_ps, 120.0 * (1.0 + opt.converge_tol));
  EXPECT_GT(r.total_width_um, 0.0);
  EXPECT_GT(r.respec_iterations, 0);
}

TEST_F(SizerTest, TighterSpecCostsMoreWidth) {
  const auto nl = test::inverter_chain(3, 30.0);
  double prev_width = 1e18;
  for (double spec : {90.0, 110.0, 140.0, 180.0}) {
    SizerOptions opt;
    opt.delay_spec_ps = spec;
    const auto r = sizer_.size(nl, opt);
    ASSERT_TRUE(r.ok) << "spec " << spec << ": " << r.message;
    EXPECT_LT(r.total_width_um, prev_width) << "spec " << spec;
    prev_width = r.total_width_um;
  }
}

TEST_F(SizerTest, ImpossibleSpecReportsBestEffort) {
  const auto nl = test::inverter_chain(3, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 5.0;  // physically unreachable
  const auto r = sizer_.size(nl, opt);
  EXPECT_NE(r.message, "converged");
}

TEST_F(SizerTest, SolutionRespectsSlopeBudget) {
  const auto nl = test::inverter_chain(4, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 150.0;
  opt.slope_budget_ps = 100.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok);
  const refsim::RcTimer timer(tech_);
  const auto rep = timer.analyze(nl, r.sizing);
  // Model mismatch allows a little overshoot; grossly violating edges
  // would mean the slope constraints are not wired through.
  EXPECT_LT(rep.max_internal_slope, opt.slope_budget_ps * 1.25);
}

TEST_F(SizerTest, InputCapLimitRespected) {
  const auto nl = test::inverter_chain(3, 40.0);
  SizerOptions opt;
  opt.delay_spec_ps = 110.0;
  opt.input_cap_limit_ff = 4.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;
  const auto caps = sizer_.input_caps(nl, r.sizing);
  EXPECT_LE(caps[0], 4.0 * 1.06);  // limit plus the strictness slack
}

TEST_F(SizerTest, MeasureReportsConsistentNumbers) {
  const auto nl = test::inverter_chain(2, 15.0);
  const netlist::Sizing s(nl.label_count(), 2.0);
  const auto m = sizer_.measure(nl, s);
  EXPECT_TRUE(m.ok);
  EXPECT_GT(m.measured_delay_ps, 0.0);
  EXPECT_DOUBLE_EQ(m.total_width_um, nl.device_stats(s).total_width);
}

TEST_F(SizerTest, OtbReducesDominoWidth) {
  // Time borrowing relaxes per-stage deadlines, so the no-OTB design can
  // only be wider (or equal) at the same end-to-end spec.
  core::MacroSpec spec;
  spec.type = "comparator";
  spec.n = 16;
  const auto nl = test::generate("comparator", "xorsum2_nor4", spec);
  SizerOptions opt;
  opt.delay_spec_ps = 220.0;
  opt.precharge_spec_ps = 160.0;
  opt.otb = true;
  const auto with = sizer_.size(nl, opt);
  opt.otb = false;
  const auto without = sizer_.size(nl, opt);
  ASSERT_TRUE(with.ok) << with.message;
  ASSERT_TRUE(without.ok) << without.message;
  EXPECT_LE(with.total_width_um, without.total_width_um * 1.02);
}

TEST_F(SizerTest, ClockLoadMetricShrinksClockWidth) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 4;
  const auto nl = test::generate("mux", "domino_unsplit", spec);
  SizerOptions opt;
  opt.delay_spec_ps = 120.0;
  opt.precharge_spec_ps = 150.0;
  opt.cost = CostMetric::kTotalWidth;
  const auto by_width = sizer_.size(nl, opt);
  opt.cost = CostMetric::kClockLoad;
  const auto by_clock = sizer_.size(nl, opt);
  ASSERT_TRUE(by_width.ok) << by_width.message;
  ASSERT_TRUE(by_clock.ok) << by_clock.message;
  EXPECT_LE(by_clock.clock_width_um, by_width.clock_width_um * 1.05);
}

TEST_F(SizerTest, IsoDelayExperimentSavesWidth) {
  core::MacroSpec spec;
  spec.type = "decoder";
  spec.n = 4;
  const auto nl = test::generate("decoder", "predecode", spec);
  const auto cmp = run_iso_delay(nl, tech_, lib_);
  ASSERT_TRUE(cmp.ok) << cmp.smart.message;
  // SMART at iso-delay must beat the over-designed baseline.
  EXPECT_GT(cmp.width_saving(), 0.05);
  // And not be slower than the original (within tolerance).
  EXPECT_LE(cmp.smart.measured_delay_ps,
            cmp.baseline.measured_delay_ps * 1.03);
}

TEST_F(SizerTest, IsoDelayDropInConstraintsHold) {
  core::MacroSpec spec;
  spec.type = "mux";
  spec.n = 4;
  spec.params["bits"] = 4;
  const auto nl = test::generate("mux", "strong_pass", spec);
  const auto cmp = run_iso_delay(nl, tech_, lib_);
  ASSERT_TRUE(cmp.ok) << cmp.smart.message;
  Sizer sizer(tech_, lib_);
  const auto base_caps = sizer.input_caps(nl, cmp.baseline.sizing);
  const auto smart_caps = sizer.input_caps(nl, cmp.smart.sizing);
  for (size_t i = 0; i < base_caps.size(); ++i)
    EXPECT_LE(smart_caps[i], base_caps[i] * 1.06) << "port " << i;
}

TEST_F(SizerTest, ReportsPathAndConstraintStatistics) {
  core::MacroSpec spec;
  spec.type = "zero_detect";
  spec.n = 16;
  const auto nl = test::generate("zero_detect", "static_tree", spec);
  SizerOptions opt;
  opt.delay_spec_ps = 200.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.path_stats.final_paths, 0u);
  EXPECT_GT(r.constraint_count, r.path_stats.final_paths);
  EXPECT_GT(r.gp_newton_iterations, 0);
}

TEST_F(SizerTest, WidthGridSnapsUpAndStillMeetsSpec) {
  const auto nl = test::inverter_chain(3, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 120.0;
  opt.width_grid_um = 0.25;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.message, "converged");
  for (double w : r.sizing) {
    const double cells = w / 0.25;
    EXPECT_NEAR(cells, std::round(cells), 1e-6) << w;
  }
  EXPECT_LE(r.measured_delay_ps, 120.0 * (1.0 + opt.converge_tol));
  // Snapping up costs at most one grid cell per label vs continuous.
  SizerOptions cont = opt;
  cont.width_grid_um = -1.0;
  const auto rc = sizer_.size(nl, cont);
  EXPECT_LE(r.total_width_um,
            rc.total_width_um + 0.25 * 2 * static_cast<double>(nl.label_count()));
}

TEST_F(SizerTest, RespecTraceRecordsEveryIteration) {
  const auto nl = test::inverter_chain(3, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 120.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;

  ASSERT_FALSE(r.respec_trace.empty());
  size_t accepted = 0;
  for (size_t i = 0; i < r.respec_trace.size(); ++i) {
    const auto& it = r.respec_trace[i];
    EXPECT_EQ(it.iter, static_cast<int>(i));
    EXPECT_GT(it.model_spec_ps, 0.0);
    if (it.accepted) {
      ++accepted;
      EXPECT_EQ(it.gp_status, gp::SolveStatus::kOptimal);
      // The accepted iteration's measurement is the returned result.
      EXPECT_DOUBLE_EQ(it.measured_delay_ps, r.measured_delay_ps);
    }
  }
  EXPECT_EQ(accepted, 1u);
  // No snapshot unless asked for: the default result stays lean.
  EXPECT_EQ(r.snapshot, nullptr);
}

TEST_F(SizerTest, SnapshotAlignsWithSolveDiagnostics) {
  const auto nl = test::inverter_chain(3, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 120.0;
  opt.keep_solve_snapshot = true;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;
  ASSERT_NE(r.snapshot, nullptr);
  const auto& snap = *r.snapshot;

  // The regenerated problem matches the accepted solve's diagnostics
  // constraint-for-constraint — the invariant scope's tag mapping rests on.
  ASSERT_NE(snap.gen.problem, nullptr);
  const auto& cons = snap.gen.problem->constraints();
  ASSERT_EQ(cons.size(), snap.gp.diag.constraints.size());
  for (size_t j = 0; j < cons.size(); ++j)
    EXPECT_EQ(cons[j].tag, snap.gp.diag.constraints[j].tag) << j;

  // Paths and specs ride along, aligned with the templates.
  EXPECT_EQ(snap.gen.paths.size(), snap.gen.path_templates.size());
  EXPECT_EQ(snap.gen.path_specs.size(), snap.gen.path_templates.size());
  for (double spec : snap.gen.path_specs) EXPECT_GT(spec, 0.0);

  // The snapshot solve evaluates consistently: the solution vector
  // reproduces the recorded objective on the regenerated problem.
  EXPECT_NEAR(snap.gen.problem->objective().eval(snap.gp.x),
              snap.gp.objective, 1e-9 * std::abs(snap.gp.objective) + 1e-9);
  EXPECT_GT(snap.model_delay_spec_ps, 0.0);
  EXPECT_EQ(snap.target_delay_ps, opt.delay_spec_ps);
}

TEST_F(SizerTest, ReportDescribesSolution) {
  const auto nl = test::inverter_chain(2, 15.0);
  SizerOptions opt;
  opt.delay_spec_ps = 150.0;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok);
  const std::string report = describe_solution(nl, r, tech_);
  EXPECT_NE(report.find("chain2"), std::string::npos);
  EXPECT_NE(report.find("converged"), std::string::npos);
  EXPECT_NE(report.find("N0"), std::string::npos);  // label table
  EXPECT_NE(report.find("mW"), std::string::npos);
}

TEST_F(SizerTest, TinyDeadlineTimesOutWithValidBestEffortPoint) {
  const auto nl = test::inverter_chain(4, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 100.0;
  // Far too small to cover extraction + constraint generation + the GP:
  // the deadline must surface as a structured kTimeout, and the ladder
  // must still hand back a usable sizing (the baseline fallback), never
  // an empty result or an exception.
  opt.gp.deadline_ms = 0.01;
  const auto r = sizer_.size(nl, opt);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.rung, SizingRung::kBaseline) << r.message;
  EXPECT_EQ(r.status.reason, util::FailureReason::kTimeout)
      << r.status.to_string();
  ASSERT_FALSE(r.sizing.empty());
  for (const double w : r.sizing) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GT(w, 0.0);
  }
  EXPECT_GT(r.total_width_um, 0.0);
}

TEST_F(SizerTest, WarmStartFromOwnSolutionConvergesCheaper) {
  const auto nl = test::inverter_chain(4, 30.0);
  SizerOptions opt;
  opt.delay_spec_ps = 90.0;  // tight enough that the GP works for it
  const auto cold = sizer_.size(nl, opt);
  ASSERT_TRUE(cold.ok) << cold.message;
  ASSERT_EQ(cold.rung, SizingRung::kGp);
  ASSERT_FALSE(cold.solution_x.empty());

  SizerOptions warm_opt = opt;
  warm_opt.warm_start = cold.solution_x;
  const auto warm = sizer_.size(nl, warm_opt);
  ASSERT_TRUE(warm.ok) << warm.message;
  // Re-solving from the solved point must cost fewer Newton iterations —
  // the property the serving layer's result cache banks on — and land on
  // the same design.
  EXPECT_LT(warm.gp_newton_iterations, cold.gp_newton_iterations);
  EXPECT_NEAR(warm.total_width_um, cold.total_width_um,
              0.02 * cold.total_width_um);
}

}  // namespace
}  // namespace smart::core
